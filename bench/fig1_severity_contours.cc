/**
 * @file
 * Reproduction of Fig. 1: Hotspot-Severity as a function of absolute
 * temperature and MLTD.
 *
 * Paper anchor conditions to reproduce (severity exactly 1.0 at):
 *   (115 C, MLTD  0)  — uniformly hot chip,
 *   ( 95 C, MLTD 20)  — intermediate,
 *   ( 80 C, MLTD 40)  — advanced hotspot.
 * The printed map marks the safe region ('.'), the 0.85-1.0 band ('+'),
 * and the unsafe region ('#'), with the severity-1.0 contour following
 * the critical-temperature curve.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "hotspot/severity.hh"
#include "report.hh"

using namespace boreas;

int
main(int argc, char **argv)
{
    bench::requireNoWorkloadOverride(
        bench::parseBenchArgs(argc, argv), "fig1_severity_contours");
    bench::BenchReport report("fig1_severity_contours");
    SeverityModel model;

    std::printf("=== Fig. 1 anchor conditions ===\n");
    struct Anchor
    {
        Celsius t, m;
    };
    for (const Anchor &a :
         {Anchor{115.0, 0.0}, Anchor{95.0, 20.0}, Anchor{80.0, 40.0}}) {
        const double sev = model.severity(a.t, a.m);
        std::printf("severity(%.0f C, MLTD %.0f C) = %.6f (paper: "
                    "1.0)\n", a.t, a.m, sev);
        report.comparison("severity(" + TextTable::num(a.t, 0) +
                              " C, MLTD " + TextTable::num(a.m, 0) +
                              " C)",
                          "1.0", TextTable::num(sev, 6));
    }

    std::printf("\n=== severity map: rows = temperature, cols = MLTD "
                "===\n");
    std::printf("('.' < 0.85, '+' in [0.85, 1.0), '#' >= 1.0)\n\n");
    std::printf("  T\\M |");
    for (Celsius m = 0.0; m <= 50.0; m += 2.5)
        std::printf("%s", " ");
    std::printf("  0 C ... 50 C (2.5 C steps)\n");
    for (Celsius t = 120.0; t >= 50.0; t -= 2.5) {
        std::printf("%5.1f |", t);
        for (Celsius m = 0.0; m <= 50.0; m += 2.5) {
            const double sev = model.severity(t, m);
            std::printf("%c", sev >= 1.0 ? '#' : sev >= 0.85 ? '+'
                                                             : '.');
        }
        std::printf("\n");
    }

    std::printf("\n=== the severity-1.0 contour (critical temperature "
                "vs MLTD) ===\n");
    TextTable contour;
    contour.setHeader({"MLTD [C]", "T_crit [C]", "severity(T_crit)"});
    for (Celsius m = 0.0; m <= 50.0; m += 5.0) {
        const Celsius tc = model.criticalTemp(m);
        contour.addRow({TextTable::num(m, 1), TextTable::num(tc, 1),
                        TextTable::num(model.severity(tc, m), 4)});
    }
    contour.print(std::cout);
    report.addTable("severity_contour", contour);
    return 0;
}
