/**
 * @file
 * The Sec. IV-C comparative baseline: Cochran & Reda's phase-detection
 * thermal predictor (PCA + k-means phases + per-phase linear regression
 * of future temperature) driving the same reactive threshold policy.
 *
 * Paper argument to reproduce: even with good temperature *prediction*,
 * a temperature-threshold policy must stay conservative because
 * temperature alone does not capture severity (MLTD); Boreas' direct
 * severity prediction converts the same telemetry into more headroom.
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("baseline_cochran_reda");
    auto ctx = buildExperimentContext();
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());
    auto th00 = ctx->thController(0.0);
    auto cr = ctx->crController();
    auto ml05 = ctx->mlController(0.05);

    // Temperature-prediction quality of the phase model on held-out
    // workloads (its own objective).
    DatasetConfig eval_cfg = datasetConfigFor(benchScale());
    eval_cfg.intensityAugments = {1.0};
    eval_cfg.walkSegments = 2;
    const BuiltData eval =
        wl_override
            ? buildTrainingData(
                  ctx->pipeline,
                  std::vector<const WorkloadSource *>{
                      wl_override.get()},
                  eval_cfg)
            : buildTrainingData(ctx->pipeline, testWorkloads(),
                                eval_cfg);
    OnlineStats temp_err;
    for (const auto &s : eval.phaseSamples) {
        const double pred = ctx->trained.phaseModel.predictNextTemp(
            s.counters, s.tempNow, s.freqIndex);
        temp_err.add(std::abs(pred - s.tempNext));
    }
    std::printf("=== Cochran-Reda temperature prediction (unseen "
                "workloads) ===\n");
    std::printf("mean |T_pred - T_actual| : %.2f C over %zu samples\n",
                temp_err.mean(), temp_err.count());
    std::printf("max  |T_pred - T_actual| : %.2f C\n\n", temp_err.max());

    // Closed-loop comparison on the test set.
    TextTable table;
    table.setHeader({"workload", "TH-00", "CochranReda", "ML05"});
    OnlineStats th_norm, cr_norm, ml_norm;
    int th_inc = 0, cr_inc = 0, ml_inc = 0;
    const auto addRuns = [&](const EvalRow &th, const EvalRow &c,
                             const EvalRow &ml) {
        table.addRow({th.workload, TextTable::num(th.normalized, 4),
                      TextTable::num(c.normalized, 4),
                      TextTable::num(ml.normalized, 4)});
        th_norm.add(th.normalized);
        cr_norm.add(c.normalized);
        ml_norm.add(ml.normalized);
        th_inc += th.incursions;
        cr_inc += c.incursions;
        ml_inc += ml.incursions;
    };
    if (wl_override) {
        addRuns(evaluateController(ctx->pipeline, *wl_override, *th00),
                evaluateController(ctx->pipeline, *wl_override, *cr),
                evaluateController(ctx->pipeline, *wl_override, *ml05));
    } else {
        for (const WorkloadSpec *w : testWorkloads()) {
            addRuns(evaluateController(ctx->pipeline, *w, *th00),
                    evaluateController(ctx->pipeline, *w, *cr),
                    evaluateController(ctx->pipeline, *w, *ml05));
        }
    }
    std::printf("=== normalized average frequency (test set) ===\n");
    table.print(std::cout);
    report.addTable("baseline_comparison", table);
    std::printf("\nmeans: TH-00 %.4f (%d incursions) | CochranReda "
                "%.4f (%d) | ML05 %.4f (%d)\n", th_norm.mean(), th_inc,
                cr_norm.mean(), cr_inc, ml_norm.mean(), ml_inc);
    report.comparison("temp prediction mean abs error [C]",
                      "small (good predictor)",
                      TextTable::num(temp_err.mean(), 2));
    report.comparison("ML05 mean normalized freq beats CochranReda",
                      "yes",
                      ml_norm.mean() > cr_norm.mean() ? "yes" : "no");
    report.comparison("ML05 incursions", "0",
                      std::to_string(ml_inc));
    std::printf("paper argument: severity prediction (ML05) "
                "outperforms temperature prediction (Cochran-Reda) "
                "under the same reliability budget\n");
    return 0;
}
