/**
 * @file
 * Reproduction of Table I: the VF operating points of the modeled 7 nm
 * processor, plus the interpolated 250 MHz evaluation grid.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "power/vf_table.hh"
#include "report.hh"

using namespace boreas;

int
main(int argc, char **argv)
{
    bench::requireNoWorkloadOverride(
        bench::parseBenchArgs(argc, argv), "table1_vf_pairs");
    bench::BenchReport report("table1_vf_pairs");
    VFTable vf;

    std::printf("=== Table I: select VF pairs (paper anchors) ===\n");
    TextTable anchors;
    anchors.setHeader({"Frequency [GHz]", "Voltage [V]"});
    for (const auto &[f, v] : VFTable::anchors())
        anchors.addRow({TextTable::num(f, 2), TextTable::num(v, 2)});
    anchors.print(std::cout);
    report.addTable("table1_anchors", anchors);

    std::printf("\n=== evaluation grid (250 MHz steps, Sec. III-A) "
                "===\n");
    TextTable grid;
    grid.setHeader({"idx", "GHz", "V", "V^2*f (power proxy)"});
    for (int i = 0; i < vf.numPoints(); ++i) {
        const GHz f = vf.frequency(i);
        const Volts v = vf.voltage(f);
        grid.addRow({std::to_string(i), TextTable::num(f, 2),
                     TextTable::num(v, 3), TextTable::num(v * v * f, 3)});
    }
    grid.print(std::cout);
    report.addTable("evaluation_grid", grid);
    report.comparison(
        "evaluation grid step [MHz]", "250",
        TextTable::num((vf.frequency(1) - vf.frequency(0)) * 1e3, 0));
    return 0;
}
