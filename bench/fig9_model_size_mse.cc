/**
 * @file
 * Reproduction of Fig. 9: cross-validated MSE versus model size in
 * bytes.
 *
 * Paper shape to reproduce: tiny models (a few shallow trees) predict
 * poorly; growing the ensemble reduces MSE until the model starts
 * memorizing the training applications, after which held-out MSE
 * flattens/rises. The selected Table II model (223 trees, depth 3,
 * < 14 KB) sits at the small-and-accurate point.
 *
 * Cross-validation is the paper's leave-one-application-out scheme; to
 * keep the sweep tractable the fold count is capped (the fold subset is
 * fixed, so configurations are comparable).
 */

#include <cstdio>
#include <iostream>

#include "boreas/dataset_builder.hh"
#include "common/table.hh"
#include "harness.hh"
#include "ml/cv.hh"
#include "ml/feature_schema.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    // Fig. 9 cross-validates over the fixed training split (the groups
    // ARE the workloads), so a single-source override is meaningless.
    requireNoWorkloadOverride(parseBenchArgs(argc, argv),
                              "fig9_model_size_mse");
    BenchReport report("fig9_model_size_mse");
    SimulationPipeline pipeline;
    DatasetConfig dcfg = datasetConfigFor(benchScale());
    std::fprintf(stderr, "[bench] generating CV dataset...\n");
    const BuiltData built = buildTrainingData(pipeline, trainWorkloads(),
                                              dcfg);
    const Dataset data = built.severity.selectFeatures(
        featureIndicesOf(deployedFeatureNames()));
    std::fprintf(stderr, "[bench] %zu instances\n", data.numRows());

    struct Config
    {
        int trees;
        int depth;
    };
    const std::vector<Config> sweep{
        {2, 2},   {5, 2},   {15, 2},  {40, 2},  {10, 3},  {30, 3},
        {80, 3},  {150, 3}, {223, 3}, {400, 3}, {223, 5}, {400, 6},
    };
    const int folds = 5;

    std::printf("=== Fig. 9: CV MSE vs model size ===\n");
    TextTable table;
    table.setHeader({"trees", "depth", "bytes", "cv MSE", "std"});
    double best_mse = 1e9;
    size_t best_bytes = 0;
    for (const Config &cfg : sweep) {
        GBTParams params;
        params.nEstimators = cfg.trees;
        params.maxDepth = cfg.depth;
        std::fprintf(stderr, "[bench] CV %d trees depth %d...\n",
                     cfg.trees, cfg.depth);
        const CVResult cv = leaveOneGroupOutCV(data, params, folds);
        const size_t bytes =
            static_cast<size_t>(cfg.trees) *
            ((static_cast<size_t>(1) << (cfg.depth + 1)) - 1) * 4;
        table.addRow({std::to_string(cfg.trees),
                      std::to_string(cfg.depth), std::to_string(bytes),
                      TextTable::num(cv.meanMse, 5),
                      TextTable::num(cv.stdMse, 5)});
        if (cv.meanMse < best_mse) {
            best_mse = cv.meanMse;
            best_bytes = bytes;
        }
    }
    table.print(std::cout);
    report.addTable("fig9_size_vs_mse", table);

    std::printf("\nchosen model (Table II): 223 trees, depth 3 = "
                "%zu bytes (< 14 KB, paper)\n",
                static_cast<size_t>(223) * 15 * 4);
    std::printf("best CV MSE in sweep: %.5f at %zu bytes (paper "
                "curve bottoms around its selected small model; "
                "reported test MSE 0.0094)\n", best_mse, best_bytes);
    report.comparison("chosen model size [bytes]", "< 14336 (14 KB)",
                      std::to_string(static_cast<size_t>(223) * 15 * 4));
    report.comparison("best CV MSE in sweep", "~0.0094 (test)",
                      TextTable::num(best_mse, 5));
    return 0;
}
