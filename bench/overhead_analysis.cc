/**
 * @file
 * Reproduction of Sec. V-E (overhead analysis): the deployed model's
 * memory footprint and per-prediction operation counts.
 *
 * Paper numbers to reproduce: 223 trees x depth 3, full-tree 32-bit
 * accounting < 14 KB; 669 comparisons + 222 additions ~= 1000
 * operations per serial prediction (parallelizable by issue width).
 */

#include <cstdio>

#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    requireNoWorkloadOverride(parseBenchArgs(argc, argv),
                              "overhead_analysis");
    BenchReport report("overhead_analysis");
    auto ctx = buildExperimentContext();
    const GBTRegressor &model = ctx->trained.model;

    std::printf("=== Sec. V-E: Boreas overhead analysis ===\n");
    std::printf("trees                    : %zu (paper: 223)\n",
                model.numTrees());
    std::printf("max depth                : %d (paper: 3)\n",
                model.params().maxDepth);
    std::printf("model weights            : %zu bytes (paper: < 14 KB "
                "= %d bytes budget)\n", model.modelBytes(), 14 * 1024);
    std::printf("comparisons / prediction : %zu (paper: 669)\n",
                model.comparisonsPerPrediction());
    std::printf("additions / prediction   : %zu (paper: 222)\n",
                model.additionsPerPrediction());
    std::printf("total ops / prediction   : %zu (paper: ~1000, serial "
                "worst case)\n",
                model.comparisonsPerPrediction() +
                    model.additionsPerPrediction());

    const int issue_width = 4;
    std::printf("with issue width %d       : ~%zu cycles equivalent "
                "(paper: latency / n)\n", issue_width,
                (model.comparisonsPerPrediction() +
                 model.additionsPerPrediction()) / issue_width);

    // Fits-in-cache observation (Sec. V-E: "stored in lower level
    // caches or its own scratch-pad").
    std::printf("fits in a 32 KB L1D      : %s\n",
                model.modelBytes() <= 32 * 1024 ? "yes" : "no");
    report.comparison("trees", "223",
                      std::to_string(model.numTrees()));
    report.comparison("max depth", "3",
                      std::to_string(model.params().maxDepth));
    report.comparison("model weights [bytes]", "< 14336 (14 KB)",
                      std::to_string(model.modelBytes()));
    report.comparison("comparisons per prediction", "669",
                      std::to_string(model.comparisonsPerPrediction()));
    report.comparison("additions per prediction", "222",
                      std::to_string(model.additionsPerPrediction()));
    report.comparison(
        "total ops per prediction", "~1000 (serial)",
        std::to_string(model.comparisonsPerPrediction() +
                       model.additionsPerPrediction()));
    return 0;
}
