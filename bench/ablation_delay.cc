/**
 * @file
 * Ablation: sensor delay versus controller effectiveness.
 *
 * The paper's premise is that Boreas works "even with a conservative
 * thermal sensor delay" (960 us). This harness evaluates TH-00 and ML05
 * at sensor delays of 0, 160 us and 960 us, reporting average frequency
 * and incursions over the test set. Each configuration retrains its
 * model and rederives its TH table, since both consume the delayed
 * telemetry.
 */

#include <cstdio>
#include <iostream>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("ablation_delay");
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());
    const std::vector<int> delays{0, 2, 12};

    TextTable table;
    table.setHeader({"delay", "model", "mean vs 3.75", "incursions"});
    for (int delay : delays) {
        std::fprintf(stderr, "[bench] === delay %d steps ===\n", delay);
        PipelineConfig cfg;
        cfg.sensors.delaySteps = delay;
        SimulationPipeline pipeline(cfg);

        TrainerConfig tcfg;
        tcfg.data = datasetConfigFor(benchScale());
        const TrainedBoreas trained =
            trainBoreas(pipeline, trainWorkloads(), tcfg);
        const CriticalTempTable th_table = buildThTable(pipeline);

        ThermalThresholdController th00("TH-00", th_table, 0.0,
                                        kBestSensorIndex);
        BoreasController ml05("ML05", &trained.model,
                              trained.featureNames, 0.05,
                              kBestSensorIndex);

        for (FrequencyController *m :
             {static_cast<FrequencyController *>(&th00),
              static_cast<FrequencyController *>(&ml05)}) {
            OnlineStats norm;
            int incursions = 0;
            if (wl_override) {
                const EvalRow row =
                    evaluateController(pipeline, *wl_override, *m);
                norm.add(row.normalized);
                incursions += row.incursions;
            } else {
                for (const WorkloadSpec *w : testWorkloads()) {
                    const EvalRow row =
                        evaluateController(pipeline, *w, *m);
                    norm.add(row.normalized);
                    incursions += row.incursions;
                }
            }
            table.addRow({strfmt("%d us", delay * 80), m->name(),
                          TextTable::num(norm.mean(), 4),
                          std::to_string(incursions)});
            if (delay == 12 && m->name() == std::string("ML05")) {
                report.comparison("ML05 incursions at 960 us delay",
                                  "0", std::to_string(incursions));
                report.comparison(
                    "ML05 mean freq vs 3.75 at 960 us delay", ">1.0",
                    TextTable::num(norm.mean(), 4));
            }
        }
    }
    std::printf("=== sensor-delay ablation (test set) ===\n");
    table.print(std::cout);
    report.addTable("delay_ablation", table);
    std::printf("\nexpected shape: both models lose headroom as delay "
                "grows; ML05 keeps its advantage at the paper's "
                "960 us operating point\n");
    return 0;
}
