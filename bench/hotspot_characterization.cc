/**
 * @file
 * Ablation/characterization: how *advanced* are the hotspots?
 *
 * Quantifies the paper's Sec. I/II motivation on this substrate: at
 * each workload's first unsafe frequency, how many hotspot events
 * occur, how long do they last, and — critically — how fast do they
 * form (onset from severity 0.8 to 1.0)? Onsets at or below the
 * sensor+DVFS loop latency (960 us) are precisely the hotspots that
 * reactive control cannot catch and Boreas' prediction can.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"
#include "hotspot/events.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

namespace
{

/** One (name, stimulus-runner, frequency) characterization row. */
struct CharRow
{
    std::string name;
    GHz freq = 0.0;
    RunResult run;
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("hotspot_characterization");
    SimulationPipeline pipeline;
    const VFTable &vf = pipeline.vfTable();

    // Default: each SPEC2006 program at its first unsafe frequency.
    // With --workload: the override source at the top grid frequency
    // (no per-source design oracle exists, so probe the worst case).
    std::vector<CharRow> rows;
    if (opts.hasWorkload()) {
        const auto src = opts.makeSource();
        report.workloadSource(src->name());
        CharRow row;
        row.name = src->name();
        row.freq = vf.frequencies().back();
        row.run = pipeline.runConstantFrequency(
            *src, kBenchSeed + src->groupId(), row.freq);
        rows.push_back(std::move(row));
    } else {
        for (const auto &w : spec2006Suite()) {
            CharRow row;
            row.name = w.name;
            row.freq = vf.stepUp(designOracleFrequency(w.name));
            row.run = pipeline.runConstantFrequency(
                w, kBenchSeed + w.seedSalt, row.freq);
            rows.push_back(std::move(row));
        }
    }

    std::printf("=== hotspot characterization at each workload's "
                "first unsafe frequency ===\n");
    TextTable table;
    table.setHeader({"workload", "GHz", "events", "mean dur [us]",
                     "fastest onset [us]", "peak sev"});
    OnlineStats onsets;
    int faster_than_loop = 0, with_onset = 0;
    for (const CharRow &cr : rows) {
        const RunResult &run = cr.run;

        HotspotDetector detector;
        for (const auto &rec : run.steps)
            detector.observe(rec.severity);
        detector.finish();

        double mean_dur = 0.0, peak = 0.0;
        for (const auto &e : detector.events()) {
            mean_dur += e.durationSteps() * kTelemetryStep * 1e6;
            peak = std::max(peak, e.peakSeverity);
            if (e.onset >= 0.0) {
                onsets.add(e.onset);
                ++with_onset;
                if (e.onset <= kDecisionPeriod)
                    ++faster_than_loop;
            }
        }
        if (!detector.events().empty())
            mean_dur /= static_cast<double>(detector.events().size());

        const Seconds fastest = detector.fastestOnset();
        table.addRow({cr.name, TextTable::num(cr.freq, 2),
                      std::to_string(detector.events().size()),
                      TextTable::num(mean_dur, 0),
                      fastest ==
                              std::numeric_limits<Seconds>::infinity()
                          ? "-"
                          : TextTable::num(fastest * 1e6, 0),
                      TextTable::num(peak, 3)});
    }
    table.print(std::cout);
    report.addTable("hotspot_events", table);

    std::printf("\n=== onset statistics (all events with measurable "
                "onset) ===\n");
    std::printf("events with measurable onset : %d\n", with_onset);
    std::printf("mean onset                   : %.0f us\n",
                onsets.mean() * 1e6);
    std::printf("fastest onset                : %.0f us\n",
                onsets.min() * 1e6);
    std::printf("onsets <= one control period (960 us): %d of %d "
                "(%.0f%%)\n", faster_than_loop, with_onset,
                with_onset > 0
                    ? 100.0 * faster_than_loop / with_onset : 0.0);
    std::printf("\npaper motivation: advanced hotspots arise at "
                "microsecond granularity, faster than reactive "
                "sensor+DVFS loops (Sec. I)\n");
    report.comparison("events with measurable onset", ">0",
                      std::to_string(with_onset));
    report.comparison("fastest onset [us]",
                      "microsecond scale (< 960)",
                      TextTable::num(onsets.min() * 1e6, 0));
    report.comparison("onsets within one control period",
                      "majority",
                      std::to_string(faster_than_loop) + " of " +
                          std::to_string(with_onset));
    report.runHash(pipeline.runHash());
    return 0;
}
