/**
 * @file
 * Fleet-scale throughput + budget experiment (DESIGN.md §13): a
 * heterogeneous fleet of dies — mixed workload sources, per-die
 * ambients and seeds, per-die ML05 Boreas controllers — simulated by
 * src/fleet under the shared thread pool, reporting dies/sec,
 * die-steps/sec and the per-stage time split to BENCH_fleet.json.
 *
 * Checks enforced (nonzero exit on violation):
 *   - the fleet rollup — every per-die runHash and the combined
 *     rollupHash — is bit-identical at 1 and 8 threads;
 *   - the deliberately-broken die of the fault-injection fleet is
 *     reported per-die while every other die still runs.
 *
 * The budget experiment re-runs the fleet with a global power budget
 * at 85% of the unconstrained aggregate and reports the utilization
 * and the frequency the FleetController traded away for it.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "fleet/fleet.hh"
#include "harness.hh"
#include "obs/metrics.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;
using namespace boreas::fleet;
using Clock = std::chrono::steady_clock;

namespace
{

/** Heterogeneous per-die workload catalog (die i runs entry i mod 8):
 *  SPEC programs, a co-scheduled NAS mix, and adversarial hotspots. */
const char *const kDieCatalog[] = {
    "bzip2",
    "gromacs",
    "mix:bt.B+is.D+ep.B+cg.B@stagger=0.8e-3",
    "adversarial:corehop",
    "mcf",
    "synthetic:nas/cg.B",
    "povray",
    "adversarial:powervirus",
};
constexpr int kCatalogSize =
    static_cast<int>(sizeof(kDieCatalog) / sizeof(kDieCatalog[0]));

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

std::string
hex64(uint64_t v)
{
    return strfmt("%016llx", static_cast<unsigned long long>(v));
}

/** The fleet for a scale: dies cycle through the catalog with rack-
 *  position ambients (40-50 C) and per-die seeds. */
FleetConfig
fleetConfigFor(Scale scale, Watts budget)
{
    FleetConfig cfg;
    cfg.base = benchPipelineConfig();
    int dies = 8;
    cfg.epochs = 3;
    cfg.epochSteps = 3 * kStepsPerDecision;
    if (scale == Scale::Full) {
        dies = 32;
        cfg.epochs = 6;
    } else if (scale == Scale::Paper) {
        dies = 128;
        cfg.epochs = 10;
        cfg.epochSteps = 5 * kStepsPerDecision;
    }
    for (int i = 0; i < dies; ++i) {
        FleetDieSpec die;
        die.workload = kDieCatalog[i % kCatalogSize];
        die.seed = kBenchSeed + static_cast<uint64_t>(i);
        die.ambient = 40.0 + 2.5 * static_cast<double>(i % 5);
        cfg.dies.push_back(die);
    }
    cfg.controller.globalBudget = budget;
    return cfg;
}

DieControllerFactory
ml05Factory(const ExperimentContext &ctx)
{
    return [&ctx](int) { return ctx.mlController(0.05); };
}

/** Sum of live dies' mean power — the unconstrained operating point
 *  the budget experiment cuts from. */
Watts
aggregatePower(const FleetRollup &rollup)
{
    Watts total = 0.0;
    for (const FleetDieResult &die : rollup.perDie) {
        if (die.ok)
            total += die.meanPower;
    }
    return total;
}

/** Bit-compare two rollups; prints the first divergence. */
bool
rollupsIdentical(const FleetRollup &a, const FleetRollup &b)
{
    if (a.rollupHash != b.rollupHash) {
        std::fprintf(stderr,
                     "FAIL: rollupHash %s (1 thread) != %s (8 threads)\n",
                     hex64(a.rollupHash).c_str(),
                     hex64(b.rollupHash).c_str());
    }
    bool same = a.rollupHash == b.rollupHash;
    for (size_t i = 0; i < a.perDie.size() && i < b.perDie.size(); ++i) {
        if (a.perDie[i].runHash != b.perDie[i].runHash) {
            std::fprintf(stderr,
                         "FAIL: die %zu runHash %s != %s\n", i,
                         hex64(a.perDie[i].runHash).c_str(),
                         hex64(b.perDie[i].runHash).c_str());
            same = false;
        }
    }
    return same;
}

/** Restores the global pool on scope exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard()
    {
        ThreadPool::resetGlobal(ThreadPool::defaultThreads());
    }
};

} // namespace

int
main(int argc, char **argv)
{
    // The fleet runs its own heterogeneous catalog; there is no single
    // workload dimension to override.
    requireNoWorkloadOverride(parseBenchArgs(argc, argv),
                              "fleet_throughput");
    const Scale scale = benchScale();
    BenchReport report("fleet");

    std::fprintf(stderr, "building experiment context (training)...\n");
    const auto ctx = buildExperimentContext();
    const DieControllerFactory factory = ml05Factory(*ctx);

    // --- Gate 1: rollup bit-identical at 1 vs 8 threads. ---
    FleetConfig cfg = fleetConfigFor(scale, 0.0);
    bool pass = true;
    {
        GlobalPoolGuard guard;
        ThreadPool::resetGlobal(1);
        const FleetRollup serial = FleetSimulator(cfg, factory).run();
        ThreadPool::resetGlobal(8);
        const FleetRollup threaded = FleetSimulator(cfg, factory).run();
        pass = rollupsIdentical(serial, threaded);
    }
    report.comparison("rollup 1-vs-8-thread", "bit-identical",
                      pass ? "bit-identical" : "DIVERGED");

    // --- Gate 2: a broken die is contained, the fleet survives. ---
    {
        FleetConfig faulty = cfg;
        faulty.epochs = 1;
        faulty.dies[1].workload = "mix:mcf+nosuchprogram";
        const FleetRollup r = FleetSimulator(faulty, factory).run();
        const bool contained =
            r.failedDies == 1 && !r.perDie[1].ok &&
            !r.perDie[1].error.empty() && r.perDie[0].ok &&
            r.totalSteps > 0;
        if (!contained) {
            std::fprintf(stderr,
                         "FAIL: fault injection not contained "
                         "(failedDies=%d)\n", r.failedDies);
            pass = false;
        }
        report.comparison("fault containment", "1 die fails, rest run",
                          contained ? "contained" : "NOT CONTAINED");
    }

    // --- Throughput: unconstrained fleet on the default pool. ---
    obs::MetricsRegistry::global().reset();
    const auto t0 = Clock::now();
    const FleetRollup unlimited = FleetSimulator(cfg, factory).run();
    const auto t1 = Clock::now();
    const double wall = seconds(t0, t1);
    const double dies_per_sec =
        wall > 0.0 ? static_cast<double>(unlimited.dies) / wall : 0.0;
    const double die_steps_per_sec =
        wall > 0.0 ? static_cast<double>(unlimited.totalSteps) / wall
                   : 0.0;

    // Per-stage split of the timed run (pipeline stage timers plus
    // the fleet barrier), from the sharded metrics histograms.
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    double stage_total_us = 0.0;
    for (const auto &[name, hist] : snap.histograms) {
        if (name.rfind("stage.", 0) == 0)
            stage_total_us += hist.sum;
    }
    TextTable stages;
    stages.setHeader({"stage", "calls", "total s", "share %"});
    for (const auto &[name, hist] : snap.histograms) {
        if (name.rfind("stage.", 0) != 0)
            continue;
        stages.addRow({name, std::to_string(hist.count),
                       TextTable::num(hist.sum / 1e6, 3),
                       TextTable::num(stage_total_us > 0.0
                                          ? 100.0 * hist.sum /
                                                stage_total_us
                                          : 0.0,
                                      1)});
    }
    report.addTable("stage_split", stages);

    // --- Budget experiment: cap the fleet at 85% of its draw. ---
    const Watts aggregate = aggregatePower(unlimited);
    const Watts budget = 0.85 * aggregate;
    FleetConfig capped_cfg = fleetConfigFor(scale, budget);
    const FleetRollup capped =
        FleetSimulator(capped_cfg, factory).run();
    const Watts capped_aggregate = aggregatePower(capped);
    const double utilization =
        budget > 0.0 ? capped_aggregate / budget : 0.0;

    // --- Report. ---
    TextTable dies;
    dies.setHeader({"die", "workload", "ambient", "steps", "freq GHz",
                    "power W", "incur", "cap", "runHash"});
    for (const FleetDieResult &d : unlimited.perDie) {
        if (!d.ok) {
            dies.addRow({std::to_string(d.die), d.workload, "-", "-",
                         "-", "-", "-", "-", "FAILED: " + d.error});
            continue;
        }
        dies.addRow({std::to_string(d.die), d.workload,
                     TextTable::num(cfg.dies[d.die].ambient, 1),
                     std::to_string(d.steps),
                     TextTable::num(d.meanFrequency, 3),
                     TextTable::num(d.meanPower, 2),
                     std::to_string(d.incursionSteps),
                     TextTable::num(d.finalCap, 2), hex64(d.runHash)});
    }
    report.addTable("fleet_dies", dies);

    TextTable epochs;
    epochs.setHeader({"epoch", "unlimited W", "capped W"});
    for (size_t e = 0; e < unlimited.epochPower.size(); ++e) {
        epochs.addRow(
            {std::to_string(e),
             TextTable::num(unlimited.epochPower[e], 2),
             e < capped.epochPower.size()
                 ? TextTable::num(capped.epochPower[e], 2)
                 : "-"});
    }
    report.addTable("epoch_power", epochs);

    std::printf("=== fleet throughput (%d dies, %d epochs x %d steps, "
                "%d threads) ===\n",
                unlimited.dies, cfg.epochs, cfg.epochSteps,
                ThreadPool::defaultThreads());
    std::printf("wall: %.3fs  dies/sec: %.2f  die-steps/sec: %.0f\n",
                wall, dies_per_sec, die_steps_per_sec);
    std::printf("aggregate incursion rate: %.4f  mean freq: %.3f GHz\n",
                unlimited.aggregateIncursionRate,
                unlimited.meanFrequency);
    std::printf("budget %.1f W (85%% of %.1f W): capped draw %.1f W "
                "(%.1f%% util), mean freq %.3f -> %.3f GHz\n",
                budget, aggregate, capped_aggregate,
                100.0 * utilization, unlimited.meanFrequency,
                capped.meanFrequency);

    report.fleetDies(unlimited.dies);
    report.runHash(unlimited.rollupHash);
    report.config("dies", static_cast<double>(unlimited.dies));
    report.config("epochs", static_cast<double>(cfg.epochs));
    report.config("epoch_steps", static_cast<double>(cfg.epochSteps));
    report.config("threads",
                  static_cast<double>(ThreadPool::defaultThreads()));
    report.config("wall_s", wall);
    report.config("dies_per_sec", dies_per_sec);
    report.config("die_steps_per_sec", die_steps_per_sec);
    report.config("aggregate_incursion_rate",
                  unlimited.aggregateIncursionRate);
    report.config("budget_w", budget);
    report.config("budget_utilization", utilization);
    report.comparison("dies/sec", "scales with threads",
                      TextTable::num(dies_per_sec, 2));
    report.comparison("aggregate incursion rate",
                      "driven by the adversarial dies",
                      TextTable::num(unlimited.aggregateIncursionRate,
                                     4));
    report.comparison("budget utilization", "<= 100%",
                      TextTable::num(100.0 * utilization, 1) + "%");
    report.comparison(
        "mean freq under 85% budget",
        "below unconstrained",
        TextTable::num(capped.meanFrequency, 3) + " vs " +
            TextTable::num(unlimited.meanFrequency, 3) + " GHz");

    if (!pass) {
        std::fprintf(stderr, "fleet_throughput: FAILED\n");
        return 1;
    }
    return 0;
}
