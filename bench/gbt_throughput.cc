/**
 * @file
 * Serving-path throughput and latency for the flat GBT engine
 * (ROADMAP item 3, DESIGN.md §12): trains the paper-sized 223-tree
 * model, then measures predictions/sec of FlatGBT::predictBatch
 * against the pointer-chasing GBTRegressor::predict baseline across
 * batch sizes, plus p50/p99 per-prediction latency through the same
 * LatencySummary schema micro_latency emits.
 *
 * Two exit-code gates:
 *   - equality (always on): every flat prediction must be bit-identical
 *     to the reference walk at every measured batch size;
 *   - speedup (conditioned): >= 5x predictions/sec at batch 4096.
 *     Armed when the host has >= 4 hardware threads and the build is
 *     unsanitized — sanitizer instrumentation and single-core boxes
 *     distort relative timing, not correctness. BOREAS_PERF_GATE=strict
 *     forces it on; BOREAS_PERF_GATE=off forces it off.
 *
 * Leaves BENCH_gbt_throughput.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "boreas/trainer.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness.hh"
#include "ml/gbt_flat.hh"
#include "report.hh"
#include "workload/registry.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using namespace boreas::bench;

namespace
{

/** Rows of the throughput working set (the ISSUE's headline batch). */
constexpr size_t kRows = 4096;

/** Batch sizes swept for the throughput table. */
constexpr size_t kBatchSizes[] = {1, 64, 1024, 4096};

/** Required flat-vs-reference throughput ratio at batch kRows. */
constexpr double kRequiredSpeedup = 5.0;

double
nowNs()
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Is the speedup gate armed? (The equality gate always is.) */
bool
speedupGateArmed()
{
    if (const char *env = std::getenv("BOREAS_PERF_GATE")) {
        const std::string mode(env);
        boreas_assert(mode == "strict" || mode == "off",
                      "BOREAS_PERF_GATE must be strict|off, got '%s'",
                      mode.c_str());
        return mode == "strict";
    }
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return false; // instrumented build: timing is not representative
#else
    return std::thread::hardware_concurrency() >= 4;
#endif
}

/** Best-of-`reps` wall time of fn(), in seconds. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double t0 = nowNs();
        fn();
        const double s = (nowNs() - t0) * 1e-9;
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchArgs(argc, argv);
    requireNoWorkloadOverride(options, "gbt_throughput");

    BenchReport report("gbt_throughput");
    report.predictEngine("flat");

    // The micro_latency training recipe: the paper's deployed 223-tree
    // model on a reduced trajectory set (the model shape, not the
    // dataset size, is what the serving path's cost depends on).
    SimulationPipeline pipeline;
    TrainerConfig cfg;
    cfg.data.frequencies = {3.75, 4.25, 4.75};
    cfg.data.walkSegments = 1;
    cfg.gbt.nEstimators = 223;
    const std::vector<const WorkloadSpec *> train_set{
        &findWorkload("povray"), &findWorkload("gromacs"),
        &findWorkload("sjeng"), &findWorkload("mcf")};
    const TrainedBoreas trained = trainBoreas(pipeline, train_set, cfg);
    const GBTRegressor &model = trained.model;
    const FlatGBT flat(model);

    report.config("trees", static_cast<double>(model.numTrees()));
    report.config("features",
                  static_cast<double>(model.numFeatures()));
    report.config("flat_bytes", static_cast<double>(flat.flatBytes()));
    report.config("rows", static_cast<double>(kRows));

    // Working set: the deployed-feature training rows tiled to kRows,
    // packed row-major so batches are pointer arithmetic.
    const Dataset &data = trained.trainData;
    boreas_assert(data.numRows() > 0, "empty training dataset");
    const size_t nf = model.numFeatures();
    std::vector<double> rows(kRows * nf);
    for (size_t r = 0; r < kRows; ++r) {
        const double *src = data.row(r % data.numRows());
        std::memcpy(rows.data() + r * nf, src, nf * sizeof(double));
    }

    // Reference predictions once; the flat engine must reproduce them
    // bit for bit at every batch size.
    std::vector<double> ref(kRows);
    for (size_t r = 0; r < kRows; ++r)
        ref[r] = model.predict(rows.data() + r * nf);

    bool equal = true;
    TextTable table;
    table.setHeader({"batch", "flat preds/s", "reference preds/s",
                     "speedup"});
    double headline_speedup = 0.0;
    std::vector<double> out(kRows);
    for (const size_t batch : kBatchSizes) {
        // Equality sweep first: cover every row via back-to-back
        // batches of this size (bit-identical or the bench fails).
        std::fill(out.begin(), out.end(), 0.0);
        for (size_t lo = 0; lo < kRows; lo += batch) {
            const size_t n = std::min(batch, kRows - lo);
            flat.predictBatch(rows.data() + lo * nf, n,
                              out.data() + lo);
        }
        for (size_t r = 0; r < kRows; ++r) {
            if (std::memcmp(&out[r], &ref[r], sizeof(double)) != 0) {
                boreas_warn("flat[%zu] = %.17g != reference %.17g "
                            "(batch %zu)", r, out[r], ref[r], batch);
                equal = false;
            }
        }

        // Throughput: constant total work per measurement so small
        // batches are timed over many calls, not one noisy call.
        const int reps = 5;
        const double flat_s = bestSeconds(reps, [&] {
            for (size_t lo = 0; lo < kRows; lo += batch) {
                const size_t n = std::min(batch, kRows - lo);
                flat.predictBatch(rows.data() + lo * nf, n,
                                  out.data() + lo);
            }
        });
        const double ref_s = bestSeconds(reps, [&] {
            for (size_t r = 0; r < kRows; ++r) {
                out[r] = model.predict(rows.data() + r * nf);
            }
        });
        const double flat_rate = static_cast<double>(kRows) / flat_s;
        const double ref_rate = static_cast<double>(kRows) / ref_s;
        const double speedup = flat_rate / ref_rate;
        if (batch == kRows)
            headline_speedup = speedup;
        table.addRow({TextTable::num(static_cast<double>(batch), 0),
                      TextTable::num(flat_rate, 0),
                      TextTable::num(ref_rate, 0),
                      TextTable::num(speedup, 2)});
    }
    std::printf("=== GBT serving throughput (%zu trees) ===\n",
                model.numTrees());
    table.print(std::cout);
    report.addTable("throughput", table);

    // Per-prediction serving latency, one row at a time (the
    // controller's decision path): mean/p50/p99 over individual calls,
    // same schema as BENCH_micro_latency's latency series.
    constexpr size_t kLatencyCalls = 2000;
    std::vector<double> flat_ns(kLatencyCalls), ref_ns(kLatencyCalls);
    double sink = 0.0;
    for (size_t i = 0; i < kLatencyCalls; ++i) {
        const double *x = rows.data() + (i % kRows) * nf;
        const double t0 = nowNs();
        sink += flat.predictOne(x);
        flat_ns[i] = nowNs() - t0;
        const double t1 = nowNs();
        sink += model.predict(x);
        ref_ns[i] = nowNs() - t1;
    }
    boreas_assert(sink == sink, "latency probe produced NaN");
    const LatencySummary flat_lat = summarizeLatency(flat_ns);
    const LatencySummary ref_lat = summarizeLatency(ref_ns);
    report.latency("flat_predict_one", flat_lat);
    report.latency("reference_predict_one", ref_lat);

    TextTable lat_table;
    lat_table.setHeader(
        {"path", "mean ns", "p50 ns", "p99 ns"});
    lat_table.addRow({"flat", TextTable::num(flat_lat.meanNs, 1),
                      TextTable::num(flat_lat.p50Ns, 1),
                      TextTable::num(flat_lat.p99Ns, 1)});
    lat_table.addRow({"reference", TextTable::num(ref_lat.meanNs, 1),
                      TextTable::num(ref_lat.p50Ns, 1),
                      TextTable::num(ref_lat.p99Ns, 1)});
    std::printf("=== per-prediction latency ===\n");
    lat_table.print(std::cout);
    report.addTable("latency_single", lat_table);

    report.comparison("flat == reference (bit-identical)", "yes",
                      equal ? "yes" : "NO");
    report.comparison("speedup at batch 4096", ">= 5x",
                      TextTable::num(headline_speedup, 2) + "x");

    if (!equal) {
        boreas_warn("FAIL: flat engine diverged from the reference");
        return 1;
    }
    if (speedupGateArmed() && headline_speedup < kRequiredSpeedup) {
        boreas_warn("FAIL: speedup %.2fx at batch %zu is under the "
                    "required %.1fx", headline_speedup, kRows,
                    kRequiredSpeedup);
        return 1;
    }
    if (!speedupGateArmed()) {
        boreas_inform("speedup gate disarmed (sanitized build, < 4 "
                      "hardware threads, or BOREAS_PERF_GATE=off); "
                      "equality gate passed");
    }
    return 0;
}
