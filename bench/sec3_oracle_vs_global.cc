/**
 * @file
 * Reproduction of Secs. III-B/III-C: the oracle VF selection versus the
 * global VF limit.
 *
 * Paper numbers to reproduce: the global limit is 3.75 GHz; it is
 * optimal for only 2 of the 27 workloads; the majority of workloads run
 * ~13% below their oracle frequency; the worst-case reduction is ~26%
 * (we report both normalizations since the paper's two numbers mix
 * them: loss relative to the oracle and boost missed relative to the
 * limit).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "boreas/analysis.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("sec3_oracle_vs_global");
    SimulationPipeline pipeline;
    std::vector<const WorkloadSpec *> all;
    for (const auto &w : spec2006Suite())
        all.push_back(&w);

    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());
    std::fprintf(stderr, "[bench] sweeping for oracle selection...\n");
    const SeveritySweep sweep =
        wl_override
            ? severitySweep(pipeline, {wl_override.get()},
                            pipeline.vfTable().frequencies(), kBenchSeed)
            : severitySweep(pipeline, all,
                            pipeline.vfTable().frequencies(), kBenchSeed);
    const GHz global = sweep.globalLimit();

    TextTable table;
    table.setHeader({"workload", "oracle GHz", "loss vs oracle",
                     "missed boost"});
    int optimal_at_global = 0;
    std::vector<double> losses;
    std::vector<double> boosts;
    for (size_t wi = 0; wi < sweep.workloads.size(); ++wi) {
        const GHz oracle = sweep.oracleFrequency(wi);
        const double loss = 1.0 - global / oracle;
        const double boost = oracle / global - 1.0;
        losses.push_back(loss);
        boosts.push_back(boost);
        if (oracle == global)
            ++optimal_at_global;
        table.addRow({sweep.workloads[wi], TextTable::num(oracle, 2),
                      TextTable::num(loss * 100.0, 1) + "%",
                      TextTable::num(boost * 100.0, 1) + "%"});
    }
    std::printf("=== Sec. III-B/C: oracle vs global VF limit ===\n");
    table.print(std::cout);
    report.addTable("oracle_vs_global", table);

    std::printf("\n=== summary ===\n");
    std::printf("global VF limit                : %.2f GHz (paper: "
                "3.75)\n", global);
    std::printf("workloads optimal at the limit : %d of %zu (paper: "
                "2 of 27)\n", optimal_at_global,
                sweep.workloads.size());
    std::printf("median loss vs oracle          : %.1f%% (paper: "
                "~13%%)\n", percentile(losses, 50.0) * 100.0);
    std::printf("worst loss vs oracle           : %.1f%% / missed "
                "boost %.1f%% (paper: 26%%)\n",
                *std::max_element(losses.begin(), losses.end()) * 100.0,
                *std::max_element(boosts.begin(), boosts.end()) *
                    100.0);
    report.comparison("global VF limit [GHz]", "3.75",
                      TextTable::num(global, 2));
    report.comparison("workloads optimal at the limit", "2 of 27",
                      std::to_string(optimal_at_global) + " of " +
                          std::to_string(sweep.workloads.size()));
    report.comparison("median loss vs oracle [%]", "~13",
                      TextTable::num(percentile(losses, 50.0) * 100.0,
                                     1));
    report.comparison(
        "worst loss vs oracle [%]", "26",
        TextTable::num(
            *std::max_element(losses.begin(), losses.end()) * 100.0,
            1));
    return 0;
}
