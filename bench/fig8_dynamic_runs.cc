/**
 * @file
 * Reproduction of Fig. 8: dynamic runs of all seven unseen (test)
 * workloads for 150 timesteps (12 ms) under TH-00 and Boreas (ML05).
 *
 * Paper shape to reproduce: Boreas holds frequencies at or one-two
 * steps above the thermal model on every test workload except hmmer,
 * while severity stays below 1.0 throughout.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

using namespace boreas;
using namespace boreas::bench;

int
main()
{
    auto ctx = buildExperimentContext();
    auto th00 = ctx->thController(0.0);
    auto ml05 = ctx->mlController(0.05);

    for (const WorkloadSpec *w : testWorkloads()) {
        const RunResult th_run = ctx->pipeline.runWithController(
            *w, kBenchSeed, *th00, kBaselineFrequency);
        const RunResult ml_run = ctx->pipeline.runWithController(
            *w, kBenchSeed, *ml05, kBaselineFrequency);

        std::printf("=== Fig. 8: %s ===\n", w->name.c_str());
        TextTable series;
        series.setHeader({"ms", "TH-00 GHz", "TH-00 sev", "ML05 GHz",
                          "ML05 sev"});
        for (int s = 0; s < kTraceSteps; s += 6) {
            series.addRow({
                TextTable::num(s * kTelemetryStep * 1e3, 2),
                TextTable::num(th_run.steps[s].frequency, 2),
                TextTable::num(th_run.steps[s].severity.maxSeverity,
                               3),
                TextTable::num(ml_run.steps[s].frequency, 2),
                TextTable::num(ml_run.steps[s].severity.maxSeverity,
                               3),
            });
        }
        series.print(std::cout);
        std::printf("summary: TH-00 avg %.3f GHz (peak sev %.3f, "
                    "%d incursions) | ML05 avg %.3f GHz (peak sev "
                    "%.3f, %d incursions)\n\n",
                    th_run.averageFrequency(), th_run.peakSeverity(),
                    th_run.incursionSteps(), ml_run.averageFrequency(),
                    ml_run.peakSeverity(), ml_run.incursionSteps());
    }
    return 0;
}
