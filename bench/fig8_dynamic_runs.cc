/**
 * @file
 * Reproduction of Fig. 8: dynamic runs of all seven unseen (test)
 * workloads for 150 timesteps (12 ms) under TH-00 and Boreas (ML05).
 *
 * Paper shape to reproduce: Boreas holds frequencies at or one-two
 * steps above the thermal model on every test workload except hmmer,
 * while severity stays below 1.0 throughout.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("fig8_dynamic_runs");
    auto ctx = buildExperimentContext();
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());

    // All (workload, controller) runs are independent: execute the
    // whole batch on the pool, then print in the fixed task order.
    const std::vector<const WorkloadSpec *> workloads = testWorkloads();
    std::vector<std::string> names;
    if (wl_override)
        names.push_back(wl_override->name());
    else
        for (const WorkloadSpec *w : workloads)
            names.push_back(w->name);
    std::vector<RunTask> tasks;
    for (size_t wi = 0; wi < names.size(); ++wi) {
        const WorkloadSpec *w = wl_override ? nullptr : workloads[wi];
        RunTask th_task{w, [&ctx] { return ctx->thController(0.0); },
                        kBenchSeed, kBaselineFrequency};
        th_task.source = wl_override.get();
        tasks.push_back(std::move(th_task));
        RunTask ml_task{w, [&ctx] { return ctx->mlController(0.05); },
                        kBenchSeed, kBaselineFrequency};
        ml_task.source = wl_override.get();
        tasks.push_back(std::move(ml_task));
    }
    const std::vector<RunResult> runs =
        runAll(ctx->pipeline.config(), tasks);

    for (size_t wi = 0; wi < names.size(); ++wi) {
        const std::string &name = names[wi];
        const RunResult &th_run = runs[2 * wi];
        const RunResult &ml_run = runs[2 * wi + 1];

        std::printf("=== Fig. 8: %s ===\n", name.c_str());
        TextTable series;
        series.setHeader({"ms", "TH-00 GHz", "TH-00 sev", "ML05 GHz",
                          "ML05 sev"});
        for (int s = 0; s < kTraceSteps; s += 6) {
            series.addRow({
                TextTable::num(s * kTelemetryStep * 1e3, 2),
                TextTable::num(th_run.steps[s].frequency, 2),
                TextTable::num(th_run.steps[s].severity.maxSeverity,
                               3),
                TextTable::num(ml_run.steps[s].frequency, 2),
                TextTable::num(ml_run.steps[s].severity.maxSeverity,
                               3),
            });
        }
        series.print(std::cout);
        report.addTable("fig8_" + name, series);
        report.comparison(name + " ML05 incursion steps", "0",
                          std::to_string(ml_run.incursionSteps()));
        std::printf("summary: TH-00 avg %.3f GHz (peak sev %.3f, "
                    "%d incursions) | ML05 avg %.3f GHz (peak sev "
                    "%.3f, %d incursions)\n\n",
                    th_run.averageFrequency(), th_run.peakSeverity(),
                    th_run.incursionSteps(), ml_run.averageFrequency(),
                    ml_run.peakSeverity(), ml_run.incursionSteps());
    }
    return 0;
}
