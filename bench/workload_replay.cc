/**
 * @file
 * End-to-end exercise of the workload-source subsystem: a co-scheduled
 * NAS mix and an adversarial scenario run through the fig7-style
 * controller harness, then through the boreas-trace-v1 record/replay
 * path, reporting replay fidelity (runHash equality) and record/replay
 * throughput in steps per second to BENCH_workload_replay.json.
 *
 * Checks enforced (nonzero exit on violation):
 *   - every recorded source replays with a bit-identical runHash;
 *   - the decoded trace round-trips through encode with the same
 *     payload checksum.
 *
 * `--workload <source-spec>` replaces the built-in scenario pair with
 * a single caller-chosen source.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness.hh"
#include "report.hh"
#include "workload/registry.hh"
#include "workload/trace_io.hh"

using namespace boreas;
using namespace boreas::bench;
using Clock = std::chrono::steady_clock;

namespace
{

/** The built-in scenario pair: a 4-core co-scheduled NAS mix and a
 *  core-hopping adversarial hotspot. */
const char *const kDefaultScenarios[] = {
    "mix:bt.B+is.D+ep.B+cg.B@stagger=0.8e-3",
    "adversarial:corehop",
};

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Record/replay fidelity and throughput for one source. */
struct ReplayResult
{
    std::string name;
    uint64_t checksum = 0;
    uint64_t liveHash = 0;
    uint64_t replayHash = 0;
    double liveStepsPerSec = 0.0;
    double replayStepsPerSec = 0.0;

    bool
    identical() const
    {
        return liveHash == replayHash;
    }
};

/** Run the record -> encode/decode -> replay chain for one source. */
ReplayResult
recordAndReplay(const PipelineConfig &config, const WorkloadSource &src)
{
    ReplayResult out;
    out.name = src.name();

    // Record a live constant-frequency run at the baseline.
    SimulationPipeline pipeline(config);
    TraceRecorder recorder;
    pipeline.setTraceRecorder(&recorder);
    const auto live = src.clone();
    const Clock::time_point t0 = Clock::now();
    pipeline.runConstantFrequency(*live, kBenchSeed,
                                  kBaselineFrequency);
    const Clock::time_point t1 = Clock::now();
    pipeline.setTraceRecorder(nullptr);
    out.liveHash = pipeline.runHash();
    out.liveStepsPerSec = kTraceSteps / seconds(t0, t1);

    // Round-trip through the on-disk byte format, then replay.
    TraceData data = recorder.takeData();
    const std::vector<uint8_t> bytes = encodeTrace(data);
    TraceData decoded;
    std::string error;
    if (!decodeTrace(bytes, &decoded, &error))
        boreas_fatal("trace round-trip failed: %s", error.c_str());
    out.checksum = decoded.payloadChecksum;

    TraceSource replay(std::move(decoded));
    SimulationPipeline replay_pipeline(config);
    const Clock::time_point t2 = Clock::now();
    replay_pipeline.runConstantFrequency(replay, replay.recordedSeed(),
                                         kBaselineFrequency);
    const Clock::time_point t3 = Clock::now();
    out.replayHash = replay_pipeline.runHash();
    out.replayStepsPerSec = kTraceSteps / seconds(t2, t3);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("workload_replay");

    std::vector<std::unique_ptr<WorkloadSource>> sources;
    if (opts.hasWorkload()) {
        sources.push_back(opts.makeSource());
        report.workloadSource(sources.back()->name());
    } else {
        for (const char *spec : kDefaultScenarios)
            sources.push_back(makeWorkloadSource(spec));
    }

    // --- fig7-style closed-loop evaluation of every scenario. ---
    auto ctx = buildExperimentContext();
    std::vector<ControllerFactory> models{
        [] {
            return std::make_unique<FixedFrequencyController>(
                "baseline-3.75", kBaselineFrequency);
        },
        [&ctx] { return ctx->thController(0.0); },
        [&ctx] { return ctx->mlController(0.05); },
    };
    std::vector<const WorkloadSource *> source_ptrs;
    for (const auto &s : sources)
        source_ptrs.push_back(s.get());
    const auto grid =
        evaluateGrid(ctx->pipeline.config(), source_ptrs, models);

    std::printf("=== scenario evaluation (fig7-style controller grid) "
                "===\n");
    TextTable eval_table;
    eval_table.setHeader({"scenario", "model", "avg GHz", "vs 3.75",
                          "peak sev", "incursions"});
    for (const auto &rows : grid) {
        for (const EvalRow &row : rows) {
            eval_table.addRow({row.workload, row.controller,
                               TextTable::num(row.avgFreq, 3),
                               TextTable::num(row.normalized, 4),
                               TextTable::num(row.peakSeverity, 3),
                               std::to_string(row.incursions)});
        }
    }
    eval_table.print(std::cout);
    report.addTable("scenario_eval", eval_table);

    // --- record/replay fidelity and throughput. ---
    std::printf("\n=== boreas-trace-v1 record/replay ===\n");
    TextTable replay_table;
    replay_table.setHeader({"scenario", "checksum", "bit-identical",
                            "live steps/s", "replay steps/s"});
    bool all_identical = true;
    for (const auto &s : sources) {
        const ReplayResult r =
            recordAndReplay(ctx->pipeline.config(), *s);
        all_identical = all_identical && r.identical();
        replay_table.addRow(
            {r.name, strfmt("%016llx",
                            static_cast<unsigned long long>(r.checksum)),
             r.identical() ? "yes" : "NO",
             TextTable::num(r.liveStepsPerSec, 0),
             TextTable::num(r.replayStepsPerSec, 0)});
        report.config("replay_steps_per_sec." + r.name,
                      r.replayStepsPerSec);
        report.traceChecksum(r.checksum);
        if (!r.identical()) {
            std::fprintf(stderr,
                         "FAIL: %s replay hash %016llx != live %016llx\n",
                         r.name.c_str(),
                         static_cast<unsigned long long>(r.replayHash),
                         static_cast<unsigned long long>(r.liveHash));
        }
    }
    replay_table.print(std::cout);
    report.addTable("record_replay", replay_table);
    report.comparison("replay bit-identical to live run", "yes",
                      all_identical ? "yes" : "NO");
    report.runHash(ctx->pipeline.runHash());

    std::printf("\nreplay restores the recorded per-core Rng snapshots "
                "each step, so the closed-loop trajectory is a pure "
                "function of the trace bytes\n");
    return all_identical ? 0 : 1;
}
