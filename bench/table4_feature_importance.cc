/**
 * @file
 * Reproduction of Table IV and the Sec. IV-B feature-selection study:
 * train on all 78 attributes, rank by normalized gain, and verify that
 * the top-20 subset loses no regression accuracy.
 *
 * Paper shape to reproduce: temperature_sensor_data dominates the gain
 * ranking; the top 20 features carry ~99% of total normalized gain; a
 * model trained on the top 20 matches the full model's accuracy;
 * frequency is not among the strongest raw-gain features (its effect is
 * carried by frequency-correlated counters).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "boreas/trainer.hh"
#include "common/table.hh"
#include "harness.hh"
#include "ml/feature_schema.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("table4_feature_importance");
    auto ctx = buildExperimentContext();
    // --workload swaps the held-out MSE stimulus; the gain ranking is a
    // property of the trained model and does not change.
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());

    const auto gains = ctx->trained.fullModel.featureImportance();
    const auto &schema = fullFeatureSchema();
    std::vector<size_t> order(gains.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return gains[a] > gains[b]; });

    std::printf("=== Table IV: top-20 attributes by normalized gain "
                "===\n");
    TextTable table;
    table.setHeader({"rank", "attribute", "gain", "in paper top-20"});
    const auto &paper20 = paperTop20Features();
    double top20_gain = 0.0;
    for (size_t i = 0; i < 20 && i < order.size(); ++i) {
        const std::string &name = schema[order[i]];
        const bool in_paper =
            std::find(paper20.begin(), paper20.end(), name) !=
            paper20.end();
        top20_gain += gains[order[i]];
        table.addRow({std::to_string(i + 1), name,
                      TextTable::num(gains[order[i]] * 100.0, 2) + "%",
                      in_paper ? "yes" : "no"});
    }
    table.print(std::cout);
    report.addTable("table4_top20", table);

    std::printf("\n=== Sec. IV-B checks ===\n");
    std::printf("temperature_sensor_data gain : %.1f%% (paper: "
                "78.1%%)\n", gains[kTempFeatureIndex] * 100.0);
    std::printf("temperature rank             : %zu of %zu (paper: "
                "1st)\n",
                static_cast<size_t>(
                    std::find(order.begin(), order.end(),
                              kTempFeatureIndex) - order.begin()) + 1,
                order.size());
    std::printf("top-20 share of total gain   : %.1f%% (paper: "
                "~99%%)\n", top20_gain * 100.0);

    // No-loss check: measured top-20(+frequency action input) vs the
    // full 78-attribute model, both evaluated on held-out workloads.
    DatasetConfig eval_cfg = datasetConfigFor(benchScale());
    eval_cfg.intensityAugments = {1.0};
    eval_cfg.walkSegments = 2;
    const BuiltData eval =
        wl_override
            ? buildTrainingData(
                  ctx->pipeline,
                  std::vector<const WorkloadSource *>{
                      wl_override.get()},
                  eval_cfg)
            : buildTrainingData(ctx->pipeline, testWorkloads(),
                                eval_cfg);
    const double full_mse = ctx->trained.fullModel.mse(
        eval.severity);
    const double deployed_mse = evaluateMse(
        ctx->trained.model, ctx->trained.featureNames, eval.severity);
    std::printf("test MSE, full 78 features   : %.5f\n", full_mse);
    std::printf("test MSE, deployed top-20    : %.5f (paper: no loss "
                "vs full; reported 0.0094)\n", deployed_mse);
    report.comparison("temperature_sensor_data gain", "78.1%",
                      TextTable::num(gains[kTempFeatureIndex] * 100.0,
                                     1) + "%");
    report.comparison("top-20 share of total gain", "~99%",
                      TextTable::num(top20_gain * 100.0, 1) + "%");
    report.comparison("test MSE, deployed top-20", "0.0094",
                      TextTable::num(deployed_mse, 5));
    report.comparison("test MSE, full 78 features", "no loss vs top-20",
                      TextTable::num(full_mse, 5));
    return 0;
}
