/**
 * @file
 * Reproduction of Fig. 2: the peak Hotspot-Severity of each of the 27
 * workloads over the 2.0-5.0 GHz frequency range.
 *
 * Paper shape to reproduce: severity grows with frequency for every
 * workload; no workload is safe at 5.0 GHz; every workload is safe at
 * 3.75 GHz; the workloads' highest-safe frequencies span 3.75-4.75 GHz.
 * Cells with severity >= 1.0 are marked '#' (the paper's black cells);
 * values <= 0.5 print as '.' (the paper's white cells).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "boreas/analysis.hh"
#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("fig2_severity_sweep");
    SimulationPipeline pipeline;
    const auto &suite = spec2006Suite();
    std::vector<const WorkloadSpec *> all;
    for (const auto &w : suite)
        all.push_back(&w);

    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    std::fprintf(stderr, "[bench] sweeping %s x 13 frequencies...\n",
                 wl_override ? wl_override->name().c_str()
                             : "27 workloads");
    if (wl_override)
        report.workloadSource(wl_override->name());
    const SeveritySweep sweep =
        wl_override
            ? severitySweep(pipeline, {wl_override.get()},
                            pipeline.vfTable().frequencies(), kBenchSeed)
            : severitySweep(pipeline, all,
                            pipeline.vfTable().frequencies(), kBenchSeed);

    // Sort rows by peak severity at the top frequency (the paper sorts
    // workloads by their peak severity).
    std::vector<size_t> order(sweep.workloads.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return sweep.peak[a].back() > sweep.peak[b].back();
    });

    std::printf("=== Fig. 2: peak Hotspot-Severity per (workload, "
                "frequency) ===\n");
    TextTable table;
    std::vector<std::string> header{"workload"};
    for (GHz f : sweep.freqs)
        header.push_back(TextTable::num(f, 2));
    header.push_back("oracle");
    table.setHeader(header);
    for (size_t wi : order) {
        std::vector<std::string> row{sweep.workloads[wi]};
        for (size_t fi = 0; fi < sweep.freqs.size(); ++fi) {
            const double sev = sweep.peak[wi][fi];
            if (sev >= 1.0)
                row.push_back("#" + TextTable::num(sev, 2));
            else if (sev <= 0.5)
                row.push_back(".");
            else
                row.push_back(TextTable::num(sev, 2));
        }
        row.push_back(TextTable::num(sweep.oracleFrequency(wi), 2));
        table.addRow(row);
    }
    table.print(std::cout);
    report.addTable("fig2_severity_grid", table);

    // Shape checks against the paper.
    int safe_at_5 = 0, unsafe_at_baseline = 0;
    for (size_t wi = 0; wi < sweep.workloads.size(); ++wi) {
        if (sweep.peak[wi].back() < 1.0)
            ++safe_at_5;
        if (sweep.peak[wi][sweep.freqs.size() - 6] >= 1.0) // 3.75 GHz
            ++unsafe_at_baseline;
    }
    std::printf("\n=== shape checks ===\n");
    std::printf("workloads safe at 5.00 GHz : %d (paper: 0)\n",
                safe_at_5);
    std::printf("workloads unsafe at 3.75 GHz: %d (paper: 0)\n",
                unsafe_at_baseline);
    std::printf("globally safe VF limit      : %.2f GHz (paper: "
                "3.75 GHz)\n", sweep.globalLimit());
    report.comparison("workloads safe at 5.00 GHz", "0",
                      std::to_string(safe_at_5));
    report.comparison("workloads unsafe at 3.75 GHz", "0",
                      std::to_string(unsafe_at_baseline));
    report.comparison("globally safe VF limit [GHz]", "3.75",
                      TextTable::num(sweep.globalLimit(), 2));
    return 0;
}
