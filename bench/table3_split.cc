/**
 * @file
 * Reproduction of Tables II and III: the Boreas model configuration and
 * the train/test workload split.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "ml/gbt.hh"
#include "report.hh"
#include "workload/spec2006.hh"

using namespace boreas;

int
main(int argc, char **argv)
{
    bench::requireNoWorkloadOverride(
        bench::parseBenchArgs(argc, argv), "table3_split");
    bench::BenchReport report("table3_split");
    std::printf("=== Table II: Boreas model parameters ===\n");
    const GBTParams params; // defaults are the paper's configuration
    std::printf("Hyperparameters: alpha=%.1f, gamma=%g, max_depth=%d, "
                "n_estimators=%d\n", params.learningRate, params.gamma,
                params.maxDepth, params.nEstimators);
    std::printf("Features: temperature sensor data alongside "
                "microarchitectural attributes (Table IV)\n");
    std::printf("Dataset: instances extracted from the SPEC2006 "
                "workloads below, every 80 us\n");

    std::printf("\n=== Table III: train/test sets ===\n");
    TextTable table;
    table.setHeader({"set", "workload", "design-safe GHz"});
    for (const auto *w : trainWorkloads())
        table.addRow({"train", w->name,
                      TextTable::num(designOracleFrequency(w->name), 2)});
    for (const auto *w : testWorkloads())
        table.addRow({"test", w->name,
                      TextTable::num(designOracleFrequency(w->name), 2)});
    table.print(std::cout);
    report.addTable("table3_split", table);

    std::printf("\ntrain workloads: %zu (paper: 20)\n",
                trainWorkloads().size());
    std::printf("test workloads:  %zu (paper: 7)\n",
                testWorkloads().size());
    report.config("gbt.learning_rate", params.learningRate);
    report.config("gbt.gamma", params.gamma);
    report.config("gbt.max_depth", double(params.maxDepth));
    report.config("gbt.n_estimators", double(params.nEstimators));
    report.comparison("train workloads", "20",
                      std::to_string(trainWorkloads().size()));
    report.comparison("test workloads", "7",
                      std::to_string(testWorkloads().size()));
    return 0;
}
