/**
 * @file
 * Reproduction of Fig. 4: frequency vs. max severity for gromacs and
 * gamess under the thermal models TH-00 / TH-05 / TH-10.
 *
 * Paper shape to reproduce: TH-00 is safe for both workloads; relaxing
 * the global threshold (+5 C, +10 C) lets the controller chase higher
 * frequencies, which stays safe for steady gamess but causes hotspot
 * incursions on bursty gromacs.
 */

#include <cstdio>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("fig4_thermal_guardbands");
    SimulationPipeline pipeline;
    const CriticalTempTable table = buildThTable(pipeline);

    // Fan the workloads x 3 relaxations out over the pool. Default is
    // the paper's bursty/steady pair; --workload swaps in one source.
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());
    std::vector<std::string> names;
    if (wl_override)
        names.push_back(wl_override->name());
    else
        names = {"gromacs", "gamess"};
    const std::vector<Celsius> offsets{0.0, 5.0, 10.0};
    std::vector<RunTask> tasks;
    for (const std::string &name : names) {
        for (Celsius offset : offsets) {
            RunTask task{
                wl_override ? nullptr : &findWorkload(name),
                [&table, offset] {
                    return std::make_unique<ThermalThresholdController>(
                        strfmt("TH-%02d", static_cast<int>(offset)),
                        table, offset, kBestSensorIndex);
                },
                kBenchSeed, kBaselineFrequency};
            task.source = wl_override.get();
            tasks.push_back(std::move(task));
        }
    }
    const std::vector<RunResult> all = runAll(pipeline.config(), tasks);

    for (size_t wi = 0; wi < names.size(); ++wi) {
        const char *name = names[wi].c_str();
        std::printf("=== Fig. 4%s: %s ===\n",
                    std::string(name) == "gamess" ? "b" : "a", name);

        TextTable series;
        series.setHeader({"ms", "TH-00 GHz", "TH-00 sev", "TH-05 GHz",
                          "TH-05 sev", "TH-10 GHz", "TH-10 sev"});
        const std::vector<RunResult> runs(
            all.begin() + wi * offsets.size(),
            all.begin() + (wi + 1) * offsets.size());
        for (int s = 0; s < kTraceSteps; s += 6) {
            std::vector<std::string> row{
                TextTable::num(s * kTelemetryStep * 1e3, 2)};
            for (const auto &run : runs) {
                row.push_back(
                    TextTable::num(run.steps[s].frequency, 2));
                row.push_back(TextTable::num(
                    run.steps[s].severity.maxSeverity, 3));
            }
            series.addRow(row);
        }
        series.print(std::cout);
        report.addTable(std::string("fig4_trace_") + name, series);

        TextTable summary;
        summary.setHeader({"model", "avg GHz", "peak sev",
                           "incursion steps"});
        const char *names[] = {"TH-00", "TH-05", "TH-10"};
        for (size_t i = 0; i < runs.size(); ++i) {
            summary.addRow({names[i],
                            TextTable::num(runs[i].averageFrequency(),
                                           3),
                            TextTable::num(runs[i].peakSeverity(), 3),
                            std::to_string(runs[i].incursionSteps())});
        }
        std::printf("\n");
        summary.print(std::cout);
        std::printf("\n");
        report.addTable(std::string("fig4_summary_") + name, summary);
        report.comparison(
            std::string(name) + " TH-10 incursion steps",
            std::string(name) == std::string("gromacs") ? ">0" : "0",
            std::to_string(runs[2].incursionSteps()));
    }
    std::printf("paper shape: TH-00 safe on both; TH-05/TH-10 cause "
                "incursions on gromacs but not gamess\n");
    return 0;
}
