/**
 * @file
 * Reproduction of Sec. III-D: application-specific critical temperatures
 * and their sensitivity to sensor location and sensor delay.
 *
 * Paper shape to reproduce:
 *   - critical temperatures vary by >= 13 C across the top-4 sensor
 *     locations for every workload at some frequency, ~half varying by
 *     over 20 C (location study);
 *   - a longer sensor delay lowers observed critical temperatures;
 *     bursty gromacs loses safe frequencies under a 960 us delay while
 *     steady sjeng ("sing") barely cares (delay study);
 *   - under a 960 us delay the global critical-temperature table caps
 *     the attainable frequency for everything (the paper's libquantum
 *     effect).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "boreas/analysis.hh"
#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

namespace
{

std::string
fmtCrit(Celsius c)
{
    if (c == kNoCriticalTemp)
        return "-";
    return TextTable::num(c, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("sec3_critical_temps");
    std::vector<const WorkloadSpec *> all;
    for (const auto &w : spec2006Suite())
        all.push_back(&w);
    const std::vector<GHz> freqs{4.0, 4.25, 4.5, 4.75, 5.0};
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());
    const std::vector<const WorkloadSource *> override_set =
        wl_override ? std::vector<const WorkloadSource *>{
                          wl_override.get()}
                    : std::vector<const WorkloadSource *>{};

    // ---- location study: critical temps on the top-4 core sensors.
    std::fprintf(stderr, "[bench] location study (4 sensors)...\n");
    SimulationPipeline pipeline;
    std::vector<CriticalTempStudy> by_sensor;
    for (int sensor = 0; sensor < 4; ++sensor) {
        by_sensor.push_back(
            wl_override ? criticalTempStudy(pipeline, override_set,
                                            freqs, sensor, kBenchSeed)
                        : criticalTempStudy(pipeline, all, freqs,
                                            sensor, kBenchSeed));
    }

    const size_t num_workloads = by_sensor[0].workloads.size();
    int vary13 = 0, vary20 = 0;
    double peak_var = 0.0;
    for (size_t wi = 0; wi < num_workloads; ++wi) {
        double worst = 0.0;
        for (size_t fi = 0; fi < freqs.size(); ++fi) {
            Celsius lo = kNoCriticalTemp, hi = -kNoCriticalTemp;
            bool complete = true;
            for (int s = 0; s < 4; ++s) {
                const Celsius c = by_sensor[s].crit[wi][fi];
                if (c == kNoCriticalTemp) {
                    complete = false;
                    break;
                }
                lo = std::min(lo, c);
                hi = std::max(hi, c);
            }
            if (complete)
                worst = std::max(worst, hi - lo);
        }
        if (worst >= 13.0)
            ++vary13;
        if (worst > 20.0)
            ++vary20;
        peak_var = std::max(peak_var, worst);
    }
    std::printf("=== sensor-location sensitivity ===\n");
    std::printf("workloads with >=13 C spread across sensors 0-3: %d "
                "of 27 (paper: all)\n", vary13);
    std::printf("workloads with > 20 C spread: %d of 27 (paper: 13)\n",
                vary20);
    std::printf("peak spread: %.1f C (paper: >37 C)\n", peak_var);
    report.comparison("workloads with >=13 C sensor spread", "27 of 27",
                      std::to_string(vary13) + " of " +
                          std::to_string(num_workloads));
    report.comparison("workloads with >20 C sensor spread", "13 of 27",
                      std::to_string(vary20) + " of " +
                          std::to_string(num_workloads));
    report.comparison("peak spread [C]", ">37",
                      TextTable::num(peak_var, 1));

    // ---- delay study on the best sensor (tsens03).
    std::fprintf(stderr, "[bench] delay study...\n");
    const std::vector<int> delays{0, 2, 12}; // 0 / 160 us / 960 us
    TextTable delay_table;
    delay_table.setHeader({"workload", "GHz", "crit@0us", "crit@160us",
                           "crit@960us"});
    std::vector<CriticalTempStudy> by_delay;
    for (int d : delays) {
        PipelineConfig cfg;
        cfg.sensors.delaySteps = d;
        SimulationPipeline p(cfg);
        by_delay.push_back(
            wl_override ? criticalTempStudy(p, override_set, freqs,
                                            kBestSensorIndex,
                                            kBenchSeed)
                        : criticalTempStudy(p, all, freqs,
                                            kBestSensorIndex,
                                            kBenchSeed));
    }
    const std::vector<std::string> delay_names =
        wl_override
            ? std::vector<std::string>{wl_override->name()}
            : std::vector<std::string>{"gromacs", "sjeng",
                                       "libquantum"};
    for (const std::string &name : delay_names) {
        for (size_t fi = 0; fi < freqs.size(); ++fi) {
            size_t wi = 0;
            for (; wi < by_delay[0].workloads.size(); ++wi)
                if (by_delay[0].workloads[wi] == name)
                    break;
            delay_table.addRow({name, TextTable::num(freqs[fi], 2),
                                fmtCrit(by_delay[0].crit[wi][fi]),
                                fmtCrit(by_delay[1].crit[wi][fi]),
                                fmtCrit(by_delay[2].crit[wi][fi])});
        }
    }
    std::printf("\n=== delay sensitivity (critical temp on tsens03; "
                "'-' = never unsafe) ===\n");
    delay_table.print(std::cout);
    report.addTable("delay_sensitivity", delay_table);

    // ---- the global table under a 960 us delay (Sec. III-D.2).
    const CriticalTempTable table = by_delay[2].globalTable();
    std::printf("\n=== global critical temperatures (960 us delay) "
                "===\n");
    TextTable global_table;
    global_table.setHeader({"GHz", "global critical temp"});
    for (size_t fi = 0; fi < freqs.size(); ++fi) {
        global_table.addRow({TextTable::num(freqs[fi], 2),
                             fmtCrit(table.criticalTemp[fi])});
    }
    global_table.print(std::cout);
    report.addTable("global_crit_960us", global_table);
    std::printf("(the paper's libquantum effect: low global criticals "
                "at high frequency cap every workload)\n");
    return 0;
}
