/**
 * @file
 * Reproduction of Fig. 5: temperature traces from the 7 sensor sites
 * versus the true Hotspot-Severity, plus the k-means placement
 * methodology (Sec. III-A).
 *
 * Paper shape to reproduce: three of the seven sensors (tsens04-06)
 * only see the die slowly warming; the other four track the action with
 * up to ~20 C spread between them; even the best sensor (tsens03, near
 * the ALUs) reads well below the critical region while severity exceeds
 * 1.0 — temperature alone understates hotspot danger.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "report.hh"
#include "sensors/placement.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("fig5_sensor_placement");
    PipelineConfig cfg;
    cfg.sensors.delaySteps = 0; // Fig. 5 shows site temperatures
    SimulationPipeline pipeline(cfg);

    // A hot, bursty workload pushed past its safe point. --workload
    // substitutes any registered source as the traced stimulus (the
    // k-means placement demo below keeps its fixed program set).
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());
    const RunResult run =
        wl_override
            ? pipeline.runConstantFrequency(*wl_override, kBenchSeed,
                                            4.5)
            : pipeline.runConstantFrequency(findWorkload("povray"),
                                            kBenchSeed, 4.5);

    std::printf("=== Fig. 5: sensor readings vs severity (%s @ "
                "4.5 GHz) ===\n",
                wl_override ? wl_override->name().c_str() : "povray");
    TextTable series;
    series.setHeader({"ms", "ts00", "ts01", "ts02", "ts03", "ts04",
                      "ts05", "ts06", "maxSev"});
    for (int s = 0; s < kTraceSteps; s += 6) {
        std::vector<std::string> row{
            TextTable::num(s * kTelemetryStep * 1e3, 2)};
        for (int t = 0; t < 7; ++t)
            row.push_back(
                TextTable::num(run.steps[s].sensorTrue[t], 1));
        row.push_back(
            TextTable::num(run.steps[s].severity.maxSeverity, 3));
        series.addRow(row);
    }
    series.print(std::cout);
    report.addTable("fig5_sensor_traces", series);

    // Shape metrics.
    double spread_core = 0.0;    // max spread among tsens00-03
    double swing_far = 0.0;      // total swing of tsens04-06
    double swing_near = 0.0;     // total swing of tsens00-03
    Celsius best_at_incursion = 200.0;
    for (const auto &rec : run.steps) {
        Celsius lo = 1e9, hi = -1e9;
        for (int t = 0; t < 4; ++t) {
            lo = std::min(lo, rec.sensorTrue[t]);
            hi = std::max(hi, rec.sensorTrue[t]);
        }
        spread_core = std::max(spread_core, hi - lo);
        if (rec.severity.maxSeverity >= 1.0) {
            best_at_incursion = std::min(
                best_at_incursion,
                rec.sensorTrue[kBestSensorIndex]);
        }
    }
    auto swing = [&](int t) {
        Celsius lo = 1e9, hi = -1e9;
        for (const auto &rec : run.steps) {
            lo = std::min(lo, rec.sensorTrue[t]);
            hi = std::max(hi, rec.sensorTrue[t]);
        }
        return hi - lo;
    };
    for (int t = 0; t < 4; ++t)
        swing_near = std::max(swing_near, swing(t));
    for (int t = 4; t < 7; ++t)
        swing_far = std::max(swing_far, swing(t));

    std::printf("\n=== shape checks ===\n");
    std::printf("max spread across core sensors ts00-03: %.1f C "
                "(paper: up to ~20 C)\n", spread_core);
    std::printf("max swing, core sensors ts00-03  : %.1f C (track "
                "the action)\n", swing_near);
    std::printf("max swing, far sensors ts04-06   : %.1f C (only "
                "gradual warming)\n", swing_far);
    std::printf("tsens03 reading during severity>=1: as low as %.1f C "
                "(paper: <90-100 C while severity > 1)\n",
                best_at_incursion);
    report.comparison("max spread across core sensors [C]", "~20",
                      TextTable::num(spread_core, 1));
    report.comparison("tsens03 reading during severity>=1 [C]",
                      "<90-100", TextTable::num(best_at_incursion, 1));

    // K-means placement demo (Sec. III-A): cluster the per-step peak
    // severity locations of several hot runs.
    std::vector<Point> hotspot_sites;
    for (const char *name : {"povray", "namd", "gromacs", "hmmer"}) {
        const RunResult r = pipeline.runConstantFrequency(
            findWorkload(name), kBenchSeed, 4.75);
        for (const auto &rec : r.steps) {
            if (rec.severity.maxSeverity > 0.9) {
                hotspot_sites.push_back(pipeline.thermalGrid()
                                            .cellCenter(
                                                rec.severity.argmaxCell));
            }
        }
    }
    Rng rng(kBenchSeed);
    const auto centers = kmeansPlacement(hotspot_sites, 7, rng);
    std::printf("\n=== k-means sensor placement (7 clusters of %zu "
                "observed hotspot sites) ===\n", hotspot_sites.size());
    TextTable placement;
    placement.setHeader({"cluster", "x [mm]", "y [mm]",
                         "nearest unit"});
    for (size_t c = 0; c < centers.size(); ++c) {
        // Report the floorplan unit containing the center.
        std::string unit = "-";
        for (const auto &u : pipeline.floorplan().units()) {
            if (u.rect.contains(centers[c])) {
                unit = u.name;
                break;
            }
        }
        placement.addRow({std::to_string(c),
                          TextTable::num(centers[c].x * 1e3, 2),
                          TextTable::num(centers[c].y * 1e3, 2), unit});
    }
    placement.print(std::cout);
    report.addTable("kmeans_placement", placement);
    report.runHash(pipeline.runHash());
    std::printf("(hotspots cluster in the active core's execution "
                "region, motivating tsens03's placement)\n");
    return 0;
}
