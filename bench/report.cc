#include "report.hh"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "harness.hh"
#include "obs/trace.hh"

namespace boreas::bench
{

namespace
{

const char *
scaleName(Scale scale)
{
    switch (scale) {
    case Scale::Small:
        return "small";
    case Scale::Paper:
        return "paper";
    case Scale::Full:
        break;
    }
    return "full";
}

} // namespace

LatencySummary
summarizeLatency(const std::vector<double> &samples_ns)
{
    LatencySummary s;
    s.samples = samples_ns.size();
    s.meanNs = mean(samples_ns);
    s.p50Ns = percentile(samples_ns, 50.0);
    s.p99Ns = percentile(samples_ns, 99.0);
    return s;
}

BenchReport::BenchReport(std::string id) : id_(std::move(id))
{
    tracing_ = std::getenv("BOREAS_TRACE") != nullptr;
    obs::MetricsRegistry::global().setEnabled(true);
    obs::MetricsRegistry::global().reset();
    obs::TraceBuffer::global().setEnabled(tracing_);
    obs::TraceBuffer::global().clear();

    artifact_.manifest.experiment = id_;
    artifact_.manifest.scale = scaleName(benchScale());
    artifact_.manifest.threads = ThreadPool::global().numThreads();
    artifact_.manifest.seed = kBenchSeed;
    t0_ = std::chrono::steady_clock::now();
}

BenchReport::~BenchReport()
{
    if (!written_)
        write();
}

void
BenchReport::config(const std::string &key, std::string value)
{
    artifact_.manifest.addConfig(key, std::move(value));
}

void
BenchReport::config(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(12);
    oss << value;
    artifact_.manifest.addConfig(key, oss.str());
}

void
BenchReport::seed(uint64_t value)
{
    artifact_.manifest.seed = value;
}

void
BenchReport::thermalSolver(const std::string &name)
{
    artifact_.manifest.thermalSolver = name;
}

void
BenchReport::runHash(uint64_t value)
{
    artifact_.manifest.runHash = value;
    artifact_.manifest.hasRunHash = true;
}

void
BenchReport::workloadSource(const std::string &spec_string)
{
    artifact_.manifest.workloadSource = spec_string;
}

void
BenchReport::predictEngine(const std::string &name)
{
    artifact_.manifest.predictEngine = name;
}

void
BenchReport::fleetDies(int dies)
{
    artifact_.manifest.fleetDies = dies;
}

void
BenchReport::traceChecksum(uint64_t value)
{
    artifact_.manifest.traceChecksum = value;
    artifact_.manifest.hasTraceChecksum = true;
}

void
BenchReport::comparison(std::string quantity, std::string paper,
                        std::string measured)
{
    artifact_.comparisons.push_back({std::move(quantity),
                                     std::move(paper),
                                     std::move(measured)});
}

void
BenchReport::addTable(const std::string &name, const TextTable &table)
{
    obs::BenchSeries series;
    series.name = name;
    series.columns = table.header();
    series.rows = table.rows();
    artifact_.series.push_back(std::move(series));
}

void
BenchReport::addSeries(obs::BenchSeries series)
{
    artifact_.series.push_back(std::move(series));
}

void
BenchReport::latency(const std::string &benchmark,
                     const LatencySummary &summary)
{
    if (latency_.columns.empty()) {
        latency_.name = "latency";
        latency_.columns = {"benchmark", "samples", "mean_ns",
                            "p50_ns", "p99_ns"};
    }
    std::ostringstream samples, mean_ns, p50, p99;
    samples << summary.samples;
    mean_ns.precision(6);
    mean_ns << summary.meanNs;
    p50.precision(6);
    p50 << summary.p50Ns;
    p99.precision(6);
    p99 << summary.p99Ns;
    latency_.rows.push_back({benchmark, samples.str(), mean_ns.str(),
                             p50.str(), p99.str()});
}

bool
BenchReport::write()
{
    written_ = true;
    if (!latency_.rows.empty()) {
        artifact_.series.push_back(latency_);
        latency_.rows.clear();
    }
    artifact_.manifest.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0_)
            .count();
    artifact_.metrics = obs::MetricsRegistry::global().snapshot();

    const std::string path = obs::benchArtifactFileName(id_);
    bool ok = obs::writeBenchArtifactFile(artifact_, path);
    if (ok)
        boreas_inform("wrote %s", path.c_str());
    else
        boreas_warn("could not write %s", path.c_str());

    if (tracing_) {
        const std::string trace_path = "TRACE_" + id_ + ".json";
        if (obs::writeTraceFile(trace_path))
            boreas_inform("wrote %s (%zu events)", trace_path.c_str(),
                          obs::TraceBuffer::global().eventCount());
        else
            ok = false;
    }
    return ok;
}

} // namespace boreas::bench
