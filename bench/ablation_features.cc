/**
 * @file
 * Ablation: which telemetry does the severity predictor actually need?
 *
 * Compares held-out (test-workload) MSE of models trained on:
 *   - all 78 attributes;
 *   - the deployed top-20 (+ frequency action input);
 *   - temperature + frequency only (the "thermal-only" information a
 *     TH model sees — Sec. IV-C's argument that sensor data alone is
 *     not indicative enough);
 *   - counters + frequency with NO temperature.
 *
 * Paper shape to reproduce: top-20 matches full; dropping either the
 * microarchitectural attributes or the temperature telemetry hurts.
 */

#include <cstdio>
#include <iostream>

#include "boreas/trainer.hh"
#include "common/table.hh"
#include "harness.hh"
#include "ml/feature_schema.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("ablation_features");
    SimulationPipeline pipeline;
    const DatasetConfig dcfg = datasetConfigFor(benchScale());
    std::fprintf(stderr, "[bench] generating train data...\n");
    const BuiltData train = buildTrainingData(pipeline, trainWorkloads(),
                                              dcfg);
    // --workload swaps the held-out evaluation stimulus; training stays
    // on the Table III split so the ablation still measures
    // generalization.
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());
    DatasetConfig eval_cfg = dcfg;
    eval_cfg.intensityAugments = {1.0};
    eval_cfg.walkSegments = 2;
    std::fprintf(stderr, "[bench] generating test data...\n");
    const BuiltData test =
        wl_override
            ? buildTrainingData(
                  pipeline,
                  std::vector<const WorkloadSource *>{
                      wl_override.get()},
                  eval_cfg)
            : buildTrainingData(pipeline, testWorkloads(), eval_cfg);

    struct Variant
    {
        const char *name;
        std::vector<std::string> features;
    };
    std::vector<Variant> variants;
    variants.push_back({"full-78", fullFeatureSchema()});
    variants.push_back({"top20+freq", deployedFeatureNames()});
    variants.push_back(
        {"temp+freq only", {"temperature_sensor_data", "frequency"}});
    {
        std::vector<std::string> no_temp;
        for (const auto &n : fullFeatureSchema())
            if (n != "temperature_sensor_data")
                no_temp.push_back(n);
        variants.push_back({"no-temperature", std::move(no_temp)});
    }

    std::printf("=== feature ablation (test-workload MSE) ===\n");
    TextTable table;
    table.setHeader({"variant", "features", "train MSE", "test MSE"});
    double full_mse = 0.0, top20_mse = 0.0;
    for (const auto &v : variants) {
        const auto idx = featureIndicesOf(v.features);
        const Dataset tr = train.severity.selectFeatures(idx);
        const Dataset te = test.severity.selectFeatures(idx);
        GBTRegressor model;
        model.train(tr, GBTParams{});
        const double test_mse = model.mse(te);
        if (std::string(v.name) == "full-78")
            full_mse = test_mse;
        else if (std::string(v.name) == "top20+freq")
            top20_mse = test_mse;
        table.addRow({v.name, std::to_string(v.features.size()),
                      TextTable::num(model.mse(tr), 5),
                      TextTable::num(test_mse, 5)});
        std::fprintf(stderr, "[bench] %s done\n", v.name);
    }
    table.print(std::cout);
    report.addTable("feature_ablation", table);
    report.comparison("full-78 test MSE", "baseline",
                      TextTable::num(full_mse, 5));
    report.comparison("top20+freq test MSE", "~matches full-78",
                      TextTable::num(top20_mse, 5));
    std::printf("\npaper shape: top-20 ~= full-78; removing "
                "microarchitectural attributes (temp+freq only) or the "
                "temperature telemetry degrades held-out accuracy\n");
    return 0;
}
