/**
 * @file
 * Reproduction of Fig. 6: frequency vs. max severity for bzip2 under
 * the Boreas controller with guardbands 0 / 5 / 10 % (ML00/ML05/ML10).
 *
 * Paper shape to reproduce: ML00 rides the severity-1.0 line and incurs
 * hotspot steps; ML05 gets close to 1.0 (the paper notes ~0.99) without
 * crossing; ML10 stays clearly below at lower frequency.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("fig6_ml_guardbands");
    auto ctx = buildExperimentContext();
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());

    // The three guardband runs are independent: run them on the pool.
    const double guardbands[] = {0.0, 0.05, 0.10};
    std::vector<RunTask> tasks;
    for (double g : guardbands) {
        RunTask task{wl_override ? nullptr : &findWorkload("bzip2"),
                     [&ctx, g] { return ctx->mlController(g); },
                     kBenchSeed, kBaselineFrequency};
        task.source = wl_override.get();
        tasks.push_back(std::move(task));
    }
    const std::vector<RunResult> runs =
        runAll(ctx->pipeline.config(), tasks);

    std::printf("=== Fig. 6: %s under ML00 / ML05 / ML10 ===\n",
                wl_override ? wl_override->name().c_str() : "bzip2");
    TextTable series;
    series.setHeader({"ms", "ML00 GHz", "ML00 sev", "ML05 GHz",
                      "ML05 sev", "ML10 GHz", "ML10 sev"});
    for (int s = 0; s < kTraceSteps; s += 6) {
        std::vector<std::string> row{
            TextTable::num(s * kTelemetryStep * 1e3, 2)};
        for (const auto &run : runs) {
            row.push_back(TextTable::num(run.steps[s].frequency, 2));
            row.push_back(
                TextTable::num(run.steps[s].severity.maxSeverity, 3));
        }
        series.addRow(row);
    }
    series.print(std::cout);
    report.addTable("fig6_traces", series);

    std::printf("\n=== summary ===\n");
    TextTable summary;
    summary.setHeader({"model", "threshold", "avg GHz", "peak sev",
                       "incursion steps"});
    const char *names[] = {"ML00", "ML05", "ML10"};
    for (size_t i = 0; i < runs.size(); ++i) {
        summary.addRow({names[i],
                        TextTable::num(1.0 - guardbands[i], 2),
                        TextTable::num(runs[i].averageFrequency(), 3),
                        TextTable::num(runs[i].peakSeverity(), 3),
                        std::to_string(runs[i].incursionSteps())});
    }
    summary.print(std::cout);
    report.addTable("fig6_summary", summary);
    report.comparison("ML05 peak severity", "~0.99 (below 1.0)",
                      TextTable::num(runs[1].peakSeverity(), 3));
    report.comparison("ML10 incursion steps", "0",
                      std::to_string(runs[2].incursionSteps()));
    std::printf("\npaper shape: larger guardband -> lower frequency, "
                "lower peak severity; ML05 trades off best\n");
    return 0;
}
