/**
 * @file
 * Reproduction of Fig. 7 (and the abstract's headline numbers):
 * average frequency of every unseen (test) workload under each model,
 * normalized to the 3.75 GHz globally-safe baseline.
 *
 * Paper shape to reproduce:
 *   - TH-00 improves ~5.7% over the baseline with no incursions;
 *   - ML00 is fastest but has hotspot incursions (unreliable);
 *   - ML10 is safe but conservative (can lose to TH, e.g. on hmmer);
 *   - ML05 is the sweet spot: ~4.5% over TH-00 on average (up to
 *     ~9.6% on bzip2) with zero incursions.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness.hh"
#include "obs/metrics.hh"
#include "report.hh"

using namespace boreas;
using namespace boreas::bench;

namespace
{

/** Mean of a stage timer between two metrics snapshots, microseconds. */
double
timerDeltaMean(const obs::MetricsSnapshot &before,
               const obs::MetricsSnapshot &after, const std::string &name,
               uint64_t *samples)
{
    uint64_t c0 = 0;
    double s0 = 0.0;
    const auto it0 = before.histograms.find(name);
    if (it0 != before.histograms.end()) {
        c0 = it0->second.count;
        s0 = it0->second.sum;
    }
    const auto it1 = after.histograms.find(name);
    if (it1 == after.histograms.end() || it1->second.count <= c0)
        return 0.0;
    *samples = it1->second.count - c0;
    return (it1->second.sum - s0) / static_cast<double>(*samples);
}

/**
 * Report the thermal-stage split: run the same single-workload
 * calibration trace once with the explicit reference and once with the
 * configured fast integrator, and compare only the stage.thermal.*
 * samples those two runs produced (snapshot deltas — the fast timer
 * already carries every training-run sample, which would mix a
 * different cache regime into its mean).
 */
void
reportSolverSpeedup(BenchReport &report, const PipelineConfig &config)
{
    if (config.thermal.solver == ThermalSolverKind::Explicit)
        return; // nothing to compare against

    const WorkloadSpec &workload = *testWorkloads().front();
    PipelineConfig calib = config;
    calib.thermal.solver = ThermalSolverKind::Explicit;
    // Warm each path once unmeasured: the first trace pays plan builds,
    // state loads and cold caches, which would skew the sample means.
    {
        SimulationPipeline warm_ref(calib);
        warm_ref.runConstantFrequency(workload, kBenchSeed,
                                      kBaselineFrequency);
        SimulationPipeline warm_fast(config);
        warm_fast.runConstantFrequency(workload, kBenchSeed,
                                       kBaselineFrequency);
    }

    // Repeat the measured pair and keep the best trace mean per path:
    // interference on this host is strictly additive, so the minimum
    // is the robust estimator of the undisturbed per-step cost.
    constexpr int kReps = 5;
    const std::string fast_timer =
        std::string("stage.thermal.") +
        thermalSolverName(config.thermal.solver);
    double ref_us = 0.0;
    double fast_us = 0.0;
    uint64_t ref_n = 0;
    uint64_t fast_n = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        const obs::MetricsSnapshot t0 =
            obs::MetricsRegistry::global().snapshot();
        SimulationPipeline ref_pipeline(calib);
        ref_pipeline.runConstantFrequency(workload, kBenchSeed,
                                          kBaselineFrequency);
        const obs::MetricsSnapshot t1 =
            obs::MetricsRegistry::global().snapshot();
        SimulationPipeline fast_pipeline(config);
        fast_pipeline.runConstantFrequency(workload, kBenchSeed,
                                           kBaselineFrequency);
        const obs::MetricsSnapshot t2 =
            obs::MetricsRegistry::global().snapshot();

        uint64_t rn = 0;
        uint64_t fn = 0;
        const double r =
            timerDeltaMean(t0, t1, "stage.thermal.explicit", &rn);
        const double f = timerDeltaMean(t1, t2, fast_timer, &fn);
        if (r > 0.0 && (ref_us <= 0.0 || r < ref_us)) {
            ref_us = r;
            ref_n = rn;
        }
        if (f > 0.0 && (fast_us <= 0.0 || f < fast_us)) {
            fast_us = f;
            fast_n = fn;
        }
    }
    if (ref_us <= 0.0 || fast_us <= 0.0)
        return;

    std::printf("\n=== thermal stage split (same calibration trace, "
                "best of %d) ===\n", kReps);
    std::printf("explicit reference : %.2f us/step (n=%llu)\n", ref_us,
                static_cast<unsigned long long>(ref_n));
    std::printf("%-8s fast path : %.2f us/step (n=%llu)  speedup %.1fx\n",
                thermalSolverName(config.thermal.solver), fast_us,
                static_cast<unsigned long long>(fast_n),
                ref_us / fast_us);
    report.comparison("thermal stage speedup", ">=10x target",
                      TextTable::num(ref_us / fast_us, 1) + "x");
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("fig7_avg_frequency");
    auto ctx = buildExperimentContext();
    report.thermalSolver(thermalSolverName(ctx->pipeline.config()
                                               .thermal.solver));
    const std::unique_ptr<WorkloadSource> wl_override =
        opts.hasWorkload() ? opts.makeSource() : nullptr;
    if (wl_override)
        report.workloadSource(wl_override->name());

    // One factory per model: every (workload, model) run gets its own
    // controller instance so the whole grid fans out over the pool.
    std::vector<ControllerFactory> models{
        [] {
            return std::make_unique<FixedFrequencyController>(
                "baseline-3.75", kBaselineFrequency);
        },
        [&ctx] { return ctx->thController(0.0); },
        [&ctx] { return ctx->crController(); },
        [&ctx] { return ctx->mlController(0.0); },
        [&ctx] { return ctx->mlController(0.05); },
        [&ctx] { return ctx->mlController(0.10); },
    };
    const std::vector<const WorkloadSpec *> workloads = testWorkloads();
    std::vector<std::string> workload_names;
    std::vector<std::vector<EvalRow>> grid;
    if (wl_override) {
        workload_names.push_back(wl_override->name());
        grid = evaluateGrid(
            ctx->pipeline.config(),
            std::vector<const WorkloadSource *>{wl_override.get()},
            models);
    } else {
        for (const WorkloadSpec *w : workloads)
            workload_names.push_back(w->name);
        grid = evaluateGrid(ctx->pipeline.config(), workloads, models);
    }

    TextTable table;
    table.setHeader({"workload", "model", "avg GHz", "vs 3.75",
                     "peak sev", "incursions"});

    std::map<std::string, OnlineStats> norm_by_model;
    std::map<std::string, int> incursions_by_model;
    std::map<std::string, double> ml05_vs_th;

    for (size_t wi = 0; wi < grid.size(); ++wi) {
        double th_norm = 1.0, ml05_norm = 1.0;
        for (const EvalRow &row : grid[wi]) {
            table.addRow({row.workload, row.controller,
                          TextTable::num(row.avgFreq, 3),
                          TextTable::num(row.normalized, 4),
                          TextTable::num(row.peakSeverity, 3),
                          std::to_string(row.incursions)});
            norm_by_model[row.controller].add(row.normalized);
            incursions_by_model[row.controller] += row.incursions;
            if (row.controller == std::string("TH-00"))
                th_norm = row.normalized;
            if (row.controller == std::string("ML05"))
                ml05_norm = row.normalized;
        }
        ml05_vs_th[workload_names[wi]] = ml05_norm / th_norm - 1.0;
    }

    std::printf("=== Fig. 7: per-workload normalized average frequency "
                "(test set) ===\n");
    table.print(std::cout);
    report.addTable("fig7_per_workload", table);

    std::printf("\n=== Fig. 7 summary (mean over unseen workloads) "
                "===\n");
    TextTable summary;
    summary.setHeader({"model", "mean vs 3.75", "total incursions"});
    for (const auto &[model, stats] : norm_by_model) {
        summary.addRow({model, TextTable::num(stats.mean(), 4),
                        std::to_string(incursions_by_model[model])});
    }
    summary.print(std::cout);
    report.addTable("fig7_summary", summary);

    const double th = norm_by_model["TH-00"].mean();
    const double ml05m = norm_by_model["ML05"].mean();
    double best_gain = 0.0;
    std::string best_wl;
    for (const auto &[wl, gain] : ml05_vs_th) {
        if (gain > best_gain) {
            best_gain = gain;
            best_wl = wl;
        }
    }

    std::printf("\n=== headline comparison ===\n");
    std::printf("TH-00 over baseline : measured %+.1f%%   (paper: "
                "+5.7%%)\n", (th - 1.0) * 100.0);
    std::printf("ML05 over TH-00     : measured %+.1f%%   (paper: "
                "+4.5%% avg)\n", (ml05m / th - 1.0) * 100.0);
    std::printf("best ML05 gain      : measured %+.1f%% on %s "
                "(paper: +9.6%% on bzip2)\n", best_gain * 100.0,
                best_wl.c_str());
    std::printf("ML05 incursions     : %d (paper: 0)\n",
                incursions_by_model["ML05"]);
    std::printf("ML00 incursions     : %d (paper: >0, unreliable)\n",
                incursions_by_model["ML00"]);

    const auto pct = [](double frac) {
        const std::string s = TextTable::num(frac * 100.0, 1) + "%";
        return frac >= 0.0 ? "+" + s : s;
    };
    report.comparison("TH-00 over baseline", "+5.7%", pct(th - 1.0));
    report.comparison("ML05 over TH-00", "+4.5% avg",
                      pct(ml05m / th - 1.0));
    report.comparison("best ML05 gain", "+9.6% on bzip2",
                      pct(best_gain) + " on " + best_wl);
    report.comparison("ML05 incursions", "0",
                      std::to_string(incursions_by_model["ML05"]));
    report.comparison("ML00 incursions", ">0 (unreliable)",
                      std::to_string(incursions_by_model["ML00"]));

    reportSolverSpeedup(report, ctx->pipeline.config());
    return 0;
}
