/**
 * @file
 * Shared setup for the paper-reproduction bench harnesses: the default
 * pipeline, the full-scale training pass, the TH critical-temperature
 * table, and the standard controller set (TH-00/05/10, ML00/05/10,
 * oracle, global limit, Cochran-Reda).
 *
 * Scale control: set the environment variable BOREAS_BENCH_SCALE to
 * "small" for a quick pass (fewer segments; minutes -> seconds) or
 * "paper" for the 500K-instance-class dataset. Default is "full",
 * which reproduces every figure's shape in a few minutes total.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "boreas/analysis.hh"
#include "boreas/pipeline.hh"
#include "boreas/trainer.hh"
#include "control/boreas_controller.hh"
#include "control/phase_thermal.hh"
#include "control/static_controllers.hh"
#include "control/thermal_controller.hh"
#include "workload/registry.hh"
#include "workload/spec2006.hh"

namespace boreas::bench
{

/** Bench scale selected via BOREAS_BENCH_SCALE. */
enum class Scale
{
    Small, ///< quick smoke (CI)
    Full,  ///< default: full workload suite, reduced segments
    Paper  ///< 500K-instance-class dataset
};

Scale benchScale();

/**
 * Thermal integrator the benches run, selected via the environment
 * variable BOREAS_THERMAL_SOLVER ("explicit" / "spectral" /
 * "surrogate"). Defaults to the spectral fast path — the cheapest way
 * to produce every figure; set "explicit" to reproduce the reference
 * integrator's bit-exact trajectories.
 */
ThermalSolverKind benchThermalSolver();

/** The default bench PipelineConfig with benchThermalSolver() applied. */
PipelineConfig benchPipelineConfig();

/** Seed shared by all benches so figures are cross-consistent. */
constexpr uint64_t kBenchSeed = 2023;

/**
 * Command-line options shared by every bench main. With no arguments
 * each bench runs its built-in default stimulus, byte-identical to the
 * pre-flag outputs; `--workload <source-spec>` (or `--workload=<...>`)
 * substitutes any registered workload source (workload/registry.hh
 * grammar: synthetic:spec2006/<name>, synthetic:nas/<name>, mix:...,
 * adversarial:..., trace:<path>, or a bare program name).
 */
struct BenchOptions
{
    std::string workloadSpec; ///< empty = bench default stimulus

    bool
    hasWorkload() const
    {
        return !workloadSpec.empty();
    }

    /** Build the override source; panics if no --workload was given
     *  or the spec string does not resolve. */
    std::unique_ptr<WorkloadSource> makeSource() const;
};

/** Parse bench argv; panics with usage on unknown arguments. */
BenchOptions parseBenchArgs(int argc, char **argv);

/** Panics if --workload was given — for benches whose experiment has
 *  no workload dimension (e.g. VF tables, severity contours). */
void requireNoWorkloadOverride(const BenchOptions &options,
                               const char *bench_name);

/** The DatasetConfig for a scale. */
DatasetConfig datasetConfigFor(Scale scale);

/** Everything the evaluation benches share. */
struct ExperimentContext
{
    ExperimentContext() = default;
    explicit ExperimentContext(const PipelineConfig &config)
        : pipeline(config)
    {
    }

    SimulationPipeline pipeline;
    TrainedBoreas trained;
    CriticalTempTable thTable;          ///< train-set global criticals

    /** Guardbanded Boreas controller (name "ML00"/"ML05"/"ML10"). */
    std::unique_ptr<BoreasController> mlController(double guardband) const;

    /** Thermal controller with the given relaxation ("TH-00"...). */
    std::unique_ptr<ThermalThresholdController>
    thController(Celsius offset) const;

    /** Cochran-Reda baseline controller. */
    std::unique_ptr<PhaseThermalController> crController() const;
};

/**
 * Build the shared context: train Boreas on the Table III training
 * workloads and derive the TH table. Prints progress to stderr.
 */
std::unique_ptr<ExperimentContext> buildExperimentContext();

/**
 * Derive the TH critical-temperature table alone (for benches that do
 * not need the trained ML model).
 */
CriticalTempTable buildThTable(SimulationPipeline &pipeline);

/** One closed-loop evaluation row. */
struct EvalRow
{
    std::string workload;
    std::string controller;
    double avgFreq = 0.0;      ///< GHz over the trace
    double normalized = 0.0;   ///< avgFreq / 3.75 GHz baseline
    double peakSeverity = 0.0;
    int incursions = 0;
};

/** Run one controller on one workload and summarize. */
EvalRow evaluateController(SimulationPipeline &pipeline,
                           const WorkloadSpec &workload,
                           FrequencyController &controller,
                           uint64_t seed = kBenchSeed);

/** Same, driven by an arbitrary source (evaluated on a fresh clone). */
EvalRow evaluateController(SimulationPipeline &pipeline,
                           const WorkloadSource &source,
                           FrequencyController &controller,
                           uint64_t seed = kBenchSeed);

/**
 * Creates a fresh controller instance for one run. Invoked on pool
 * workers, so the factory must be callable concurrently; the trained
 * models it wires in are shared read-only.
 */
using ControllerFactory =
    std::function<std::unique_ptr<FrequencyController>()>;

/** One independent closed-loop run for the parallel fan-out. Exactly
 *  one of `workload` / `source` is set; a source task runs a private
 *  clone, so many tasks may share one base source. */
struct RunTask
{
    const WorkloadSpec *workload = nullptr;
    ControllerFactory makeController;
    uint64_t seed = kBenchSeed;
    GHz initialFreq = kBaselineFrequency;
    const WorkloadSource *source = nullptr; ///< overrides `workload`
};

/**
 * Execute every task on the global pool — one private pipeline per
 * chunk, one freshly-made controller per run — and return the results
 * in task order (identical at any BOREAS_THREADS value).
 */
std::vector<RunResult> runAll(const PipelineConfig &config,
                              const std::vector<RunTask> &tasks);

/**
 * Evaluate the full (workload x controller) grid in parallel.
 * Result rows are indexed [workload][controller], matching the input
 * vectors' order.
 */
std::vector<std::vector<EvalRow>>
evaluateGrid(const PipelineConfig &config,
             const std::vector<const WorkloadSpec *> &workloads,
             const std::vector<ControllerFactory> &controllers,
             uint64_t seed = kBenchSeed);

/** The grid over arbitrary workload sources (cloned per run). */
std::vector<std::vector<EvalRow>>
evaluateGrid(const PipelineConfig &config,
             const std::vector<const WorkloadSource *> &sources,
             const std::vector<ControllerFactory> &controllers,
             uint64_t seed = kBenchSeed);

} // namespace boreas::bench
