/**
 * @file
 * BenchReport: the one-liner that turns a bench main into an artifact
 * producer. Constructing it switches the observability layer on
 * (metrics always; tracing when BOREAS_TRACE is set) and stamps the
 * run manifest; destruction — or an explicit write() — snapshots the
 * metrics and drops BENCH_<id>.json (schema "boreas-bench-v1", see
 * obs/export.hh) next to the bench's text tables, plus TRACE_<id>.json
 * when tracing was on.
 *
 * Typical shape of a bench main:
 *
 *   BenchReport report("fig7");
 *   ...
 *   report.comparison("ML05 avg freq gain", "+7.3%", measured);
 *   report.addTable("fig7", table);   // also printed as text
 *   // report destructor writes BENCH_fig7.json
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hh"
#include "obs/export.hh"

namespace boreas::bench
{

/**
 * The shared per-benchmark latency schema (micro_latency and
 * gbt_throughput both emit it): sample count plus mean/p50/p99 in
 * nanoseconds, one row per benchmark in a "latency" series.
 */
struct LatencySummary
{
    size_t samples = 0;
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
};

/** Summarize raw per-call (or per-repetition) latency samples, ns. */
LatencySummary summarizeLatency(const std::vector<double> &samples_ns);

/** Collects one bench run's artifact and writes it on destruction. */
class BenchReport
{
  public:
    /**
     * Start a report for BENCH_<id>.json. Enables the observability
     * layer, clears any prior metrics/trace state and fills the
     * manifest with the bench scale, thread count and default seed.
     */
    explicit BenchReport(std::string id);

    /** Writes the artifact if write() was not called explicitly. */
    ~BenchReport();

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** Record a free-form manifest config entry. */
    void config(const std::string &key, std::string value);
    void config(const std::string &key, double value);

    /** Override the manifest seed (defaults to kBenchSeed). */
    void seed(uint64_t value);

    /** Record which thermal integrator the headline runs used. */
    void thermalSolver(const std::string &name);

    /** Record the pipeline runHash fingerprint of the headline run. */
    void runHash(uint64_t value);

    /** Record the workload-source spec string the bench ran. */
    void workloadSource(const std::string &spec_string);

    /** Record the GBT inference path ("flat" / "reference"). */
    void predictEngine(const std::string &name);

    /** Record the fleet size of a src/fleet experiment. */
    void fleetDies(int dies);

    /** Record the boreas-trace-v1 checksum recorded/replayed. */
    void traceChecksum(uint64_t value);

    /** Add one paper-vs-measured headline row. */
    void comparison(std::string quantity, std::string paper,
                    std::string measured);

    /** Add a printed TextTable as a named series. */
    void addTable(const std::string &name, const TextTable &table);

    /** Add a raw series. */
    void addSeries(obs::BenchSeries series);

    /**
     * Accumulate one benchmark's latency summary. All rows land in a
     * single "latency" series with columns {benchmark, samples,
     * mean_ns, p50_ns, p99_ns}, emitted at write().
     */
    void latency(const std::string &benchmark,
                 const LatencySummary &summary);

    /**
     * Snapshot metrics, stamp the wall time and write BENCH_<id>.json
     * (and TRACE_<id>.json when tracing). Returns false if a file
     * could not be written. Idempotent; the destructor skips writing
     * after an explicit call.
     */
    bool write();

  private:
    std::string id_;
    obs::BenchArtifact artifact_;
    obs::BenchSeries latency_; ///< accumulated latency rows
    std::chrono::steady_clock::time_point t0_;
    bool written_ = false;
    bool tracing_ = false;
};

} // namespace boreas::bench
