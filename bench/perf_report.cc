/**
 * @file
 * Timing report for the parallel simulation engine: measures the serial
 * hot loops (thermal step) and the thread-pool fan-outs (sweep runs,
 * GBT training, dataset generation) at one thread vs. the host default,
 * and writes the numbers to BENCH_parallel.json in the working
 * directory.
 *
 * Thread counts come from ThreadPool::defaultThreads() (BOREAS_THREADS
 * or the hardware concurrency); on a single-core host the "threaded"
 * columns legitimately equal the serial ones. Registered under the
 * `perf` ctest label so `ctest -L perf` smoke-runs it.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "boreas/dataset_builder.hh"
#include "common/logging.hh"
#include "boreas/pipeline.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "harness.hh"
#include "ml/gbt.hh"
#include "report.hh"
#include "thermal/thermal_grid.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using namespace boreas::bench;
using Clock = std::chrono::steady_clock;

namespace
{

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** 32x32-grid pipeline so the report runs in seconds. */
PipelineConfig
reportConfig()
{
    PipelineConfig cfg;
    cfg.thermal.nx = 32;
    cfg.thermal.ny = 32;
    return cfg;
}

/** Time one full pass of a small multi-run sweep on the global pool. */
double
timeSweep()
{
    const std::vector<const WorkloadSpec *> wls{
        &findWorkload("bzip2"), &findWorkload("gamess"),
        &findWorkload("povray"), &findWorkload("mcf")};
    std::vector<RunTask> tasks;
    for (const WorkloadSpec *w : wls) {
        tasks.push_back({w,
                         [] {
                             return std::make_unique<
                                 FixedFrequencyController>(
                                 "fixed", kBaselineFrequency);
                         },
                         kBenchSeed, kBaselineFrequency});
    }
    const auto t0 = Clock::now();
    const std::vector<RunResult> runs = runAll(reportConfig(), tasks);
    const auto t1 = Clock::now();
    boreas_assert(runs.size() == tasks.size(), "sweep dropped runs");
    return seconds(t0, t1);
}

/** Time dataset generation (the Trainer's fan-out) on the global pool. */
double
timeDatasetBuild(BuiltData &out)
{
    DatasetConfig cfg;
    cfg.frequencies = {3.75, 4.25, 4.75};
    cfg.walkSegments = 1;
    cfg.traceSteps = 96;
    SimulationPipeline pipeline(reportConfig());
    const std::vector<const WorkloadSpec *> wls{
        &findWorkload("povray"), &findWorkload("gromacs"),
        &findWorkload("mcf")};
    const auto t0 = Clock::now();
    out = buildTrainingData(pipeline, wls, cfg);
    const auto t1 = Clock::now();
    return seconds(t0, t1);
}

/** Time one GBT fit (feature-parallel histograms) on the global pool. */
double
timeTrain(const Dataset &data)
{
    GBTParams params;
    params.nEstimators = 60;
    GBTRegressor model;
    const auto t0 = Clock::now();
    model.train(data, params);
    const auto t1 = Clock::now();
    boreas_assert(model.trained(), "training produced no trees");
    return seconds(t0, t1);
}

} // namespace

int
main(int argc, char **argv)
{
    // The timing fan-outs use fixed micro stimuli; there is no workload
    // dimension to override.
    requireNoWorkloadOverride(parseBenchArgs(argc, argv), "perf_report");
    BenchReport report("parallel");
    const int threads = ThreadPool::defaultThreads();

    // --- Serial stencil throughput (unaffected by the pool). ---
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, ThermalParams{});
    std::vector<Watts> power(fp.numUnits(), 0.5);
    grid.setUnitPower(power);
    constexpr int kWarmup = 20, kSteps = 200;
    for (int i = 0; i < kWarmup; ++i)
        grid.step(kTelemetryStep);
    const auto s0 = Clock::now();
    for (int i = 0; i < kSteps; ++i)
        grid.step(kTelemetryStep);
    const auto s1 = Clock::now();
    const double step_us = seconds(s0, s1) / kSteps * 1e6;

    // --- Pool fan-outs: serial (1 thread) vs. host default. ---
    ThreadPool::resetGlobal(1);
    const double sweep_serial = timeSweep();
    BuiltData data_serial;
    const double build_serial = timeDatasetBuild(data_serial);
    const double train_serial = timeTrain(data_serial.severity);

    ThreadPool::resetGlobal(threads);
    const double sweep_par = timeSweep();
    BuiltData data_par;
    const double build_par = timeDatasetBuild(data_par);
    const double train_par = timeTrain(data_par.severity);

    const double sweep_speedup = sweep_serial / sweep_par;
    const double build_speedup = build_serial / build_par;
    const double train_speedup = train_serial / train_par;

    std::printf("=== parallel engine timing report ===\n");
    std::printf("threads (BOREAS_THREADS/default): %d\n", threads);
    std::printf("thermal step (64x64, 80us):       %.1f us\n", step_us);
    std::printf("sweep  4 runs:   %.3fs serial, %.3fs threaded (%.2fx)\n",
                sweep_serial, sweep_par, sweep_speedup);
    std::printf("dataset build:   %.3fs serial, %.3fs threaded (%.2fx)\n",
                build_serial, build_par, build_speedup);
    std::printf("gbt train (60):  %.3fs serial, %.3fs threaded (%.2fx)\n",
                train_serial, train_par, train_speedup);

    report.config("threads", static_cast<double>(threads));
    report.config("thermal_step_us", step_us);
    TextTable timing;
    timing.setHeader({"fan-out", "serial s", "threaded s", "speedup"});
    timing.addRow({"sweep 4 runs", TextTable::num(sweep_serial, 3),
                   TextTable::num(sweep_par, 3),
                   TextTable::num(sweep_speedup, 2)});
    timing.addRow({"dataset build", TextTable::num(build_serial, 3),
                   TextTable::num(build_par, 3),
                   TextTable::num(build_speedup, 2)});
    timing.addRow({"gbt train 60", TextTable::num(train_serial, 3),
                   TextTable::num(train_par, 3),
                   TextTable::num(train_speedup, 2)});
    report.addTable("parallel_speedups", timing);
    report.comparison("sweep speedup at " + std::to_string(threads) +
                          " threads",
                      ">1 on multicore hosts",
                      TextTable::num(sweep_speedup, 2));
    report.comparison("gbt train speedup", ">1 on multicore hosts",
                      TextTable::num(train_speedup, 2));
    return 0;
}
