/**
 * @file
 * Thermal-solver bench: accuracy and speed of the spectral exponential
 * integrator against the explicit reference (DESIGN.md §9).
 *
 * Accuracy phases (fig7-style power schedule, controller cadence):
 *   - per-step divergence from the production explicit reference,
 *     re-syncing to its state every step (what the checked-build
 *     shadow run measures; bounded by spectralShadowTolerance);
 *   - per-step divergence from a 16x-refined explicit reference whose
 *     truncation error is near zero — the documented 0.05 C bound on
 *     spectral error "vs exact" that CI enforces (this bench exits
 *     nonzero when it is exceeded);
 *   - free-running trajectory divergence (no re-sync), which is
 *     dominated by the *explicit* integrator's accumulated truncation.
 *
 * Timing phase: microseconds per telemetry step for each integrator,
 * step-only (the stage.thermal cost) and full cycle (power ingest +
 * step + temperature publish), plus the resulting speedup columns in
 * BENCH_thermal_solver.json.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/rng.hh"
#include "common/table.hh"
#include "floorplan/skylake.hh"
#include "harness.hh"
#include "report.hh"
#include "thermal/spectral_solver.hh"
#include "thermal/thermal_grid.hh"

using namespace boreas;
using namespace boreas::bench;

namespace
{

/** The documented spectral-vs-exact bound CI enforces, Celsius. */
constexpr double kExactnessBound = 0.05;
/** Refinement factor of the near-exact explicit reference. */
constexpr double kRefinedDtSafety = 0.025;

std::vector<Watts>
scatterPower(const std::vector<UnitCellMap> &maps,
             const std::vector<Watts> &unit_power, int n)
{
    std::vector<Watts> cell(n, 0.0);
    for (size_t u = 0; u < unit_power.size(); ++u)
        for (size_t k = 0; k < maps[u].cells.size(); ++k)
            cell[maps[u].cells[k]] +=
                unit_power[u] * maps[u].fractions[k];
    return cell;
}

/** Deterministic fig7-style power schedule (changes every decision). */
std::vector<Watts>
schedulePower(Rng &rng, size_t units)
{
    std::vector<Watts> power(units);
    for (double &p : power)
        p = rng.uniform(0.0, 8.0);
    return power;
}

/**
 * Max abs per-step spectral divergence from an explicit reference at
 * the given dtSafety, re-syncing the spectral state to the reference
 * every step (isolates one step's error from trajectory feedback).
 */
double
perStepDivergence(double dt_safety, int steps)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params;
    params.dtSafety = dt_safety;
    ThermalGrid ref(fp, params);
    SpectralThermalSolver solver(ref.spectralNetwork());
    const std::vector<UnitCellMap> maps =
        fp.rasterize(params.nx, params.ny);

    Rng rng(kBenchSeed);
    std::vector<double> ssi, ssp;
    double max_err = 0.0;
    for (int step = 0; step < steps; ++step) {
        if (step % kStepsPerDecision == 0) {
            const std::vector<Watts> power =
                schedulePower(rng, fp.numUnits());
            ref.setUnitPower(power);
            solver.setPower(scatterPower(maps, power, ref.numCells()));
        }
        solver.loadState(ref.siliconTemps(), ref.spreaderTemps(),
                         ref.sinkTemp());
        solver.step(kTelemetryStep);
        ref.step(kTelemetryStep);
        solver.realizeSilicon(ssi);
        solver.realizeSpreader(ssp);
        const std::vector<Celsius> &ts = ref.siliconTemps();
        const std::vector<Celsius> &tp = ref.spreaderTemps();
        for (size_t i = 0; i < ts.size(); ++i) {
            max_err = std::max(max_err, std::fabs(ts[i] - ssi[i]));
            max_err = std::max(max_err, std::fabs(tp[i] - ssp[i]));
        }
        max_err = std::max(max_err,
                           std::fabs(ref.sinkTemp() - solver.sinkTemp()));
    }
    return max_err;
}

/** Free-running max divergence between the two production grids. */
double
trajectoryDivergence(int steps)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams pe;
    ThermalParams ps;
    ps.solver = ThermalSolverKind::Spectral;
    ps.spectralShadowCheck = false;
    ThermalGrid ge(fp, pe);
    ThermalGrid gs(fp, ps);

    Rng rng(kBenchSeed);
    double max_err = 0.0;
    for (int step = 0; step < steps; ++step) {
        if (step % kStepsPerDecision == 0) {
            const std::vector<Watts> power =
                schedulePower(rng, fp.numUnits());
            ge.setUnitPower(power);
            gs.setUnitPower(power);
        }
        ge.step(kTelemetryStep);
        gs.step(kTelemetryStep);
        const std::vector<Celsius> &te = ge.siliconTemps();
        const std::vector<Celsius> &ts = gs.siliconTemps();
        for (size_t i = 0; i < te.size(); ++i)
            max_err = std::max(max_err, std::fabs(te[i] - ts[i]));
    }
    return max_err;
}

struct TimingRow
{
    double stepUs = 0.0;  ///< step() only (the stage.thermal cost)
    double cycleUs = 0.0; ///< set power + step + read temperatures
};

TimingRow
timeSolver(ThermalSolverKind kind, int steps)
{
    using clock = std::chrono::steady_clock;
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params;
    params.solver = kind;
    params.spectralShadowCheck = false; // time the fast path itself
    ThermalGrid grid(fp, params);

    Rng rng(kBenchSeed);
    // Two alternating power maps so setUnitPower never short-circuits
    // on the identical-input skip.
    const std::vector<Watts> pa = schedulePower(rng, fp.numUnits());
    const std::vector<Watts> pb = schedulePower(rng, fp.numUnits());

    grid.setUnitPower(pa);
    for (int i = 0; i < 16; ++i) // warm up caches and the step plan
        grid.step(kTelemetryStep);

    const clock::time_point t0 = clock::now();
    for (int i = 0; i < steps; ++i)
        grid.step(kTelemetryStep);
    const clock::time_point t1 = clock::now();

    double checksum = 0.0;
    const clock::time_point t2 = clock::now();
    for (int i = 0; i < steps; ++i) {
        grid.setUnitPower((i & 1) != 0 ? pb : pa);
        grid.step(kTelemetryStep);
        checksum += grid.maxSiliconTemp();
    }
    const clock::time_point t3 = clock::now();
    if (!std::isfinite(checksum))
        std::fprintf(stderr, "non-finite checksum\n");

    const auto us = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double, std::micro>(b - a).count();
    };
    TimingRow row;
    row.stepUs = us(t0, t1) / steps;
    row.cycleUs = us(t2, t3) / steps;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    // The solver comparison drives a synthetic power schedule directly
    // into the grids; there is no workload dimension to override.
    requireNoWorkloadOverride(parseBenchArgs(argc, argv),
                              "thermal_solver");
    BenchReport report("thermal_solver");
    report.thermalSolver(thermalSolverName(ThermalSolverKind::Spectral));

    const Scale scale = benchScale();
    const int accuracy_steps = scale == Scale::Small ? 120
                               : scale == Scale::Paper ? 960
                                                       : 240;
    const int timing_steps = scale == Scale::Small ? 400 : 2000;
    report.config("accuracy_steps", double(accuracy_steps));
    report.config("timing_steps", double(timing_steps));
    report.config("exactness_bound_C", kExactnessBound);

    std::printf("=== thermal solver accuracy (max abs divergence, C) "
                "===\n");
    const double shadow_bound = ThermalParams{}.spectralShadowTolerance;
    const double vs_production =
        perStepDivergence(ThermalParams{}.dtSafety, accuracy_steps);
    const double vs_refined =
        perStepDivergence(kRefinedDtSafety, accuracy_steps);
    const double trajectory = trajectoryDivergence(accuracy_steps);

    TextTable accuracy;
    accuracy.setHeader({"comparison", "max abs err C", "bound C",
                        "pass"});
    accuracy.addRow({"per-step vs production explicit",
                     TextTable::num(vs_production, 4),
                     TextTable::num(shadow_bound, 2),
                     vs_production <= shadow_bound ? "yes" : "NO"});
    accuracy.addRow({"per-step vs 16x-refined explicit",
                     TextTable::num(vs_refined, 4),
                     TextTable::num(kExactnessBound, 2),
                     vs_refined <= kExactnessBound ? "yes" : "NO"});
    accuracy.addRow({"free-running trajectory",
                     TextTable::num(trajectory, 4), "(unbounded)",
                     "-"});
    accuracy.print(std::cout);
    report.addTable("accuracy", accuracy);
    report.comparison("spectral vs exact",
                      "<= 0.05 C",
                      TextTable::num(vs_refined, 4) + " C");

    std::printf("\n=== thermal solver timing (us per %g us telemetry "
                "step) ===\n", kTelemetryStep * 1e6);
    const TimingRow te = timeSolver(ThermalSolverKind::Explicit,
                                    timing_steps);
    const TimingRow ts = timeSolver(ThermalSolverKind::Spectral,
                                    timing_steps);

    TextTable timing;
    timing.setHeader({"solver", "step us", "full cycle us",
                      "step speedup", "cycle speedup"});
    timing.addRow({"explicit", TextTable::num(te.stepUs, 2),
                   TextTable::num(te.cycleUs, 2), "1.0", "1.0"});
    timing.addRow({"spectral", TextTable::num(ts.stepUs, 2),
                   TextTable::num(ts.cycleUs, 2),
                   TextTable::num(te.stepUs / ts.stepUs, 1),
                   TextTable::num(te.cycleUs / ts.cycleUs, 1)});
    timing.print(std::cout);
    report.addTable("timing", timing);
    report.comparison("thermal step speedup", ">=10x target",
                      TextTable::num(te.stepUs / ts.stepUs, 1) + "x");

    if (vs_refined > kExactnessBound) {
        std::fprintf(stderr,
                     "FAIL: spectral error vs refined reference %.4f C "
                     "exceeds the documented %.2f C bound\n",
                     vs_refined, kExactnessBound);
        return 1;
    }
    if (vs_production > shadow_bound) {
        std::fprintf(stderr,
                     "FAIL: per-step divergence %.4f C exceeds the "
                     "checked-build shadow tolerance %.2f C\n",
                     vs_production, shadow_bound);
        return 1;
    }
    return 0;
}
