/**
 * @file
 * Google-benchmark microbenchmarks of the hot paths backing the
 * Sec. V-E overhead discussion: one GBT prediction (reference walk and
 * flat engine), one controller decision, one thermal step, one
 * MLTD/severity evaluation, and one full pipeline telemetry step.
 *
 * Every benchmark runs kRepetitions times so the capturing reporter
 * can surface tail latency: the artifact's "latency" series carries
 * mean/p50/p99 per benchmark in the same schema gbt_throughput emits.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "boreas/trainer.hh"
#include "common/table.hh"
#include "control/boreas_controller.hh"
#include "ml/feature_schema.hh"
#include "ml/gbt_flat.hh"
#include "report.hh"
#include "workload/registry.hh"
#include "workload/spec2006.hh"

using namespace boreas;

namespace
{

/** --workload spec captured in main() before benchmarks run; it swaps
 *  the stimulus behind BM_PipelineTelemetryStep (default bzip2). */
std::string g_workload_spec; // NOLINT

/** Per-benchmark repetitions: enough samples for a meaningful p99 of
 *  the per-repetition timing without blowing up the wall time. */
constexpr int kRepetitions = 15;

/** Shared state built once (training is expensive). */
struct MicroState
{
    MicroState()
    {
        TrainerConfig cfg;
        cfg.data.frequencies = {3.75, 4.25, 4.75};
        cfg.data.walkSegments = 1;
        cfg.gbt.nEstimators = 223; // the paper's deployed size
        std::vector<const WorkloadSpec *> train{
            &findWorkload("povray"), &findWorkload("gromacs"),
            &findWorkload("sjeng"), &findWorkload("mcf")};
        trained = trainBoreas(pipeline, train, cfg);
        if (!g_workload_spec.empty()) {
            source = makeWorkloadSource(g_workload_spec);
            pipeline.start(*source, 1);
        } else {
            pipeline.start(findWorkload("bzip2"), 1);
        }
    }

    SimulationPipeline pipeline;
    TrainedBoreas trained;
    std::unique_ptr<WorkloadSource> source; ///< keeps the override alive
};

MicroState &
state()
{
    static MicroState s;
    return s;
}

} // namespace

/** Shared registration: repetitions give the reporter a sample set
 *  per benchmark; MinTime keeps 15 reps affordable in CI. */
static void
microBench(benchmark::internal::Benchmark *b)
{
    b->Repetitions(kRepetitions)
        ->ReportAggregatesOnly(false)
        ->MinTime(0.05);
}

static void
BM_GBTPrediction(benchmark::State &bm)
{
    MicroState &s = state();
    std::vector<double> x(s.trained.model.numFeatures(), 0.5);
    for (auto _ : bm)
        benchmark::DoNotOptimize(s.trained.model.predict(x.data()));
}
BENCHMARK(BM_GBTPrediction)->Apply(microBench);

static void
BM_FlatGBTPrediction(benchmark::State &bm)
{
    MicroState &s = state();
    const FlatGBT flat(s.trained.model);
    std::vector<double> x(flat.numFeatures(), 0.5);
    for (auto _ : bm)
        benchmark::DoNotOptimize(flat.predictOne(x.data()));
}
BENCHMARK(BM_FlatGBTPrediction)->Apply(microBench);

static void
BM_ControllerDecision(benchmark::State &bm)
{
    MicroState &s = state();
    BoreasController ml05("ML05", &s.trained.model,
                          s.trained.featureNames, 0.05,
                          kBestSensorIndex);
    CounterSet counters;
    counters[Counter::TotalCycles] = 320000;
    DecisionContext ctx;
    ctx.currentFreq = 4.0;
    ctx.counters = &counters;
    ctx.sensorReadings.assign(7, 75.0);
    ctx.vf = &s.pipeline.vfTable();
    for (auto _ : bm)
        benchmark::DoNotOptimize(ml05.decide(ctx));
}
BENCHMARK(BM_ControllerDecision)->Apply(microBench);

static void
BM_ThermalStep80us(benchmark::State &bm)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, ThermalParams{});
    std::vector<Watts> power(fp.numUnits(), 0.5);
    grid.setUnitPower(power);
    for (auto _ : bm)
        grid.step(kTelemetryStep);
}
BENCHMARK(BM_ThermalStep80us)->Apply(microBench);

static void
BM_SeverityEvaluation(benchmark::State &bm)
{
    MicroState &s = state();
    const ThermalGrid &grid = s.pipeline.thermalGrid();
    const SeverityModel &model = s.pipeline.severityModel();
    const Meters cell =
        s.pipeline.floorplan().dieWidth() / grid.nx();
    for (auto _ : bm) {
        benchmark::DoNotOptimize(model.evaluate(
            grid.siliconTemps(), grid.nx(), grid.ny(), cell));
    }
}
BENCHMARK(BM_SeverityEvaluation)->Apply(microBench);

static void
BM_PipelineTelemetryStep(benchmark::State &bm)
{
    MicroState &s = state();
    for (auto _ : bm)
        benchmark::DoNotOptimize(s.pipeline.step(4.0));
}
BENCHMARK(BM_PipelineTelemetryStep)->Apply(microBench);

static void
BM_SteadyStateSolve(benchmark::State &bm)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params;
    params.nx = 32;
    params.ny = 32;
    ThermalGrid grid(fp, params);
    std::vector<Watts> power(fp.numUnits(), 0.5);
    grid.setUnitPower(power);
    for (auto _ : bm) {
        grid.reset(kAmbient);
        benchmark::DoNotOptimize(grid.solveSteadyState());
    }
}
BENCHMARK(BM_SteadyStateSolve)->Apply(microBench);

namespace
{

/**
 * Console reporter that additionally captures each benchmark's
 * per-repetition real time (ns/iteration) so the run lands in
 * BENCH_micro_latency.json with mean/p50/p99, not just a mean.
 * Aggregate rows google-benchmark synthesizes from the repetitions
 * (mean/median/stddev) are skipped — we summarize the raw samples
 * ourselves through the shared LatencySummary schema.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Samples
    {
        std::string name;
        std::vector<double> nsPerIteration; ///< one per repetition
    };

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred ||
                run.run_type == Run::RT_Aggregate) {
                continue;
            }
            const double ns = run.real_accumulated_time /
                static_cast<double>(run.iterations) * 1e9;
            // Strip the "/repeats:N" suffix so rows keep the bare
            // benchmark name across repetition-count changes.
            std::string name = run.benchmark_name();
            name = name.substr(0, name.find('/'));
            samplesFor(name).nsPerIteration.push_back(ns);
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<Samples> benchmarks; ///< registration order

  private:
    Samples &samplesFor(const std::string &name)
    {
        for (auto &s : benchmarks)
            if (s.name == name)
                return s;
        benchmarks.push_back({name, {}});
        return benchmarks.back();
    }
};

} // namespace

int
main(int argc, char **argv)
{
    // Pull --workload out of argv before google-benchmark parses the
    // rest (it rejects flags it does not know).
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc)
            g_workload_spec = argv[++i];
        else if (arg.rfind("--workload=", 0) == 0)
            g_workload_spec = arg.substr(11);
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    boreas::bench::BenchReport report("micro_latency");
    report.predictEngine("flat");
    if (!g_workload_spec.empty())
        report.workloadSource(g_workload_spec);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    TextTable table;
    table.setHeader(
        {"benchmark", "mean ns/iter", "p50 ns/iter", "p99 ns/iter"});
    double predict_ns = 0.0, decide_ns = 0.0;
    for (const auto &b : reporter.benchmarks) {
        const boreas::bench::LatencySummary s =
            boreas::bench::summarizeLatency(b.nsPerIteration);
        table.addRow({b.name, TextTable::num(s.meanNs, 1),
                      TextTable::num(s.p50Ns, 1),
                      TextTable::num(s.p99Ns, 1)});
        report.latency(b.name, s);
        if (b.name == "BM_FlatGBTPrediction")
            predict_ns = s.p50Ns;
        else if (b.name == "BM_ControllerDecision")
            decide_ns = s.p50Ns;
    }
    report.addTable("micro_latency", table);
    if (predict_ns > 0.0) {
        report.comparison("GBT prediction latency p50 [ns]",
                          "~1000 serial ops (Sec. V-E)",
                          TextTable::num(predict_ns, 1));
    }
    if (decide_ns > 0.0) {
        report.comparison("controller decision p50 vs 960 us budget",
                          "well under 960000 ns",
                          TextTable::num(decide_ns, 1));
    }
    return 0;
}
