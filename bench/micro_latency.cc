/**
 * @file
 * Google-benchmark microbenchmarks of the hot paths backing the
 * Sec. V-E overhead discussion: one GBT prediction, one controller
 * decision, one thermal step, one MLTD/severity evaluation, and one
 * full pipeline telemetry step.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "boreas/trainer.hh"
#include "common/table.hh"
#include "control/boreas_controller.hh"
#include "ml/feature_schema.hh"
#include "report.hh"
#include "workload/registry.hh"
#include "workload/spec2006.hh"

using namespace boreas;

namespace
{

/** --workload spec captured in main() before benchmarks run; it swaps
 *  the stimulus behind BM_PipelineTelemetryStep (default bzip2). */
std::string g_workload_spec; // NOLINT

/** Shared state built once (training is expensive). */
struct MicroState
{
    MicroState()
    {
        TrainerConfig cfg;
        cfg.data.frequencies = {3.75, 4.25, 4.75};
        cfg.data.walkSegments = 1;
        cfg.gbt.nEstimators = 223; // the paper's deployed size
        std::vector<const WorkloadSpec *> train{
            &findWorkload("povray"), &findWorkload("gromacs"),
            &findWorkload("sjeng"), &findWorkload("mcf")};
        trained = trainBoreas(pipeline, train, cfg);
        if (!g_workload_spec.empty()) {
            source = makeWorkloadSource(g_workload_spec);
            pipeline.start(*source, 1);
        } else {
            pipeline.start(findWorkload("bzip2"), 1);
        }
    }

    SimulationPipeline pipeline;
    TrainedBoreas trained;
    std::unique_ptr<WorkloadSource> source; ///< keeps the override alive
};

MicroState &
state()
{
    static MicroState s;
    return s;
}

} // namespace

static void
BM_GBTPrediction(benchmark::State &bm)
{
    MicroState &s = state();
    std::vector<double> x(s.trained.model.numFeatures(), 0.5);
    for (auto _ : bm)
        benchmark::DoNotOptimize(s.trained.model.predict(x.data()));
}
BENCHMARK(BM_GBTPrediction);

static void
BM_ControllerDecision(benchmark::State &bm)
{
    MicroState &s = state();
    BoreasController ml05("ML05", &s.trained.model,
                          s.trained.featureNames, 0.05,
                          kBestSensorIndex);
    CounterSet counters;
    counters[Counter::TotalCycles] = 320000;
    DecisionContext ctx;
    ctx.currentFreq = 4.0;
    ctx.counters = &counters;
    ctx.sensorReadings.assign(7, 75.0);
    ctx.vf = &s.pipeline.vfTable();
    for (auto _ : bm)
        benchmark::DoNotOptimize(ml05.decide(ctx));
}
BENCHMARK(BM_ControllerDecision);

static void
BM_ThermalStep80us(benchmark::State &bm)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, ThermalParams{});
    std::vector<Watts> power(fp.numUnits(), 0.5);
    grid.setUnitPower(power);
    for (auto _ : bm)
        grid.step(kTelemetryStep);
}
BENCHMARK(BM_ThermalStep80us);

static void
BM_SeverityEvaluation(benchmark::State &bm)
{
    MicroState &s = state();
    const ThermalGrid &grid = s.pipeline.thermalGrid();
    const SeverityModel &model = s.pipeline.severityModel();
    const Meters cell =
        s.pipeline.floorplan().dieWidth() / grid.nx();
    for (auto _ : bm) {
        benchmark::DoNotOptimize(model.evaluate(
            grid.siliconTemps(), grid.nx(), grid.ny(), cell));
    }
}
BENCHMARK(BM_SeverityEvaluation);

static void
BM_PipelineTelemetryStep(benchmark::State &bm)
{
    MicroState &s = state();
    for (auto _ : bm)
        benchmark::DoNotOptimize(s.pipeline.step(4.0));
}
BENCHMARK(BM_PipelineTelemetryStep);

static void
BM_SteadyStateSolve(benchmark::State &bm)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params;
    params.nx = 32;
    params.ny = 32;
    ThermalGrid grid(fp, params);
    std::vector<Watts> power(fp.numUnits(), 0.5);
    grid.setUnitPower(power);
    for (auto _ : bm) {
        grid.reset(kAmbient);
        benchmark::DoNotOptimize(grid.solveSteadyState());
    }
}
BENCHMARK(BM_SteadyStateSolve);

namespace
{

/**
 * Console reporter that additionally captures each benchmark's
 * per-iteration real time so the run lands in BENCH_micro_latency.json.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string name;
        double nsPerIteration;
    };

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            rows.push_back({run.benchmark_name(),
                            run.real_accumulated_time /
                                static_cast<double>(run.iterations) *
                                1e9});
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<Row> rows;
};

} // namespace

int
main(int argc, char **argv)
{
    // Pull --workload out of argv before google-benchmark parses the
    // rest (it rejects flags it does not know).
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload" && i + 1 < argc)
            g_workload_spec = argv[++i];
        else if (arg.rfind("--workload=", 0) == 0)
            g_workload_spec = arg.substr(11);
        else
            argv[kept++] = argv[i];
    }
    argc = kept;

    boreas::bench::BenchReport report("micro_latency");
    if (!g_workload_spec.empty())
        report.workloadSource(g_workload_spec);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    TextTable table;
    table.setHeader({"benchmark", "real ns/iter"});
    double predict_ns = 0.0, decide_ns = 0.0;
    for (const auto &row : reporter.rows) {
        table.addRow({row.name, TextTable::num(row.nsPerIteration, 1)});
        if (row.name == "BM_GBTPrediction")
            predict_ns = row.nsPerIteration;
        else if (row.name == "BM_ControllerDecision")
            decide_ns = row.nsPerIteration;
    }
    report.addTable("micro_latency", table);
    if (predict_ns > 0.0) {
        report.comparison("GBT prediction latency [ns]",
                          "~1000 serial ops (Sec. V-E)",
                          TextTable::num(predict_ns, 1));
    }
    if (decide_ns > 0.0) {
        report.comparison("controller decision vs 960 us budget",
                          "well under 960000 ns",
                          TextTable::num(decide_ns, 1));
    }
    return 0;
}
