#include "harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace boreas::bench
{

Scale
benchScale()
{
    const char *env = std::getenv("BOREAS_BENCH_SCALE");
    if (env == nullptr)
        return Scale::Full;
    if (std::strcmp(env, "small") == 0)
        return Scale::Small;
    if (std::strcmp(env, "paper") == 0)
        return Scale::Paper;
    if (std::strcmp(env, "full") == 0)
        return Scale::Full;
    boreas_fatal("BOREAS_BENCH_SCALE must be small|full|paper, got '%s'",
                 env);
}

ThermalSolverKind
benchThermalSolver()
{
    const char *env = std::getenv("BOREAS_THERMAL_SOLVER");
    if (env == nullptr)
        return ThermalSolverKind::Spectral;
    return parseThermalSolverName(env);
}

PipelineConfig
benchPipelineConfig()
{
    PipelineConfig config;
    config.thermal.solver = benchThermalSolver();
    return config;
}

std::unique_ptr<WorkloadSource>
BenchOptions::makeSource() const
{
    boreas_assert(hasWorkload(),
                  "makeSource() without a --workload override");
    return makeWorkloadSource(workloadSpec);
}

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--workload") == 0 && i + 1 < argc) {
            options.workloadSpec = argv[++i];
        } else if (std::strncmp(arg, "--workload=", 11) == 0) {
            options.workloadSpec = arg + 11;
        } else {
            boreas_fatal(
                "unknown bench argument '%s'\n"
                "usage: %s [--workload <source-spec>]\n%s",
                arg, argv[0], workloadSourceGrammar().c_str());
        }
    }
    return options;
}

void
requireNoWorkloadOverride(const BenchOptions &options,
                          const char *bench_name)
{
    if (options.hasWorkload()) {
        boreas_fatal("%s has no workload dimension; --workload does "
                     "not apply", bench_name);
    }
}

DatasetConfig
datasetConfigFor(Scale scale)
{
    DatasetConfig cfg;
    cfg.baseSeed = kBenchSeed;
    switch (scale) {
      case Scale::Small:
        cfg.frequencies = {3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0};
        cfg.constSegments = 1;
        cfg.walkSegments = 2;
        break;
      case Scale::Full:
        cfg.constSegments = 1;
        cfg.walkSegments = 8;
        break;
      case Scale::Paper:
        // ~20 workloads x 13 freqs x 10 segments x 138 instances
        // ~ 360K const instances + walks: the 500K-instance class.
        cfg.constSegments = 10;
        cfg.walkSegments = 40;
        break;
    }
    return cfg;
}

std::unique_ptr<BoreasController>
ExperimentContext::mlController(double guardband) const
{
    const int pct = static_cast<int>(guardband * 100.0 + 0.5);
    return std::make_unique<BoreasController>(
        strfmt("ML%02d", pct), &trained.model, trained.featureNames,
        guardband, kBestSensorIndex);
}

std::unique_ptr<ThermalThresholdController>
ExperimentContext::thController(Celsius offset) const
{
    return std::make_unique<ThermalThresholdController>(
        strfmt("TH-%02d", static_cast<int>(offset)), thTable, offset,
        kBestSensorIndex);
}

std::unique_ptr<PhaseThermalController>
ExperimentContext::crController() const
{
    return std::make_unique<PhaseThermalController>(
        "CochranReda", &trained.phaseModel, thTable, 0.0,
        kBestSensorIndex);
}

std::unique_ptr<ExperimentContext>
buildExperimentContext()
{
    auto ctx = std::make_unique<ExperimentContext>(benchPipelineConfig());

    const Scale scale = benchScale();
    std::fprintf(stderr,
                 "[bench] training Boreas (scale=%s, thermal=%s)...\n",
                 scale == Scale::Small ? "small"
                 : scale == Scale::Paper ? "paper" : "full",
                 thermalSolverName(benchThermalSolver()));

    TrainerConfig tcfg;
    tcfg.data = datasetConfigFor(scale);
    ctx->trained = trainBoreas(ctx->pipeline, trainWorkloads(), tcfg);
    std::fprintf(stderr, "[bench] trained on %zu instances\n",
                 ctx->trained.trainData.numRows());

    ctx->thTable = buildThTable(ctx->pipeline);
    return ctx;
}

CriticalTempTable
buildThTable(SimulationPipeline &pipeline)
{
    std::fprintf(stderr, "[bench] deriving TH critical temps...\n");
    const CriticalTempStudy study = criticalTempStudy(
        pipeline, trainWorkloads(), pipeline.vfTable().frequencies(),
        kBestSensorIndex, kBenchSeed);
    return study.globalTable();
}

EvalRow
evaluateController(SimulationPipeline &pipeline,
                   const WorkloadSpec &workload,
                   FrequencyController &controller, uint64_t seed)
{
    const RunResult run = pipeline.runWithController(
        workload, seed, controller, kBaselineFrequency);
    EvalRow row;
    row.workload = workload.name;
    row.controller = controller.name();
    row.avgFreq = run.averageFrequency();
    row.normalized = row.avgFreq / kBaselineFrequency;
    row.peakSeverity = run.peakSeverity();
    row.incursions = run.incursionSteps();
    return row;
}

EvalRow
evaluateController(SimulationPipeline &pipeline,
                   const WorkloadSource &source,
                   FrequencyController &controller, uint64_t seed)
{
    const auto clone = source.clone();
    const RunResult run = pipeline.runWithController(
        *clone, seed, controller, kBaselineFrequency);
    EvalRow row;
    row.workload = source.name();
    row.controller = controller.name();
    row.avgFreq = run.averageFrequency();
    row.normalized = row.avgFreq / kBaselineFrequency;
    row.peakSeverity = run.peakSeverity();
    row.incursions = run.incursionSteps();
    return row;
}

std::vector<RunResult>
runAll(const PipelineConfig &config, const std::vector<RunTask> &tasks)
{
    std::vector<RunResult> results(tasks.size());
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(tasks.size()), 1,
        [&](int64_t lo, int64_t hi) {
            SimulationPipeline local(config);
            for (int64_t j = lo; j < hi; ++j) {
                const RunTask &task = tasks[j];
                const auto controller = task.makeController();
                if (task.source != nullptr) {
                    const auto src = task.source->clone();
                    results[j] = local.runWithController(
                        *src, task.seed, *controller, task.initialFreq);
                } else {
                    results[j] = local.runWithController(
                        *task.workload, task.seed, *controller,
                        task.initialFreq);
                }
            }
        });
    return results;
}

std::vector<std::vector<EvalRow>>
evaluateGrid(const PipelineConfig &config,
             const std::vector<const WorkloadSpec *> &workloads,
             const std::vector<ControllerFactory> &controllers,
             uint64_t seed)
{
    std::vector<RunTask> tasks;
    tasks.reserve(workloads.size() * controllers.size());
    for (const WorkloadSpec *w : workloads) {
        for (const ControllerFactory &make : controllers)
            tasks.push_back({w, make, seed, kBaselineFrequency});
    }
    const std::vector<RunResult> runs = runAll(config, tasks);

    std::vector<std::vector<EvalRow>> grid(workloads.size());
    size_t j = 0;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        grid[wi].resize(controllers.size());
        for (size_t ci = 0; ci < controllers.size(); ++ci, ++j) {
            const RunResult &run = runs[j];
            EvalRow &row = grid[wi][ci];
            row.workload = workloads[wi]->name;
            row.controller = controllers[ci]()->name();
            row.avgFreq = run.averageFrequency();
            row.normalized = row.avgFreq / kBaselineFrequency;
            row.peakSeverity = run.peakSeverity();
            row.incursions = run.incursionSteps();
        }
    }
    return grid;
}

std::vector<std::vector<EvalRow>>
evaluateGrid(const PipelineConfig &config,
             const std::vector<const WorkloadSource *> &sources,
             const std::vector<ControllerFactory> &controllers,
             uint64_t seed)
{
    std::vector<RunTask> tasks;
    tasks.reserve(sources.size() * controllers.size());
    for (const WorkloadSource *s : sources) {
        for (const ControllerFactory &make : controllers)
            tasks.push_back(
                {nullptr, make, seed, kBaselineFrequency, s});
    }
    const std::vector<RunResult> runs = runAll(config, tasks);

    std::vector<std::vector<EvalRow>> grid(sources.size());
    size_t j = 0;
    for (size_t wi = 0; wi < sources.size(); ++wi) {
        grid[wi].resize(controllers.size());
        for (size_t ci = 0; ci < controllers.size(); ++ci, ++j) {
            const RunResult &run = runs[j];
            EvalRow &row = grid[wi][ci];
            row.workload = sources[wi]->name();
            row.controller = controllers[ci]()->name();
            row.avgFreq = run.averageFrequency();
            row.normalized = row.avgFreq / kBaselineFrequency;
            row.peakSeverity = run.peakSeverity();
            row.incursions = run.incursionSteps();
        }
    }
    return grid;
}

} // namespace boreas::bench
