#include "harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace boreas::bench
{

Scale
benchScale()
{
    const char *env = std::getenv("BOREAS_BENCH_SCALE");
    if (env == nullptr)
        return Scale::Full;
    if (std::strcmp(env, "small") == 0)
        return Scale::Small;
    if (std::strcmp(env, "paper") == 0)
        return Scale::Paper;
    if (std::strcmp(env, "full") == 0)
        return Scale::Full;
    boreas_fatal("BOREAS_BENCH_SCALE must be small|full|paper, got '%s'",
                 env);
}

DatasetConfig
datasetConfigFor(Scale scale)
{
    DatasetConfig cfg;
    cfg.baseSeed = kBenchSeed;
    switch (scale) {
      case Scale::Small:
        cfg.frequencies = {3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0};
        cfg.constSegments = 1;
        cfg.walkSegments = 2;
        break;
      case Scale::Full:
        cfg.constSegments = 1;
        cfg.walkSegments = 8;
        break;
      case Scale::Paper:
        // ~20 workloads x 13 freqs x 10 segments x 138 instances
        // ~ 360K const instances + walks: the 500K-instance class.
        cfg.constSegments = 10;
        cfg.walkSegments = 40;
        break;
    }
    return cfg;
}

std::unique_ptr<BoreasController>
ExperimentContext::mlController(double guardband) const
{
    const int pct = static_cast<int>(guardband * 100.0 + 0.5);
    return std::make_unique<BoreasController>(
        strfmt("ML%02d", pct), &trained.model, trained.featureNames,
        guardband, kBestSensorIndex);
}

std::unique_ptr<ThermalThresholdController>
ExperimentContext::thController(Celsius offset) const
{
    return std::make_unique<ThermalThresholdController>(
        strfmt("TH-%02d", static_cast<int>(offset)), thTable, offset,
        kBestSensorIndex);
}

std::unique_ptr<PhaseThermalController>
ExperimentContext::crController() const
{
    return std::make_unique<PhaseThermalController>(
        "CochranReda", &trained.phaseModel, thTable, 0.0,
        kBestSensorIndex);
}

std::unique_ptr<ExperimentContext>
buildExperimentContext()
{
    auto ctx = std::make_unique<ExperimentContext>();

    const Scale scale = benchScale();
    std::fprintf(stderr,
                 "[bench] training Boreas (scale=%s)...\n",
                 scale == Scale::Small ? "small"
                 : scale == Scale::Paper ? "paper" : "full");

    TrainerConfig tcfg;
    tcfg.data = datasetConfigFor(scale);
    ctx->trained = trainBoreas(ctx->pipeline, trainWorkloads(), tcfg);
    std::fprintf(stderr, "[bench] trained on %zu instances\n",
                 ctx->trained.trainData.numRows());

    ctx->thTable = buildThTable(ctx->pipeline);
    return ctx;
}

CriticalTempTable
buildThTable(SimulationPipeline &pipeline)
{
    std::fprintf(stderr, "[bench] deriving TH critical temps...\n");
    const CriticalTempStudy study = criticalTempStudy(
        pipeline, trainWorkloads(), pipeline.vfTable().frequencies(),
        kBestSensorIndex, kBenchSeed);
    return study.globalTable();
}

EvalRow
evaluateController(SimulationPipeline &pipeline,
                   const WorkloadSpec &workload,
                   FrequencyController &controller, uint64_t seed)
{
    const RunResult run = pipeline.runWithController(
        workload, seed, controller, kBaselineFrequency);
    EvalRow row;
    row.workload = workload.name;
    row.controller = controller.name();
    row.avgFreq = run.averageFrequency();
    row.normalized = row.avgFreq / kBaselineFrequency;
    row.peakSeverity = run.peakSeverity();
    row.incursions = run.incursionSteps();
    return row;
}

} // namespace boreas::bench
