/**
 * @file
 * Developer diagnostics: run selected workloads across the VF grid and
 * print power/temperature/severity magnitudes. Used to sanity-check the
 * power and thermal calibration; not part of the paper reproduction.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "workload/spec2006.hh"

using namespace boreas;

int
main(int argc, char **argv)
{
    std::vector<std::string> names = {"povray", "hmmer", "gamess",
                                      "gromacs", "libquantum", "mcf",
                                      "cactusADM", "bzip2"};
    if (argc > 1) {
        names.clear();
        for (int i = 1; i < argc; ++i)
            names.push_back(argv[i]);
    }

    SimulationPipeline pipeline;
    const std::vector<GHz> freqs = {2.0, 3.0, 3.75, 4.0, 4.25, 4.5,
                                    4.75, 5.0};

    std::printf("%-12s %6s %8s %8s %8s %8s %8s %8s\n", "workload",
                "GHz", "power", "maxT", "maxMLTD", "peakSev", "Tsens3",
                "design");
    for (const auto &name : names) {
        const WorkloadSpec &w = findWorkload(name);
        for (GHz f : freqs) {
            const RunResult run =
                pipeline.runConstantFrequency(w, 42, f);
            double avg_power = 0.0, peak_sev = 0.0;
            Celsius max_t = 0.0, max_mltd = 0.0, last_sens = 0.0;
            for (const auto &s : run.steps) {
                avg_power += s.totalPower;
                peak_sev = std::max(peak_sev, s.severity.maxSeverity);
                max_t = std::max(max_t, s.severity.maxTemp);
                max_mltd = std::max(max_mltd, s.severity.maxMltd);
            }
            avg_power /= run.steps.size();
            last_sens = run.steps.back().sensorReadings[3];
            std::printf("%-12s %6.2f %8.2f %8.2f %8.2f %8.3f %8.2f %8.2f\n",
                        name.c_str(), f, avg_power, max_t, max_mltd,
                        peak_sev, last_sens,
                        designOracleFrequency(name));
        }
    }
    return 0;
}
