/**
 * @file
 * Developer diagnostics: closed-loop ML05 run on one workload with
 * per-decision predicted-vs-actual severity. Finds where the controller
 * is being misled.
 */

#include <cstdio>

#include "boreas/trainer.hh"
#include "control/boreas_controller.hh"
#include "workload/spec2006.hh"

using namespace boreas;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "omnetpp";

    SimulationPipeline pipeline;
    TrainerConfig tcfg;
    tcfg.data.walkSegments = 8;
    tcfg.data.baseSeed = 2023;
    std::fprintf(stderr, "training...\n");
    const TrainedBoreas trained =
        trainBoreas(pipeline, trainWorkloads(), tcfg);

    BoreasController ml05("ML05", &trained.model, trained.featureNames,
                          0.05, kBestSensorIndex);

    const WorkloadSpec &w = findWorkload(name);
    pipeline.start(w, 2023);
    ml05.reset();

    GHz freq = kBaselineFrequency;
    std::vector<StepRecord> steps;
    std::printf("dec  freq->next  predCur predUp  window_actual  "
                "tsens3\n");
    double window_max = 0.0;
    for (int s = 0; s < kTraceSteps; ++s) {
        steps.push_back(pipeline.step(freq));
        window_max = std::max(window_max,
                              steps.back().severity.maxSeverity);
        if ((s + 1) % kStepsPerDecision == 0 && s + 1 < kTraceSteps) {
            DecisionContext ctx;
            ctx.currentFreq = freq;
            ctx.counters = &steps.back().counters;
            ctx.sensorReadings = steps.back().sensorReadings;
            ctx.vf = &pipeline.vfTable();
            const double pred_cur =
                ml05.predictSeverity(ctx, freq);
            const double pred_up = ml05.predictSeverity(
                ctx, pipeline.vfTable().stepUp(freq));
            const GHz next = ml05.decide(ctx);
            std::printf("%3d  %.2f->%.2f  %7.3f %7.3f  (last win max "
                        "%.3f)  %6.2f\n",
                        (s + 1) / 12, freq, next, pred_cur, pred_up,
                        window_max,
                        ctx.sensorReadings[kBestSensorIndex]);
            freq = next;
            window_max = 0.0;
        }
    }
    return 0;
}
