/**
 * @file
 * Developer diagnostics for the trained severity model: feature
 * importance, held-out MSE, and predicted-vs-actual traces on selected
 * test workloads. Not part of the paper reproduction.
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "boreas/dataset_builder.hh"
#include "boreas/trainer.hh"
#include "ml/feature_schema.hh"
#include "workload/spec2006.hh"

using namespace boreas;

int
main()
{
    SimulationPipeline pipeline;

    TrainerConfig tcfg;
    tcfg.data.walkSegments = 4;
    tcfg.data.baseSeed = 2023;
    std::fprintf(stderr, "training...\n");
    const TrainedBoreas trained =
        trainBoreas(pipeline, trainWorkloads(), tcfg);
    std::printf("train rows: %zu\n", trained.trainData.numRows());
    std::printf("train MSE (deployed): %.5f\n",
                trained.model.mse(trained.trainData));
    std::printf("train MSE (full78):   %.5f\n",
                trained.fullModel.mse(trained.fullTrainData));

    // Importance of the full model, top 12.
    const auto gains = trained.fullModel.featureImportance();
    std::vector<size_t> order(gains.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return gains[a] > gains[b]; });
    std::printf("\nfull-model importance (top 12):\n");
    for (size_t i = 0; i < 12; ++i)
        std::printf("  %-32s %.4f\n",
                    fullFeatureSchema()[order[i]].c_str(),
                    gains[order[i]]);

    // Deployed model importance.
    const auto dgains = trained.model.featureImportance();
    std::vector<size_t> dorder(dgains.size());
    std::iota(dorder.begin(), dorder.end(), 0);
    std::sort(dorder.begin(), dorder.end(),
              [&](size_t a, size_t b) { return dgains[a] > dgains[b]; });
    std::printf("\ndeployed-model importance (top 8):\n");
    for (size_t i = 0; i < 8; ++i)
        std::printf("  %-32s %.4f\n",
                    trained.featureNames[dorder[i]].c_str(),
                    dgains[dorder[i]]);

    // Held-out evaluation.
    DatasetConfig eval_cfg = tcfg.data;
    eval_cfg.intensityAugments = {1.0};
    eval_cfg.walkSegments = 2;
    const BuiltData eval =
        buildTrainingData(pipeline, testWorkloads(), eval_cfg);
    std::printf("\ntest rows: %zu\n", eval.severity.numRows());
    std::printf("test MSE (deployed): %.5f\n",
                evaluateMse(trained.model, trained.featureNames,
                            eval.severity));

    // Per-test-workload MSE.
    for (const WorkloadSpec *w : testWorkloads()) {
        const Dataset sub = eval.severity.selectGroups(
            {static_cast<int>(w->seedSalt)});
        if (sub.numRows() == 0)
            continue;
        std::printf("  %-10s MSE %.5f\n", w->name.c_str(),
                    evaluateMse(trained.model, trained.featureNames,
                                sub));
    }

    // Predicted vs actual on gamess @ 4.5 GHz.
    const Dataset view = eval.severity.selectFeatures(
        featureIndicesOf(trained.featureNames));
    std::printf("\ngamess predicted vs actual (sampled):\n");
    int shown = 0;
    for (size_t r = 0; r < view.numRows() && shown < 15; ++r) {
        if (view.group(r) !=
            static_cast<int>(findWorkload("gamess").seedSalt))
            continue;
        const double freq =
            eval.severity.x(r, kFreqFeatureIndex);
        if (freq != 4.5 || (r % 17) != 0)
            continue;
        std::printf("  temp=%6.2f freq=%.2f pred=%.3f actual=%.3f\n",
                    eval.severity.x(r, kTempFeatureIndex), freq,
                    trained.model.predict(view.row(r)), view.y(r));
        ++shown;
    }
    return 0;
}
