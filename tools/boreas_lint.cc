/**
 * @file
 * CLI for the Boreas repo linter (see tools/lint/linter.hh for the
 * rule set). Usage:
 *
 *   boreas_lint <file-or-dir>...
 *
 * Prints one "file:line: [rule] message" per violation and exits
 * nonzero if any were found. Registered as the `boreas_lint` ctest
 * check over src/.
 */

#include <cstdio>
#include <vector>

#include "lint/linter.hh"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <file-or-dir>...\n", argv[0]);
        return 2;
    }

    std::vector<boreas::lint::Violation> violations;
    for (int i = 1; i < argc; ++i) {
        const auto v = boreas::lint::lintPath(argv[i]);
        violations.insert(violations.end(), v.begin(), v.end());
    }

    for (const auto &v : violations)
        std::fprintf(stderr, "%s\n", boreas::lint::format(v).c_str());
    if (!violations.empty()) {
        std::fprintf(stderr, "boreas_lint: %zu violation(s)\n",
                     violations.size());
        return 1;
    }
    std::printf("boreas_lint: clean\n");
    return 0;
}
