/**
 * @file
 * CLI for the Boreas repo linter (see tools/lint/linter.hh for the
 * rule set and suppression syntax). Usage:
 *
 *   boreas_lint [options] <file-or-dir>...
 *
 *   --repo-root DIR        report repo-relative paths and run the
 *                          include-graph pass (layering + cycles)
 *   --sarif FILE           also write findings as SARIF 2.1.0
 *   --baseline FILE        suppress findings listed in the baseline
 *                          (checked-in acknowledged debt)
 *   --write-baseline FILE  write the current findings as a baseline
 *                          and exit 0 (debt-adoption escape hatch)
 *
 * Prints one "file:line: [rule] message" per violation and exits
 * nonzero if any non-baselined were found. Registered as the
 * `boreas_lint` ctest check over the whole repo.
 */

#include <chrono> // boreas-lint: allow(wall-clock)
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/baseline.hh"
#include "lint/linter.hh"
#include "lint/sarif.hh"

namespace
{

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
    return static_cast<bool>(out);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--repo-root DIR] [--sarif FILE] "
                 "[--baseline FILE] [--write-baseline FILE] "
                 "<file-or-dir>...\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // CLI self-timing for the CI job summary; nothing downstream
    // consumes it. boreas-lint: allow(wall-clock)
    const auto t0 = std::chrono::steady_clock::now();

    std::string repo_root, sarif_path, baseline_path, write_baseline;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--repo-root") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            repo_root = v;
        } else if (arg == "--sarif") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            sarif_path = v;
        } else if (arg == "--baseline") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            baseline_path = v;
        } else if (arg == "--write-baseline") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            write_baseline = v;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty())
        return usage(argv[0]);

    boreas::lint::TreeLintOptions opts;
    opts.repoRoot = repo_root;
    opts.includeGraph = !repo_root.empty();
    const boreas::lint::TreeLintResult result =
        boreas::lint::lintTree(roots, opts);

    if (!write_baseline.empty()) {
        const std::string text =
            boreas::lint::writeBaseline(result.violations);
        if (!writeFile(write_baseline, text)) {
            std::fprintf(stderr, "boreas_lint: cannot write %s\n",
                         write_baseline.c_str());
            return 2;
        }
        std::printf("boreas_lint: wrote baseline (%zu finding(s)) "
                    "to %s\n",
                    result.violations.size(), write_baseline.c_str());
        return 0;
    }

    std::vector<boreas::lint::Violation> violations =
        result.violations;
    size_t baselined = 0;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "boreas_lint: cannot read %s\n",
                         baseline_path.c_str());
            return 2;
        }
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const boreas::lint::Baseline base =
            boreas::lint::parseBaseline(text);
        violations = boreas::lint::filterBaselined(violations, base);
        baselined = result.violations.size() - violations.size();
    }

    if (!sarif_path.empty() &&
        !writeFile(sarif_path, boreas::lint::toSarif(violations))) {
        std::fprintf(stderr, "boreas_lint: cannot write %s\n",
                     sarif_path.c_str());
        return 2;
    }

    for (const auto &v : violations)
        std::fprintf(stderr, "%s\n", boreas::lint::format(v).c_str());

    // boreas-lint: allow(wall-clock)
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    const double ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    if (!violations.empty()) {
        std::fprintf(stderr,
                     "boreas_lint: %zu violation(s) in %d file(s) "
                     "(%zu baselined) [%.0f ms]\n",
                     violations.size(), result.filesScanned,
                     baselined, ms);
        return 1;
    }
    std::printf("boreas_lint: clean (%d files, %zu baselined, "
                "%.0f ms)\n",
                result.filesScanned, baselined, ms);
    return 0;
}
