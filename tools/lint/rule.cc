#include "lint/rule.hh"

#include <algorithm>
#include <cctype>

namespace boreas::lint
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
pathContains(const std::string &path, const std::string &fragment)
{
    return path.find(fragment) != std::string::npos;
}

namespace
{

bool
hasSegment(const std::string &path, const std::string &seg)
{
    // Match `seg` as a whole path component (start-of-string or '/'
    // on the left, '/' on the right).
    size_t pos = 0;
    while ((pos = path.find(seg, pos)) != std::string::npos) {
        const bool left = pos == 0 || path[pos - 1] == '/';
        const size_t end = pos + seg.size();
        const bool right = end < path.size() && path[end] == '/';
        if (left && right)
            return true;
        pos = end;
    }
    return false;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".h") ||
        endsWith(path, ".hpp");
}

bool
lineAllows(const ScannedLine &line, const std::string &rule)
{
    const std::string marker = "boreas-lint: allow(" + rule + ")";
    return line.comment.find(marker) != std::string::npos;
}

} // namespace

Zone
zoneOf(const std::string &path)
{
    if (hasSegment(path, "lint_fixtures"))
        return Zone::Fixture;
    if (hasSegment(path, "src"))
        return Zone::Src;
    if (hasSegment(path, "bench"))
        return Zone::Bench;
    if (hasSegment(path, "tests"))
        return Zone::Tests;
    if (hasSegment(path, "tools"))
        return Zone::Tools;
    return Zone::Other;
}

FileContext
makeFileContext(const std::string &path, const std::string &content)
{
    FileContext ctx;
    ctx.path = path;
    ctx.zone = zoneOf(path);
    ctx.header = isHeaderPath(path);
    ctx.rawLines = splitLines(content);
    ctx.lexed = lex(content);

    // File-scope suppressions: `// boreas-lint: allow-file(<rule>)`
    // markers are honored only in the file header — the leading run
    // of comment-only/blank lines before the first code line — so a
    // reviewer finds every file-wide exception in one screenful.
    for (const ScannedLine &line : ctx.lexed.lines) {
        const bool blank_code = std::all_of(
            line.code.begin(), line.code.end(), [](unsigned char c) {
                return std::isspace(c);
            });
        if (!blank_code)
            break;
        static const std::string kMarker = "boreas-lint: allow-file(";
        size_t pos = 0;
        while ((pos = line.comment.find(kMarker, pos)) !=
               std::string::npos) {
            const size_t start = pos + kMarker.size();
            const size_t close = line.comment.find(')', start);
            if (close == std::string::npos)
                break;
            ctx.allowFile.insert(
                line.comment.substr(start, close - start));
            pos = close + 1;
        }
    }
    return ctx;
}

bool
allows(const FileContext &ctx, size_t i, const std::string &rule)
{
    if (ctx.allowFile.count(rule))
        return true;
    const auto &lines = ctx.lexed.lines;
    if (i >= lines.size())
        return false;
    if (lineAllows(lines[i], rule))
        return true;
    if (i == 0)
        return false;
    const ScannedLine &prev = lines[i - 1];
    const bool comment_only = std::all_of(
        prev.code.begin(), prev.code.end(),
        [](unsigned char c) { return std::isspace(c); });
    return comment_only && lineAllows(prev, rule);
}

const std::vector<Rule> &
ruleRegistry()
{
    static const std::vector<Rule> kRules = [] {
        std::vector<Rule> rules;
        registerStyleRules(rules);
        registerConcurrencyRules(rules);
        return rules;
    }();
    return kRules;
}

std::string
ruleSummary(const std::string &id)
{
    for (const Rule &r : ruleRegistry()) {
        if (id == r.id)
            return r.summary;
    }
    // Repo-level passes and the reader's own diagnostics.
    if (id == "layering")
        return "include crosses the declared module layering DAG";
    if (id == "include-cycle")
        return "include cycle between repo headers";
    if (id == "io")
        return "file could not be read";
    return "boreas_lint finding";
}

} // namespace boreas::lint
