#include "lint/lexer.hh"

#include <cctype>

namespace boreas::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isRawStringPrefix(const std::string &ident)
{
    return ident == "R" || ident == "LR" || ident == "uR" ||
        ident == "UR" || ident == "u8R";
}

/** d-chars may not contain space, parens, or backslash; max 16. */
bool
isRawDelimChar(char c)
{
    return c != ' ' && c != '(' && c != ')' && c != '\\' &&
        c != '\t' && c != '\n';
}

/** Multi-char punctuators, longest first within each leading char. */
const char *const kPunct3[] = {"<<=", ">>=", "...", "->*"};
const char *const kPunct2[] = {"::", "->", "++", "--", "<<", ">>",
                               "<=", ">=", "==", "!=", "&&", "||",
                               "+=", "-=", "*=", "/=", "%=", "&=",
                               "|=", "^=", "##"};

} // namespace

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    size_t start = 0;
    for (;;) {
        const size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(content.substr(start));
            return lines;
        }
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
}

LexedFile
lex(const std::string &content)
{
    LexedFile out;
    out.lines.push_back({});

    bool pp_line = false;       // current line is a #-directive
    bool pp_continues = false;  // previous pp line ended in backslash
    bool line_has_code = false; // non-space code seen on this line

    auto newline = [&] {
        out.lines.push_back({});
        pp_line = pp_continues;
        pp_continues = false;
        line_has_code = pp_line;
    };
    auto emit = [&](TokenKind kind, std::string text) {
        if (!pp_line)
            out.tokens.push_back(
                {kind, std::move(text),
                 static_cast<int>(out.lines.size())});
    };

    const size_t n = content.size();
    size_t i = 0;
    while (i < n) {
        ScannedLine &cur = out.lines.back();
        const char c = content[i];
        const char next = i + 1 < n ? content[i + 1] : '\0';

        if (c == '\n') {
            newline();
            ++i;
            continue;
        }

        // Comments.
        if (c == '/' && next == '/') {
            const size_t nl = content.find('\n', i);
            const size_t end = nl == std::string::npos ? n : nl;
            cur.comment.append(content, i + 2, end - i - 2);
            i = end;
            continue;
        }
        if (c == '/' && next == '*') {
            i += 2;
            for (;;) {
                if (i >= n)
                    break;
                if (content[i] == '*' && i + 1 < n &&
                    content[i + 1] == '/') {
                    i += 2;
                    break;
                }
                if (content[i] == '\n')
                    newline();
                else
                    out.lines.back().comment.push_back(content[i]);
                ++i;
            }
            continue;
        }

        // Preprocessor directive start: '#' as the first non-space
        // code character of the line.
        if (c == '#' && !line_has_code) {
            pp_line = true;
            line_has_code = true;
            cur.code.push_back('#');
            ++i;
            continue;
        }
        if (pp_line && c == '\\' && (next == '\n' || next == '\0')) {
            pp_continues = true;
            cur.code.push_back('\\');
            ++i;
            continue;
        }

        // Identifiers (and possibly a raw-string prefix).
        if (isIdentStart(c)) {
            size_t j = i;
            while (j < n && isIdentChar(content[j]))
                ++j;
            const std::string ident = content.substr(i, j - i);
            cur.code.append(ident);
            line_has_code = true;
            if (j < n && content[j] == '"' &&
                isRawStringPrefix(ident)) {
                // Candidate raw string literal: R"delim( ... )delim".
                // Validate the delimiter before committing; malformed
                // forms lex as an ordinary string instead.
                size_t paren = j + 1;
                while (paren < n && paren <= j + 17 &&
                       isRawDelimChar(content[paren]))
                    ++paren;
                if (paren < n && paren <= j + 17 &&
                    content[paren] == '(') {
                    const std::string delim =
                        ")" + content.substr(j + 1, paren - j - 1) +
                        "\"";
                    const size_t close =
                        content.find(delim, paren + 1);
                    out.lines.back().code.push_back('"');
                    emit(TokenKind::String, "\"\"");
                    if (close == std::string::npos) {
                        // Unterminated: blank to EOF, keep lines.
                        for (size_t k = paren + 1; k < n; ++k) {
                            if (content[k] == '\n')
                                newline();
                        }
                        i = n;
                        continue;
                    }
                    for (size_t k = j + 1;
                         k < close + delim.size() - 1; ++k) {
                        if (content[k] == '\n')
                            newline();
                    }
                    out.lines.back().code.push_back('"');
                    i = close + delim.size();
                    continue;
                }
            }
            emit(TokenKind::Identifier, ident);
            i = j;
            continue;
        }

        // Numbers (digit separators consumed here, so 1'000'000 never
        // opens a char literal).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            while (j < n &&
                   (isIdentChar(content[j]) || content[j] == '.' ||
                    (content[j] == '\'' && j + 1 < n &&
                     std::isalnum(
                         static_cast<unsigned char>(content[j + 1])))))
                ++j;
            const std::string num = content.substr(i, j - i);
            cur.code.append(num);
            line_has_code = true;
            emit(TokenKind::Number, num);
            i = j;
            continue;
        }

        // Ordinary string literal: quotes survive, body blanks.
        if (c == '"') {
            cur.code.push_back('"');
            line_has_code = true;
            ++i;
            while (i < n && content[i] != '"' && content[i] != '\n') {
                if (content[i] == '\\' && i + 1 < n &&
                    content[i + 1] != '\n')
                    ++i;
                else
                    out.lines.back().code.push_back(' ');
                ++i;
            }
            if (i < n && content[i] == '"') {
                out.lines.back().code.push_back('"');
                ++i;
            }
            emit(TokenKind::String, "\"\"");
            continue;
        }

        // Character literal.
        if (c == '\'') {
            cur.code.push_back('\'');
            line_has_code = true;
            ++i;
            while (i < n && content[i] != '\'' && content[i] != '\n') {
                if (content[i] == '\\' && i + 1 < n &&
                    content[i + 1] != '\n')
                    ++i;
                else
                    out.lines.back().code.push_back(' ');
                ++i;
            }
            if (i < n && content[i] == '\'') {
                out.lines.back().code.push_back('\'');
                ++i;
            }
            emit(TokenKind::CharLit, "''");
            continue;
        }

        // Whitespace.
        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.code.push_back(c);
            ++i;
            continue;
        }

        // Punctuation, longest match first.
        std::string punct(1, c);
        if (i + 2 < n) {
            const std::string three = content.substr(i, 3);
            for (const char *p : kPunct3) {
                if (three == p) {
                    punct = three;
                    break;
                }
            }
        }
        if (punct.size() == 1 && i + 1 < n) {
            const std::string two = content.substr(i, 2);
            for (const char *p : kPunct2) {
                if (two == p) {
                    punct = two;
                    break;
                }
            }
        }
        cur.code.append(punct);
        line_has_code = true;
        emit(TokenKind::Punct, punct);
        i += punct.size();
    }

    // Include directives: the argument is a literal whose body the
    // blanking removed, so re-parse the raw lines, gated on the
    // scanned line actually being a preprocessor directive (a
    // commented-out include scans to empty code).
    const std::vector<std::string> raw = splitLines(content);
    for (size_t li = 0; li < out.lines.size() && li < raw.size();
         ++li) {
        if (out.lines[li].code.find('#') == std::string::npos)
            continue;
        const std::string &line = raw[li];
        size_t p = line.find_first_not_of(" \t");
        if (p == std::string::npos || line[p] != '#')
            continue;
        p = line.find_first_not_of(" \t", p + 1);
        if (p == std::string::npos ||
            line.compare(p, 7, "include") != 0)
            continue;
        p = line.find_first_not_of(" \t", p + 7);
        if (p == std::string::npos ||
            (line[p] != '"' && line[p] != '<'))
            continue;
        const char close = line[p] == '<' ? '>' : '"';
        const size_t end = line.find(close, p + 1);
        if (end == std::string::npos)
            continue;
        out.includes.push_back({line[p] == '<' ? '<' : '"',
                                line.substr(p + 1, end - p - 1),
                                static_cast<int>(li + 1)});
    }
    return out;
}

} // namespace boreas::lint
