#include "lint/include_graph.hh"

#include <algorithm>
#include <set>

namespace boreas::lint
{

namespace
{

/**
 * The declared layering DAG: module -> modules it may include.
 * Every module may also include itself. This table is the written
 * form of the dependency architecture in DESIGN.md — an edge added
 * here is a design decision, not a lint tweak.
 */
struct Layer
{
    const char *module;
    std::vector<const char *> deps;
};

const std::vector<Layer> &
layering()
{
    static const std::vector<Layer> kLayering = {
        // std-only so every layer below may instrument itself.
        {"src/obs", {}},
        // common/parallel publishes pool telemetry through obs
        // (DESIGN.md §8); that is the only sanctioned upward edge.
        {"src/common", {"src/obs"}},
        {"src/floorplan", {"src/common"}},
        {"src/arch", {"src/common"}},
        {"src/workload", {"src/common", "src/arch"}},
        {"src/power", {"src/common", "src/arch", "src/floorplan"}},
        {"src/thermal", {"src/common", "src/floorplan", "src/obs"}},
        {"src/sensors", {"src/common", "src/floorplan", "src/thermal"}},
        {"src/hotspot", {"src/common", "src/floorplan"}},
        {"src/ml", {"src/common", "src/arch", "src/obs"}},
        {"src/control", {"src/common", "src/ml", "src/power",
                         "src/arch"}},
        // The integration layer: pipeline/trainer/analysis may see
        // every src module.
        {"src/boreas",
         {"src/common", "src/obs", "src/floorplan", "src/arch",
          "src/workload", "src/power", "src/thermal", "src/sensors",
          "src/hotspot", "src/ml", "src/control"}},
        // The fleet layer orchestrates whole pipelines, so it sits
        // above the integration layer and may see everything.
        {"src/fleet",
         {"src/common", "src/obs", "src/floorplan", "src/arch",
          "src/workload", "src/power", "src/thermal", "src/sensors",
          "src/hotspot", "src/ml", "src/control", "src/boreas"}},
    };
    return kLayering;
}

bool
isSrcModule(const std::string &mod)
{
    return mod.rfind("src/", 0) == 0;
}

/** May `from` include a file in `to`? */
bool
edgeAllowed(const std::string &from, const std::string &to)
{
    if (from == to)
        return true;
    // Harness zones: bench and tools sit on top of all of src;
    // tests additionally drive tools and bench helpers.
    if (from == "bench" || from == "tools")
        return isSrcModule(to);
    if (from == "tests")
        return isSrcModule(to) || to == "tools" || to == "bench";
    for (const Layer &l : layering()) {
        if (from != l.module)
            continue;
        for (const char *d : l.deps) {
            if (to == d)
                return true;
        }
        return false;
    }
    return false; // unknown module: nothing sanctioned
}

std::string
dirOf(const std::string &path)
{
    const size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

} // namespace

std::string
IncludeGraph::moduleOf(const std::string &relPath)
{
    if (relPath.rfind("src/", 0) == 0) {
        const size_t slash = relPath.find('/', 4);
        if (slash != std::string::npos)
            return relPath.substr(0, slash);
        return "src/boreas"; // loose src file: integration layer
    }
    for (const char *root : {"bench", "tests", "tools"}) {
        const std::string prefix = std::string(root) + "/";
        if (relPath.rfind(prefix, 0) == 0)
            return root;
    }
    return {};
}

void
IncludeGraph::addFile(const std::string &relPath,
                      const FileContext *ctx)
{
    files_[relPath] = ctx;
}

void
IncludeGraph::check(std::vector<Violation> &out) const
{
    // Resolve every quoted include to a registered file. Quoted repo
    // includes are rooted at src/ or tools/ (the include dirs CMake
    // declares); same-directory and harness-root forms are accepted
    // too so the resolver never misses a real edge.
    struct Edge
    {
        std::string to;
        int line;
    };
    std::map<std::string, std::vector<Edge>> edges;
    for (const auto &[path, ctx] : files_) {
        for (const IncludeDirective &inc : ctx->lexed.includes) {
            std::string resolved;
            for (const std::string &cand :
                 {"src/" + inc.path, "tools/" + inc.path,
                  dirOf(path) + inc.path, "bench/" + inc.path,
                  "tests/" + inc.path, inc.path}) {
                if (files_.count(cand)) {
                    resolved = cand;
                    break;
                }
            }
            if (resolved.empty())
                continue; // system / external header
            edges[path].push_back({resolved, inc.line});
        }
    }

    // Pass 2a: layering.
    for (const auto &[path, ctx] : files_) {
        const std::string from = moduleOf(path);
        if (from.empty())
            continue;
        auto it = edges.find(path);
        if (it == edges.end())
            continue;
        for (const Edge &e : it->second) {
            const std::string to = moduleOf(e.to);
            if (to.empty() || edgeAllowed(from, to))
                continue;
            if (allows(*ctx, static_cast<size_t>(e.line - 1),
                       "layering"))
                continue;
            out.push_back(
                {path, e.line, "layering",
                 "include of " + e.to + " crosses the layering DAG: " +
                     from + " may not depend on " + to +
                     " (see DESIGN.md §11; extending the DAG is a "
                     "design change, not a lint tweak)"});
        }
    }

    // Pass 2b: cycles, via iterative DFS with a color map. Each
    // unique cycle is reported once, keyed by its sorted node set.
    std::map<std::string, int> color; // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;

    // Recursive lambda via explicit work list keeps this immune to
    // deep include chains.
    struct Frame
    {
        std::string node;
        size_t next = 0;
    };
    for (const auto &[start, ctx_unused] : files_) {
        (void)ctx_unused;
        if (color[start] != 0)
            continue;
        std::vector<Frame> work;
        work.push_back({start});
        color[start] = 1;
        stack.push_back(start);
        while (!work.empty()) {
            Frame &f = work.back();
            const auto eit = edges.find(f.node);
            const size_t degree =
                eit == edges.end() ? 0 : eit->second.size();
            if (f.next >= degree) {
                color[f.node] = 2;
                stack.pop_back();
                work.pop_back();
                continue;
            }
            const Edge &e = eit->second[f.next++];
            if (color[e.to] == 1) {
                // Back edge: the cycle is the stack suffix from e.to.
                auto at = std::find(stack.begin(), stack.end(), e.to);
                std::vector<std::string> cycle(at, stack.end());
                std::vector<std::string> key = cycle;
                std::sort(key.begin(), key.end());
                std::string key_s;
                for (const std::string &k : key)
                    key_s += k + "|";
                if (reported.insert(key_s).second) {
                    std::string chain;
                    for (const std::string &n : cycle)
                        chain += n + " -> ";
                    chain += e.to;
                    // Anchored at the back-edge include line.
                    out.push_back({f.node, e.line, "include-cycle",
                                   "include cycle: " + chain});
                }
            } else if (color[e.to] == 0) {
                color[e.to] = 1;
                stack.push_back(e.to);
                work.push_back({e.to});
            }
        }
    }
}

} // namespace boreas::lint
