/**
 * @file
 * The rule registry for the multi-pass linter. Each rule sees one
 * fully lexed file (FileContext) and appends Violations; repo-level
 * passes (the include graph) live in include_graph.hh and consume the
 * same contexts.
 *
 * Rule applicability is scoped by Zone — the top-level tree a file
 * lives in. The src/ zone carries the full determinism rule set;
 * bench/, tests/ and tools/ are CLI/test code where e.g. stdio and
 * wall-clock are the point, so only the hygiene rules apply there.
 * Files under tests/lint_fixtures/ are classified Zone::Fixture and
 * are linted with the full src/ rule set — they exist to exercise it.
 */

#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace boreas::lint
{

/** One rule violation at a source location. */
struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Which top-level tree a path belongs to (see file comment). */
enum class Zone
{
    Src,     ///< src/ — full determinism rule set
    Bench,   ///< bench/ — timing/printing allowed
    Tests,   ///< tests/ — gtest code
    Tools,   ///< tools/ — CLI utilities
    Fixture, ///< tests/lint_fixtures/ — linted as src
    Other,   ///< unknown root — linted as src (strictest)
};

Zone zoneOf(const std::string &path);

/** Everything the per-file rules get to look at. */
struct FileContext
{
    std::string path; ///< as passed in (display + path predicates)
    Zone zone = Zone::Other;
    bool header = false;
    std::vector<std::string> rawLines;
    LexedFile lexed;
    /// Rules suppressed file-wide by a header-of-file
    /// `// boreas-lint: allow-file(<rule>)` marker.
    std::set<std::string> allowFile;
};

/** Build a context (lex + allow-file scan) from raw content. */
FileContext makeFileContext(const std::string &path,
                            const std::string &content);

/**
 * True if `rule` is suppressed at line index `i` (0-based): an
 * `allow(rule)` marker on the line or an immediately preceding
 * comment-only line, or an allow-file(rule) in the file header.
 */
bool allows(const FileContext &ctx, size_t i, const std::string &rule);

/** True if the zone is linted with the src/ determinism rule set. */
inline bool
srcLike(Zone z)
{
    return z == Zone::Src || z == Zone::Fixture || z == Zone::Other;
}

/** Path component test robust to absolute/relative prefixes. */
bool pathContains(const std::string &path, const std::string &fragment);

bool endsWith(const std::string &s, const std::string &suffix);

/** A registered per-file rule. */
struct Rule
{
    std::string id;
    /// One-line description, surfaced as SARIF rule metadata.
    std::string summary;
    std::function<void(const FileContext &ctx,
                       std::vector<Violation> &out)>
        check;
};

/** All per-file rules (style + concurrency), in reporting order. */
const std::vector<Rule> &ruleRegistry();

/** The rule summary for an id (include-graph rules included). */
std::string ruleSummary(const std::string &id);

// Registration hooks, one per rules/*.cc translation unit.
void registerStyleRules(std::vector<Rule> &out);
void registerConcurrencyRules(std::vector<Rule> &out);

} // namespace boreas::lint
