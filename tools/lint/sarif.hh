/**
 * @file
 * SARIF 2.1.0 serialization of lint findings, for GitHub code
 * scanning annotations. Output is deterministic: results keep the
 * caller's order, rule metadata is emitted sorted by id, and the
 * writer is byte-stable so the golden-file test can compare exactly.
 */

#pragma once

#include <string>
#include <vector>

#include "lint/rule.hh"

namespace boreas::lint
{

/** Render violations as a complete SARIF 2.1.0 log (one run). */
std::string toSarif(const std::vector<Violation> &violations);

} // namespace boreas::lint
