#include "lint/sarif.hh"

#include <map>
#include <set>

namespace boreas::lint
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (c < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[c >> 4];
                out += hex[c & 0xf];
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
toSarif(const std::vector<Violation> &violations)
{
    // Rule metadata: every rule that appears in the results, sorted
    // by id so the log is deterministic regardless of finding order.
    std::set<std::string> rule_ids;
    for (const Violation &v : violations)
        rule_ids.insert(v.rule);

    std::string out;
    out +=
        "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"boreas_lint\",\n"
        "          \"informationUri\": "
        "\"https://example.invalid/boreas\",\n"
        "          \"rules\": [";
    bool first = true;
    for (const std::string &id : rule_ids) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "            {\n";
        out += "              \"id\": \"" + jsonEscape(id) + "\",\n";
        out += "              \"shortDescription\": { \"text\": \"" +
            jsonEscape(ruleSummary(id)) + "\" }\n";
        out += "            }";
    }
    out += rule_ids.empty() ? "]\n" : "\n          ]\n";
    out +=
        "        }\n"
        "      },\n"
        "      \"results\": [";
    first = true;
    for (const Violation &v : violations) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "        {\n";
        out += "          \"ruleId\": \"" + jsonEscape(v.rule) +
            "\",\n";
        out += "          \"level\": \"error\",\n";
        out += "          \"message\": { \"text\": \"" +
            jsonEscape(v.message) + "\" },\n";
        out += "          \"locations\": [\n";
        out += "            {\n";
        out += "              \"physicalLocation\": {\n";
        out +=
            "                \"artifactLocation\": { \"uri\": \"" +
            jsonEscape(v.file) + "\" },\n";
        out += "                \"region\": { \"startLine\": " +
            std::to_string(v.line < 1 ? 1 : v.line) + " }\n";
        out += "              }\n";
        out += "            }\n";
        out += "          ]\n";
        out += "        }";
    }
    out += violations.empty() ? "]\n" : "\n      ]\n";
    out +=
        "    }\n"
        "  ]\n"
        "}\n";
    return out;
}

} // namespace boreas::lint
