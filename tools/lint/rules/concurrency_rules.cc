/**
 * @file
 * Token-level concurrency/determinism rules (pass 3). These defend
 * the DESIGN.md §6 contract — results bit-identical at every thread
 * count — at lint time, before a run ever reaches the runtime
 * `runHash` audit or TSan:
 *
 *   parallel-capture-mutation  A parallelFor/parallelForEach lambda
 *                              with by-reference capture writes to a
 *                              captured variable that is neither
 *                              body-local nor a subscripted output
 *                              slot (per-task slots like `out[i] = x`
 *                              are the sanctioned pattern). A body
 *                              that takes a lock or uses atomics is
 *                              assumed to know what it is doing.
 *   parallel-fp-reduction      The same detection, classified as a
 *                              reduction (`+=`, `x = x + v`, or a
 *                              std::accumulate/std::reduce feeding a
 *                              captured target): thread-order FP
 *                              accumulation is nondeterministic; keep
 *                              per-task partials and merge them in
 *                              task-index order.
 *   mutable-global-state       Non-const static/global mutable data
 *                              in src/ outside the allowlisted
 *                              singleton homes (common/parallel, the
 *                              obs registries). Globals are invisible
 *                              inputs that break run replayability.
 *   wall-clock                 Wall-clock / std::this_thread use
 *                              outside bench/ and src/obs. Simulated
 *                              time comes from the pipeline; timing
 *                              instrumentation goes through
 *                              obs::ScopedTimer.
 *
 * The write analysis is a documented heuristic, not a dataflow
 * engine: named lambdas defined outside the parallelFor call and
 * mutation through member function calls are out of scope (TSan and
 * the determinism audit stay the runtime backstop).
 */

#include <regex>
#include <set>

#include "lint/rule.hh"

namespace boreas::lint
{

namespace
{

// --------------------------------------------------------------- //
// wall-clock
// --------------------------------------------------------------- //

bool
isObsModule(const std::string &path)
{
    return pathContains(path, "src/obs") ||
        pathContains(path, "obs/");
}

void
checkWallClock(const FileContext &ctx, std::vector<Violation> &out)
{
    if (ctx.zone == Zone::Bench)
        return;
    if (isObsModule(ctx.path))
        return;
    static const std::regex kClock(
        R"((\bstd::chrono::(steady_clock|system_clock|high_resolution_clock)\b|\bstd::this_thread\b|\bclock_gettime\s*\(|\bgettimeofday\s*\())");
    const auto &lines = ctx.lexed.lines;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (!std::regex_search(lines[i].code, kClock))
            continue;
        if (allows(ctx, i, "wall-clock"))
            continue;
        out.push_back(
            {ctx.path, static_cast<int>(i + 1), "wall-clock",
             "wall-clock / std::this_thread outside bench/ and "
             "src/obs; simulated time comes from the pipeline and "
             "timing goes through obs::ScopedTimer so runs stay "
             "replayable"});
    }
}

// --------------------------------------------------------------- //
// mutable-global-state
// --------------------------------------------------------------- //

/** Files allowed to own process-wide mutable state: the global
 *  thread-pool singleton and the obs registries/shards (their merge
 *  discipline is documented in DESIGN.md §8). */
bool
isGlobalStateAllowlisted(const std::string &path)
{
    return pathContains(path, "common/parallel") ||
        pathContains(path, "obs/metrics") ||
        pathContains(path, "obs/trace");
}

bool
isKeyword(const std::string &t)
{
    static const std::set<std::string> kKeywords = {
        "if",     "else",    "for",      "while",  "do",
        "switch", "case",    "return",   "break",  "continue",
        "goto",   "new",     "delete",   "throw",  "sizeof",
        "typedef","using",   "operator", "co_return"};
    return kKeywords.count(t) != 0;
}

/** Identifiers whose presence marks a declaration as synchronized
 *  state rather than a naked global (sync primitives are not a
 *  determinism hazard by themselves). */
bool
isSyncToken(const std::string &t)
{
    return t == "mutex" || t == "shared_mutex" || t == "atomic" ||
        t == "atomic_flag" || t == "once_flag" ||
        t == "condition_variable" || t == "condition_variable_any";
}

/** Scope kinds for the brace tracker. */
enum class ScopeKind { Namespace, Class, Block };

void
checkMutableGlobalState(const FileContext &ctx,
                        std::vector<Violation> &out)
{
    if (!srcLike(ctx.zone))
        return;
    if (isGlobalStateAllowlisted(ctx.path))
        return;

    const auto &toks = ctx.lexed.tokens;
    std::vector<ScopeKind> scopes;

    // Pending-statement token window since the last ; { or } at the
    // current nesting level.
    size_t stmt_begin = 0;

    auto atNamespaceScope = [&] {
        for (ScopeKind k : scopes) {
            if (k != ScopeKind::Namespace)
                return false;
        }
        return true;
    };
    auto atClassScope = [&] {
        return !scopes.empty() && scopes.back() == ScopeKind::Class;
    };

    auto flagStatement = [&](size_t begin, size_t end) {
        // `begin..end` (exclusive of the terminating ';') is a
        // candidate declaration. Skip anything that is not plainly a
        // mutable data definition.
        bool has_static = false, has_thread_local = false;
        bool has_const = false, has_paren = false, skip = false;
        bool has_sync = false, has_assign = false;
        size_t assign_at = end;
        for (size_t k = begin; k < end; ++k) {
            const Token &t = toks[k];
            if (t.kind == TokenKind::Punct) {
                if (t.text == "(")
                    has_paren = true;
                else if (t.text == "=" && assign_at == end) {
                    has_assign = true;
                    assign_at = k;
                }
                continue;
            }
            if (t.kind != TokenKind::Identifier)
                continue;
            // Only tokens left of the initializer describe the
            // declaration itself.
            if (k < assign_at || !has_assign) {
                if (t.text == "static")
                    has_static = true;
                else if (t.text == "thread_local")
                    has_thread_local = true;
                else if (t.text == "const" || t.text == "constexpr" ||
                         t.text == "consteval")
                    has_const = true;
                else if (isSyncToken(t.text))
                    has_sync = true;
                else if (t.text == "namespace" || t.text == "using" ||
                         t.text == "typedef" || t.text == "friend" ||
                         t.text == "template" || t.text == "extern" ||
                         t.text == "struct" || t.text == "class" ||
                         t.text == "enum" || t.text == "union" ||
                         t.text == "concept" || t.text == "requires" ||
                         t.text == "static_assert" ||
                         t.text == "public" || t.text == "private" ||
                         t.text == "protected" || t.text == "typename")
                    skip = true;
            }
        }
        if (skip || has_const || has_sync || begin >= end)
            return;
        // A '(' before any '=' means a function declaration or a
        // paren-initializer; both are skipped (documented heuristic).
        if (has_paren &&
            (!has_assign ||
             [&] {
                 for (size_t k = begin; k < assign_at; ++k) {
                     if (toks[k].kind == TokenKind::Punct &&
                         toks[k].text == "(")
                         return true;
                 }
                 return false;
             }()))
            return;

        const bool namespace_scope = atNamespaceScope();
        const bool class_scope = atClassScope();
        // Namespace scope: any surviving data definition is mutable
        // global state, `static` keyword or not. Class/block scope:
        // only static / thread_local storage is process-shared.
        const bool shared = namespace_scope ||
            ((class_scope || !scopes.empty()) &&
             (has_static || has_thread_local));
        if (!shared)
            return;
        const size_t line_idx =
            static_cast<size_t>(toks[begin].line - 1);
        if (allows(ctx, line_idx, "mutable-global-state"))
            return;
        out.push_back(
            {ctx.path, toks[begin].line, "mutable-global-state",
             "non-const static/global mutable state outside the "
             "allowlisted singletons (common/parallel, obs); shared "
             "mutable state is an invisible input that breaks run "
             "replayability — pass state explicitly or justify with "
             "an allow()"});
    };

    // Scope kind of a '{' at token k: look back over the pending
    // statement for namespace/class keywords.
    auto openerKind = [&](size_t brace) {
        bool saw_paren = false;
        for (size_t k = stmt_begin; k < brace; ++k) {
            const Token &t = toks[k];
            if (t.kind == TokenKind::Punct && t.text == "(")
                saw_paren = true;
            if (t.kind != TokenKind::Identifier)
                continue;
            if (t.text == "namespace")
                return ScopeKind::Namespace;
            if ((t.text == "class" || t.text == "struct" ||
                 t.text == "union" || t.text == "enum") &&
                !saw_paren)
                return ScopeKind::Class;
        }
        return ScopeKind::Block;
    };

    int paren_depth = 0;
    bool stmt_has_assign = false; // '=' at paren depth 0 in the stmt

    for (size_t k = 0; k < toks.size(); ++k) {
        const Token &t = toks[k];
        if (t.kind != TokenKind::Punct) {
            continue;
        }
        if (t.text == "(") {
            ++paren_depth;
        } else if (t.text == ")") {
            if (paren_depth > 0)
                --paren_depth;
        } else if (t.text == "=" && paren_depth == 0) {
            stmt_has_assign = true;
        }
        if (t.text == "{") {
            // A brace inside parens (lambda argument, default-arg
            // `= {}`), after a top-level '=' (brace initializer), or
            // directly after a non-keyword identifier (`int x{0};`)
            // is part of the statement, not a scope: jump over it so
            // the declaration window stays intact. Trailing-return
            // functions (`-> T {`) also end in an identifier, so an
            // `->` in the pending statement vetoes the init reading.
            bool init_after_ident = k > 0 &&
                toks[k - 1].kind == TokenKind::Identifier &&
                !isKeyword(toks[k - 1].text) &&
                openerKind(k) == ScopeKind::Block;
            for (size_t a = stmt_begin; init_after_ident && a < k; ++a) {
                if (toks[a].kind == TokenKind::Punct &&
                    toks[a].text == "->")
                    init_after_ident = false;
            }
            if (paren_depth > 0 || stmt_has_assign ||
                init_after_ident) {
                int depth = 0;
                while (k < toks.size()) {
                    if (toks[k].kind == TokenKind::Punct) {
                        if (toks[k].text == "{")
                            ++depth;
                        else if (toks[k].text == "}" && --depth == 0)
                            break;
                    }
                    ++k;
                }
                continue;
            }
            scopes.push_back(openerKind(k));
            stmt_begin = k + 1;
            stmt_has_assign = false;
        } else if (t.text == "}") {
            if (!scopes.empty())
                scopes.pop_back();
            stmt_begin = k + 1;
            stmt_has_assign = false;
        } else if (t.text == ";" && paren_depth == 0) {
            // Declarations live at namespace/class scope or are
            // static locals inside blocks; expressions inside blocks
            // are filtered by the has_static requirement.
            flagStatement(stmt_begin, k);
            stmt_begin = k + 1;
            stmt_has_assign = false;
        }
    }
}

// --------------------------------------------------------------- //
// parallel-capture-mutation / parallel-fp-reduction
// --------------------------------------------------------------- //

size_t
matchForward(const std::vector<Token> &toks, size_t open,
             const char *open_c, const char *close_c)
{
    int depth = 0;
    for (size_t k = open; k < toks.size(); ++k) {
        if (toks[k].kind != TokenKind::Punct)
            continue;
        if (toks[k].text == open_c)
            ++depth;
        else if (toks[k].text == close_c && --depth == 0)
            return k;
    }
    return toks.size();
}

size_t
matchBackward(const std::vector<Token> &toks, size_t close,
              const char *open_c, const char *close_c)
{
    int depth = 0;
    for (size_t k = close + 1; k-- > 0;) {
        if (toks[k].kind != TokenKind::Punct)
            continue;
        if (toks[k].text == close_c)
            ++depth;
        else if (toks[k].text == open_c && --depth == 0)
            return k;
    }
    return 0;
}

bool
isAssignOp(const std::string &t)
{
    return t == "=" || t == "+=" || t == "-=" || t == "*=" ||
        t == "/=" || t == "%=" || t == "&=" || t == "|=" ||
        t == "^=" || t == "<<=" || t == ">>=";
}

/**
 * Collect identifiers that are declared inside [begin, end):
 * parameters and body-local declarations. Heuristic: an identifier
 * preceded by a type-ish token (another identifier, `>`, `&`, `*`)
 * counts as declared, plus comma-continuation declarators in the
 * same statement. The bias is deliberate — over-collecting shrinks
 * the finding set, never grows it.
 */
std::set<std::string>
collectDeclared(const std::vector<Token> &toks, size_t begin,
                size_t end)
{
    std::set<std::string> declared;
    bool decl_stmt = false;
    int depth = 0;
    for (size_t k = begin; k < end; ++k) {
        const Token &t = toks[k];
        if (t.kind == TokenKind::Punct) {
            if (t.text == "(" || t.text == "[" || t.text == "{")
                ++depth;
            else if (t.text == ")" || t.text == "]" || t.text == "}")
                --depth;
            else if (t.text == ";")
                decl_stmt = false;
            continue;
        }
        if (t.kind != TokenKind::Identifier || k == begin)
            continue;
        const Token &prev = toks[k - 1];
        const bool type_prev =
            (prev.kind == TokenKind::Identifier &&
             !isKeyword(prev.text)) ||
            (prev.kind == TokenKind::Punct &&
             (prev.text == ">" || prev.text == "&" ||
              prev.text == "*"));
        if (type_prev) {
            declared.insert(t.text);
            if (depth == 0)
                decl_stmt = true;
        } else if (decl_stmt && depth == 0 &&
                   prev.kind == TokenKind::Punct && prev.text == ",") {
            // double gl = 0.0, hl = 0.0;
            declared.insert(t.text);
        }
    }
    return declared;
}

/** Body tokens that mark explicit synchronization. */
bool
bodyTakesLockOrAtomics(const std::vector<Token> &toks, size_t begin,
                       size_t end)
{
    for (size_t k = begin; k < end; ++k) {
        if (toks[k].kind != TokenKind::Identifier)
            continue;
        const std::string &t = toks[k].text;
        if (t == "lock_guard" || t == "unique_lock" ||
            t == "scoped_lock" || t == "atomic" ||
            t == "atomic_ref" || t == "fetch_add" ||
            t == "fetch_sub" || t == "fetch_or" ||
            t == "fetch_and" || t == "exchange" ||
            t == "compare_exchange_weak" ||
            t == "compare_exchange_strong")
            return true;
    }
    return false;
}

/**
 * Walk the LHS postfix chain backwards from the token before an
 * assignment operator. Returns the base identifier, or "" if the
 * LHS is not a simple ident/member chain; sets `subscripted` when
 * any [] appears in the chain (slot writes are sanctioned).
 */
std::string
lhsBase(const std::vector<Token> &toks, size_t op, bool &subscripted)
{
    subscripted = false;
    size_t k = op;
    while (k-- > 0) {
        const Token &t = toks[k];
        if (t.kind == TokenKind::Punct && t.text == "]") {
            subscripted = true;
            const size_t open = matchBackward(toks, k, "[", "]");
            if (open == 0)
                return "";
            k = open;
            continue;
        }
        if (t.kind == TokenKind::Identifier) {
            if (k > 0 && toks[k - 1].kind == TokenKind::Punct &&
                (toks[k - 1].text == "." ||
                 toks[k - 1].text == "->")) {
                --k; // continue through the member chain
                continue;
            }
            return isKeyword(t.text) ? "" : t.text;
        }
        return "";
    }
    return "";
}

void
analyzeParallelBody(const FileContext &ctx,
                    const std::vector<Token> &toks, size_t body_begin,
                    size_t body_end,
                    const std::set<std::string> &declared,
                    std::vector<Violation> &out)
{
    if (bodyTakesLockOrAtomics(toks, body_begin, body_end))
        return;
    for (size_t k = body_begin; k < body_end; ++k) {
        const Token &t = toks[k];
        if (t.kind != TokenKind::Punct)
            continue;

        std::string base;
        bool subscripted = false;
        bool reduction = false;
        if (isAssignOp(t.text)) {
            base = lhsBase(toks, k, subscripted);
            if (base.empty() || subscripted)
                continue;
            if (t.text != "=") {
                reduction = true;
            } else {
                // `x = x + v` / `x = accumulate(...)` style: the RHS
                // re-reads the target or runs a fold.
                for (size_t r = k + 1; r < body_end; ++r) {
                    if (toks[r].kind == TokenKind::Punct &&
                        toks[r].text == ";")
                        break;
                    if (toks[r].kind == TokenKind::Identifier &&
                        (toks[r].text == base ||
                         toks[r].text == "accumulate" ||
                         toks[r].text == "reduce" ||
                         toks[r].text == "inner_product")) {
                        reduction = true;
                        break;
                    }
                }
            }
        } else if (t.text == "++" || t.text == "--") {
            // Prefix: operand follows; postfix: chain precedes.
            if (k + 1 < body_end &&
                toks[k + 1].kind == TokenKind::Identifier) {
                base = toks[k + 1].text;
            } else {
                base = lhsBase(toks, k, subscripted);
            }
            if (base.empty() || subscripted || isKeyword(base))
                continue;
        } else {
            continue;
        }

        if (declared.count(base) || base == "this")
            continue;
        const size_t line_idx = static_cast<size_t>(t.line - 1);
        const char *rule =
            reduction ? "parallel-fp-reduction"
                      : "parallel-capture-mutation";
        if (allows(ctx, line_idx, rule))
            continue;
        out.push_back(
            {ctx.path, t.line, rule,
             reduction
                 ? "thread-order reduction into captured `" + base +
                       "` inside a parallelFor body is "
                       "nondeterministic; accumulate per-task "
                       "partials and merge them in task-index order "
                       "(DESIGN.md §6)"
                 : "parallelFor body writes captured `" + base +
                       "` without atomic/mutex/per-task scratch; "
                       "write a preallocated per-task slot "
                       "(out[i] = ...) instead (DESIGN.md §6)"});
    }
}

void
checkParallelCaptures(const FileContext &ctx,
                      std::vector<Violation> &out)
{
    if (ctx.zone == Zone::Other && !srcLike(ctx.zone))
        return; // unreachable; keeps the zone intent explicit
    const auto &toks = ctx.lexed.tokens;
    for (size_t k = 0; k + 1 < toks.size(); ++k) {
        if (toks[k].kind != TokenKind::Identifier ||
            (toks[k].text != "parallelFor" &&
             toks[k].text != "parallelForEach"))
            continue;
        if (toks[k + 1].kind != TokenKind::Punct ||
            toks[k + 1].text != "(")
            continue;
        const size_t call_close =
            matchForward(toks, k + 1, "(", ")");

        // Find the inline lambda argument: the first '[' directly
        // inside the call whose introducer captures by reference.
        for (size_t j = k + 2; j < call_close; ++j) {
            if (toks[j].kind != TokenKind::Punct ||
                toks[j].text != "[")
                continue;
            const size_t intro_close =
                matchForward(toks, j, "[", "]");
            bool by_ref = false;
            for (size_t c = j + 1; c < intro_close; ++c) {
                if (toks[c].kind == TokenKind::Punct &&
                    toks[c].text == "&")
                    by_ref = true;
            }
            // Parameter list (optional for a no-arg lambda).
            size_t p = intro_close + 1;
            std::set<std::string> declared;
            if (p < call_close &&
                toks[p].kind == TokenKind::Punct &&
                toks[p].text == "(") {
                const size_t params_close =
                    matchForward(toks, p, "(", ")");
                for (size_t c = p + 1; c < params_close; ++c) {
                    if (toks[c].kind == TokenKind::Identifier)
                        declared.insert(toks[c].text);
                }
                p = params_close + 1;
            }
            // Skip specifiers (mutable, noexcept, -> type) to the
            // body brace.
            while (p < call_close &&
                   !(toks[p].kind == TokenKind::Punct &&
                     toks[p].text == "{"))
                ++p;
            if (p >= call_close)
                break;
            const size_t body_close =
                matchForward(toks, p, "{", "}");
            if (by_ref) {
                auto body_decls =
                    collectDeclared(toks, p + 1, body_close);
                declared.insert(body_decls.begin(),
                                body_decls.end());
                analyzeParallelBody(ctx, toks, p + 1, body_close,
                                    declared, out);
            }
            break; // one lambda per call
        }
        k = call_close;
    }
}

} // namespace

void
registerConcurrencyRules(std::vector<Rule> &out)
{
    out.push_back({"parallel-capture-mutation",
                   "parallelFor lambda writes captured shared state",
                   [](const FileContext &ctx,
                      std::vector<Violation> &v) {
                       checkParallelCaptures(ctx, v);
                   }});
    // parallel-fp-reduction findings are emitted by the same scan;
    // register the id so SARIF metadata and allow() lookups resolve.
    out.push_back({"parallel-fp-reduction",
                   "thread-order FP reduction inside a parallel body",
                   [](const FileContext &,
                      std::vector<Violation> &) {}});
    out.push_back({"mutable-global-state",
                   "non-const static/global mutable state in src/",
                   [](const FileContext &ctx,
                      std::vector<Violation> &v) {
                       checkMutableGlobalState(ctx, v);
                   }});
    out.push_back({"wall-clock",
                   "wall-clock/this_thread outside bench/ and src/obs",
                   [](const FileContext &ctx,
                      std::vector<Violation> &v) {
                       checkWallClock(ctx, v);
                   }});
}

} // namespace boreas::lint
