/**
 * @file
 * The regex/line-level style and determinism rules, ported from the
 * original single-file scanner. Each rule matches against the blanked
 * code text of one line (comments and literal bodies removed by the
 * lexer), so prose never fires.
 */

#include <map>
#include <regex>

#include "lint/rule.hh"

namespace boreas::lint
{

namespace
{

/** The only module allowed to touch raw randomness primitives. */
bool
isRngModule(const std::string &path)
{
    return pathContains(path, "common/rng");
}

/** The only module allowed to use stdio streams directly. */
bool
isLoggingModule(const std::string &path)
{
    return pathContains(path, "common/logging");
}

/** The only modules allowed to open files for writing: the obs
 *  artifact sink (all BENCH_/TRACE_ output) and the workload trace
 *  serializer (boreas-trace-v1 files). */
bool
isFileSink(const std::string &path)
{
    return pathContains(path, "obs/export") ||
        pathContains(path, "workload/trace_io");
}

/** Only the workload subsystem's registries construct specs. */
bool
isWorkloadModule(const std::string &path)
{
    return pathContains(path, "src/workload");
}

/** The ML library itself implements both prediction paths. */
bool
isMlModule(const std::string &path)
{
    return pathContains(path, "src/ml");
}

struct LineRule
{
    const char *id;
    const char *summary;
    const char *pattern;
    const char *message;
    bool headersOnly = false;
    bool (*zoneApplies)(Zone z) = nullptr; ///< null: src-like only
    bool (*exempt)(const std::string &path) = nullptr;
};

bool
anyZone(Zone)
{
    return true;
}

bool
srcOrBench(Zone z)
{
    return srcLike(z) || z == Zone::Bench;
}

const LineRule kLineRules[] = {
    {"raw-random",
     "raw randomness outside the seeded boreas::Rng",
     R"((\bstd::random_device\b|\bstd::mt19937|\bstd::default_random_engine\b|\bstd::minstd_rand|\buniform_int_distribution\b|\buniform_real_distribution\b|\brand\s*\(|\bsrand\s*\(|\bdrand48\s*\(|#\s*include\s*<random>))",
     "raw randomness outside src/common/rng; draw from the seeded "
     "boreas::Rng instead",
     false, srcOrBench, isRngModule},
    {"unordered-container",
     "unordered containers iterate in implementation-defined order",
     R"(\bstd::unordered_(map|set|multimap|multiset)\b)",
     "unordered containers iterate in implementation-defined order "
     "(breaks ordered output / FP-sum determinism); use std::map or "
     "std::vector, or justify a never-iterated use with an allow()",
     false, anyZone, nullptr},
    {"direct-stdio",
     "direct stdio outside src/common/logging",
     R"((\bstd::cout\b|\bstd::cerr\b|(?:^|[^\w:.>])printf\s*\(|\bputs\s*\(|\bputchar\s*\(|\bfprintf\s*\(\s*(?:stdout|stderr)\b))",
     "direct stdio outside src/common/logging; use boreas_inform / "
     "boreas_warn / boreas_panic / boreas_fatal",
     false, nullptr, isLoggingModule},
    {"raw-file-output",
     "file output outside the designated artifact sinks",
     R"((\bstd::ofstream\b|\bstd::fstream\b|\bstd::filebuf\b|(^|[^\w:.>])fopen\s*\(|(^|[^\w:.>])freopen\s*\())",
     "file output outside the designated sinks (src/obs/export, "
     "src/workload/trace_io); route artifacts through them so "
     "every file the simulator writes has one auditable schema",
     false, nullptr, isFileSink},
    {"workload-spec-construction",
     "WorkloadSpec constructed outside the source registry",
     R"(\bWorkloadSpec\s*\{|\bWorkloadSpec\s+\w+\s*(;|=|\{)|\bmake_unique\s*<\s*[\w:]*WorkloadSpec\b|(^|[^\w.:>])new\s+[\w:]*WorkloadSpec\b|\bvector\s*<\s*[\w:]*WorkloadSpec\s*>)",
     "WorkloadSpec constructed outside src/workload; obtain "
     "workloads through the source registry "
     "(workload/registry.hh) or the suite accessors so every "
     "stimulus is a named, registered source",
     false, srcOrBench, isWorkloadModule},
    {"flat-gbt-predict",
     "per-tree GBT walking outside src/ml",
     R"(\bGBTTree\b|\btrees\(\)\s*(\[|\.at\s*\())",
     "walking GBTTree nodes outside src/ml re-grows the "
     "pointer-chasing serving path; compile a FlatGBT "
     "(ml/gbt_flat.hh) and use predictOne/predictBatch, or "
     "justify a structural (non-predict) use with an allow()",
     false, nullptr, isMlModule},
    {"raw-new-delete",
     "raw new/delete expression",
     R"((^|[^\w.:>])new\s+[A-Za-z_(]|(^|[^\w.:>=]|[^=] )delete\s*(\[\s*\])?\s+[A-Za-z_(*]|(^|[^\w.:>])delete\s+this\b)",
     "raw new/delete; own memory via containers or smart pointers",
     false, anyZone, nullptr},
    {"header-hygiene",
     "`using namespace` at header scope",
     R"(\busing\s+namespace\s)",
     "`using namespace` at header scope pollutes every includer",
     true, anyZone, nullptr},
};

void
checkLineRule(const LineRule &rule, const FileContext &ctx,
              std::vector<Violation> &out)
{
    if (rule.headersOnly && !ctx.header)
        return;
    const bool zone_ok =
        rule.zoneApplies ? rule.zoneApplies(ctx.zone)
                         : srcLike(ctx.zone);
    if (!zone_ok)
        return;
    if (rule.exempt && rule.exempt(ctx.path))
        return;
    static std::map<const LineRule *, std::regex> cache;
    auto it = cache.find(&rule);
    if (it == cache.end())
        it = cache.emplace(&rule, std::regex(rule.pattern)).first;
    const std::regex &re = it->second;
    const auto &lines = ctx.lexed.lines;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (!std::regex_search(lines[i].code, re))
            continue;
        if (allows(ctx, i, rule.id))
            continue;
        // `= delete` / `= delete("...")` declarations and
        // user-declared operator delete are not raw deallocation.
        if (std::string(rule.id) == "raw-new-delete" &&
            std::regex_search(
                lines[i].code,
                std::regex(
                    R"((=\s*delete\b|operator\s+(new|delete)))")) &&
            !std::regex_search(lines[i].code,
                               std::regex(R"(delete\s+this\b)")))
            continue;
        out.push_back({ctx.path, static_cast<int>(i + 1), rule.id,
                       rule.message});
    }
}

/**
 * Include arguments are string literals, which the lexer blanks, so
 * this rule reads the directives the lexer re-parsed from raw lines.
 */
void
checkIncludeStyle(const FileContext &ctx, std::vector<Violation> &out)
{
    for (const IncludeDirective &inc : ctx.lexed.includes) {
        const size_t i = static_cast<size_t>(inc.line - 1);
        if (allows(ctx, i, "include-style"))
            continue;
        std::string why;
        if (inc.path.find("..") != std::string::npos)
            why = "contains '..'";
        else if (!inc.path.empty() && inc.path[0] == '/')
            why = "is absolute";
        else if (inc.kind == '<' && inc.path.rfind("boreas/", 0) == 0)
            why = "uses <boreas/...> for a repo header (quote it)";
        else if (inc.kind == '"' &&
                 (endsWith(inc.path, ".cc") ||
                  endsWith(inc.path, ".cpp")))
            why = "includes a source file";
        if (!why.empty()) {
            out.push_back({ctx.path, inc.line, "include-style",
                           "#include \"" + inc.path + "\" " + why});
        }
    }
}

void
checkHeaderGuard(const FileContext &ctx, std::vector<Violation> &out)
{
    if (!ctx.header)
        return;
    bool pragma_once = false;
    int guard_line = 0;
    static const std::regex kGuard(R"(^\s*#\s*ifndef\s+\w*_HH?\b)");
    for (size_t i = 0; i < ctx.lexed.lines.size(); ++i) {
        const std::string &code = ctx.lexed.lines[i].code;
        if (code.find("#pragma once") != std::string::npos)
            pragma_once = true;
        if (guard_line == 0 && std::regex_search(code, kGuard))
            guard_line = static_cast<int>(i + 1);
    }
    if (!pragma_once) {
        if (!allows(ctx, 0, "header-guard"))
            out.push_back({ctx.path, 1, "header-guard",
                           "header lacks #pragma once"});
    } else if (guard_line != 0) {
        if (!allows(ctx, static_cast<size_t>(guard_line - 1),
                    "header-guard"))
            out.push_back({ctx.path, guard_line, "header-guard",
                           "legacy #ifndef include guard alongside "
                           "#pragma once"});
    }
}

} // namespace

void
registerStyleRules(std::vector<Rule> &out)
{
    for (const LineRule &rule : kLineRules) {
        out.push_back({rule.id, rule.summary,
                       [&rule](const FileContext &ctx,
                               std::vector<Violation> &v) {
                           checkLineRule(rule, ctx, v);
                       }});
    }
    out.push_back({"include-style",
                   "quoted includes must be repo-relative",
                   [](const FileContext &ctx,
                      std::vector<Violation> &v) {
                       checkIncludeStyle(ctx, v);
                   }});
    out.push_back({"header-guard",
                   "headers use #pragma once (no legacy guards)",
                   [](const FileContext &ctx,
                      std::vector<Violation> &v) {
                       checkHeaderGuard(ctx, v);
                   }});
}

} // namespace boreas::lint
