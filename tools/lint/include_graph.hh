/**
 * @file
 * Repo-level include-graph pass (pass 2). Consumes the per-file
 * contexts pass 1 produced and enforces two properties the per-file
 * rules cannot see:
 *
 *   layering        Every cross-module include must follow the
 *                   declared layering DAG (see kLayering in
 *                   include_graph.cc, mirrored in DESIGN.md §11).
 *                   The DAG is the architecture: obs is std-only so
 *                   everything may instrument itself; common may use
 *                   obs; physics modules stack on common; only
 *                   src/boreas sees everything.
 *   include-cycle   No cycles among repo headers, ever.
 *
 * Files are added by repo-relative path; includes that resolve to no
 * added file are treated as system headers and ignored.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/rule.hh"

namespace boreas::lint
{

class IncludeGraph
{
  public:
    /** Register one lexed file. `ctx` must outlive the graph. */
    void addFile(const std::string &relPath, const FileContext *ctx);

    /** Run the layering + cycle checks over every added file. */
    void check(std::vector<Violation> &out) const;

    /** Layering module of a repo-relative path ("src/common",
     *  "bench", ...), or "" when the path is outside the DAG. */
    static std::string moduleOf(const std::string &relPath);

  private:
    std::map<std::string, const FileContext *> files_;
};

} // namespace boreas::lint
