/**
 * @file
 * Finding baseline: a checked-in list of (rule, file) pairs that are
 * acknowledged debt and must not fail CI. The workflow is
 * ratchet-only — new code never adds entries; fixing a finding
 * deletes its line (boreas_lint --write-baseline regenerates the
 * file from the current findings when debt is first adopted).
 *
 * Format, one entry per line:
 *
 *     <rule-id> <repo-relative-path>
 *
 * Blank lines and `#` comments are ignored. The baseline for this
 * repo is empty: src/ lints clean (the acceptance bar in ISSUE 8).
 */

#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/rule.hh"

namespace boreas::lint
{

struct Baseline
{
    std::set<std::pair<std::string, std::string>> entries; // rule,file

    /** True if the violation is baselined (acknowledged debt). */
    bool covers(const Violation &v) const;
};

/** Parse baseline text (see file comment for the format). */
Baseline parseBaseline(const std::string &content);

/** Partition: returns the violations NOT covered by the baseline. */
std::vector<Violation> filterBaselined(
    const std::vector<Violation> &violations, const Baseline &base);

/** Serialize the (rule, file) pairs of `violations` as a baseline. */
std::string writeBaseline(const std::vector<Violation> &violations);

} // namespace boreas::lint
