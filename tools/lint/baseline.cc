#include "lint/baseline.hh"

#include <sstream>

namespace boreas::lint
{

bool
Baseline::covers(const Violation &v) const
{
    return entries.count({v.rule, v.file}) != 0;
}

Baseline
parseBaseline(const std::string &content)
{
    Baseline base;
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) {
        const size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream fields(line);
        std::string rule, file;
        if (fields >> rule >> file)
            base.entries.insert({rule, file});
    }
    return base;
}

std::vector<Violation>
filterBaselined(const std::vector<Violation> &violations,
                const Baseline &base)
{
    std::vector<Violation> out;
    for (const Violation &v : violations) {
        if (!base.covers(v))
            out.push_back(v);
    }
    return out;
}

std::string
writeBaseline(const std::vector<Violation> &violations)
{
    std::set<std::pair<std::string, std::string>> entries;
    for (const Violation &v : violations)
        entries.insert({v.rule, v.file});
    std::string out =
        "# boreas_lint baseline — acknowledged (rule, file) debt.\n"
        "# Ratchet-only: fixing a finding deletes its line; new code\n"
        "# never adds one. Regenerate with --write-baseline.\n";
    for (const auto &[rule, file] : entries)
        out += rule + " " + file + "\n";
    return out;
}

} // namespace boreas::lint
