/**
 * @file
 * The Boreas repo linter: multi-pass static enforcement of repo
 * invariants the compiler cannot check (DESIGN.md §7, §11).
 *
 * Pass 1 lexes each file into a comment/string-aware token stream
 * (lint/lexer.hh) — rules never fire on prose, string bodies, or
 * raw-string contents. Pass 2 builds the repo include graph and
 * enforces the declared layering DAG plus cycle-freedom
 * (lint/include_graph.hh). Pass 3 runs the per-file rules.
 *
 * Per-file rules (IDs are what the suppression markers take):
 *
 *   raw-random          Direct randomness (rand(), srand(), <random>
 *                       engines, std::random_device) outside
 *                       src/common/rng. Everything stochastic must
 *                       draw from the seeded Rng.
 *   unordered-container std::unordered_map / std::unordered_set:
 *                       implementation-defined iteration order breaks
 *                       ordered output and FP-sum determinism.
 *   direct-stdio        printf/puts/std::cout/std::cerr outside
 *                       src/common/logging — use boreas_inform /
 *                       boreas_warn / panic / fatal.
 *   raw-file-output     ofstream/fopen outside the designated sinks
 *                       (src/obs/export, src/workload/trace_io).
 *   workload-spec-construction
 *                       WorkloadSpec built outside src/workload; go
 *                       through the source registry.
 *   raw-new-delete      Raw new/delete expressions (`= delete`
 *                       declarations are fine).
 *   header-guard        Headers use #pragma once, without a legacy
 *                       #ifndef guard alongside.
 *   header-hygiene      No `using namespace` at header scope.
 *   include-style       Quoted includes are repo-relative: no "..",
 *                       no absolute paths, no <boreas/...>, no
 *                       including .cc files.
 *   parallel-capture-mutation
 *                       A parallelFor/parallelForEach lambda with a
 *                       by-reference capture writes captured state
 *                       that is neither body-local nor a subscripted
 *                       per-task slot, without atomics or a lock.
 *   parallel-fp-reduction
 *                       Same detection classified as a reduction
 *                       (`+=`, `x = x + v`, std::accumulate feeding a
 *                       capture): thread-order FP accumulation is
 *                       nondeterministic — keep per-task partials and
 *                       merge in task-index order (DESIGN.md §6).
 *   mutable-global-state
 *                       Non-const static/global mutable data in src/
 *                       outside the allowlisted singleton homes
 *                       (common/parallel, obs/metrics, obs/trace).
 *   wall-clock          Wall-clock / std::this_thread use outside
 *                       bench/ and src/obs.
 *
 * Repo-level rules (emitted by the include-graph pass under
 * lintTree): `layering` and `include-cycle`.
 *
 * Suppressions:
 *
 *   // boreas-lint: allow(<rule>)       on the offending line, or on
 *                                       an immediately preceding
 *                                       comment-only line.
 *   // boreas-lint: allow-file(<rule>)  file-wide, honored only in
 *                                       the file header — the leading
 *                                       run of comment/blank lines
 *                                       before the first code line —
 *                                       so every file-wide exception
 *                                       is visible in one screenful.
 *
 * Rule applicability is zone-scoped (lint/rule.hh): src/ gets the
 * full determinism set; bench/, tests/ and tools/ only the hygiene
 * rules, since timing and printing are their job.
 */

#pragma once

#include <string>
#include <vector>

#include "lint/rule.hh"

namespace boreas::lint
{

/**
 * Lint one file's contents with the per-file rules. `path` decides
 * rule applicability (zone, header vs source, module exemptions); it
 * is not opened — `content` is the text to scan.
 */
std::vector<Violation> lintContent(const std::string &path,
                                   const std::string &content);

/**
 * Lint a file or directory tree (recursing into C++ sources) with
 * the per-file rules. Unreadable paths produce a violation rather
 * than a crash. No include-graph pass (use lintTree for that).
 */
std::vector<Violation> lintPath(const std::string &root);

/** Options for the full multi-pass run. */
struct TreeLintOptions
{
    /// Repo root for display-path relativization and include
    /// resolution. Empty: paths are reported as passed and the
    /// include-graph pass is skipped.
    std::string repoRoot;
    /// Run the layering/cycle pass (needs repoRoot).
    bool includeGraph = true;
};

struct TreeLintResult
{
    std::vector<Violation> violations; ///< sorted (file, line, rule)
    int filesScanned = 0;
};

/**
 * The full pipeline over one or more roots: lex every file, run the
 * per-file rules, then the repo-level include-graph pass.
 */
TreeLintResult lintTree(const std::vector<std::string> &roots,
                        const TreeLintOptions &opts);

/** Render "file:line: [rule] message". */
std::string format(const Violation &v);

} // namespace boreas::lint
