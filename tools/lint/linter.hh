/**
 * @file
 * The Boreas repo linter: regex/scanner-level enforcement of repo
 * invariants that the compiler cannot check (DESIGN.md §7).
 *
 * Rules (IDs are what `// boreas-lint: allow(<id>)` takes):
 *
 *   raw-random          Direct randomness (rand(), srand(), <random>
 *                       engines, std::random_device) outside
 *                       src/common/rng. Everything stochastic must draw
 *                       from the seeded Rng for bit-reproducibility.
 *   unordered-container std::unordered_map / std::unordered_set.
 *                       Their iteration order is
 *                       implementation-defined, which silently breaks
 *                       ordered output and FP-accumulation
 *                       determinism; use std::map / std::vector, or
 *                       allow() a use that provably never iterates.
 *   direct-stdio        printf/puts/std::cout/std::cerr outside
 *                       src/common/logging — use boreas_inform /
 *                       boreas_warn / panic / fatal so output is
 *                       uniform and greppable.
 *   header-guard        Headers must use #pragma once (and not retain
 *                       an #ifndef guard next to it).
 *   header-hygiene      No `using namespace` at namespace scope in
 *                       headers.
 *   include-style       Quoted includes must be repo-relative
 *                       ("subdir/name.hh"): no "..", no absolute
 *                       paths, no <boreas/...>.
 *   raw-new-delete      Raw new/delete expressions — ownership goes
 *                       through containers and smart pointers
 *                       (`= delete` declarations are fine).
 *
 * The scanner strips comments and string literals first (preserving
 * line structure), so rules do not fire on prose. An inline
 * `// boreas-lint: allow(rule-id)` comment on the offending line
 * suppresses that rule for that line.
 */

#pragma once

#include <string>
#include <vector>

namespace boreas::lint
{

/** One rule violation at a source location. */
struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/**
 * Lint one file's contents. `path` decides rule applicability (header
 * vs source, the src/common/rng and src/common/logging exemptions);
 * it is not opened — `content` is the text to scan.
 */
std::vector<Violation> lintContent(const std::string &path,
                                   const std::string &content);

/**
 * Lint a file or directory tree (recursing into *.hh / *.cc).
 * Unreadable paths produce a violation rather than a crash.
 */
std::vector<Violation> lintPath(const std::string &root);

/** Render "file:line: [rule] message". */
std::string format(const Violation &v);

} // namespace boreas::lint
