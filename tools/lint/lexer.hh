/**
 * @file
 * Pass 1 of the repo linter: a comment/string-aware lexer that turns a
 * source file into
 *
 *   - per-line ScannedLine records (code with literals blanked out +
 *     the line's comment text, for the regex-level rules and the
 *     `boreas-lint: allow(...)` markers),
 *   - a token stream (identifiers, numbers, multi-char punctuators)
 *     for the structural rules (parallel-capture analysis, mutable
 *     global detection),
 *   - the file's #include directives with line numbers, feeding the
 *     include-graph pass.
 *
 * Raw string literals are handled per the grammar: the prefix must be
 * exactly R / LR / uR / UR / u8R (an arbitrary identifier ending in R,
 * e.g. a macro name like `BAD_R`, is NOT a raw-string prefix), the
 * d-char delimiter is at most 16 characters and may not contain
 * spaces, parentheses or backslashes; anything malformed falls back to
 * ordinary string lexing instead of swallowing the rest of the file.
 * Rule content inside raw strings is blanked exactly like ordinary
 * literals.
 */

#pragma once

#include <string>
#include <vector>

namespace boreas::lint
{

/**
 * One physical line split into the code part (comments and literal
 * bodies blanked out) and the comment part (for allow() markers).
 */
struct ScannedLine
{
    std::string code;
    std::string comment;
};

/** Token kinds the structural rules care about. */
enum class TokenKind
{
    Identifier, ///< identifiers and keywords
    Number,     ///< numeric literals (incl. digit separators)
    String,     ///< a string literal (text is the blanked "")
    CharLit,    ///< a character literal
    Punct,      ///< operators/punctuation, multi-char ops combined
};

struct Token
{
    TokenKind kind;
    std::string text;
    int line = 0; ///< 1-based
};

/** An #include directive, with the raw argument preserved. */
struct IncludeDirective
{
    char kind = '"'; ///< '"' or '<'
    std::string path;
    int line = 0; ///< 1-based
};

/** The full lex of one file, shared by every analysis pass. */
struct LexedFile
{
    std::vector<ScannedLine> lines;
    /// Tokens from non-preprocessor lines only: directive bodies
    /// (#define etc.) can contain unbalanced braces that would corrupt
    /// the structural rules' scope tracking.
    std::vector<Token> tokens;
    std::vector<IncludeDirective> includes;
};

/** Lex `content`. Never fails; malformed input degrades gracefully. */
LexedFile lex(const std::string &content);

/** Split raw content into physical lines (keeps empty trailing line). */
std::vector<std::string> splitLines(const std::string &content);

} // namespace boreas::lint
