#include "lint/linter.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/include_graph.hh"

namespace boreas::lint
{

namespace fs = std::filesystem;

namespace
{

bool
isCxxSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp" ||
        ext == ".cc" || ext == ".cpp";
}

/** Directories the tree walk never descends into. */
bool
skipDir(const std::string &name)
{
    return name.empty() || name[0] == '.' ||
        name.rfind("build", 0) == 0 || name == "lint_fixtures" ||
        name == "third_party";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Collect lintable files under `root` (or `root` itself). */
void
collectFiles(const std::string &root, std::vector<std::string> &out)
{
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
        for (auto it = fs::recursive_directory_iterator(root, ec);
             !ec && it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (it->is_directory() &&
                skipDir(it->path().filename().string())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && isCxxSource(it->path()))
                out.push_back(it->path().string());
        }
    } else {
        out.push_back(root);
    }
}

/** Display path: relative to repoRoot when it is a prefix. */
std::string
displayPath(const std::string &path, const std::string &repoRoot)
{
    if (repoRoot.empty())
        return path;
    std::string root = repoRoot;
    if (root.back() != '/')
        root += '/';
    std::error_code ec;
    const std::string canon = fs::weakly_canonical(path, ec).string();
    const std::string canon_root =
        fs::weakly_canonical(repoRoot, ec).string() + "/";
    if (!ec && canon.rfind(canon_root, 0) == 0)
        return canon.substr(canon_root.size());
    if (path.rfind(root, 0) == 0)
        return path.substr(root.size());
    return path;
}

void
sortViolations(std::vector<Violation> &v)
{
    std::stable_sort(v.begin(), v.end(),
                     [](const Violation &a, const Violation &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
}

} // namespace

std::vector<Violation>
lintContent(const std::string &path, const std::string &content)
{
    const FileContext ctx = makeFileContext(path, content);
    std::vector<Violation> out;
    for (const Rule &rule : ruleRegistry())
        rule.check(ctx, out);
    sortViolations(out);
    return out;
}

std::vector<Violation>
lintPath(const std::string &root)
{
    TreeLintOptions opts;
    opts.includeGraph = false;
    return lintTree({root}, opts).violations;
}

TreeLintResult
lintTree(const std::vector<std::string> &roots,
         const TreeLintOptions &opts)
{
    TreeLintResult result;

    std::vector<std::string> paths;
    for (const std::string &root : roots)
        collectFiles(root, paths);
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    // Pass 1: lex + per-file rules. Contexts are kept alive for the
    // graph pass, which borrows them.
    std::vector<FileContext> contexts;
    contexts.reserve(paths.size());
    for (const std::string &path : paths) {
        const std::string display = displayPath(path, opts.repoRoot);
        std::string content;
        if (!readFile(path, content)) {
            result.violations.push_back(
                {display, 0, "io", "cannot read file"});
            continue;
        }
        ++result.filesScanned;
        contexts.push_back(makeFileContext(display, content));
        const FileContext &ctx = contexts.back();
        for (const Rule &rule : ruleRegistry())
            rule.check(ctx, result.violations);
    }

    // Pass 2: repo-level include graph (needs repo-relative paths).
    if (opts.includeGraph && !opts.repoRoot.empty()) {
        IncludeGraph graph;
        for (const FileContext &ctx : contexts)
            graph.addFile(ctx.path, &ctx);
        graph.check(result.violations);
    }

    sortViolations(result.violations);
    return result;
}

std::string
format(const Violation &v)
{
    return v.file + ":" + std::to_string(v.line) + ": [" + v.rule +
        "] " + v.message;
}

} // namespace boreas::lint
