#include "lint/linter.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace boreas::lint
{

namespace
{

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isHeader(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".h") ||
        endsWith(path, ".hpp");
}

/** Path component test robust to absolute/relative prefixes. */
bool
pathContains(const std::string &path, const std::string &fragment)
{
    return path.find(fragment) != std::string::npos;
}

/** The only module allowed to touch raw randomness primitives. */
bool
isRngModule(const std::string &path)
{
    return pathContains(path, "common/rng");
}

/** The only module allowed to use stdio streams directly. */
bool
isLoggingModule(const std::string &path)
{
    return pathContains(path, "common/logging");
}

/** The only modules allowed to open files for writing: the obs
 *  artifact sink (all BENCH_/TRACE_ output) and the workload trace
 *  serializer (boreas-trace-v1 files). */
bool
isFileSink(const std::string &path)
{
    return pathContains(path, "obs/export") ||
        pathContains(path, "workload/trace_io");
}

/** Only the workload subsystem's registries construct specs. */
bool
isWorkloadModule(const std::string &path)
{
    return pathContains(path, "src/workload");
}

/**
 * One physical line split into the code part (comments and literal
 * bodies blanked out) and the comment part (for allow() markers).
 */
struct ScannedLine
{
    std::string code;
    std::string comment;
};

/**
 * Strip comments and string/char literals while preserving the line
 * structure. Literal bodies become spaces (their quotes survive so
 * include rules can still see "path" arguments — includes are handled
 * before stripping).
 */
std::vector<ScannedLine>
scan(const std::string &content)
{
    std::vector<ScannedLine> lines;
    lines.push_back({});

    enum class State { Code, Block, Str, Chr } state = State::Code;
    for (size_t i = 0; i < content.size(); ++i) {
        const char c = content[i];
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            // A newline terminates an (unterminated) literal too —
            // good enough for lint purposes.
            if (state == State::Str || state == State::Chr)
                state = State::Code;
            lines.push_back({});
            continue;
        }
        ScannedLine &cur = lines.back();
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                cur.comment.append(content, i + 2,
                                   content.find('\n', i) == std::string::npos
                                       ? std::string::npos
                                       : content.find('\n', i) - i - 2);
                i = content.find('\n', i);
                if (i == std::string::npos)
                    return lines;
                lines.push_back({});
            } else if (c == '/' && next == '*') {
                state = State::Block;
                ++i;
            } else if (c == '"') {
                // Raw string literals: skip to the matching delimiter.
                if (!cur.code.empty() && cur.code.back() == 'R') {
                    const size_t paren = content.find('(', i);
                    if (paren == std::string::npos)
                        return lines;
                    const std::string delim =
                        ")" + content.substr(i + 1, paren - i - 1) + "\"";
                    const size_t close = content.find(delim, paren);
                    cur.code.push_back('"');
                    if (close == std::string::npos)
                        return lines;
                    for (size_t j = i + 1; j < close + delim.size() - 1;
                         ++j) {
                        if (content[j] == '\n')
                            lines.push_back({});
                    }
                    i = close + delim.size() - 1;
                    lines.back().code.push_back('"');
                } else {
                    cur.code.push_back('"');
                    state = State::Str;
                }
            } else if (c == '\'') {
                cur.code.push_back('\'');
                // A quote directly after an alphanumeric is a digit
                // separator (1'000'000), not a char literal.
                if (cur.code.size() < 2 ||
                    !std::isalnum(static_cast<unsigned char>(
                        cur.code[cur.code.size() - 2])))
                    state = State::Chr;
            } else {
                cur.code.push_back(c);
            }
            break;
        case State::Block:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else {
                cur.comment.push_back(c);
            }
            break;
        case State::Str:
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                cur.code.push_back('"');
                state = State::Code;
            } else {
                cur.code.push_back(' ');
            }
            break;
        case State::Chr:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                cur.code.push_back('\'');
                state = State::Code;
            } else {
                cur.code.push_back(' ');
            }
            break;
        }
    }
    return lines;
}

bool
lineAllows(const ScannedLine &line, const std::string &rule)
{
    const std::string marker = "boreas-lint: allow(" + rule + ")";
    return line.comment.find(marker) != std::string::npos;
}

/**
 * An allow() marker applies on the offending line itself or on an
 * immediately preceding comment-only line.
 */
bool
allows(const std::vector<ScannedLine> &lines, size_t i,
       const std::string &rule)
{
    if (lineAllows(lines[i], rule))
        return true;
    if (i == 0)
        return false;
    const ScannedLine &prev = lines[i - 1];
    const bool comment_only = std::all_of(
        prev.code.begin(), prev.code.end(),
        [](unsigned char c) { return std::isspace(c); });
    return comment_only && lineAllows(prev, rule);
}

struct LineRule
{
    std::string id;
    std::regex pattern;
    std::string message;
    bool headersOnly = false;
    bool (*exempt)(const std::string &path) = nullptr;
};

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> kRules = {
        {"raw-random",
         std::regex(R"((\bstd::random_device\b|\bstd::mt19937|\bstd::default_random_engine\b|\bstd::minstd_rand|\buniform_int_distribution\b|\buniform_real_distribution\b|\brand\s*\(|\bsrand\s*\(|\bdrand48\s*\(|#\s*include\s*<random>))"),
         "raw randomness outside src/common/rng; draw from the seeded "
         "boreas::Rng instead",
         false, isRngModule},
        {"unordered-container",
         std::regex(R"(\bstd::unordered_(map|set|multimap|multiset)\b)"),
         "unordered containers iterate in implementation-defined order "
         "(breaks ordered output / FP-sum determinism); use std::map or "
         "std::vector, or justify a never-iterated use with an allow()",
         false, nullptr},
        {"direct-stdio",
         std::regex(R"((\bstd::cout\b|\bstd::cerr\b|(?:^|[^\w:.>])printf\s*\(|\bputs\s*\(|\bputchar\s*\(|\bfprintf\s*\(\s*(?:stdout|stderr)\b))"),
         "direct stdio outside src/common/logging; use boreas_inform / "
         "boreas_warn / boreas_panic / boreas_fatal",
         false, isLoggingModule},
        {"raw-file-output",
         std::regex(R"((\bstd::ofstream\b|\bstd::fstream\b|\bstd::filebuf\b|(^|[^\w:.>])fopen\s*\(|(^|[^\w:.>])freopen\s*\())"),
         "file output outside the designated sinks (src/obs/export, "
         "src/workload/trace_io); route artifacts through them so "
         "every file the simulator writes has one auditable schema",
         false, isFileSink},
        {"workload-spec-construction",
         std::regex(R"(\bWorkloadSpec\s*\{|\bWorkloadSpec\s+\w+\s*(;|=|\{)|\bmake_unique\s*<\s*[\w:]*WorkloadSpec\b|(^|[^\w.:>])new\s+[\w:]*WorkloadSpec\b|\bvector\s*<\s*[\w:]*WorkloadSpec\s*>)"),
         "WorkloadSpec constructed outside src/workload; obtain "
         "workloads through the source registry "
         "(workload/registry.hh) or the suite accessors so every "
         "stimulus is a named, registered source",
         false, isWorkloadModule},
        {"raw-new-delete",
         std::regex(R"((^|[^\w.:>])new\s+[A-Za-z_(]|(^|[^\w.:>=]|[^=] )delete\s*(\[\s*\])?\s+[A-Za-z_(*]|(^|[^\w.:>])delete\s+this\b)"),
         "raw new/delete; own memory via containers or smart pointers",
         false, nullptr},
        {"header-hygiene",
         std::regex(R"(\busing\s+namespace\s)"),
         "`using namespace` at header scope pollutes every includer",
         true, nullptr},
    };
    return kRules;
}

std::regex &
includeRegex()
{
    static std::regex re(R"(^\s*#\s*include\s*([<"])([^>"]+)[>"])");
    return re;
}

/**
 * Include arguments are string literals, which scan() blanks out, so
 * this rule reads the raw line — gated on the scanned line still
 * being a preprocessor directive (a commented-out include scans to
 * empty code and is skipped).
 */
void
checkIncludeStyle(const std::string &path,
                  const std::vector<std::string> &raw_lines,
                  const std::vector<ScannedLine> &lines,
                  std::vector<Violation> &out)
{
    for (size_t i = 0; i < lines.size() && i < raw_lines.size(); ++i) {
        if (lines[i].code.find('#') == std::string::npos)
            continue;
        std::smatch m;
        if (!std::regex_search(raw_lines[i], m, includeRegex()))
            continue;
        if (allows(lines, i, "include-style"))
            continue;
        const std::string kind = m[1];
        const std::string inc = m[2];
        std::string why;
        if (inc.find("..") != std::string::npos)
            why = "contains '..'";
        else if (!inc.empty() && inc[0] == '/')
            why = "is absolute";
        else if (kind == "<" && inc.rfind("boreas/", 0) == 0)
            why = "uses <boreas/...> for a repo header (quote it)";
        else if (kind == "\"" &&
                 (endsWith(inc, ".cc") || endsWith(inc, ".cpp")))
            why = "includes a source file";
        if (!why.empty()) {
            out.push_back({path, static_cast<int>(i + 1),
                           "include-style",
                           "#include \"" + inc + "\" " + why});
        }
    }
}

void
checkHeaderGuard(const std::string &path,
                 const std::vector<ScannedLine> &lines,
                 std::vector<Violation> &out)
{
    bool pragma_once = false;
    int guard_line = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        if (code.find("#pragma once") != std::string::npos)
            pragma_once = true;
        if (guard_line == 0 &&
            std::regex_search(
                code, std::regex(R"(^\s*#\s*ifndef\s+\w*_HH?\b)")))
            guard_line = static_cast<int>(i + 1);
    }
    if (!pragma_once) {
        out.push_back({path, 1, "header-guard",
                       "header lacks #pragma once"});
    } else if (guard_line != 0) {
        out.push_back({path, guard_line, "header-guard",
                       "legacy #ifndef include guard alongside "
                       "#pragma once"});
    }
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    size_t start = 0;
    for (;;) {
        const size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(content.substr(start));
            return lines;
        }
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
}

void
lintLines(const std::string &path,
          const std::vector<std::string> &raw_lines,
          const std::vector<ScannedLine> &lines,
          std::vector<Violation> &out)
{
    const bool header = isHeader(path);
    for (const LineRule &rule : lineRules()) {
        if (rule.headersOnly && !header)
            continue;
        if (rule.exempt && rule.exempt(path))
            continue;
        for (size_t i = 0; i < lines.size(); ++i) {
            if (!std::regex_search(lines[i].code, rule.pattern))
                continue;
            if (allows(lines, i, rule.id))
                continue;
            // `= delete` / `= delete("...")` declarations and
            // user-declared operator delete are not raw deallocation.
            if (rule.id == "raw-new-delete" &&
                std::regex_search(
                    lines[i].code,
                    std::regex(R"((=\s*delete\b|operator\s+(new|delete)))")) &&
                !std::regex_search(lines[i].code,
                                   std::regex(R"(delete\s+this\b)")))
                continue;
            out.push_back({path, static_cast<int>(i + 1), rule.id,
                           rule.message});
        }
    }
    checkIncludeStyle(path, raw_lines, lines, out);
    if (header)
        checkHeaderGuard(path, lines, out);
}

} // namespace

std::vector<Violation>
lintContent(const std::string &path, const std::string &content)
{
    std::vector<Violation> out;
    lintLines(path, splitLines(content), scan(content), out);
    return out;
}

std::vector<Violation>
lintPath(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<Violation> out;

    std::vector<std::string> files;
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
        for (fs::recursive_directory_iterator it(root, ec), end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file())
                continue;
            const std::string p = it->path().string();
            if (endsWith(p, ".hh") || endsWith(p, ".h") ||
                endsWith(p, ".hpp") || endsWith(p, ".cc") ||
                endsWith(p, ".cpp"))
                files.push_back(p);
        }
    } else {
        files.push_back(root);
    }
    std::sort(files.begin(), files.end());

    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            out.push_back({file, 0, "io", "cannot read file"});
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        const auto file_out = lintContent(file, ss.str());
        out.insert(out.end(), file_out.begin(), file_out.end());
    }
    return out;
}

std::string
format(const Violation &v)
{
    return v.file + ":" + std::to_string(v.line) + ": [" + v.rule +
        "] " + v.message;
}

} // namespace boreas::lint
