/**
 * @file
 * Developer diagnostics: peak-severity seed sensitivity of selected
 * workloads near their safe/unsafe boundary. Used to validate that the
 * calibration's multi-seed max statistic keeps each workload's oracle
 * frequency stable across trace realizations.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "workload/spec2006.hh"

using namespace boreas;

int
main(int argc, char **argv)
{
    std::vector<std::string> names = {"mcf", "omnetpp", "h264ref",
                                      "soplex", "gromacs"};
    if (argc > 1) {
        names.clear();
        for (int i = 1; i < argc; ++i)
            names.push_back(argv[i]);
    }

    SimulationPipeline pipeline;
    for (const auto &name : names) {
        const WorkloadSpec &w = findWorkload(name);
        const GHz oracle = designOracleFrequency(name);
        for (GHz f : {oracle, pipeline.vfTable().stepUp(oracle)}) {
            std::printf("%-10s f=%.2f :", name.c_str(), f);
            for (uint64_t seed : {42ULL, 142ULL, 2023ULL + w.seedSalt,
                                  7ULL}) {
                const RunResult r =
                    pipeline.runConstantFrequency(w, seed, f);
                std::printf("  %.3f", r.peakSeverity());
            }
            std::printf("%s\n", f == oracle ? "  (design-safe)"
                                            : "  (design-unsafe)");
        }
    }
    return 0;
}
