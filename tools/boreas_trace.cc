/**
 * @file
 * Workload-trace utility for the boreas-trace-v1 container
 * (workload/trace_io.hh):
 *
 *   boreas_trace info <file>
 *       Header summary: source name, cores, steps, dt, seed,
 *       payload checksum, warm-start power presence.
 *
 *   boreas_trace dump <file> [--head N]
 *       Per-step stimulus listing (first N steps, default 8).
 *
 *   boreas_trace verify <file>
 *       Full validation (magic/version/size/checksum/monotonic step
 *       indices/finite params), then a replay smoke-run through the
 *       simulation pipeline reporting the resulting runHash.
 *
 *   boreas_trace record <source-spec> <file> [--seed S] [--steps N]
 *                       [--freq F]
 *       Record a live run of any registry source string
 *       (workload/registry.hh grammar) into a trace file. Used to
 *       regenerate the fixture under tests/data/.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "workload/registry.hh"
#include "workload/trace_io.hh"

using namespace boreas;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: boreas_trace info <file>\n"
                 "       boreas_trace dump <file> [--head N]\n"
                 "       boreas_trace verify <file>\n"
                 "       boreas_trace record <source-spec> <file>"
                 " [--seed S] [--steps N] [--freq F]\n\n"
                 "source-spec grammar:\n%s",
                 workloadSourceGrammar().c_str());
    return 2;
}

bool
loadOrExplain(const std::string &path, TraceData *out)
{
    std::string error;
    if (tryLoadTraceFile(path, out, &error))
        return true;
    std::fprintf(stderr, "boreas_trace: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
}

int
cmdInfo(const std::string &path)
{
    TraceData data;
    if (!loadOrExplain(path, &data))
        return 1;
    std::printf("format:   %s\n", kTraceFormatName);
    std::printf("source:   %s\n", data.sourceName.c_str());
    std::printf("cores:    %d\n", data.numCores);
    std::printf("steps:    %zu\n", data.steps.size());
    std::printf("dt:       %.6g s (%.1f us)\n", data.dt, data.dt * 1e6);
    std::printf("duration: %.6g s\n",
                data.dt * static_cast<double>(data.steps.size()));
    std::printf("seed:     %llu\n",
                static_cast<unsigned long long>(data.seed));
    std::printf("checksum: %016llx\n",
                static_cast<unsigned long long>(data.payloadChecksum));
    std::printf("warmPower: %s (%zu units)\n",
                data.warmPower.empty() ? "absent" : "recorded",
                data.warmPower.size());
    return 0;
}

int
cmdDump(const std::string &path, int head)
{
    TraceData data;
    if (!loadOrExplain(path, &data))
        return 1;
    std::printf("# %s  cores=%d steps=%zu dt=%.6gs\n",
                data.sourceName.c_str(), data.numCores,
                data.steps.size(), data.dt);
    const size_t limit =
        head < 0 ? data.steps.size()
                 : std::min(data.steps.size(), static_cast<size_t>(head));
    for (size_t s = 0; s < limit; ++s) {
        const TraceStep &step = data.steps[s];
        std::printf("step %u\n", step.stepIndex);
        for (size_t c = 0; c < step.cores.size(); ++c) {
            const TraceCoreRecord &rec = step.cores[c];
            if (!rec.active) {
                std::printf("  core %zu  idle\n", c);
                continue;
            }
            std::printf("  core %zu  cpi=%.3f fp=%.2f l3mpki=%.2f "
                        "intensity=%.3f rng=%016llx\n",
                        c, rec.phase.baseCpi, rec.phase.fpFraction,
                        rec.phase.l3Mpki, rec.phase.intensity,
                        static_cast<unsigned long long>(rec.rng.s[0]));
        }
    }
    if (limit < data.steps.size())
        std::printf("... (%zu more steps)\n", data.steps.size() - limit);
    return 0;
}

int
cmdVerify(const std::string &path)
{
    TraceData data;
    if (!loadOrExplain(path, &data))
        return 1;
    // tryLoadTraceFile already re-validated structure + checksum; the
    // replay smoke-run proves the trace also drives the pipeline.
    TraceSource source(std::move(data));
    SimulationPipeline pipeline;
    const int steps = std::min(source.numSteps(), kTraceSteps);
    const RunResult r = pipeline.runConstantFrequency(
        source, source.recordedSeed(), kBaselineFrequency, steps);
    std::printf("ok: checksum %016llx, replayed %zu steps, "
                "runHash %016llx\n",
                static_cast<unsigned long long>(source.checksum()),
                r.steps.size(),
                static_cast<unsigned long long>(pipeline.runHash()));
    return 0;
}

int
cmdRecord(const std::string &spec, const std::string &path,
          uint64_t seed, int steps, GHz freq)
{
    std::string error;
    auto source = tryMakeWorkloadSource(spec, &error);
    if (!source) {
        std::fprintf(stderr, "boreas_trace: %s\n", error.c_str());
        return 1;
    }
    SimulationPipeline pipeline;
    TraceRecorder recorder;
    pipeline.setTraceRecorder(&recorder);
    pipeline.runConstantFrequency(*source, seed, freq, steps);
    const uint64_t live_hash = pipeline.runHash();
    pipeline.setTraceRecorder(nullptr);

    TraceData data = recorder.takeData();
    writeTraceFile(path, data);

    // Round-trip check before declaring success: the file on disk must
    // replay to the runHash we just observed live.
    TraceSource replay(loadTraceFile(path));
    pipeline.runConstantFrequency(replay, seed, freq, steps);
    if (pipeline.runHash() != live_hash) {
        std::fprintf(stderr, "boreas_trace: replay hash mismatch "
                             "(%016llx live vs %016llx replay)\n",
                     static_cast<unsigned long long>(live_hash),
                     static_cast<unsigned long long>(pipeline.runHash()));
        return 1;
    }
    std::printf("recorded %s: %d cores, %d steps, checksum %016llx, "
                "runHash %016llx\n",
                source->name().c_str(), source->numCores(), steps,
                static_cast<unsigned long long>(data.payloadChecksum),
                static_cast<unsigned long long>(live_hash));
    return 0;
}

bool
parseLong(const char *text, long long *out)
{
    char *end = nullptr;
    *out = std::strtoll(text, &end, 10);
    return end != text && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "info")
        return cmdInfo(argv[2]);

    if (cmd == "dump") {
        int head = 8;
        for (int i = 3; i < argc; ++i) {
            long long v = 0;
            if (std::strcmp(argv[i], "--head") == 0 && i + 1 < argc &&
                parseLong(argv[++i], &v))
                head = static_cast<int>(v);
            else if (std::strcmp(argv[i], "--all") == 0)
                head = -1;
            else
                return usage();
        }
        return cmdDump(argv[2], head);
    }

    if (cmd == "verify")
        return cmdVerify(argv[2]);

    if (cmd == "record") {
        if (argc < 4)
            return usage();
        uint64_t seed = 2023; // the bench-suite seed (bench/harness.hh)
        int steps = kTraceSteps;
        GHz freq = kBaselineFrequency;
        for (int i = 4; i < argc; ++i) {
            long long v = 0;
            if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc &&
                parseLong(argv[++i], &v))
                seed = static_cast<uint64_t>(v);
            else if (std::strcmp(argv[i], "--steps") == 0 &&
                     i + 1 < argc && parseLong(argv[++i], &v))
                steps = static_cast<int>(v);
            else if (std::strcmp(argv[i], "--freq") == 0 && i + 1 < argc)
                freq = std::strtod(argv[++i], nullptr);
            else
                return usage();
        }
        return cmdRecord(argv[2], argv[3], seed, steps, freq);
    }

    return usage();
}
