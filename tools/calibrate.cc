/**
 * @file
 * Calibration: binary-search each workload's thermalScale so that its
 * peak severity crosses 1.0 exactly between its design oracle frequency
 * and the next VF step up. Prints a C++ table ready to paste into
 * workload/spec2006.cc.
 */

#include <cstdio>
#include <vector>

#include "boreas/pipeline.hh"
#include "workload/spec2006.hh"

using namespace boreas;

namespace
{

double
peakSeverityAt(SimulationPipeline &pipeline, const WorkloadSpec &w,
               GHz freq)
{
    // Match the multi-seed max statistic used by severitySweep so the
    // calibrated crossing survives seed changes.
    double peak = 0.0;
    for (uint64_t s : {0ULL, 97ULL, 194ULL}) {
        peak = std::max(peak,
                        pipeline.runConstantFrequency(
                            w, 2023 + w.seedSalt + s, freq)
                            .peakSeverity());
    }
    return peak;
}

} // namespace

int
main()
{
    SimulationPipeline pipeline;
    const VFTable &vf = pipeline.vfTable();

    std::printf("const std::map<std::string, double> kThermalScale = {\n");
    for (const WorkloadSpec &base : spec2006Suite()) {
        const GHz oracle = designOracleFrequency(base.name);
        const GHz unsafe = vf.stepUp(oracle);

        // Severity is monotone in thermalScale: binary-search the scale
        // that puts peak severity at the oracle point just under 1.0,
        // then verify the next step up is unsafe.
        constexpr double kTargetSafePeak = 0.93;
        WorkloadSpec w = base;
        double lo = 0.2, hi = 4.0;
        double chosen = 1.0;
        for (int it = 0; it < 14; ++it) {
            const double mid = 0.5 * (lo + hi);
            w.thermalScale = mid;
            if (peakSeverityAt(pipeline, w, oracle) < kTargetSafePeak)
                lo = mid;
            else
                hi = mid;
            chosen = mid;
        }
        w.thermalScale = chosen;
        const double s_safe = peakSeverityAt(pipeline, w, oracle);
        const double s_unsafe = peakSeverityAt(pipeline, w, unsafe);
        std::printf("    {\"%s\", %.4f},  // safe@%.2f: %.3f  "
                    "unsafe@%.2f: %.3f\n",
                    base.name.c_str(), chosen, oracle, s_safe, unsafe,
                    s_unsafe);
        std::fflush(stdout);
    }
    std::printf("};\n");
    return 0;
}
