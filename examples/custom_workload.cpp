/**
 * @file
 * Example: bringing your own workload to the Boreas pipeline.
 *
 * A downstream user modeling a new application (here: a video-analytics
 * kernel alternating SIMD-dense inference bursts with streaming frame
 * I/O) defines a WorkloadSpec, sweeps it across the VF grid to find its
 * safe envelope, and checks how a trained Boreas controller — which has
 * never seen the workload — manages it.
 *
 * Build: cmake --build build --target custom_workload
 * Run:   ./build/examples/custom_workload
 */

#include <cstdio>

#include "boreas/analysis.hh"
#include "boreas/trainer.hh"
#include "control/boreas_controller.hh"
#include "workload/spec2006.hh"

using namespace boreas;

namespace
{

/** A user-defined phase program: inference bursts + frame streaming. */
WorkloadSpec
videoAnalytics()
{
    WorkloadSpec spec;
    spec.name = "video-analytics";
    spec.pattern = PhasePattern::Cyclic;
    spec.seedSalt = 1001; // outside the SPEC suite's salt range
    spec.thermalScale = 1.0;

    // Burst: SIMD-dense inference over on-chip tiles (~1 ms).
    WorkloadPhase burst;
    burst.params.baseCpi = 0.45;
    burst.params.fpFraction = 0.45;
    burst.params.mulFraction = 0.05;
    burst.params.loadFraction = 0.26;
    burst.params.storeFraction = 0.08;
    burst.params.branchFraction = 0.04;
    burst.params.branchMpki = 0.5;
    burst.params.l1dMpki = 4.0;
    burst.params.intensity = 1.25;
    burst.meanDuration = 1.0e-3;
    burst.durationJitter = 0.25;

    // Frame I/O: streaming reads into the cache hierarchy (~1.5 ms).
    WorkloadPhase stream;
    stream.params.baseCpi = 1.1;
    stream.params.fpFraction = 0.05;
    stream.params.loadFraction = 0.35;
    stream.params.storeFraction = 0.15;
    stream.params.branchFraction = 0.06;
    stream.params.l1dMpki = 28.0;
    stream.params.l2Mpki = 11.0;
    stream.params.l3Mpki = 4.5;
    stream.params.mlp = 4.0;
    stream.params.intensity = 0.7;
    stream.meanDuration = 1.5e-3;
    stream.durationJitter = 0.25;

    spec.phases = {burst, stream};
    return spec;
}

} // namespace

int
main()
{
    SimulationPipeline pipeline;
    const WorkloadSpec custom = videoAnalytics();

    // 1. Characterize: peak severity across the VF grid (a one-row
    //    Fig. 2) and the workload's oracle point.
    std::vector<const WorkloadSpec *> wl{&custom};
    const SeveritySweep sweep = severitySweep(
        pipeline, wl, pipeline.vfTable().frequencies(), /*seed=*/11);
    std::printf("== video-analytics: peak severity by frequency ==\n");
    for (size_t fi = 0; fi < sweep.freqs.size(); ++fi) {
        std::printf("  %.2f GHz : %.3f%s\n", sweep.freqs[fi],
                    sweep.peak[0][fi],
                    sweep.peak[0][fi] >= 1.0 ? "  (unsafe)" : "");
    }
    std::printf("oracle frequency: %.2f GHz\n",
                sweep.oracleFrequency(0));

    // 2. Train Boreas on (a subset of) the SPEC training workloads —
    //    the custom workload stays unseen.
    std::printf("\n== training Boreas (custom workload excluded) ==\n");
    TrainerConfig cfg;
    cfg.data.frequencies = {3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0};
    cfg.data.walkSegments = 2;
    cfg.gbt.nEstimators = 120;
    std::vector<const WorkloadSpec *> train{
        &findWorkload("povray"), &findWorkload("namd"),
        &findWorkload("gromacs"), &findWorkload("libquantum"),
        &findWorkload("sjeng"), &findWorkload("milc"),
        &findWorkload("mcf"), &findWorkload("wrf"),
    };
    const TrainedBoreas trained = trainBoreas(pipeline, train, cfg);
    std::printf("trained on %zu instances\n",
                trained.trainData.numRows());

    // 3. Deploy ML05 on the unseen custom workload.
    BoreasController ml05("ML05", &trained.model, trained.featureNames,
                          0.05, kBestSensorIndex);
    const RunResult run = pipeline.runWithController(
        custom, /*seed=*/11, ml05, kBaselineFrequency);
    std::printf("\n== ML05 on the unseen custom workload ==\n");
    std::printf("average frequency : %.3f GHz (baseline %.2f, oracle "
                "%.2f)\n", run.averageFrequency(), kBaselineFrequency,
                sweep.oracleFrequency(0));
    std::printf("peak severity     : %.3f\n", run.peakSeverity());
    std::printf("incursion steps   : %d\n", run.incursionSteps());
    return 0;
}
