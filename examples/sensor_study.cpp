/**
 * @file
 * Example: exploring thermal-sensor placement and delay with the
 * Boreas public API (the Sec. III-D / Fig. 5 methodology).
 *
 * Demonstrates:
 *   1. reading the canonical 7-sensor bank during a run;
 *   2. quantifying how sensor location changes the observed critical
 *      temperature of one workload;
 *   3. quantifying how sensor *delay* erodes the usable headroom of a
 *      bursty workload (gromacs) vs a steady one (sjeng);
 *   4. placing sensors by k-means over observed hotspot sites.
 *
 * Build: cmake --build build --target sensor_study
 * Run:   ./build/examples/sensor_study
 */

#include <cstdio>

#include "boreas/analysis.hh"
#include "boreas/pipeline.hh"
#include "sensors/placement.hh"
#include "workload/spec2006.hh"

using namespace boreas;

namespace
{

void
printCrit(const char *label, Celsius c)
{
    if (c == kNoCriticalTemp)
        std::printf("  %-28s never unsafe\n", label);
    else
        std::printf("  %-28s %.1f C\n", label, c);
}

} // namespace

int
main()
{
    // 1. Watch all seven sensors during one hot run.
    SimulationPipeline pipeline;
    const RunResult run = pipeline.runConstantFrequency(
        findWorkload("namd"), /*seed=*/3, /*freq=*/4.5);
    std::printf("== namd @ 4.5 GHz: final sensor readings ==\n");
    for (size_t t = 0; t < pipeline.sensorBank().size(); ++t) {
        std::printf("  %s: %.1f C (true %.1f C)\n",
                    pipeline.sensorBank().sensor(
                        static_cast<int>(t)).name().c_str(),
                    run.steps.back().sensorReadings[t],
                    run.steps.back().sensorTrue[t]);
    }
    std::printf("  max severity at end: %.3f\n",
                run.steps.back().severity.maxSeverity);

    // 2. Critical temperature depends on which sensor you trust.
    std::printf("\n== critical temperature of namd @ 4.5 GHz by "
                "sensor ==\n");
    std::vector<const WorkloadSpec *> wl{&findWorkload("namd")};
    for (int sensor = 0; sensor < 4; ++sensor) {
        const CriticalTempStudy study = criticalTempStudy(
            pipeline, wl, {4.5}, sensor, /*seed=*/3);
        printCrit(pipeline.sensorBank().sensor(sensor).name().c_str(),
                  study.crit[0][0]);
    }

    // 3. Delay study: bursty vs steady workloads.
    std::printf("\n== critical temperature @ 5.0 GHz vs sensor delay "
                "==\n");
    for (const char *name : {"gromacs", "sjeng"}) {
        std::printf(" %s:\n", name);
        for (int delay : {0, 6, 12}) {
            PipelineConfig cfg;
            cfg.sensors.delaySteps = delay;
            SimulationPipeline p(cfg);
            std::vector<const WorkloadSpec *> one{&findWorkload(name)};
            const CriticalTempStudy study = criticalTempStudy(
                p, one, {5.0}, kBestSensorIndex, /*seed=*/3);
            char label[64];
            std::snprintf(label, sizeof(label), "delay %4d us",
                          delay * 80);
            printCrit(label, study.crit[0][0]);
        }
    }

    // 4. K-means placement from observed hotspots.
    std::printf("\n== k-means placement over hotspot sites ==\n");
    std::vector<Point> sites;
    for (const char *name : {"povray", "namd", "hmmer"}) {
        const RunResult r = pipeline.runConstantFrequency(
            findWorkload(name), /*seed=*/3, 4.75);
        for (const auto &rec : r.steps)
            if (rec.severity.maxSeverity > 0.9)
                sites.push_back(pipeline.thermalGrid().cellCenter(
                    rec.severity.argmaxCell));
    }
    Rng rng(3);
    const auto centers = kmeansPlacement(sites, 4, rng);
    for (const auto &c : centers)
        std::printf("  sensor site at (%.2f, %.2f) mm\n", c.x * 1e3,
                    c.y * 1e3);
    return 0;
}
