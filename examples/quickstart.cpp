/**
 * @file
 * Quickstart: the smallest useful Boreas session.
 *
 *  1. Build the simulation pipeline (Skylake-like die, thermal stack,
 *     sensors, severity metric).
 *  2. Run one workload open-loop at a fixed frequency and watch
 *     severity evolve.
 *  3. Train a small Boreas model on a reduced training set.
 *  4. Deploy it as the ML05 controller and compare the closed-loop run.
 *
 * Build: cmake --build build --target quickstart
 * Run:   ./build/examples/quickstart
 */

#include <cstdio>

#include "boreas/pipeline.hh"
#include "boreas/trainer.hh"
#include "control/boreas_controller.hh"
#include "workload/spec2006.hh"

using namespace boreas;

int
main()
{
    // 1. The pipeline with default (paper) configuration.
    SimulationPipeline pipeline;
    const WorkloadSpec &workload = findWorkload("bzip2");

    // 2. Open-loop run at an aggressive fixed frequency.
    std::printf("== open loop: bzip2 at 4.75 GHz ==\n");
    const RunResult open = pipeline.runConstantFrequency(
        workload, /*seed=*/1, /*freq=*/4.75);
    std::printf("peak severity %.3f, incursion steps %d/%zu\n",
                open.peakSeverity(), open.incursionSteps(),
                open.steps.size());

    // 3. Train a reduced model (all 20 training workloads, but fewer
    //    frequencies and trajectories) so the example runs in about a
    //    minute. The full recipe is in bench/fig7_avg_frequency.
    std::printf("== training a reduced Boreas model (takes ~1 min) "
                "==\n");
    TrainerConfig cfg;
    cfg.data.frequencies = {3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0};
    cfg.data.walkSegments = 3;
    const TrainedBoreas trained =
        trainBoreas(pipeline, trainWorkloads(), cfg);
    std::printf("trained on %zu instances, train MSE %.4f\n",
                trained.trainData.numRows(),
                trained.model.mse(trained.trainData));

    // 4. Closed loop with a 5% guardband (the paper's ML05).
    std::printf("== closed loop: ML05 on bzip2 (unseen) ==\n");
    BoreasController ml05("ML05", &trained.model, trained.featureNames,
                          /*guardband=*/0.05, kBestSensorIndex);
    const RunResult closed = pipeline.runWithController(
        workload, /*seed=*/1, ml05, kBaselineFrequency);
    std::printf("avg frequency %.3f GHz (baseline %.2f), "
                "peak severity %.3f, incursions %d\n",
                closed.averageFrequency(), kBaselineFrequency,
                closed.peakSeverity(), closed.incursionSteps());

    std::printf("step  freq   maxSev\n");
    for (size_t s = 0; s < closed.steps.size(); s += 12) {
        std::printf("%4zu  %.2f   %.3f\n", s,
                    closed.steps[s].frequency,
                    closed.steps[s].severity.maxSeverity);
    }
    return 0;
}
