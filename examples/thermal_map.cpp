/**
 * @file
 * Example: visualizing the die's thermal field and severity field as
 * ASCII heatmaps while a workload executes — the quickest way to *see*
 * an advanced hotspot form over the execution cluster.
 *
 * Build: cmake --build build --target thermal_map
 * Run:   ./build/examples/thermal_map [workload] [GHz]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "workload/spec2006.hh"

using namespace boreas;

namespace
{

/** Render a scalar field as a coarse ASCII heatmap. */
void
renderField(const std::vector<double> &field, int nx, int ny,
            double lo, double hi, const char *title)
{
    static const char kRamp[] = " .:-=+*#%@";
    constexpr int kLevels = sizeof(kRamp) - 2;
    std::printf("%s  [%c = %.1f ... %c = %.1f]\n", title, kRamp[0], lo,
                kRamp[kLevels], hi);
    // Downsample to at most 64 columns x 32 rows.
    const int sx = std::max(1, nx / 64);
    const int sy = std::max(1, ny / 32);
    for (int y = 0; y < ny; y += sy) {
        std::printf("  ");
        for (int x = 0; x < nx; x += sx) {
            const double v = field[y * nx + x];
            int level = static_cast<int>((v - lo) / (hi - lo) *
                                         kLevels);
            level = std::clamp(level, 0, kLevels);
            std::printf("%c", kRamp[level]);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gromacs";
    const GHz freq = argc > 2 ? std::atof(argv[2]) : 5.0;

    SimulationPipeline pipeline;
    const WorkloadSpec &w = findWorkload(name);
    pipeline.start(w, /*seed=*/5);

    std::printf("running %s at %.2f GHz...\n\n", name.c_str(), freq);
    SeveritySnapshot last;
    for (int s = 0; s < kTraceSteps; ++s)
        last = pipeline.step(freq).severity;

    const ThermalGrid &grid = pipeline.thermalGrid();
    const auto &temps = grid.siliconTemps();
    renderField(temps, grid.nx(), grid.ny(), kAmbient,
                grid.maxSiliconTemp(), "silicon temperature after 12 ms");

    std::vector<double> sev_field;
    const Meters cell = pipeline.floorplan().dieWidth() / grid.nx();
    const SeveritySnapshot snap = pipeline.severityModel().evaluate(
        temps, grid.nx(), grid.ny(), cell, &sev_field);
    std::printf("\n");
    renderField(sev_field, grid.nx(), grid.ny(), 0.0,
                std::max(1.0, snap.maxSeverity),
                "Hotspot-Severity field");

    const Point site = grid.cellCenter(snap.argmaxCell);
    std::printf("\npeak severity %.3f at (%.2f, %.2f) mm — T %.1f C, "
                "MLTD %.1f C\n", snap.maxSeverity, site.x * 1e3,
                site.y * 1e3, snap.tempAtMax, snap.mltdAtMax);
    std::string unit = "(no unit)";
    for (const auto &u : pipeline.floorplan().units())
        if (u.rect.contains(site))
            unit = u.name;
    std::printf("that cell belongs to: %s\n", unit.c_str());
    std::printf("max die temperature: %.1f C, max MLTD: %.1f C\n",
                snap.maxTemp, snap.maxMltd);
    return 0;
}
