/**
 * @file
 * Example: a head-to-head comparison of hotspot-mitigation policies on
 * one workload — the paper's Sec. V narrative in miniature.
 *
 * Runs gamess (unseen by the model) under:
 *   - the static 3.75 GHz global limit,
 *   - the per-workload oracle frequency,
 *   - the reactive thermal controller TH-00,
 *   - Boreas ML05,
 * and prints the frequency/severity trajectories side by side.
 *
 * Build: cmake --build build --target mitigation_comparison
 * Run:   ./build/examples/mitigation_comparison
 */

#include <cstdio>

#include "boreas/analysis.hh"
#include "boreas/trainer.hh"
#include "control/boreas_controller.hh"
#include "control/static_controllers.hh"
#include "control/thermal_controller.hh"
#include "workload/spec2006.hh"

using namespace boreas;

int
main()
{
    SimulationPipeline pipeline;
    const WorkloadSpec &workload = findWorkload("gamess");
    const auto train = trainWorkloads();

    // Offline artifacts: TH table + trained model (reduced scale so
    // the example runs in about a minute).
    std::printf("deriving TH-00 critical temperatures...\n");
    const CriticalTempStudy study = criticalTempStudy(
        pipeline, train, pipeline.vfTable().frequencies(),
        kBestSensorIndex, /*seed=*/21, /*steps=*/100);

    std::printf("training Boreas...\n");
    TrainerConfig cfg;
    cfg.data.frequencies = {3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0};
    cfg.data.walkSegments = 2;
    cfg.data.traceSteps = 100;
    const TrainedBoreas trained = trainBoreas(pipeline, train, cfg);

    // The lineup.
    FixedFrequencyController global("global-3.75", kBaselineFrequency);
    const SeveritySweep sweep = severitySweep(
        pipeline, {&workload}, pipeline.vfTable().frequencies(),
        /*seed=*/21);
    FixedFrequencyController oracle("oracle", sweep.oracleFrequency(0));
    ThermalThresholdController th00("TH-00", study.globalTable(), 0.0,
                                    kBestSensorIndex);
    BoreasController ml05("ML05", &trained.model, trained.featureNames,
                          0.05, kBestSensorIndex);

    std::printf("\n== gamess under four policies ==\n");
    std::printf("%-12s %9s %9s %10s\n", "policy", "avg GHz", "peak sev",
                "incursions");
    FrequencyController *policies[] = {&global, &oracle, &th00, &ml05};
    RunResult runs[4];
    for (int i = 0; i < 4; ++i) {
        runs[i] = pipeline.runWithController(
            workload, /*seed=*/21, *policies[i], kBaselineFrequency);
        std::printf("%-12s %9.3f %9.3f %10d\n", policies[i]->name(),
                    runs[i].averageFrequency(), runs[i].peakSeverity(),
                    runs[i].incursionSteps());
    }

    std::printf("\ntrajectories (GHz @ every decision):\n");
    std::printf("%6s %10s %10s %10s %10s\n", "ms", "global", "oracle",
                "TH-00", "ML05");
    for (int s = 0; s < kTraceSteps; s += kStepsPerDecision) {
        std::printf("%6.2f", s * kTelemetryStep * 1e3);
        for (const auto &run : runs)
            std::printf(" %10.2f", run.steps[s].frequency);
        std::printf("\n");
    }

    std::printf("\nthe oracle knows gamess' limit in advance; Boreas "
                "discovers comparable headroom from telemetry alone, "
                "while TH-00 is pinned by the training set's worst "
                "case.\n");
    return 0;
}
