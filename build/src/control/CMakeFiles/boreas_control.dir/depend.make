# Empty dependencies file for boreas_control.
# This may be replaced when dependencies are built.
