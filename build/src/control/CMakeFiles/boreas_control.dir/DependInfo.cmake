
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/boreas_controller.cc" "src/control/CMakeFiles/boreas_control.dir/boreas_controller.cc.o" "gcc" "src/control/CMakeFiles/boreas_control.dir/boreas_controller.cc.o.d"
  "/root/repo/src/control/phase_thermal.cc" "src/control/CMakeFiles/boreas_control.dir/phase_thermal.cc.o" "gcc" "src/control/CMakeFiles/boreas_control.dir/phase_thermal.cc.o.d"
  "/root/repo/src/control/thermal_controller.cc" "src/control/CMakeFiles/boreas_control.dir/thermal_controller.cc.o" "gcc" "src/control/CMakeFiles/boreas_control.dir/thermal_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/boreas_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/boreas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/boreas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/boreas_power.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/boreas_floorplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
