file(REMOVE_RECURSE
  "CMakeFiles/boreas_control.dir/boreas_controller.cc.o"
  "CMakeFiles/boreas_control.dir/boreas_controller.cc.o.d"
  "CMakeFiles/boreas_control.dir/phase_thermal.cc.o"
  "CMakeFiles/boreas_control.dir/phase_thermal.cc.o.d"
  "CMakeFiles/boreas_control.dir/thermal_controller.cc.o"
  "CMakeFiles/boreas_control.dir/thermal_controller.cc.o.d"
  "libboreas_control.a"
  "libboreas_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
