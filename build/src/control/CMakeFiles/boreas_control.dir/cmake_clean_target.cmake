file(REMOVE_RECURSE
  "libboreas_control.a"
)
