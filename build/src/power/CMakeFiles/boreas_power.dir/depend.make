# Empty dependencies file for boreas_power.
# This may be replaced when dependencies are built.
