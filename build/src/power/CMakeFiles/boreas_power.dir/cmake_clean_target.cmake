file(REMOVE_RECURSE
  "libboreas_power.a"
)
