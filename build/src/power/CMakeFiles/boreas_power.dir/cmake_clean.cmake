file(REMOVE_RECURSE
  "CMakeFiles/boreas_power.dir/power_model.cc.o"
  "CMakeFiles/boreas_power.dir/power_model.cc.o.d"
  "CMakeFiles/boreas_power.dir/vf_table.cc.o"
  "CMakeFiles/boreas_power.dir/vf_table.cc.o.d"
  "libboreas_power.a"
  "libboreas_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
