
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/power_model.cc" "src/power/CMakeFiles/boreas_power.dir/power_model.cc.o" "gcc" "src/power/CMakeFiles/boreas_power.dir/power_model.cc.o.d"
  "/root/repo/src/power/vf_table.cc" "src/power/CMakeFiles/boreas_power.dir/vf_table.cc.o" "gcc" "src/power/CMakeFiles/boreas_power.dir/vf_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/boreas_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/boreas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/boreas_floorplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
