# Empty dependencies file for boreas_floorplan.
# This may be replaced when dependencies are built.
