file(REMOVE_RECURSE
  "CMakeFiles/boreas_floorplan.dir/floorplan.cc.o"
  "CMakeFiles/boreas_floorplan.dir/floorplan.cc.o.d"
  "CMakeFiles/boreas_floorplan.dir/geometry.cc.o"
  "CMakeFiles/boreas_floorplan.dir/geometry.cc.o.d"
  "CMakeFiles/boreas_floorplan.dir/skylake.cc.o"
  "CMakeFiles/boreas_floorplan.dir/skylake.cc.o.d"
  "libboreas_floorplan.a"
  "libboreas_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
