file(REMOVE_RECURSE
  "libboreas_floorplan.a"
)
