file(REMOVE_RECURSE
  "libboreas_workload.a"
)
