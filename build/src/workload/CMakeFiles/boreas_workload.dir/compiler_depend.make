# Empty compiler generated dependencies file for boreas_workload.
# This may be replaced when dependencies are built.
