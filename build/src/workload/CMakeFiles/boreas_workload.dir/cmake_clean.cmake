file(REMOVE_RECURSE
  "CMakeFiles/boreas_workload.dir/spec2006.cc.o"
  "CMakeFiles/boreas_workload.dir/spec2006.cc.o.d"
  "CMakeFiles/boreas_workload.dir/workload.cc.o"
  "CMakeFiles/boreas_workload.dir/workload.cc.o.d"
  "libboreas_workload.a"
  "libboreas_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
