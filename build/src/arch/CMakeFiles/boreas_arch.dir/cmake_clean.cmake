file(REMOVE_RECURSE
  "CMakeFiles/boreas_arch.dir/core_model.cc.o"
  "CMakeFiles/boreas_arch.dir/core_model.cc.o.d"
  "CMakeFiles/boreas_arch.dir/counters.cc.o"
  "CMakeFiles/boreas_arch.dir/counters.cc.o.d"
  "libboreas_arch.a"
  "libboreas_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
