# Empty dependencies file for boreas_arch.
# This may be replaced when dependencies are built.
