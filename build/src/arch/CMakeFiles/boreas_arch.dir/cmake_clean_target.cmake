file(REMOVE_RECURSE
  "libboreas_arch.a"
)
