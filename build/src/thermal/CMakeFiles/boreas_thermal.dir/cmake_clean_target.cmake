file(REMOVE_RECURSE
  "libboreas_thermal.a"
)
