# Empty compiler generated dependencies file for boreas_thermal.
# This may be replaced when dependencies are built.
