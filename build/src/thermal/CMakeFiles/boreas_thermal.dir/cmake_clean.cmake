file(REMOVE_RECURSE
  "CMakeFiles/boreas_thermal.dir/thermal_grid.cc.o"
  "CMakeFiles/boreas_thermal.dir/thermal_grid.cc.o.d"
  "libboreas_thermal.a"
  "libboreas_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
