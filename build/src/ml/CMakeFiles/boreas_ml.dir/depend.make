# Empty dependencies file for boreas_ml.
# This may be replaced when dependencies are built.
