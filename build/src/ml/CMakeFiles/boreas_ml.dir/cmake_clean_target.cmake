file(REMOVE_RECURSE
  "libboreas_ml.a"
)
