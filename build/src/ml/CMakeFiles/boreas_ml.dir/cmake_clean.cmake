file(REMOVE_RECURSE
  "CMakeFiles/boreas_ml.dir/cv.cc.o"
  "CMakeFiles/boreas_ml.dir/cv.cc.o.d"
  "CMakeFiles/boreas_ml.dir/dataset.cc.o"
  "CMakeFiles/boreas_ml.dir/dataset.cc.o.d"
  "CMakeFiles/boreas_ml.dir/feature_schema.cc.o"
  "CMakeFiles/boreas_ml.dir/feature_schema.cc.o.d"
  "CMakeFiles/boreas_ml.dir/gbt.cc.o"
  "CMakeFiles/boreas_ml.dir/gbt.cc.o.d"
  "CMakeFiles/boreas_ml.dir/kmeans.cc.o"
  "CMakeFiles/boreas_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/boreas_ml.dir/linreg.cc.o"
  "CMakeFiles/boreas_ml.dir/linreg.cc.o.d"
  "CMakeFiles/boreas_ml.dir/pca.cc.o"
  "CMakeFiles/boreas_ml.dir/pca.cc.o.d"
  "libboreas_ml.a"
  "libboreas_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
