
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cv.cc" "src/ml/CMakeFiles/boreas_ml.dir/cv.cc.o" "gcc" "src/ml/CMakeFiles/boreas_ml.dir/cv.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/boreas_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/boreas_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/feature_schema.cc" "src/ml/CMakeFiles/boreas_ml.dir/feature_schema.cc.o" "gcc" "src/ml/CMakeFiles/boreas_ml.dir/feature_schema.cc.o.d"
  "/root/repo/src/ml/gbt.cc" "src/ml/CMakeFiles/boreas_ml.dir/gbt.cc.o" "gcc" "src/ml/CMakeFiles/boreas_ml.dir/gbt.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/boreas_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/boreas_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/linreg.cc" "src/ml/CMakeFiles/boreas_ml.dir/linreg.cc.o" "gcc" "src/ml/CMakeFiles/boreas_ml.dir/linreg.cc.o.d"
  "/root/repo/src/ml/pca.cc" "src/ml/CMakeFiles/boreas_ml.dir/pca.cc.o" "gcc" "src/ml/CMakeFiles/boreas_ml.dir/pca.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/boreas_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/boreas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
