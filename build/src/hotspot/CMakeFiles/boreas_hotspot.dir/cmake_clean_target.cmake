file(REMOVE_RECURSE
  "libboreas_hotspot.a"
)
