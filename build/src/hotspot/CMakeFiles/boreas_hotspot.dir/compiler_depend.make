# Empty compiler generated dependencies file for boreas_hotspot.
# This may be replaced when dependencies are built.
