file(REMOVE_RECURSE
  "CMakeFiles/boreas_hotspot.dir/events.cc.o"
  "CMakeFiles/boreas_hotspot.dir/events.cc.o.d"
  "CMakeFiles/boreas_hotspot.dir/severity.cc.o"
  "CMakeFiles/boreas_hotspot.dir/severity.cc.o.d"
  "libboreas_hotspot.a"
  "libboreas_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
