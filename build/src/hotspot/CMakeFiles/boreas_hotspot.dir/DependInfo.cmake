
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hotspot/events.cc" "src/hotspot/CMakeFiles/boreas_hotspot.dir/events.cc.o" "gcc" "src/hotspot/CMakeFiles/boreas_hotspot.dir/events.cc.o.d"
  "/root/repo/src/hotspot/severity.cc" "src/hotspot/CMakeFiles/boreas_hotspot.dir/severity.cc.o" "gcc" "src/hotspot/CMakeFiles/boreas_hotspot.dir/severity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/boreas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
