file(REMOVE_RECURSE
  "libboreas_sensors.a"
)
