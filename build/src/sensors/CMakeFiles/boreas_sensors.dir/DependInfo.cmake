
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/placement.cc" "src/sensors/CMakeFiles/boreas_sensors.dir/placement.cc.o" "gcc" "src/sensors/CMakeFiles/boreas_sensors.dir/placement.cc.o.d"
  "/root/repo/src/sensors/sensor.cc" "src/sensors/CMakeFiles/boreas_sensors.dir/sensor.cc.o" "gcc" "src/sensors/CMakeFiles/boreas_sensors.dir/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/boreas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/boreas_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/boreas_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
