file(REMOVE_RECURSE
  "CMakeFiles/boreas_sensors.dir/placement.cc.o"
  "CMakeFiles/boreas_sensors.dir/placement.cc.o.d"
  "CMakeFiles/boreas_sensors.dir/sensor.cc.o"
  "CMakeFiles/boreas_sensors.dir/sensor.cc.o.d"
  "libboreas_sensors.a"
  "libboreas_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
