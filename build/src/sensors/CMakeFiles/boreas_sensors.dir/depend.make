# Empty dependencies file for boreas_sensors.
# This may be replaced when dependencies are built.
