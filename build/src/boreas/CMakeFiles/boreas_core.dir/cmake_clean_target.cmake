file(REMOVE_RECURSE
  "libboreas_core.a"
)
