file(REMOVE_RECURSE
  "CMakeFiles/boreas_core.dir/analysis.cc.o"
  "CMakeFiles/boreas_core.dir/analysis.cc.o.d"
  "CMakeFiles/boreas_core.dir/dataset_builder.cc.o"
  "CMakeFiles/boreas_core.dir/dataset_builder.cc.o.d"
  "CMakeFiles/boreas_core.dir/pipeline.cc.o"
  "CMakeFiles/boreas_core.dir/pipeline.cc.o.d"
  "CMakeFiles/boreas_core.dir/trainer.cc.o"
  "CMakeFiles/boreas_core.dir/trainer.cc.o.d"
  "libboreas_core.a"
  "libboreas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
