# Empty dependencies file for boreas_core.
# This may be replaced when dependencies are built.
