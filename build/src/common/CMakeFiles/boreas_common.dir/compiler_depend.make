# Empty compiler generated dependencies file for boreas_common.
# This may be replaced when dependencies are built.
