file(REMOVE_RECURSE
  "libboreas_common.a"
)
