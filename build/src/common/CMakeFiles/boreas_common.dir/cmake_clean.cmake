file(REMOVE_RECURSE
  "CMakeFiles/boreas_common.dir/logging.cc.o"
  "CMakeFiles/boreas_common.dir/logging.cc.o.d"
  "CMakeFiles/boreas_common.dir/matrix.cc.o"
  "CMakeFiles/boreas_common.dir/matrix.cc.o.d"
  "CMakeFiles/boreas_common.dir/rng.cc.o"
  "CMakeFiles/boreas_common.dir/rng.cc.o.d"
  "CMakeFiles/boreas_common.dir/stats.cc.o"
  "CMakeFiles/boreas_common.dir/stats.cc.o.d"
  "CMakeFiles/boreas_common.dir/table.cc.o"
  "CMakeFiles/boreas_common.dir/table.cc.o.d"
  "libboreas_common.a"
  "libboreas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boreas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
