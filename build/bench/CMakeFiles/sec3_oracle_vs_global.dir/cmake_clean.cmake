file(REMOVE_RECURSE
  "CMakeFiles/sec3_oracle_vs_global.dir/sec3_oracle_vs_global.cc.o"
  "CMakeFiles/sec3_oracle_vs_global.dir/sec3_oracle_vs_global.cc.o.d"
  "sec3_oracle_vs_global"
  "sec3_oracle_vs_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_oracle_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
