# Empty compiler generated dependencies file for sec3_oracle_vs_global.
# This may be replaced when dependencies are built.
