file(REMOVE_RECURSE
  "CMakeFiles/table1_vf_pairs.dir/table1_vf_pairs.cc.o"
  "CMakeFiles/table1_vf_pairs.dir/table1_vf_pairs.cc.o.d"
  "table1_vf_pairs"
  "table1_vf_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_vf_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
