# Empty dependencies file for fig9_model_size_mse.
# This may be replaced when dependencies are built.
