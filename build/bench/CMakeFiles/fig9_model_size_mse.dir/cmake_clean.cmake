file(REMOVE_RECURSE
  "CMakeFiles/fig9_model_size_mse.dir/fig9_model_size_mse.cc.o"
  "CMakeFiles/fig9_model_size_mse.dir/fig9_model_size_mse.cc.o.d"
  "fig9_model_size_mse"
  "fig9_model_size_mse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_model_size_mse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
