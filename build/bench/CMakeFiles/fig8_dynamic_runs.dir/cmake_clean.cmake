file(REMOVE_RECURSE
  "CMakeFiles/fig8_dynamic_runs.dir/fig8_dynamic_runs.cc.o"
  "CMakeFiles/fig8_dynamic_runs.dir/fig8_dynamic_runs.cc.o.d"
  "fig8_dynamic_runs"
  "fig8_dynamic_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dynamic_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
