# Empty dependencies file for fig8_dynamic_runs.
# This may be replaced when dependencies are built.
