# Empty compiler generated dependencies file for fig4_thermal_guardbands.
# This may be replaced when dependencies are built.
