file(REMOVE_RECURSE
  "CMakeFiles/fig4_thermal_guardbands.dir/fig4_thermal_guardbands.cc.o"
  "CMakeFiles/fig4_thermal_guardbands.dir/fig4_thermal_guardbands.cc.o.d"
  "fig4_thermal_guardbands"
  "fig4_thermal_guardbands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_thermal_guardbands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
