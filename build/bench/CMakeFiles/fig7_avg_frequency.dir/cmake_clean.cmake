file(REMOVE_RECURSE
  "CMakeFiles/fig7_avg_frequency.dir/fig7_avg_frequency.cc.o"
  "CMakeFiles/fig7_avg_frequency.dir/fig7_avg_frequency.cc.o.d"
  "fig7_avg_frequency"
  "fig7_avg_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_avg_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
