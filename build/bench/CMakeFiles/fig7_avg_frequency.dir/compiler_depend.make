# Empty compiler generated dependencies file for fig7_avg_frequency.
# This may be replaced when dependencies are built.
