# Empty dependencies file for baseline_cochran_reda.
# This may be replaced when dependencies are built.
