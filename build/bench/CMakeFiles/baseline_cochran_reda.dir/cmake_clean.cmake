file(REMOVE_RECURSE
  "CMakeFiles/baseline_cochran_reda.dir/baseline_cochran_reda.cc.o"
  "CMakeFiles/baseline_cochran_reda.dir/baseline_cochran_reda.cc.o.d"
  "baseline_cochran_reda"
  "baseline_cochran_reda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_cochran_reda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
