# Empty dependencies file for hotspot_characterization.
# This may be replaced when dependencies are built.
