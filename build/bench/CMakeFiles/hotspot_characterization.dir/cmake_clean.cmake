file(REMOVE_RECURSE
  "CMakeFiles/hotspot_characterization.dir/hotspot_characterization.cc.o"
  "CMakeFiles/hotspot_characterization.dir/hotspot_characterization.cc.o.d"
  "hotspot_characterization"
  "hotspot_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
