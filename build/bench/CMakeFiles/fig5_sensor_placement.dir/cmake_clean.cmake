file(REMOVE_RECURSE
  "CMakeFiles/fig5_sensor_placement.dir/fig5_sensor_placement.cc.o"
  "CMakeFiles/fig5_sensor_placement.dir/fig5_sensor_placement.cc.o.d"
  "fig5_sensor_placement"
  "fig5_sensor_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sensor_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
