# Empty compiler generated dependencies file for fig5_sensor_placement.
# This may be replaced when dependencies are built.
