# Empty dependencies file for fig6_ml_guardbands.
# This may be replaced when dependencies are built.
