file(REMOVE_RECURSE
  "CMakeFiles/fig6_ml_guardbands.dir/fig6_ml_guardbands.cc.o"
  "CMakeFiles/fig6_ml_guardbands.dir/fig6_ml_guardbands.cc.o.d"
  "fig6_ml_guardbands"
  "fig6_ml_guardbands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ml_guardbands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
