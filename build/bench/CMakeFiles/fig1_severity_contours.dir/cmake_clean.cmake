file(REMOVE_RECURSE
  "CMakeFiles/fig1_severity_contours.dir/fig1_severity_contours.cc.o"
  "CMakeFiles/fig1_severity_contours.dir/fig1_severity_contours.cc.o.d"
  "fig1_severity_contours"
  "fig1_severity_contours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_severity_contours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
