# Empty compiler generated dependencies file for fig1_severity_contours.
# This may be replaced when dependencies are built.
