
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_feature_importance.cc" "bench/CMakeFiles/table4_feature_importance.dir/table4_feature_importance.cc.o" "gcc" "bench/CMakeFiles/table4_feature_importance.dir/table4_feature_importance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/boreas/CMakeFiles/boreas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/boreas_control.dir/DependInfo.cmake"
  "/root/repo/build/src/hotspot/CMakeFiles/boreas_hotspot.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/boreas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/boreas_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/boreas_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/boreas_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/boreas_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/boreas_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/boreas_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/boreas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
