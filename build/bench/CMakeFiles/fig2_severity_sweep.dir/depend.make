# Empty dependencies file for fig2_severity_sweep.
# This may be replaced when dependencies are built.
