# Empty dependencies file for table3_split.
# This may be replaced when dependencies are built.
