file(REMOVE_RECURSE
  "CMakeFiles/table3_split.dir/table3_split.cc.o"
  "CMakeFiles/table3_split.dir/table3_split.cc.o.d"
  "table3_split"
  "table3_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
