# Empty compiler generated dependencies file for sec3_critical_temps.
# This may be replaced when dependencies are built.
