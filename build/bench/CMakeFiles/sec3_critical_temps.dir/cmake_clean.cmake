file(REMOVE_RECURSE
  "CMakeFiles/sec3_critical_temps.dir/sec3_critical_temps.cc.o"
  "CMakeFiles/sec3_critical_temps.dir/sec3_critical_temps.cc.o.d"
  "sec3_critical_temps"
  "sec3_critical_temps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_critical_temps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
