file(REMOVE_RECURSE
  "CMakeFiles/test_hotspot_events.dir/test_hotspot_events.cc.o"
  "CMakeFiles/test_hotspot_events.dir/test_hotspot_events.cc.o.d"
  "test_hotspot_events"
  "test_hotspot_events.pdb"
  "test_hotspot_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hotspot_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
