# Empty compiler generated dependencies file for test_hotspot_events.
# This may be replaced when dependencies are built.
