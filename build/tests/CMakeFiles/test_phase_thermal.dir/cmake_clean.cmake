file(REMOVE_RECURSE
  "CMakeFiles/test_phase_thermal.dir/test_phase_thermal.cc.o"
  "CMakeFiles/test_phase_thermal.dir/test_phase_thermal.cc.o.d"
  "test_phase_thermal"
  "test_phase_thermal.pdb"
  "test_phase_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
