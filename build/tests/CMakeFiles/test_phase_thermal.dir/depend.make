# Empty dependencies file for test_phase_thermal.
# This may be replaced when dependencies are built.
