file(REMOVE_RECURSE
  "CMakeFiles/test_severity.dir/test_severity.cc.o"
  "CMakeFiles/test_severity.dir/test_severity.cc.o.d"
  "test_severity"
  "test_severity.pdb"
  "test_severity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_severity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
