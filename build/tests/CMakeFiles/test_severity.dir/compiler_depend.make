# Empty compiler generated dependencies file for test_severity.
# This may be replaced when dependencies are built.
