file(REMOVE_RECURSE
  "CMakeFiles/test_vf_table.dir/test_vf_table.cc.o"
  "CMakeFiles/test_vf_table.dir/test_vf_table.cc.o.d"
  "test_vf_table"
  "test_vf_table.pdb"
  "test_vf_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vf_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
