# Empty dependencies file for test_vf_table.
# This may be replaced when dependencies are built.
