# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_controllers[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_dataset_builder[1]_include.cmake")
include("/root/repo/build/tests/test_floorplan[1]_include.cmake")
include("/root/repo/build/tests/test_gbt[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_hotspot_events[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_ml_misc[1]_include.cmake")
include("/root/repo/build/tests/test_phase_thermal[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_power_model[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_sensor[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_severity[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_thermal[1]_include.cmake")
include("/root/repo/build/tests/test_vf_table[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
add_test(test_trainer "/root/repo/build/tests/test_trainer")
set_tests_properties(test_trainer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
