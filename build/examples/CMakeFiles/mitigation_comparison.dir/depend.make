# Empty dependencies file for mitigation_comparison.
# This may be replaced when dependencies are built.
