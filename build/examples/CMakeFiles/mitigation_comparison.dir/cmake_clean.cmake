file(REMOVE_RECURSE
  "CMakeFiles/mitigation_comparison.dir/mitigation_comparison.cpp.o"
  "CMakeFiles/mitigation_comparison.dir/mitigation_comparison.cpp.o.d"
  "mitigation_comparison"
  "mitigation_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
