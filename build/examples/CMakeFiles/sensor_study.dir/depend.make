# Empty dependencies file for sensor_study.
# This may be replaced when dependencies are built.
