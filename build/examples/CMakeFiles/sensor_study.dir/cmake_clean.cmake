file(REMOVE_RECURSE
  "CMakeFiles/sensor_study.dir/sensor_study.cpp.o"
  "CMakeFiles/sensor_study.dir/sensor_study.cpp.o.d"
  "sensor_study"
  "sensor_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
