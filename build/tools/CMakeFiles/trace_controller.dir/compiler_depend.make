# Empty compiler generated dependencies file for trace_controller.
# This may be replaced when dependencies are built.
