file(REMOVE_RECURSE
  "CMakeFiles/trace_controller.dir/trace_controller.cc.o"
  "CMakeFiles/trace_controller.dir/trace_controller.cc.o.d"
  "trace_controller"
  "trace_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
