file(REMOVE_RECURSE
  "CMakeFiles/seedcheck.dir/seedcheck.cc.o"
  "CMakeFiles/seedcheck.dir/seedcheck.cc.o.d"
  "seedcheck"
  "seedcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seedcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
