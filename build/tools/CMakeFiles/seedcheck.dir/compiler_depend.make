# Empty compiler generated dependencies file for seedcheck.
# This may be replaced when dependencies are built.
