/**
 * @file
 * boreas-trace-v1 record/replay tests: bit-identical replay of a
 * recorded run (the headline determinism guarantee, checked at 1 and
 * 8 threads), container round-trips through encode/decode and through
 * the filesystem, corruption detection, and the committed fixture
 * under tests/data/.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boreas/pipeline.hh"
#include "common/parallel.hh"
#include "test_util.hh"
#include "workload/registry.hh"
#include "workload/trace_io.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

namespace
{

constexpr const char *kMixSpec = "mix:mcf+cg.B@stagger=0.8e-3";
constexpr uint64_t kSeed = 2023;
constexpr GHz kFreq = 4.25;
constexpr int kSteps = 36;

struct GlobalPoolGuard
{
    ~GlobalPoolGuard()
    {
        ThreadPool::resetGlobal(ThreadPool::defaultThreads());
    }
};

/** Record a live run of the 2-core mix; returns (trace, live hashes). */
TraceData
recordMixRun(std::vector<uint64_t> *step_hashes, uint64_t *run_hash)
{
    SimulationPipeline pipeline(fastPipelineConfig());
    TraceRecorder recorder;
    pipeline.setTraceRecorder(&recorder);
    auto source = makeWorkloadSource(kMixSpec);
    const RunResult r =
        pipeline.runConstantFrequency(*source, kSeed, kFreq, kSteps);
    if (step_hashes) {
        step_hashes->clear();
        for (const StepRecord &s : r.steps)
            step_hashes->push_back(s.stateHash);
    }
    if (run_hash)
        *run_hash = pipeline.runHash();
    return recorder.takeData();
}

uint64_t
replayRun(const TraceData &data, std::vector<uint64_t> *step_hashes)
{
    SimulationPipeline pipeline(fastPipelineConfig());
    TraceSource source(data);
    const RunResult r =
        pipeline.runConstantFrequency(source, kSeed, kFreq, kSteps);
    if (step_hashes) {
        step_hashes->clear();
        for (const StepRecord &s : r.steps)
            step_hashes->push_back(s.stateHash);
    }
    return pipeline.runHash();
}

std::string
fixturePath()
{
    return std::string(BOREAS_TEST_DATA) + "/mix_mcf_cgB.trace";
}

} // namespace

TEST(TraceRoundtrip, ReplayIsBitIdenticalToLiveRun)
{
    std::vector<uint64_t> live_steps;
    uint64_t live_hash = 0;
    const TraceData trace = recordMixRun(&live_steps, &live_hash);

    ASSERT_EQ(trace.numCores, 2);
    ASSERT_EQ(static_cast<int>(trace.steps.size()), kSteps);
    ASSERT_EQ(trace.seed, kSeed);
    ASSERT_FALSE(trace.warmPower.empty())
        << "recorded traces carry the warm-start power vector";

    std::vector<uint64_t> replay_steps;
    const uint64_t replay_hash = replayRun(trace, &replay_steps);

    ASSERT_EQ(live_steps.size(), replay_steps.size());
    for (size_t i = 0; i < live_steps.size(); ++i)
        ASSERT_EQ(live_steps[i], replay_steps[i]) << "step " << i;
    EXPECT_EQ(live_hash, replay_hash);
}

TEST(TraceRoundtrip, ReplayHashStableAcrossThreadCounts)
{
    GlobalPoolGuard guard;

    ThreadPool::resetGlobal(1);
    uint64_t live1 = 0;
    const TraceData trace = recordMixRun(nullptr, &live1);
    const uint64_t replay1 = replayRun(trace, nullptr);

    ThreadPool::resetGlobal(8);
    uint64_t live8 = 0;
    const TraceData trace8 = recordMixRun(nullptr, &live8);
    const uint64_t replay8 = replayRun(trace, nullptr);

    EXPECT_EQ(live1, live8) << "live mix run depends on thread count";
    EXPECT_EQ(replay1, replay8) << "replay depends on thread count";
    EXPECT_EQ(live1, replay1);
    EXPECT_EQ(trace.payloadChecksum, trace8.payloadChecksum)
        << "recorded payload depends on thread count";
}

TEST(TraceRoundtrip, EncodeDecodePreservesEverything)
{
    TraceData trace = recordMixRun(nullptr, nullptr);
    const std::vector<uint8_t> bytes = encodeTrace(trace);

    TraceData back;
    std::string error;
    ASSERT_TRUE(decodeTrace(bytes, &back, &error)) << error;
    EXPECT_EQ(back.sourceName, trace.sourceName);
    EXPECT_EQ(back.numCores, trace.numCores);
    EXPECT_EQ(back.dt, trace.dt);
    EXPECT_EQ(back.seed, trace.seed);
    EXPECT_EQ(back.warmPower, trace.warmPower);
    EXPECT_EQ(back.payloadChecksum, trace.payloadChecksum);
    ASSERT_EQ(back.steps.size(), trace.steps.size());
    for (size_t s = 0; s < back.steps.size(); ++s) {
        ASSERT_EQ(back.steps[s].stepIndex, trace.steps[s].stepIndex);
        ASSERT_EQ(back.steps[s].cores.size(),
                  trace.steps[s].cores.size());
        for (size_t c = 0; c < back.steps[s].cores.size(); ++c) {
            const TraceCoreRecord &a = back.steps[s].cores[c];
            const TraceCoreRecord &b = trace.steps[s].cores[c];
            ASSERT_EQ(a.active, b.active);
            ASSERT_TRUE(a.rng == b.rng);
            ASSERT_EQ(a.phase.baseCpi, b.phase.baseCpi);
            ASSERT_EQ(a.phase.intensity, b.phase.intensity);
            ASSERT_EQ(a.phase.l3Mpki, b.phase.l3Mpki);
        }
    }
}

TEST(TraceRoundtrip, CorruptionIsDetected)
{
    TraceData trace = recordMixRun(nullptr, nullptr);
    const std::vector<uint8_t> bytes = encodeTrace(trace);
    TraceData out;
    std::string error;

    { // bad magic
        auto bad = bytes;
        bad[0] ^= 0xff;
        EXPECT_FALSE(decodeTrace(bad, &out, &error));
        EXPECT_FALSE(error.empty());
    }
    { // flipped payload bit -> checksum mismatch
        auto bad = bytes;
        bad[bytes.size() - 5] ^= 0x01;
        EXPECT_FALSE(decodeTrace(bad, &out, &error));
        EXPECT_NE(error.find("checksum"), std::string::npos) << error;
    }
    { // truncation
        auto bad = bytes;
        bad.resize(bad.size() - 1);
        EXPECT_FALSE(decodeTrace(bad, &out, &error));
    }
    { // trailing garbage
        auto bad = bytes;
        bad.push_back(0);
        EXPECT_FALSE(decodeTrace(bad, &out, &error));
    }
    { // empty input
        EXPECT_FALSE(decodeTrace({}, &out, &error));
    }
}

TEST(TraceRoundtrip, FileRoundtripThroughTempDir)
{
    TraceData trace = recordMixRun(nullptr, nullptr);
    const std::string path =
        testing::TempDir() + "boreas_roundtrip.trace";
    writeTraceFile(path, trace);

    auto source = TraceSource::fromFile(path);
    EXPECT_EQ(source->checksum(), trace.payloadChecksum);
    EXPECT_EQ(source->numSteps(), kSteps);
    EXPECT_EQ(source->recordedSeed(), kSeed);

    SimulationPipeline pipeline(fastPipelineConfig());
    pipeline.runConstantFrequency(*source, kSeed, kFreq, kSteps);
    uint64_t direct = replayRun(trace, nullptr);
    EXPECT_EQ(pipeline.runHash(), direct);
    std::remove(path.c_str());
}

TEST(TraceRoundtrip, RegistryTraceSchemeLoadsFixture)
{
    // The committed fixture (tests/data/, regenerated with
    // `boreas_trace record`) must load through the trace: scheme and
    // replay deterministically: same runHash on two fresh replays.
    std::string error;
    auto source = tryMakeWorkloadSource("trace:" + fixturePath(), &error);
    ASSERT_NE(source, nullptr) << error;
    EXPECT_EQ(source->numCores(), 2);

    SimulationPipeline a(fastPipelineConfig());
    SimulationPipeline b(fastPipelineConfig());
    a.runConstantFrequency(*source, 1, kFreq, 24);
    const uint64_t first = a.runHash();
    auto copy = source->clone();
    b.runConstantFrequency(*copy, 999, kFreq, 24);
    // reset(seed) is ignored by TraceSource: different seeds, same
    // stream.
    EXPECT_EQ(first, b.runHash());
}

TEST(TraceRoundtrip, ScaledReplayDropsWarmPowerAndChangesStream)
{
    TraceData trace = recordMixRun(nullptr, nullptr);
    TraceSource plain(trace);
    ASSERT_NE(plain.recordedWarmPower(), nullptr);

    auto scaled = plain.cloneScaled(1.1);
    EXPECT_EQ(scaled->recordedWarmPower(), nullptr)
        << "recorded warm power is only valid for unscaled replay";

    SimulationPipeline a(fastPipelineConfig());
    SimulationPipeline b(fastPipelineConfig());
    a.runConstantFrequency(plain, kSeed, kFreq, kSteps);
    b.runConstantFrequency(*scaled, kSeed, kFreq, kSteps);
    EXPECT_NE(a.runHash(), b.runHash());
}
