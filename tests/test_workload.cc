/** @file Unit tests for workload models and the SPEC2006 suite. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/spec2006.hh"
#include "workload/workload.hh"

using namespace boreas;

TEST(Spec2006, SuiteHas27Workloads)
{
    EXPECT_EQ(spec2006Suite().size(), 27u);
}

TEST(Spec2006, TrainTestSplitMatchesTableIII)
{
    const auto train = trainWorkloads();
    const auto test = testWorkloads();
    EXPECT_EQ(train.size(), 20u);
    EXPECT_EQ(test.size(), 7u);

    const std::set<std::string> expected_test{
        "cactusADM", "omnetpp", "GemsFDTD", "h264ref", "bzip2",
        "hmmer", "gamess"};
    std::set<std::string> actual_test;
    for (const auto *w : test)
        actual_test.insert(w->name);
    EXPECT_EQ(actual_test, expected_test);

    for (const auto *w : train)
        EXPECT_EQ(expected_test.count(w->name), 0u) << w->name;
}

TEST(Spec2006, NamesAreUniqueAndSaltsDistinct)
{
    std::set<std::string> names;
    std::set<uint64_t> salts;
    for (const auto &w : spec2006Suite()) {
        EXPECT_TRUE(names.insert(w.name).second) << w.name;
        EXPECT_TRUE(salts.insert(w.seedSalt).second) << w.name;
        EXPECT_FALSE(w.phases.empty()) << w.name;
        EXPECT_GT(w.thermalScale, 0.0) << w.name;
    }
}

TEST(Spec2006, EveryWorkloadHasDesignOracleOnGrid)
{
    for (const auto &w : spec2006Suite()) {
        const GHz f = designOracleFrequency(w.name);
        EXPECT_GE(f, kMinFrequency);
        EXPECT_LT(f, kMaxFrequency); // nothing is safe at 5.0 (Fig. 2)
        // On the 250 MHz grid.
        const double steps = (f - kMinFrequency) / kFrequencyStep;
        EXPECT_NEAR(steps, std::round(steps), 1e-9);
    }
}

TEST(Spec2006, DesignOracleDistributionMatchesSec3)
{
    // Two workloads pinned at the 3.75 GHz global limit (Sec. III-C:
    // "optimal performance for only 2 of the 27 workloads").
    int at_limit = 0;
    for (const auto &w : spec2006Suite())
        if (designOracleFrequency(w.name) == kBaselineFrequency)
            ++at_limit;
    EXPECT_EQ(at_limit, 2);

    // gromacs and cactusADM run at 4.75 GHz (Sec. III-D).
    EXPECT_DOUBLE_EQ(designOracleFrequency("gromacs"), 4.75);
    EXPECT_DOUBLE_EQ(designOracleFrequency("cactusADM"), 4.75);
}

TEST(Spec2006, FindWorkloadReturnsNamed)
{
    EXPECT_EQ(findWorkload("bzip2").name, "bzip2");
    EXPECT_TRUE(findWorkload("bzip2").testSet);
    EXPECT_FALSE(findWorkload("gromacs").testSet);
}

TEST(WorkloadRun, DeterministicForSameSeed)
{
    const WorkloadSpec &w = findWorkload("bzip2");
    WorkloadRun a(w, 42), b(w, 42);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.phaseIndex(), b.phaseIndex());
        a.advance(80e-6);
        b.advance(80e-6);
    }
}

TEST(WorkloadRun, DifferentSeedsDiverge)
{
    const WorkloadSpec &w = findWorkload("bzip2");
    WorkloadRun a(w, 1), b(w, 2);
    int diffs = 0;
    for (int i = 0; i < 300; ++i) {
        if (a.phaseIndex() != b.phaseIndex())
            ++diffs;
        a.advance(80e-6);
        b.advance(80e-6);
    }
    EXPECT_GT(diffs, 0);
}

TEST(WorkloadRun, CyclicPatternVisitsAllPhases)
{
    const WorkloadSpec &w = findWorkload("gromacs"); // cyclic, 2 phases
    WorkloadRun run(w, 7);
    std::set<int> seen;
    for (int i = 0; i < 400; ++i) {
        seen.insert(run.phaseIndex());
        run.advance(80e-6);
    }
    EXPECT_EQ(seen.size(), w.phases.size());
}

TEST(WorkloadRun, ThermalScaleFoldsIntoIntensity)
{
    WorkloadSpec w = findWorkload("bzip2");
    w.thermalScale = 2.0;
    WorkloadRun run(w, 1);
    const double base = w.phases[run.phaseIndex()].params.intensity;
    EXPECT_DOUBLE_EQ(run.currentPhase().intensity, base * 2.0);
}

TEST(WorkloadRun, SingleSteadyPhaseNeverSwitches)
{
    const WorkloadSpec &w = findWorkload("hmmer"); // one phase
    WorkloadRun run(w, 3);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(run.phaseIndex(), 0);
        run.advance(80e-6);
    }
}

TEST(WorkloadRun, BurstyWorkloadSwitchesFast)
{
    // gromacs bursts are sub-millisecond: expect several phase changes
    // within a 12 ms trace.
    const WorkloadSpec &w = findWorkload("gromacs");
    WorkloadRun run(w, 11);
    int switches = 0;
    int prev = run.phaseIndex();
    for (int i = 0; i < 150; ++i) {
        run.advance(80e-6);
        if (run.phaseIndex() != prev) {
            ++switches;
            prev = run.phaseIndex();
        }
    }
    EXPECT_GE(switches, 8);
}

TEST(WorkloadRun, LargeAdvanceCrossesMultiplePhases)
{
    // One advance() spanning several dwell times must land in a valid
    // phase (the dwell loop has to drain fully, not once).
    const WorkloadSpec &w = findWorkload("gromacs"); // sub-ms phases
    WorkloadRun run(w, 9);
    run.advance(50e-3); // 50 ms >> any dwell
    EXPECT_GE(run.phaseIndex(), 0);
    EXPECT_LT(run.phaseIndex(),
              static_cast<int>(w.phases.size()));
    // And it keeps working afterwards.
    for (int i = 0; i < 50; ++i)
        run.advance(80e-6);
}

TEST(WorkloadRun, RandomPatternNeverRepeatsPhaseBackToBack)
{
    const WorkloadSpec &w = findWorkload("mcf"); // Random, 2 phases
    ASSERT_EQ(w.pattern, PhasePattern::Random);
    WorkloadRun run(w, 13);
    int prev = run.phaseIndex();
    int switches = 0;
    for (int i = 0; i < 2000; ++i) {
        run.advance(80e-6);
        if (run.phaseIndex() != prev) {
            ++switches;
            prev = run.phaseIndex();
        }
    }
    // With 2 phases and no-repeat switching, every dwell expiry is a
    // switch; over 160 ms of sub-3ms dwells we must see many.
    EXPECT_GT(switches, 30);
}
