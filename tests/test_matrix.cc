/** @file Unit tests for the dense matrix kernel. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.hh"

using namespace boreas;

TEST(Matrix, IdentityMultiplication)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
    a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
    const Matrix r = a.multiply(Matrix::identity(3));
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(r(i, j), a(i, j));
}

TEST(Matrix, MultiplyKnownProduct)
{
    Matrix a(2, 2), b(2, 2);
    a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
    b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19);
    EXPECT_DOUBLE_EQ(c(0, 1), 22);
    EXPECT_DOUBLE_EQ(c(1, 0), 43);
    EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MatrixVectorProduct)
{
    Matrix a(2, 3);
    a(0, 0) = 1; a(0, 1) = 0; a(0, 2) = 2;
    a(1, 0) = 0; a(1, 1) = 3; a(1, 2) = 0;
    const auto v = a.multiply(std::vector<double>{1.0, 2.0, 3.0});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 7.0);
    EXPECT_DOUBLE_EQ(v[1], 6.0);
}

TEST(Matrix, TransposeRoundTrip)
{
    Matrix a(2, 3);
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = static_cast<double>(i * 3 + j);
    const Matrix att = a.transposed().transposed();
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
}

TEST(Matrix, SolveDiagonalSystem)
{
    Matrix a(3, 3);
    a(0, 0) = 2; a(1, 1) = 4; a(2, 2) = 8;
    const auto x = Matrix::solve(a, {2.0, 4.0, 8.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
    EXPECT_NEAR(x[2], 1.0, 1e-12);
}

TEST(Matrix, SolveNeedsPivoting)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0; a(0, 1) = 1;
    a(1, 0) = 1; a(1, 1) = 0;
    const auto x = Matrix::solve(a, {3.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveResidualIsSmall)
{
    Matrix a(4, 4);
    // A diagonally dominant random-ish system.
    const double vals[4][4] = {{10, 1, 2, 0},
                               {1, 12, -1, 3},
                               {2, -1, 9, 1},
                               {0, 3, 1, 11}};
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            a(i, j) = vals[i][j];
    const std::vector<double> b{1.0, -2.0, 3.0, 0.5};
    const auto x = Matrix::solve(a, b);
    const auto ax = a.multiply(x);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(MatrixDeathTest, SingularSystemPanics)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 2; a(1, 1) = 4;
    EXPECT_DEATH(Matrix::solve(a, {1.0, 2.0}), "singular");
}

TEST(Matrix, SymmetricEigenDiagonal)
{
    Matrix a(3, 3);
    a(0, 0) = 1; a(1, 1) = 5; a(2, 2) = 3;
    std::vector<double> vals;
    Matrix vecs;
    a.symmetricEigen(vals, vecs);
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_NEAR(vals[0], 5.0, 1e-10);
    EXPECT_NEAR(vals[1], 3.0, 1e-10);
    EXPECT_NEAR(vals[2], 1.0, 1e-10);
}

TEST(Matrix, SymmetricEigenKnown2x2)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix a(2, 2);
    a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
    std::vector<double> vals;
    Matrix vecs;
    a.symmetricEigen(vals, vecs);
    EXPECT_NEAR(vals[0], 3.0, 1e-10);
    EXPECT_NEAR(vals[1], 1.0, 1e-10);
    // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::fabs(vecs(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
    EXPECT_NEAR(std::fabs(vecs(1, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(Matrix, EigenVectorsReconstruct)
{
    // A = V diag(vals) V^T must reproduce the original matrix.
    Matrix a(3, 3);
    const double vals_in[3][3] = {{4, 1, 0.5},
                                  {1, 3, -0.2},
                                  {0.5, -0.2, 5}};
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = vals_in[i][j];
    std::vector<double> vals;
    Matrix v;
    a.symmetricEigen(vals, v);
    Matrix d(3, 3);
    for (size_t i = 0; i < 3; ++i)
        d(i, i) = vals[i];
    const Matrix rec = v.multiply(d).multiply(v.transposed());
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
}
