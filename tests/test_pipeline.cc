/** @file Integration tests for the coupled simulation pipeline. */

#include <gtest/gtest.h>

#include "control/static_controllers.hh"
#include "test_util.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

TEST(Pipeline, RunProducesRequestedSteps)
{
    SimulationPipeline p(fastPipelineConfig());
    const RunResult run = p.runConstantFrequency(
        findWorkload("gamess"), 1, 4.0, 60);
    EXPECT_EQ(run.steps.size(), 60u);
    for (size_t i = 0; i < run.steps.size(); ++i) {
        EXPECT_EQ(run.steps[i].step, static_cast<int>(i));
        EXPECT_DOUBLE_EQ(run.steps[i].frequency, 4.0);
        EXPECT_DOUBLE_EQ(run.steps[i].voltage, 0.98);
        EXPECT_GT(run.steps[i].totalPower, 0.0);
        EXPECT_EQ(run.steps[i].sensorReadings.size(), 7u);
    }
}

TEST(Pipeline, WarmStartPreheatsTheDie)
{
    PipelineConfig warm_cfg = fastPipelineConfig();
    SimulationPipeline warm(warm_cfg);
    warm.start(findWorkload("povray"), 1);
    EXPECT_GT(warm.thermalGrid().maxSiliconTemp(), kAmbient + 15.0);

    PipelineConfig cold_cfg = fastPipelineConfig();
    cold_cfg.warmStart = false;
    SimulationPipeline cold(cold_cfg);
    cold.start(findWorkload("povray"), 1);
    EXPECT_NEAR(cold.thermalGrid().maxSiliconTemp(), kAmbient, 1e-9);
}

TEST(Pipeline, SameSeedReproducesRunExactly)
{
    SimulationPipeline p(fastPipelineConfig());
    const RunResult a = p.runConstantFrequency(
        findWorkload("bzip2"), 42, 4.25, 48);
    const RunResult b = p.runConstantFrequency(
        findWorkload("bzip2"), 42, 4.25, 48);
    for (size_t i = 0; i < a.steps.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.steps[i].severity.maxSeverity,
                         b.steps[i].severity.maxSeverity);
        EXPECT_DOUBLE_EQ(a.steps[i].totalPower, b.steps[i].totalPower);
    }
}

TEST(Pipeline, DifferentSeedsDiverge)
{
    SimulationPipeline p(fastPipelineConfig());
    const RunResult a = p.runConstantFrequency(
        findWorkload("bzip2"), 1, 4.25, 48);
    const RunResult b = p.runConstantFrequency(
        findWorkload("bzip2"), 2, 4.25, 48);
    bool differ = false;
    for (size_t i = 0; i < a.steps.size() && !differ; ++i)
        differ = a.steps[i].totalPower != b.steps[i].totalPower;
    EXPECT_TRUE(differ);
}

class PipelineFrequencyMonotone
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PipelineFrequencyMonotone, PeakSeverityGrowsWithFrequency)
{
    SimulationPipeline p(fastPipelineConfig());
    const WorkloadSpec &w = findWorkload(GetParam());
    const double low =
        p.runConstantFrequency(w, 3, 2.5, 75).peakSeverity();
    const double mid =
        p.runConstantFrequency(w, 3, 4.0, 75).peakSeverity();
    const double high =
        p.runConstantFrequency(w, 3, 5.0, 75).peakSeverity();
    EXPECT_LE(low, mid + 0.05);
    EXPECT_LT(mid, high);
}

INSTANTIATE_TEST_SUITE_P(Workloads, PipelineFrequencyMonotone,
                         ::testing::Values("povray", "gromacs",
                                           "libquantum", "gamess"));

TEST(Pipeline, SensorReadingsLagTruthWithDelay)
{
    PipelineConfig cfg = fastPipelineConfig();
    cfg.sensors.delaySteps = 12;
    SimulationPipeline p(cfg);
    // Run hot so temperatures rise monotonically-ish.
    const RunResult run = p.runConstantFrequency(
        findWorkload("povray"), 1, 5.0, 60);
    // While heating, a delayed reading must be below the true value.
    const auto &last = run.steps.back();
    EXPECT_LT(last.sensorReadings[kBestSensorIndex],
              last.sensorTrue[kBestSensorIndex]);
}

TEST(Pipeline, ZeroDelaySensorsMatchTruth)
{
    PipelineConfig cfg = fastPipelineConfig();
    cfg.sensors.delaySteps = 0;
    SimulationPipeline p(cfg);
    const RunResult run = p.runConstantFrequency(
        findWorkload("gamess"), 1, 4.0, 30);
    const auto &rec = run.steps.back();
    for (size_t s = 0; s < rec.sensorReadings.size(); ++s)
        EXPECT_DOUBLE_EQ(rec.sensorReadings[s], rec.sensorTrue[s]);
}

TEST(Pipeline, ControllerIsConsultedEveryDecisionPeriod)
{
    SimulationPipeline p(fastPipelineConfig());
    FixedFrequencyController hold("hold", 4.0);
    const RunResult run = p.runWithController(
        findWorkload("gamess"), 1, hold, 3.75, kTraceSteps);
    // 150 steps / 12 per decision = 12 decisions (the last partial
    // window gets no decision).
    EXPECT_EQ(run.decidedFreqs.size(), 12u);
    // First 12 steps at the initial frequency, the rest at 4.0.
    EXPECT_DOUBLE_EQ(run.steps[0].frequency, 3.75);
    EXPECT_DOUBLE_EQ(run.steps[11].frequency, 3.75);
    EXPECT_DOUBLE_EQ(run.steps[12].frequency, 4.0);
    EXPECT_DOUBLE_EQ(run.steps.back().frequency, 4.0);
}

TEST(Pipeline, ScheduleIsFollowedPerDecisionWindow)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<GHz> schedule{3.0, 4.0, 2.5};
    const RunResult run = p.runWithSchedule(
        findWorkload("gamess"), 1, schedule, 48);
    EXPECT_DOUBLE_EQ(run.steps[0].frequency, 3.0);
    EXPECT_DOUBLE_EQ(run.steps[11].frequency, 3.0);
    EXPECT_DOUBLE_EQ(run.steps[12].frequency, 4.0);
    EXPECT_DOUBLE_EQ(run.steps[24].frequency, 2.5);
    // Last entry persists beyond the schedule.
    EXPECT_DOUBLE_EQ(run.steps[47].frequency, 2.5);
}

TEST(Pipeline, RunResultAggregates)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<GHz> schedule{3.0, 4.0};
    const RunResult run = p.runWithSchedule(
        findWorkload("gamess"), 1, schedule, 24);
    EXPECT_NEAR(run.averageFrequency(), 3.5, 1e-9);
    EXPECT_GE(run.peakSeverity(), 0.0);
    EXPECT_GE(run.incursionSteps(), 0);
}

TEST(Pipeline, HotterWorkloadsRunHotter)
{
    // povray (design oracle 3.75) must out-heat cactusADM (4.75) at the
    // same frequency — the workload differentiation the whole paper
    // rests on.
    SimulationPipeline p(fastPipelineConfig());
    const double hot = p.runConstantFrequency(
        findWorkload("povray"), 1, 4.5, 75).peakSeverity();
    const double cool = p.runConstantFrequency(
        findWorkload("cactusADM"), 1, 4.5, 75).peakSeverity();
    EXPECT_GT(hot, cool + 0.1);
}

TEST(PipelineDeathTest, StepBeforeStartPanics)
{
    SimulationPipeline p(fastPipelineConfig());
    EXPECT_DEATH(p.step(4.0), "before start");
}
