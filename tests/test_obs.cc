/**
 * @file
 * Tests for the observability layer (DESIGN.md §8): deterministic
 * metric merging across thread counts, zero-cost disabled behavior,
 * trace buffer JSON, and the BENCH_<id>.json artifact schema (golden).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/parallel.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace boreas;
using obs::HistogramData;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceBuffer;

namespace
{

/** Restores the global pool and disables obs on scope exit. */
struct ObsGuard
{
    ~ObsGuard()
    {
        MetricsRegistry::global().setEnabled(false);
        MetricsRegistry::global().reset();
        TraceBuffer::global().setEnabled(false);
        TraceBuffer::global().clear();
        ThreadPool::resetGlobal(ThreadPool::defaultThreads());
    }
};

/**
 * A parallel region that updates counters and histograms from every
 * worker. Histogram samples are small integers, so even the FP sum is
 * exact and must merge identically at any thread count.
 */
MetricsSnapshot
fanOutAndSnapshot(int threads)
{
    ThreadPool::resetGlobal(threads);
    MetricsRegistry::global().reset();
    constexpr int64_t kItems = 4096;
    parallelForEach(0, kItems, 64, [](int64_t i) {
        MetricsRegistry::global().add("test.items");
        MetricsRegistry::global().add("test.weight",
                                      static_cast<uint64_t>(i % 7));
        MetricsRegistry::global().observe(
            "test.hist", static_cast<double>(1 << (i % 10)));
    });
    return MetricsRegistry::global().snapshot();
}

} // namespace

TEST(Metrics, MergeIsIdenticalAt1And8Threads)
{
    ObsGuard guard;
    MetricsRegistry::global().setEnabled(true);

    const MetricsSnapshot serial = fanOutAndSnapshot(1);
    const MetricsSnapshot threaded = fanOutAndSnapshot(8);

    // The parallel.for.* scheduling counters describe the schedule
    // itself (inline at 1 thread, fan-out at 8), so only the workload's
    // own counters are subject to the determinism contract.
    EXPECT_EQ(serial.counters.at("test.items"),
              threaded.counters.at("test.items"));
    EXPECT_EQ(serial.counters.at("test.weight"),
              threaded.counters.at("test.weight"));
    EXPECT_EQ(serial.counters.at("test.items"), 4096u);

    ASSERT_EQ(serial.histograms.size(), threaded.histograms.size());
    const HistogramData &a = serial.histograms.at("test.hist");
    const HistogramData &b = threaded.histograms.at("test.hist");
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.buckets, b.buckets);
    // Samples are small powers of two: FP addition is exact, so even
    // the informational fields must agree here.
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
}

TEST(Metrics, DisabledUpdatesAreDropped)
{
    ObsGuard guard;
    MetricsRegistry::global().setEnabled(false);
    MetricsRegistry::global().reset();

    MetricsRegistry::global().add("test.off");
    MetricsRegistry::global().set("test.off.gauge", 1.0);
    MetricsRegistry::global().observe("test.off.hist", 1.0);

    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.count("test.off"), 0u);
    EXPECT_EQ(snap.gauges.count("test.off.gauge"), 0u);
    EXPECT_EQ(snap.histograms.count("test.off.hist"), 0u);
}

TEST(Metrics, ResetClearsEverything)
{
    ObsGuard guard;
    MetricsRegistry::global().setEnabled(true);
    MetricsRegistry::global().reset();
    MetricsRegistry::global().add("test.reset", 3);
    MetricsRegistry::global().set("test.reset.gauge", 2.5);
    MetricsRegistry::global().observe("test.reset.hist", 4.0);
    MetricsRegistry::global().reset();

    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.counters.count("test.reset"), 0u);
    EXPECT_EQ(snap.gauges.count("test.reset.gauge"), 0u);
    EXPECT_EQ(snap.histograms.count("test.reset.hist"), 0u);
}

TEST(Metrics, HistogramBucketsBracketTheirValues)
{
    for (double v : {0.01, 0.5, 1.0, 3.0, 80.0, 1e6}) {
        const size_t b = HistogramData::bucketFor(v);
        EXPECT_LE(v, HistogramData::bucketUpperBound(b))
            << "value " << v << " above its bucket's upper bound";
        if (b > 0) {
            EXPECT_GT(v, HistogramData::bucketUpperBound(b - 1))
                << "value " << v << " fits the previous bucket too";
        }
    }
    // Non-positive samples land in bucket 0 instead of UB.
    EXPECT_EQ(HistogramData::bucketFor(0.0), 0u);
    EXPECT_EQ(HistogramData::bucketFor(-5.0), 0u);
}

TEST(Trace, ScopedTimerFeedsHistogramAndBuffer)
{
    ObsGuard guard;
    obs::setEnabled(true);
    MetricsRegistry::global().reset();
    TraceBuffer::global().clear();

    {
        obs::ScopedTimer timer("test.stage");
    }

    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    ASSERT_EQ(snap.histograms.count("test.stage"), 1u);
    EXPECT_EQ(snap.histograms.at("test.stage").count, 1u);
    EXPECT_EQ(TraceBuffer::global().eventCount(), 1u);
}

TEST(Trace, WriteJsonIsSortedAndWellFormed)
{
    ObsGuard guard;
    TraceBuffer::global().setEnabled(true);
    TraceBuffer::global().clear();
    TraceBuffer::global().record("later", 20.0, 1.5);
    TraceBuffer::global().record("earlier", 10.0, 2.0);

    std::ostringstream os;
    TraceBuffer::global().writeJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    const auto earlier = json.find("earlier");
    const auto later = json.find("later");
    ASSERT_NE(earlier, std::string::npos);
    ASSERT_NE(later, std::string::npos);
    EXPECT_LT(earlier, later) << "events must be sorted by start time";

    TraceBuffer::global().clear();
    EXPECT_EQ(TraceBuffer::global().eventCount(), 0u);
}

TEST(Export, GoldenBenchArtifact)
{
    // Byte-exact golden of the "boreas-bench-v1" schema. If this test
    // fails because the schema intentionally changed, bump the schema
    // key in obs/export.hh and update the golden together.
    obs::BenchArtifact artifact;
    artifact.manifest.experiment = "golden";
    artifact.manifest.scale = "small";
    artifact.manifest.threads = 2;
    artifact.manifest.seed = 7;
    artifact.manifest.runHash = 0x1234;
    artifact.manifest.hasRunHash = true;
    artifact.manifest.wallSeconds = 0.5;
    artifact.manifest.addConfig("note", "hand-built");
    artifact.manifest.addConfig("grid", "64");
    artifact.comparisons.push_back({"grid step [MHz]", "250", "250"});
    artifact.comparisons.push_back({"avg gain", "+5.7%", "+5.5%"});
    artifact.series.push_back({"s", {"a", "b"}, {{"1", "x"},
                                                 {"2.5", "+3"}}});
    artifact.metrics.counters["steps"] = 42;
    artifact.metrics.gauges["temp"] = 1.5;
    HistogramData h;
    h.count = 1;
    h.sum = 2.0;
    h.min = 2.0;
    h.max = 2.0;
    h.buckets[HistogramData::bucketFor(2.0)] = 1;
    artifact.metrics.histograms["t"] = h;

    std::ostringstream os;
    obs::writeBenchArtifact(artifact, os);

    const std::string golden = R"({
  "schema": "boreas-bench-v1",
  "id": "golden",
  "manifest": {
    "experiment": "golden",
    "scale": "small",
    "threads": 2,
    "seed": 7,
    "run_hash": "0x0000000000001234",
    "wall_s": 0.5,
    "config": {
      "note": "hand-built",
      "grid": 64
    }
  },
  "paper_vs_measured": [
    {"quantity": "grid step [MHz]", "paper": 250, "measured": 250},
    {"quantity": "avg gain", "paper": "+5.7%", "measured": "+5.5%"}
  ],
  "series": [
    {"name": "s",
     "columns": ["a", "b"],
     "rows": [
       [1, "x"],
       [2.5, "+3"]
     ]}
  ],
  "timings": {
    "t": {"count": 1, "total_us": 2, "mean_us": 2, "min_us": 2, "max_us": 2, "buckets": [[2, 1]]}
  },
  "counters": {
    "steps": 42
  },
  "gauges": {
    "temp": 1.5
  }
}
)";
    EXPECT_EQ(os.str(), golden);
}

TEST(Export, WriteRestoresStreamPrecision)
{
    obs::BenchArtifact artifact;
    artifact.manifest.experiment = "p";
    std::ostringstream os;
    os.precision(3);
    obs::writeBenchArtifact(artifact, os);
    EXPECT_EQ(os.precision(), 3);
}

TEST(Export, ArtifactFileNameIsCanonical)
{
    EXPECT_EQ(obs::benchArtifactFileName("fig7"), "BENCH_fig7.json");
}
