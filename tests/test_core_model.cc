/** @file Unit tests for telemetry counters and the interval core model. */

#include <gtest/gtest.h>

#include "arch/core_model.hh"
#include "arch/counters.hh"

using namespace boreas;

TEST(Counters, NamesRoundTrip)
{
    for (size_t i = 0; i < kNumCounters; ++i) {
        const Counter c = static_cast<Counter>(i);
        EXPECT_EQ(counterFromName(counterName(c)), c);
    }
}

TEST(Counters, SchemaHas76Counters)
{
    // 76 counters + temperature + frequency = the paper's 78 attributes.
    EXPECT_EQ(kNumCounters, 76u);
}

TEST(CountersDeathTest, UnknownNamePanics)
{
    EXPECT_DEATH(counterFromName("not_a_counter"), "unknown counter");
}

TEST(Counters, AccumulateAndScale)
{
    CounterSet a, b;
    a[Counter::TotalCycles] = 10.0;
    b[Counter::TotalCycles] = 5.0;
    b[Counter::RobReads] = 2.0;
    a.accumulate(b);
    EXPECT_DOUBLE_EQ(a[Counter::TotalCycles], 15.0);
    EXPECT_DOUBLE_EQ(a[Counter::RobReads], 2.0);
    a.scale(0.5);
    EXPECT_DOUBLE_EQ(a[Counter::TotalCycles], 7.5);
}

namespace
{

PhaseParams
quietPhase()
{
    PhaseParams p;
    p.activityNoise = 0.0;
    return p;
}

} // namespace

TEST(IntervalCore, CyclesMatchFrequencyAndDt)
{
    IntervalCore core;
    Rng rng(1);
    const CounterSet c = core.step(quietPhase(), 4.0, 80e-6, rng);
    EXPECT_DOUBLE_EQ(c[Counter::TotalCycles], 4.0e9 * 80e-6);
}

TEST(IntervalCore, BusyPlusIdleEqualsTotal)
{
    IntervalCore core;
    Rng rng(1);
    const CounterSet c = core.step(quietPhase(), 3.0, 80e-6, rng);
    EXPECT_NEAR(c[Counter::BusyCycles] + c[Counter::IdleCycles],
                c[Counter::TotalCycles], 1e-6);
}

TEST(IntervalCore, CommittedBoundedByCommitWidth)
{
    IntervalCore core;
    Rng rng(1);
    PhaseParams p = quietPhase();
    p.baseCpi = 0.01; // absurdly parallel
    const CounterSet c = core.step(p, 4.0, 80e-6, rng);
    EXPECT_LE(c[Counter::CommittedInstructions],
              c[Counter::TotalCycles] * core.params().commitWidth);
}

TEST(IntervalCore, EffectiveCpiGrowsWithMissRates)
{
    IntervalCore core;
    PhaseParams base = quietPhase();
    PhaseParams missy = base;
    missy.l3Mpki = 10.0;
    EXPECT_GT(core.effectiveCpi(missy, 4.0),
              core.effectiveCpi(base, 4.0));
    PhaseParams branchy = base;
    branchy.branchMpki = 20.0;
    EXPECT_GT(core.effectiveCpi(branchy, 4.0),
              core.effectiveCpi(base, 4.0));
}

TEST(IntervalCore, MemoryBoundScalesWorseWithFrequency)
{
    // IPS speedup from 2 -> 5 GHz should be near-linear for compute
    // phases and clearly sublinear for memory-bound phases.
    IntervalCore core;
    PhaseParams compute = quietPhase();
    compute.l2Mpki = 0.1;
    compute.l3Mpki = 0.01;
    PhaseParams membound = quietPhase();
    membound.l2Mpki = 15.0;
    membound.l3Mpki = 6.0;
    membound.mlp = 1.2;

    const double comp_gain = core.instructionsPerSecond(compute, 5.0) /
        core.instructionsPerSecond(compute, 2.0);
    const double mem_gain = core.instructionsPerSecond(membound, 5.0) /
        core.instructionsPerSecond(membound, 2.0);
    EXPECT_GT(comp_gain, 2.2);
    EXPECT_LT(mem_gain, 1.6);
    EXPECT_GT(mem_gain, 1.0);
}

TEST(IntervalCore, MissesNeverExceedAccesses)
{
    IntervalCore core;
    Rng rng(7);
    PhaseParams p = quietPhase();
    p.l1dMpki = 500.0; // extreme
    p.dtlbMpki = 500.0;
    p.itlbMpki = 500.0;
    const CounterSet c = core.step(p, 4.0, 80e-6, rng);
    EXPECT_LE(c[Counter::DcacheReadMisses],
              c[Counter::DcacheReadAccesses]);
    EXPECT_LE(c[Counter::DcacheWriteMisses],
              c[Counter::DcacheWriteAccesses]);
    EXPECT_LE(c[Counter::DtlbTotalMisses],
              c[Counter::DtlbTotalAccesses]);
    EXPECT_LE(c[Counter::ItlbTotalMisses],
              c[Counter::ItlbTotalAccesses]);
    EXPECT_LE(c[Counter::L2ReadMisses], c[Counter::L2ReadAccesses]);
    EXPECT_LE(c[Counter::L3ReadMisses], c[Counter::L3ReadAccesses]);
}

TEST(IntervalCore, DutyCyclesWithinUnitInterval)
{
    IntervalCore core;
    Rng rng(3);
    PhaseParams p = quietPhase();
    p.baseCpi = 0.25;
    p.fpFraction = 0.5;
    const CounterSet c = core.step(p, 5.0, 80e-6, rng);
    for (Counter d : {Counter::AluDutyCycle, Counter::MulDutyCycle,
                      Counter::FpuDutyCycle, Counter::IfuDutyCycle,
                      Counter::LsuDutyCycle, Counter::ExuDutyCycle,
                      Counter::MemManUIDutyCycle,
                      Counter::MemManUDDutyCycle}) {
        EXPECT_GE(c[d], 0.0);
        EXPECT_LE(c[d], 1.0);
    }
}

TEST(IntervalCore, CommittedDecomposesByMix)
{
    IntervalCore core;
    Rng rng(1);
    PhaseParams p = quietPhase();
    p.fpFraction = 0.3;
    p.mulFraction = 0.1;
    const CounterSet c = core.step(p, 4.0, 80e-6, rng);
    const double total = c[Counter::CommittedInstructions];
    EXPECT_NEAR(c[Counter::CommittedFpInstructions], 0.3 * total, 1e-6);
    EXPECT_NEAR(c[Counter::CommittedMulInstructions], 0.1 * total, 1e-6);
    EXPECT_NEAR(c[Counter::CommittedIntInstructions], 0.6 * total, 1e-6);
}

TEST(IntervalCore, NoiselessStepIsDeterministic)
{
    IntervalCore core;
    Rng rng1(1), rng2(999);
    const CounterSet a = core.step(quietPhase(), 4.0, 80e-6, rng1);
    const CounterSet b = core.step(quietPhase(), 4.0, 80e-6, rng2);
    for (size_t i = 0; i < kNumCounters; ++i)
        EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
}

TEST(IntervalCore, NoisePerturbsButSameSeedRepeats)
{
    IntervalCore core;
    PhaseParams p = quietPhase();
    p.activityNoise = 0.1;
    Rng rng1(5), rng2(5), rng3(6);
    const CounterSet a = core.step(p, 4.0, 80e-6, rng1);
    const CounterSet b = core.step(p, 4.0, 80e-6, rng2);
    const CounterSet c = core.step(p, 4.0, 80e-6, rng3);
    EXPECT_DOUBLE_EQ(a[Counter::CommittedInstructions],
                     b[Counter::CommittedInstructions]);
    EXPECT_NE(a[Counter::CommittedInstructions],
              c[Counter::CommittedInstructions]);
}

class CpiFrequencyMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(CpiFrequencyMonotone, CpiNonDecreasingInFrequency)
{
    // Off-core miss penalties are wall-clock constant, so CPI can only
    // grow with frequency, for any memory intensity.
    IntervalCore core;
    PhaseParams p = quietPhase();
    p.l3Mpki = GetParam();
    double prev = 0.0;
    for (GHz f = 2.0; f <= 5.0; f += 0.25) {
        const double cpi = core.effectiveCpi(p, f);
        EXPECT_GE(cpi, prev);
        prev = cpi;
    }
}

INSTANTIATE_TEST_SUITE_P(MemIntensities, CpiFrequencyMonotone,
                         ::testing::Values(0.0, 0.5, 2.0, 6.0));
