/** @file Unit tests for MLTD and the Hotspot-Severity metric. */

#include <gtest/gtest.h>

#include <tuple>

#include "hotspot/severity.hh"

using namespace boreas;

TEST(Severity, PaperAnchorsAreExactlyOne)
{
    // Fig. 1: severity is 1.0 at (115, 0), (95, 20) and (80, 40).
    SeverityModel model;
    EXPECT_DOUBLE_EQ(model.severity(115.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(model.severity(95.0, 20.0), 1.0);
    EXPECT_DOUBLE_EQ(model.severity(80.0, 40.0), 1.0);
}

TEST(Severity, ReferenceTemperatureIsZeroSeverity)
{
    SeverityModel model;
    EXPECT_DOUBLE_EQ(model.severity(45.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(model.severity(45.0, 30.0), 0.0);
    // Below reference clamps to zero.
    EXPECT_DOUBLE_EQ(model.severity(20.0, 0.0), 0.0);
}

class SeverityMonotonicity
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(SeverityMonotonicity, IncreasesWithTempAndMltd)
{
    const auto [t, m] = GetParam();
    SeverityModel model;
    EXPECT_GT(model.severity(t + 5.0, m), model.severity(t, m));
    EXPECT_GE(model.severity(t, m + 5.0), model.severity(t, m));
    if (t > 45.0) {
        EXPECT_GT(model.severity(t, m + 5.0), model.severity(t, m));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeverityMonotonicity,
    ::testing::Combine(::testing::Values(50.0, 70.0, 90.0, 110.0),
                       ::testing::Values(0.0, 10.0, 25.0, 45.0)));

TEST(Severity, CriticalTempPiecewiseSegments)
{
    SeverityModel model;
    EXPECT_DOUBLE_EQ(model.criticalTemp(0.0), 115.0);
    EXPECT_DOUBLE_EQ(model.criticalTemp(10.0), 105.0);
    EXPECT_DOUBLE_EQ(model.criticalTemp(20.0), 95.0);
    EXPECT_DOUBLE_EQ(model.criticalTemp(30.0), 87.5);
    EXPECT_DOUBLE_EQ(model.criticalTemp(40.0), 80.0);
}

TEST(Severity, CriticalTempClampsAtFloor)
{
    SeverityModel model;
    EXPECT_GE(model.criticalTemp(100.0), model.params().tCritFloor);
    EXPECT_DOUBLE_EQ(model.criticalTemp(1000.0),
                     model.params().tCritFloor);
}

TEST(Severity, NegativeMltdTreatedAsUniform)
{
    SeverityModel model;
    EXPECT_DOUBLE_EQ(model.criticalTemp(-5.0), 115.0);
}

TEST(SeverityDeathTest, RejectsNonDecreasingAnchors)
{
    SeverityParams bad;
    bad.tCritMid = 120.0; // above tCritUniform
    EXPECT_DEATH(SeverityModel{bad}, "decreasing");
}

TEST(Mltd, UniformFieldIsZero)
{
    SeverityModel model;
    const std::vector<Celsius> temps(64, 70.0);
    const auto mltd = model.mltdField(temps, 8, 8, 0.25e-3);
    for (Celsius m : mltd)
        EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(Mltd, SingleHotCellSeesDropToNeighbors)
{
    SeverityModel model; // radius 1 mm
    const int nx = 8, ny = 8;
    std::vector<Celsius> temps(nx * ny, 50.0);
    temps[3 * nx + 3] = 90.0;
    // Cell size 0.5 mm -> radius 2 cells.
    const auto mltd = model.mltdField(temps, nx, ny, 0.5e-3);
    EXPECT_DOUBLE_EQ(mltd[3 * nx + 3], 40.0);
    // The cold neighbors see no drop (they ARE the minimum).
    EXPECT_DOUBLE_EQ(mltd[0], 0.0);
}

TEST(Mltd, RadiusLimitsVisibility)
{
    SeverityParams params;
    params.mltdRadius = 0.5e-3; // 1 cell at 0.5 mm cells
    SeverityModel model(params);
    const int nx = 9, ny = 9;
    std::vector<Celsius> temps(nx * ny, 80.0);
    temps[0] = 40.0; // cold corner
    const auto mltd = model.mltdField(temps, nx, ny, 0.5e-3);
    // Adjacent cell sees the drop; a cell 4 away does not.
    EXPECT_DOUBLE_EQ(mltd[1], 40.0);
    EXPECT_DOUBLE_EQ(mltd[5], 0.0);
}

TEST(Mltd, GradientFieldDropWithinWindow)
{
    SeverityModel model;
    const int nx = 16, ny = 4;
    std::vector<Celsius> temps(nx * ny);
    for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x)
            temps[y * nx + x] = 50.0 + 2.0 * x; // 2 C per cell in x
    // Cell size 0.25 mm -> radius 4 cells; interior cell sees its
    // value minus the cell 4 to the left.
    const auto mltd = model.mltdField(temps, nx, ny, 0.25e-3);
    EXPECT_DOUBLE_EQ(mltd[1 * nx + 8], 8.0);
    // Leftmost cell is the local minimum.
    EXPECT_DOUBLE_EQ(mltd[1 * nx + 0], 0.0);
}

TEST(SeverityEvaluate, FindsArgmaxAndFields)
{
    SeverityModel model;
    const int nx = 8, ny = 8;
    std::vector<Celsius> temps(nx * ny, 60.0);
    const int hot = 4 * nx + 4;
    temps[hot] = 100.0;
    std::vector<double> per_cell;
    const SeveritySnapshot snap =
        model.evaluate(temps, nx, ny, 0.5e-3, &per_cell);
    EXPECT_EQ(snap.argmaxCell, hot);
    EXPECT_DOUBLE_EQ(snap.tempAtMax, 100.0);
    EXPECT_DOUBLE_EQ(snap.mltdAtMax, 40.0);
    EXPECT_DOUBLE_EQ(snap.maxTemp, 100.0);
    EXPECT_DOUBLE_EQ(snap.maxMltd, 40.0);
    ASSERT_EQ(per_cell.size(), temps.size());
    EXPECT_DOUBLE_EQ(per_cell[hot], snap.maxSeverity);
    // (100, 40): T_crit = 80, so severity = 55/35.
    EXPECT_NEAR(snap.maxSeverity, 55.0 / 35.0, 1e-12);
}

TEST(SeverityEvaluate, AdvancedHotspotBeatsUniformHeat)
{
    // The core thesis: a chip at uniform 94 C is safe, but an 85 C
    // hotspot over a 50 C background is NOT, despite being cooler.
    SeverityModel model;
    const int nx = 8, ny = 8;

    std::vector<Celsius> uniform(nx * ny, 94.0);
    const auto uni =
        model.evaluate(uniform, nx, ny, 0.5e-3);
    EXPECT_LT(uni.maxSeverity, 1.0);

    std::vector<Celsius> spiky(nx * ny, 50.0);
    spiky[3 * nx + 3] = 85.0;
    const auto spike = model.evaluate(spiky, nx, ny, 0.5e-3);
    EXPECT_GT(spike.maxSeverity, 1.0);
    EXPECT_LT(spike.maxTemp, uni.maxTemp);
}
