/** @file Unit tests for the Cochran-Reda phase-thermal baseline. */

#include <gtest/gtest.h>

#include "arch/counters.hh"
#include "common/rng.hh"
#include "control/phase_thermal.hh"

using namespace boreas;

namespace
{

/** A kNumCounters-wide vector whose first two entries carry the phase
 *  signature: hot ~ (100, 0), cool ~ (0, 100). */
std::vector<double>
phaseVector(bool hot, Rng *rng = nullptr)
{
    std::vector<double> v(kNumCounters, 0.0);
    auto jitter = [&](double mean) {
        return rng ? rng->normal(mean, 3.0) : mean;
    };
    v[0] = jitter(hot ? 100.0 : 0.0);
    v[1] = jitter(hot ? 0.0 : 100.0);
    v[2] = rng ? rng->normal(50.0, 1.0) : 50.0;
    return v;
}

/**
 * Synthetic world with two phases; next temperature is
 * temp_now + heat_rate(phase) * freq_index.
 */
std::vector<PhaseThermalSample>
syntheticSamples(size_t n, uint64_t seed, int max_freq_index = 3)
{
    Rng rng(seed);
    std::vector<PhaseThermalSample> out;
    for (size_t i = 0; i < n; ++i) {
        const bool hot = (i % 2) == 0;
        PhaseThermalSample s;
        s.counters = phaseVector(hot, &rng);
        s.tempNow = rng.uniform(50.0, 90.0);
        s.freqIndex = rng.uniformInt(0, max_freq_index);
        const double rate = hot ? 2.0 : 0.5;
        s.tempNext = s.tempNow + rate * s.freqIndex;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace

TEST(PhaseThermalModel, LearnsPhaseDependentHeating)
{
    Rng rng(1);
    PhaseThermalModel model;
    model.train(syntheticSamples(2000, 7), /*num_phases=*/2,
                /*num_components=*/2, /*num_freqs=*/4, rng);
    ASSERT_TRUE(model.trained());

    const auto hot = phaseVector(true);
    const auto cool = phaseVector(false);
    // Hot phase at freq 3: +6 C; cool phase: +1.5 C.
    EXPECT_NEAR(model.predictNextTemp(hot, 70.0, 3), 76.0, 1.0);
    EXPECT_NEAR(model.predictNextTemp(cool, 70.0, 3), 71.5, 1.0);
    // Frequency monotonicity within the hot phase.
    EXPECT_LT(model.predictNextTemp(hot, 70.0, 0),
              model.predictNextTemp(hot, 70.0, 3));
}

TEST(PhaseThermalModel, ClassifiesPhasesConsistently)
{
    Rng rng(2);
    PhaseThermalModel model;
    model.train(syntheticSamples(1000, 9), 2, 2, 4, rng);
    const int hot_phase = model.classifyPhase(phaseVector(true));
    const int cool_phase = model.classifyPhase(phaseVector(false));
    EXPECT_NE(hot_phase, cool_phase);
    // A nearby point classifies the same.
    auto near_hot = phaseVector(true);
    near_hot[0] = 97.0;
    near_hot[1] = 3.0;
    EXPECT_EQ(model.classifyPhase(near_hot), hot_phase);
}

TEST(PhaseThermalModel, FallsBackWhenCellUnpopulated)
{
    // Train with freq indices 0..3 but declare 6 frequencies: indices
    // 4-5 have no data anywhere and must fall back without panicking.
    Rng rng(3);
    PhaseThermalModel model;
    model.train(syntheticSamples(800, 11), 2, 2, 6, rng);
    const double pred =
        model.predictNextTemp(phaseVector(true), 70.0, 5);
    EXPECT_GT(pred, 40.0);
    EXPECT_LT(pred, 120.0);
}

TEST(PhaseThermalController, ThrottleAndBoostDecisions)
{
    Rng rng(4);
    PhaseThermalModel model;
    model.train(syntheticSamples(3000, 13, /*max_freq_index=*/12), 2, 2,
                13, rng);

    VFTable vf;
    CriticalTempTable table;
    table.criticalTemp.assign(vf.numPoints(), 75.0);
    PhaseThermalController c("CR", &model, table, 0.0, 0);

    CounterSet counters;
    const auto hot = phaseVector(true);
    std::copy(hot.begin(), hot.end(), counters.values.begin());

    DecisionContext ctx;
    ctx.currentFreq = 4.0;
    ctx.counters = &counters;
    ctx.sensorReadings = {74.0}; // hot phase: prediction exceeds 75
    ctx.vf = &vf;
    EXPECT_DOUBLE_EQ(c.decide(ctx), 3.75);

    ctx.sensorReadings = {40.0}; // plenty of headroom: boost
    EXPECT_DOUBLE_EQ(c.decide(ctx), 4.25);
}

TEST(PhaseThermalControllerDeathTest, RequiresTrainedModel)
{
    PhaseThermalModel untrained;
    VFTable vf;
    CriticalTempTable table;
    table.criticalTemp.assign(vf.numPoints(), 75.0);
    EXPECT_DEATH(PhaseThermalController("CR", &untrained, table, 0.0, 0),
                 "trained");
}
