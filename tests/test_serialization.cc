/** @file Round-trip tests for model persistence: every trained artifact
 *  must reload to an object that predicts identically. */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/counters.hh"
#include "common/rng.hh"
#include "control/phase_thermal.hh"
#include "boreas/trainer.hh"
#include "ml/linreg.hh"
#include "ml/pca.hh"

using namespace boreas;

TEST(Serialization, LinearRegressionRoundTrip)
{
    Rng rng(1);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        x.push_back(a);
        x.push_back(b);
        y.push_back(2.0 * a - b + 0.25);
    }
    LinearRegression lr;
    lr.fit(x, 2, y);

    std::stringstream buf;
    lr.save(buf);
    LinearRegression loaded;
    loaded.load(buf);
    for (int i = 0; i < 20; ++i) {
        const std::vector<double> q{rng.uniform(-1.0, 1.0),
                                    rng.uniform(-1.0, 1.0)};
        EXPECT_DOUBLE_EQ(loaded.predict(q), lr.predict(q));
    }
}

TEST(Serialization, PcaRoundTrip)
{
    Rng rng(2);
    std::vector<double> x;
    for (int i = 0; i < 300; ++i)
        for (int j = 0; j < 5; ++j)
            x.push_back(rng.normal(j * 2.0, 1.0 + j));
    PCA pca;
    pca.fit(x, 5, 3);

    std::stringstream buf;
    pca.save(buf);
    PCA loaded;
    loaded.load(buf);
    EXPECT_EQ(loaded.numComponents(), pca.numComponents());
    const std::vector<double> q{1.0, 2.0, 3.0, 4.0, 5.0};
    const auto a = pca.transform(q);
    const auto b = loaded.transform(q);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(loaded.explainedVariance()[i],
                         pca.explainedVariance()[i]);
}

TEST(Serialization, KMeansRoundTrip)
{
    Rng rng(3);
    std::vector<double> x;
    for (int i = 0; i < 150; ++i) {
        x.push_back(rng.uniform());
        x.push_back(rng.uniform());
        x.push_back(rng.uniform());
    }
    const KMeansResult km = kmeans(x, 3, 4, rng);

    std::stringstream buf;
    km.save(buf);
    KMeansResult loaded;
    loaded.load(buf);
    EXPECT_EQ(loaded.k(), km.k());
    EXPECT_EQ(loaded.dim, km.dim);
    for (int i = 0; i < 40; ++i) {
        const std::vector<double> q{rng.uniform(), rng.uniform(),
                                    rng.uniform()};
        EXPECT_EQ(loaded.nearest(q.data()), km.nearest(q.data()));
    }
}

namespace
{

std::vector<PhaseThermalSample>
syntheticSamples(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<PhaseThermalSample> out;
    for (size_t i = 0; i < n; ++i) {
        PhaseThermalSample s;
        s.counters.assign(kNumCounters, 0.0);
        const bool hot = (i % 2) == 0;
        s.counters[0] = rng.normal(hot ? 100.0 : 0.0, 3.0);
        s.counters[1] = rng.normal(hot ? 0.0 : 100.0, 3.0);
        s.tempNow = rng.uniform(50.0, 90.0);
        s.freqIndex = rng.uniformInt(0, 3);
        s.tempNext = s.tempNow + (hot ? 2.0 : 0.5) * s.freqIndex;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace

TEST(Serialization, PhaseThermalModelRoundTrip)
{
    Rng rng(4);
    PhaseThermalModel model;
    model.train(syntheticSamples(1200, 5), 2, 2, 4, rng);

    std::stringstream buf;
    model.save(buf);
    PhaseThermalModel loaded;
    loaded.load(buf);
    ASSERT_TRUE(loaded.trained());
    EXPECT_EQ(loaded.numPhases(), model.numPhases());

    Rng qrng(6);
    for (int i = 0; i < 30; ++i) {
        std::vector<double> q(kNumCounters, 0.0);
        q[0] = qrng.uniform(0.0, 100.0);
        q[1] = 100.0 - q[0];
        const double t = qrng.uniform(50.0, 90.0);
        const int f = qrng.uniformInt(0, 3);
        EXPECT_DOUBLE_EQ(loaded.predictNextTemp(q, t, f),
                         model.predictNextTemp(q, t, f));
        EXPECT_EQ(loaded.classifyPhase(q), model.classifyPhase(q));
    }
}

TEST(Serialization, TrainedBundleRoundTrip)
{
    // Build a minimal hand-made bundle (full pipeline training is
    // exercised in test_trainer): a GBT on two features + the phase
    // model above.
    TrainedBoreas bundle;
    bundle.featureNames = {"temperature_sensor_data", "frequency"};
    {
        Dataset d(bundle.featureNames);
        Rng rng(7);
        for (int i = 0; i < 500; ++i) {
            const double t = rng.uniform(45.0, 110.0);
            const double f = 2.0 + 0.25 * rng.uniformInt(0, 12);
            d.addRow({t, f}, (t - 45.0) / 70.0 + 0.05 * (f - 3.75),
                     i % 3);
        }
        bundle.model.train(d, GBTParams{.nEstimators = 40});
    }
    {
        Rng rng(8);
        bundle.phaseModel.train(syntheticSamples(800, 9), 2, 2, 4, rng);
    }

    std::stringstream buf;
    saveTrainedBoreas(bundle, buf);
    const TrainedBoreas loaded = loadTrainedBoreas(buf);

    EXPECT_EQ(loaded.featureNames, bundle.featureNames);
    ASSERT_TRUE(loaded.model.trained());
    ASSERT_TRUE(loaded.phaseModel.trained());
    Rng qrng(10);
    for (int i = 0; i < 40; ++i) {
        const std::vector<double> q{qrng.uniform(45.0, 110.0),
                                    2.0 + 0.25 * qrng.uniformInt(0, 12)};
        EXPECT_DOUBLE_EQ(loaded.model.predict(q),
                         bundle.model.predict(q));
    }
}

namespace
{

/** Small but fully trained bundle for the fidelity tests below. */
TrainedBoreas
tinyBundle()
{
    TrainedBoreas bundle;
    bundle.featureNames = {"temperature_sensor_data", "frequency"};
    Dataset d(bundle.featureNames);
    Rng rng(11);
    for (int i = 0; i < 400; ++i) {
        const double t = rng.uniform(45.0, 110.0);
        const double f = 2.0 + 0.25 * rng.uniformInt(0, 12);
        d.addRow({t, f}, (t - 45.0) / 70.0 + 0.05 * (f - 3.75), i % 3);
    }
    bundle.model.train(d, GBTParams{.nEstimators = 30});
    Rng prng(12);
    bundle.phaseModel.train(syntheticSamples(800, 13), 2, 2, 4, prng);
    return bundle;
}

} // namespace

TEST(Serialization, SaveLoadSaveIsByteIdentical)
{
    // The thresholds/leaves are doubles produced by training; a lossy
    // text round trip would drift on re-save. ScopedStreamPrecision
    // (max_digits10) makes save -> load -> save a fixed point.
    const TrainedBoreas bundle = tinyBundle();

    std::stringstream first;
    saveTrainedBoreas(bundle, first);
    std::stringstream replay(first.str());
    const TrainedBoreas loaded = loadTrainedBoreas(replay);
    std::stringstream second;
    saveTrainedBoreas(loaded, second);

    EXPECT_EQ(first.str(), second.str());
}

TEST(Serialization, SaveRestoresCallerStreamPrecision)
{
    const TrainedBoreas bundle = tinyBundle();
    std::stringstream buf;
    buf.precision(3);
    saveTrainedBoreas(bundle, buf);
    EXPECT_EQ(buf.precision(), 3);
    buf << 0.123456789;
    const std::string tail = buf.str();
    EXPECT_NE(tail.find("0.123"), std::string::npos);
    EXPECT_EQ(tail.find("0.1234"), std::string::npos);
}

TEST(SerializationDeathTest, BundleRejectsGarbage)
{
    std::stringstream buf("nope 1");
    EXPECT_DEATH(loadTrainedBoreas(buf), "bad bundle");
}

TEST(SerializationDeathTest, BundleRejectsUnknownFeatureName)
{
    // A bundle whose feature list names telemetry that is not in the
    // schema is stale or corrupt; loading it must panic instead of
    // silently feeding the model the wrong attributes.
    const TrainedBoreas bundle = tinyBundle();
    std::stringstream buf;
    saveTrainedBoreas(bundle, buf);
    std::string text = buf.str();
    const auto pos = text.find("temperature_sensor_data");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("temperature_sensor_data").size(),
                 "temperature_sensor_dataX");
    std::stringstream bad(text);
    EXPECT_DEATH(loadTrainedBoreas(bad), "not in the telemetry schema");
}

TEST(SerializationDeathTest, UntrainedBundleRefusesToSave)
{
    TrainedBoreas empty;
    std::stringstream buf;
    EXPECT_DEATH(saveTrainedBoreas(empty, buf), "untrained");
}
