/** @file Integration tests: training Boreas end-to-end (small scale). */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "boreas/trainer.hh"
#include "control/boreas_controller.hh"
#include "control/thermal_controller.hh"
#include "boreas/analysis.hh"
#include "ml/feature_schema.hh"
#include "test_util.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;
using boreas::test::tinyTrainerConfig;

namespace
{

/** Train once per test binary; training is the expensive part. */
struct TrainerFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        pipeline = std::make_unique<SimulationPipeline>(
            fastPipelineConfig());
        const std::vector<const WorkloadSpec *> train_set{
            &findWorkload("povray"), &findWorkload("gromacs"),
            &findWorkload("sjeng"), &findWorkload("libquantum"),
            &findWorkload("mcf"), &findWorkload("namd"),
        };
        trained = std::make_unique<TrainedBoreas>(
            trainBoreas(*pipeline, train_set, tinyTrainerConfig()));
    }

    static void
    TearDownTestSuite()
    {
        trained.reset();
        pipeline.reset();
    }

    static std::unique_ptr<SimulationPipeline> pipeline;
    static std::unique_ptr<TrainedBoreas> trained;
};

std::unique_ptr<SimulationPipeline> TrainerFixture::pipeline;
std::unique_ptr<TrainedBoreas> TrainerFixture::trained;

} // namespace

TEST_F(TrainerFixture, ModelsAreTrained)
{
    EXPECT_TRUE(trained->model.trained());
    EXPECT_TRUE(trained->fullModel.trained());
    EXPECT_TRUE(trained->phaseModel.trained());
    EXPECT_EQ(trained->fullModel.numFeatures(), kNumFullFeatures);
    EXPECT_EQ(trained->model.numFeatures(),
              deployedFeatureNames().size());
}

TEST_F(TrainerFixture, TrainMseIsAccurate)
{
    // The paper reports MSE ~0.0094; at test scale we accept anything
    // clearly predictive.
    EXPECT_LT(trained->model.mse(trained->trainData), 0.02);
}

TEST_F(TrainerFixture, TemperatureDominatesImportance)
{
    // Table IV: temperature_sensor_data carries by far the most gain.
    const auto gains = trained->fullModel.featureImportance();
    const double temp_gain = gains[kTempFeatureIndex];
    for (size_t i = 0; i < gains.size(); ++i) {
        if (i == kTempFeatureIndex)
            continue;
        EXPECT_GT(temp_gain, gains[i]) << fullFeatureSchema()[i];
    }
    EXPECT_GT(temp_gain, 0.3);
}

TEST_F(TrainerFixture, SelectTopFeaturesAscendingAndContainsTemp)
{
    const auto top = selectTopFeatures(trained->fullModel, 20);
    ASSERT_EQ(top.size(), 20u);
    // Ascending importance: the last entry must be the temperature.
    EXPECT_EQ(top.back(), "temperature_sensor_data");
    const auto gains = trained->fullModel.featureImportance();
    const auto idx = featureIndicesOf(top);
    for (size_t i = 1; i < idx.size(); ++i)
        EXPECT_LE(gains[idx[i - 1]], gains[idx[i]]);
}

TEST_F(TrainerFixture, GeneralizesToUnseenWorkload)
{
    // Build an evaluation set from a *test* workload and check the
    // deployed model predicts severity with useful accuracy.
    DatasetConfig eval_cfg = tinyTrainerConfig().data;
    const std::vector<const WorkloadSpec *> test_wl{
        &findWorkload("gamess")};
    const BuiltData eval = buildTrainingData(*pipeline, test_wl,
                                             eval_cfg);
    const double mse = evaluateMse(trained->model,
                                   trained->featureNames,
                                   eval.severity);
    EXPECT_LT(mse, 0.05);
}

TEST_F(TrainerFixture, Ml05ControlsUnseenWorkloadEffectively)
{
    // At unit-test scale (coarse grid, reduced data) we assert the
    // structural properties rather than the full-scale zero-incursion
    // result (which bench/fig7_avg_frequency reproduces): the
    // controller must find headroom above the static baseline while
    // keeping overshoot bounded — it must not run away to the top of
    // the VF range the way an uncontrolled run does.
    BoreasController ml05("ML05", &trained->model,
                          trained->featureNames, 0.05,
                          kBestSensorIndex);
    const RunResult run = pipeline->runWithController(
        findWorkload("bzip2"), 5, ml05, kBaselineFrequency);
    EXPECT_GE(run.averageFrequency(), kBaselineFrequency - 1e-9);
    EXPECT_LT(run.peakSeverity(), 1.5);

    // Reference: pinned at 5.0 GHz the same workload is deep in unsafe
    // territory for much of the trace.
    const RunResult wild = pipeline->runConstantFrequency(
        findWorkload("bzip2"), 5, kMaxFrequency);
    EXPECT_LT(run.peakSeverity(), wild.peakSeverity());
    EXPECT_LT(run.incursionSteps(), wild.incursionSteps());
}

TEST_F(TrainerFixture, GuardbandTradesFrequencyForSafety)
{
    BoreasController ml00("ML00", &trained->model,
                          trained->featureNames, 0.0,
                          kBestSensorIndex);
    BoreasController ml10("ML10", &trained->model,
                          trained->featureNames, 0.10,
                          kBestSensorIndex);
    const RunResult run00 = pipeline->runWithController(
        findWorkload("h264ref"), 5, ml00, kBaselineFrequency);
    const RunResult run10 = pipeline->runWithController(
        findWorkload("h264ref"), 5, ml10, kBaselineFrequency);
    EXPECT_GE(run00.averageFrequency(),
              run10.averageFrequency() - 1e-9);
    // The conservative model stays clear of the line.
    EXPECT_LT(run10.peakSeverity(), 1.0);
}

TEST_F(TrainerFixture, ThermalControllerFromStudyIsSafe)
{
    // Derive the TH-00 table from the training workloads, then run a
    // test workload closed-loop.
    const std::vector<const WorkloadSpec *> train_set{
        &findWorkload("povray"), &findWorkload("gromacs"),
        &findWorkload("sjeng"),
    };
    const CriticalTempStudy study = criticalTempStudy(
        *pipeline, train_set, pipeline->vfTable().frequencies(),
        kBestSensorIndex, 42, 75);
    ThermalThresholdController th00("TH-00", study.globalTable(), 0.0,
                                    kBestSensorIndex);
    const RunResult run = pipeline->runWithController(
        findWorkload("gamess"), 5, th00, kBaselineFrequency);
    EXPECT_EQ(run.incursionSteps(), 0);
}
