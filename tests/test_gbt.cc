/** @file Unit tests for the gradient-boosted-tree regressor. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hh"
#include "ml/gbt.hh"

using namespace boreas;

namespace
{

/** y = 3*x0 - 2*x1 + noise, with two distractor features. */
Dataset
linearData(size_t n, double noise_sigma, uint64_t seed)
{
    Rng rng(seed);
    Dataset d({"x0", "x1", "junk0", "junk1"});
    for (size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(-1.0, 1.0);
        const double x1 = rng.uniform(-1.0, 1.0);
        const double j0 = rng.uniform(-1.0, 1.0);
        const double j1 = rng.uniform(-1.0, 1.0);
        const double y = 3.0 * x0 - 2.0 * x1 +
            rng.normal(0.0, noise_sigma);
        d.addRow({x0, x1, j0, j1}, y, static_cast<int>(i % 4));
    }
    return d;
}

/** y = step(x0 > 0.3), pure single-feature signal. */
Dataset
stepData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset d({"x0", "x1"});
    for (size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        d.addRow({x0, x1}, x0 > 0.3 ? 1.0 : 0.0,
                 static_cast<int>(i % 3));
    }
    return d;
}

} // namespace

TEST(GBT, BeatsTheMeanOnLinearData)
{
    const Dataset train = linearData(2000, 0.05, 1);
    const Dataset test = linearData(500, 0.05, 2);
    GBTParams params;
    params.nEstimators = 120;
    GBTRegressor model;
    model.train(train, params);

    // Baseline: predicting the mean.
    double mean_mse = 0.0;
    const double mean = test.targetMean();
    for (size_t r = 0; r < test.numRows(); ++r)
        mean_mse += (test.y(r) - mean) * (test.y(r) - mean);
    mean_mse /= test.numRows();

    EXPECT_LT(model.mse(test), 0.1 * mean_mse);
}

TEST(GBT, LearnsStepFunctionNearlyExactly)
{
    const Dataset train = stepData(2000, 3);
    GBTParams params;
    params.nEstimators = 50;
    GBTRegressor model;
    model.train(train, params);
    EXPECT_LT(model.mse(train), 1e-3);
    EXPECT_NEAR(model.predict({0.9, 0.5}), 1.0, 0.05);
    EXPECT_NEAR(model.predict({0.1, 0.5}), 0.0, 0.05);
}

TEST(GBT, ImportanceSumsToOneAndRanksTrueFeatures)
{
    const Dataset train = linearData(3000, 0.01, 5);
    GBTParams params;
    params.nEstimators = 100;
    GBTRegressor model;
    model.train(train, params);
    const auto imp = model.featureImportance();
    ASSERT_EQ(imp.size(), 4u);
    double total = 0.0;
    for (double g : imp)
        total += g;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // x0 (slope 3) should dominate x1 (slope 2); junk ~ 0.
    EXPECT_GT(imp[0], imp[1]);
    EXPECT_GT(imp[1], 10.0 * imp[2]);
    EXPECT_GT(imp[1], 10.0 * imp[3]);
}

TEST(GBT, DeterministicAcrossTrainings)
{
    const Dataset train = linearData(500, 0.1, 7);
    GBTParams params;
    params.nEstimators = 30;
    GBTRegressor a, b;
    a.train(train, params);
    b.train(train, params);
    for (size_t r = 0; r < 20; ++r)
        EXPECT_DOUBLE_EQ(a.predict(train.row(r)),
                         b.predict(train.row(r)));
}

TEST(GBT, MoreTreesReduceTrainingError)
{
    const Dataset train = linearData(1000, 0.05, 9);
    GBTParams small, big;
    small.nEstimators = 5;
    big.nEstimators = 100;
    GBTRegressor m_small, m_big;
    m_small.train(train, small);
    m_big.train(train, big);
    EXPECT_LT(m_big.mse(train), m_small.mse(train));
}

TEST(GBT, GammaPrunesMarginalSplits)
{
    const Dataset train = linearData(500, 0.5, 11);
    GBTParams loose, strict;
    loose.nEstimators = strict.nEstimators = 20;
    strict.gamma = 1e6; // absurd: no split is worth it
    GBTRegressor m_loose, m_strict;
    m_loose.train(train, loose);
    m_strict.train(train, strict);

    size_t strict_nodes = 0, loose_nodes = 0;
    for (const auto &t : m_strict.trees())
        strict_nodes += t.nodes.size();
    for (const auto &t : m_loose.trees())
        loose_nodes += t.nodes.size();
    EXPECT_EQ(strict_nodes, m_strict.numTrees()); // all stumps (roots)
    EXPECT_GT(loose_nodes, strict_nodes);
}

TEST(GBT, DepthLimitHolds)
{
    const Dataset train = linearData(2000, 0.01, 13);
    GBTParams params;
    params.maxDepth = 3;
    params.nEstimators = 40;
    GBTRegressor model;
    model.train(train, params);
    for (const auto &tree : model.trees())
        EXPECT_LE(tree.depth(), 3);
}

TEST(GBT, ConstantTargetPredictsConstant)
{
    Dataset d({"x"});
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        d.addRow({rng.uniform()}, 7.5, 0);
    GBTRegressor model;
    model.train(d, GBTParams{.nEstimators = 10});
    EXPECT_NEAR(model.predict({0.3}), 7.5, 1e-9);
    EXPECT_NEAR(model.mse(d), 0.0, 1e-12);
}

TEST(GBT, SubsampleStillLearns)
{
    const Dataset train = linearData(2000, 0.05, 15);
    GBTParams params;
    params.nEstimators = 80;
    params.subsample = 0.5;
    GBTRegressor model;
    model.train(train, params);
    EXPECT_LT(model.mse(train), 0.2);
}

TEST(GBT, PaperModelFootprintUnder14KB)
{
    // Sec. V-E: 223 trees, depth 3, full-tree 32-bit accounting.
    const Dataset train = linearData(300, 0.1, 17);
    GBTParams params; // defaults = Table II
    GBTRegressor model;
    model.train(train, params);
    EXPECT_EQ(model.numTrees(), 223u);
    EXPECT_EQ(model.modelBytes(), 223u * 15u * 4u);
    EXPECT_LT(model.modelBytes(), 14u * 1024u);
    // ~669 comparisons + 222 adds = ~1000 ops per prediction.
    EXPECT_EQ(model.comparisonsPerPrediction(), 669u);
    EXPECT_EQ(model.additionsPerPrediction(), 222u);
    const size_t ops = model.comparisonsPerPrediction() +
        model.additionsPerPrediction();
    EXPECT_GT(ops, 800u);
    EXPECT_LT(ops, 1100u);
}

TEST(GBT, SaveLoadRoundTripPredictsIdentically)
{
    const Dataset train = linearData(500, 0.1, 19);
    GBTRegressor model;
    model.train(train, GBTParams{.nEstimators = 25});

    std::stringstream buf;
    model.save(buf);
    GBTRegressor loaded;
    loaded.load(buf);

    EXPECT_EQ(loaded.numTrees(), model.numTrees());
    EXPECT_EQ(loaded.numFeatures(), model.numFeatures());
    for (size_t r = 0; r < 50; ++r)
        EXPECT_DOUBLE_EQ(loaded.predict(train.row(r)),
                         model.predict(train.row(r)));
}

TEST(GBT, LoadAcceptsFileWithoutTrailingNewline)
{
    // A byte-complete model whose last token meets EOF (no trailing
    // newline) sets eofbit on the final extraction; load() must treat
    // that as benign EOF, not truncation.
    const Dataset train = linearData(300, 0.1, 27);
    GBTRegressor model;
    model.train(train, GBTParams{.nEstimators = 10});

    std::stringstream buf;
    model.save(buf);
    std::string text = buf.str();
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == ' '))
        text.pop_back();

    std::stringstream chopped(text);
    GBTRegressor loaded;
    loaded.load(chopped);
    EXPECT_EQ(loaded.numTrees(), model.numTrees());
    for (size_t r = 0; r < 50; ++r)
        EXPECT_DOUBLE_EQ(loaded.predict(train.row(r)),
                         model.predict(train.row(r)));
}

TEST(GBTDeathTest, LoadRejectsGarbage)
{
    std::stringstream buf("not-a-model 9");
    GBTRegressor model;
    EXPECT_DEATH(model.load(buf), "bad GBT model");
}

TEST(GBTDeathTest, LoadRejectsGiantTreeCount)
{
    // The count is validated before trees_.assign(): a corrupt value
    // must die cleanly instead of attempting a multi-GB allocation.
    std::stringstream buf("boreas-gbt 1\n"
                          "0.3 0 3 10 1\n"
                          "0.5 2 99999999999\n");
    GBTRegressor model;
    EXPECT_DEATH(model.load(buf), "tree count");
}

TEST(GBTDeathTest, LoadRejectsGiantNodeCount)
{
    std::stringstream buf("boreas-gbt 1\n"
                          "0.3 0 3 10 1\n"
                          "0.5 2 1\n"
                          "99999999999\n");
    GBTRegressor model;
    EXPECT_DEATH(model.load(buf), "node count");
}

TEST(GBTDeathTest, LoadRejectsFeatureOutOfRange)
{
    // Node 0 splits on feature 5 of a 2-feature model: accepted, this
    // model would read out of bounds inside the descent loop.
    std::stringstream buf("boreas-gbt 1\n"
                          "0.3 0 3 10 1\n"
                          "0.5 2 1\n"
                          "3\n"
                          "5 0.5 1 2 0 0\n"
                          "-1 0 -1 -1 1 0\n"
                          "-1 0 -1 -1 2 0\n");
    GBTRegressor model;
    EXPECT_DEATH(model.load(buf), "feature 5 outside");
}

TEST(GBTDeathTest, LoadRejectsChildIndexOutOfRange)
{
    std::stringstream buf("boreas-gbt 1\n"
                          "0.3 0 3 10 1\n"
                          "0.5 2 1\n"
                          "3\n"
                          "0 0.5 1 7 0 0\n"
                          "-1 0 -1 -1 1 0\n"
                          "-1 0 -1 -1 2 0\n");
    GBTRegressor model;
    EXPECT_DEATH(model.load(buf), "children");
}

TEST(GBTDeathTest, LoadRejectsBackwardChildLink)
{
    // A self/backward link would make the descent loop spin forever;
    // children must point strictly past their parent.
    std::stringstream buf("boreas-gbt 1\n"
                          "0.3 0 3 10 1\n"
                          "0.5 2 1\n"
                          "3\n"
                          "0 0.5 0 2 0 0\n"
                          "-1 0 -1 -1 1 0\n"
                          "-1 0 -1 -1 2 0\n");
    GBTRegressor model;
    EXPECT_DEATH(model.load(buf), "children");
}

TEST(GBTDeathTest, LoadRejectsTruncatedModel)
{
    const Dataset train = linearData(300, 0.1, 29);
    GBTRegressor model;
    model.train(train, GBTParams{.nEstimators = 10});
    std::stringstream buf;
    model.save(buf);
    const std::string text = buf.str();

    std::stringstream half(text.substr(0, text.size() / 2));
    GBTRegressor loaded;
    EXPECT_DEATH(loaded.load(half), "truncated GBT model");
}

TEST(GBTDeathTest, PredictRejectsWrongWidth)
{
    const Dataset train = stepData(200, 21);
    GBTRegressor model;
    model.train(train, GBTParams{.nEstimators = 5});
    EXPECT_DEATH(model.predict(std::vector<double>{1.0}),
                 "feature vector size");
}

class GBTLearningRate : public ::testing::TestWithParam<double>
{
};

TEST_P(GBTLearningRate, ConvergesForReasonableRates)
{
    const Dataset train = linearData(800, 0.05, 23);
    GBTParams params;
    params.learningRate = GetParam();
    params.nEstimators = 150;
    GBTRegressor model;
    model.train(train, params);
    EXPECT_LT(model.mse(train), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Rates, GBTLearningRate,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5));
