/** @file Unit tests for floorplan geometry. */

#include <gtest/gtest.h>

#include "floorplan/geometry.hh"

using namespace boreas;

TEST(Rect, BasicAccessors)
{
    const Rect r{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(r.right(), 4.0);
    EXPECT_DOUBLE_EQ(r.bottom(), 6.0);
    EXPECT_DOUBLE_EQ(r.area(), 12.0);
    EXPECT_DOUBLE_EQ(r.center().x, 2.5);
    EXPECT_DOUBLE_EQ(r.center().y, 4.0);
}

TEST(Rect, ContainsIsHalfOpen)
{
    const Rect r{0.0, 0.0, 1.0, 1.0};
    EXPECT_TRUE(r.contains({0.0, 0.0}));
    EXPECT_TRUE(r.contains({0.5, 0.5}));
    EXPECT_FALSE(r.contains({1.0, 0.5}));
    EXPECT_FALSE(r.contains({0.5, 1.0}));
    EXPECT_FALSE(r.contains({-0.1, 0.5}));
}

TEST(Rect, OverlapAreaFullPartialNone)
{
    const Rect a{0.0, 0.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(a.overlapArea(a), 4.0);
    const Rect b{1.0, 1.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(a.overlapArea(b), 1.0);
    EXPECT_DOUBLE_EQ(b.overlapArea(a), 1.0);
    const Rect c{5.0, 5.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(a.overlapArea(c), 0.0);
}

TEST(Rect, OverlapTouchingEdgesIsZero)
{
    const Rect a{0.0, 0.0, 1.0, 1.0};
    const Rect b{1.0, 0.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(a.overlapArea(b), 0.0);
}

TEST(Rect, Translated)
{
    const Rect r = Rect{1.0, 1.0, 2.0, 2.0}.translated(0.5, -0.5);
    EXPECT_DOUBLE_EQ(r.x, 1.5);
    EXPECT_DOUBLE_EQ(r.y, 0.5);
    EXPECT_DOUBLE_EQ(r.w, 2.0);
}

TEST(Point, Distance)
{
    EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}
