// Fixture header that must produce zero violations: the constructs
// the spectral solver and DCT plan introduced — a target_clones
// function attribute, member templates with endpoint-precision
// parameters, and generic lambdas casting on store. Not compiled.
#pragma once

#include <type_traits>
#include <vector>

namespace boreas_fixture
{

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define FIXTURE_CLONES __attribute__((target_clones("avx2,fma", "default")))
#else
#define FIXTURE_CLONES
#endif

// Words like "clones" and attribute strings must not trip any rule.
FIXTURE_CLONES void sweep(const float *__restrict in,
                          float *__restrict out, int n);

class Plan
{
  public:
    Plan() = default;
    Plan(const Plan &) = delete;
    Plan &operator=(const Plan &) = delete;

    template <typename TDst> void transform(const double *src, TDst *dst)
    {
        // Generic lambda narrowing only on the final store.
        auto store = [&](auto *out, int i) {
            using TO = std::remove_reference_t<decltype(out[0])>;
            out[i] = static_cast<TO>(src[i]);
        };
        store(dst, 0);
    }

  private:
    std::vector<float> streamed_;
    std::vector<double> exact_;
};

} // namespace boreas_fixture
