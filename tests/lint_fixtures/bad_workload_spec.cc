// Fixture for the workload-spec-construction rule: constructing or
// owning WorkloadSpec values outside src/workload fires; references,
// pointers and registry lookups do not.
#include <memory>
#include <vector>

#include "workload/registry.hh"
#include "workload/workload.hh"

void
bad_default_construction()
{
    boreas::WorkloadSpec spec; // fires
    (void)spec;
}

void
bad_braced_temporary()
{
    auto spec = boreas::WorkloadSpec{}; // fires
    (void)spec;
}

void
bad_heap_construction()
{
    auto spec = std::make_unique<boreas::WorkloadSpec>(); // fires
    (void)spec;
}

void
bad_owning_container()
{
    std::vector<boreas::WorkloadSpec> suite; // fires
    (void)suite;
}

void
fine_reference_and_pointer(const boreas::WorkloadSpec &spec)
{
    const boreas::WorkloadSpec *ptr = &spec;
    (void)ptr;
    std::vector<const boreas::WorkloadSpec *> views;
    (void)views;
}

void
fine_registry_lookup()
{
    auto source = boreas::makeWorkloadSource("synthetic:spec2006/astar");
    (void)source;
}

void
allowed_construction()
{
    // boreas-lint: allow(workload-spec-construction)
    boreas::WorkloadSpec exempted;
    (void)exempted;
}

// WorkloadSpec spec; in a comment must not fire.
inline const char *mention = "WorkloadSpec quoted;";
