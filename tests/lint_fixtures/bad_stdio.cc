// Fixture: direct stdio fires [direct-stdio]; mentions of printf in
// comments and string literals must not. Not compiled.
#include <cstdio>
#include <iostream>

void
fixtureStdio(int n)
{
    // printf("this comment must not fire");
    const char *msg = "printf( and std::cout inside a string";
    std::cout << msg << n;
    std::cerr << "oops";
    printf("%d\n", n);
    puts("done");
    fprintf(stderr, "%d\n", n);
}
