// Fixture header: keeping an #ifndef guard alongside #pragma once
// fires [header-guard]. Not compiled.
#pragma once
#ifndef FIXTURE_LEGACY_GUARD_HH
#define FIXTURE_LEGACY_GUARD_HH

inline int
fixtureLegacyGuard()
{
    return 0;
}

#endif // FIXTURE_LEGACY_GUARD_HH
