// Fixture: every line here that touches raw randomness must fire
// [raw-random]. Not compiled — consumed by tests/test_lint.cc.
#include <random>

int
fixtureRandom()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    return rand() % 7;
}
