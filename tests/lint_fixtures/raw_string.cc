/**
 * Raw-string scanner regression fixture. The old single-pass scanner
 * treated ANY code character 'R' before '"' as a raw-string prefix
 * and searched for '(' without bound, so a macro name ending in R
 * followed by a string swallowed the rest of the file — violations
 * below the literal went dark. The lexer must (a) never fire rules
 * on raw-string contents, (b) lex BAD_R"y" as an ordinary string,
 * and (c) still see the genuine violations at the bottom.
 */

namespace fixture
{

// A genuine raw string: rule-worthy text inside must never fire.
inline const char *kProse =
    R"(std::cout << rand(); new int; #include <random>)";

// Delimiter form, with an embedded ") that must not close it.
inline const char *kDelim = R"x(printf(")") std::cerr)x";

// An identifier merely ending in 'R' is NOT a raw-string prefix.
#define BAD_R(s) s
inline const char *kNotRaw = BAD_R"y";

inline int *
leak()
{
    return new int(3);
}

inline void
release(int *p)
{
    delete p;
}

} // namespace fixture
