/**
 * True positives for the parallelFor capture analysis: by-reference
 * lambdas mutating captured state without atomics, a lock, or a
 * per-task slot. Each marked line must fire.
 */

#include "common/parallel.hh"

namespace fixture
{

inline double
sumBad(boreas::ThreadPool &pool, const std::vector<double> &xs)
{
    double total = 0.0;
    pool.parallelFor(0, 8, 1, [&](int64_t i, int64_t) {
        total += xs[i]; // fires: parallel-fp-reduction
    });
    return total;
}

inline int
countBad(boreas::ThreadPool &pool, const std::vector<double> &xs)
{
    int hits = 0;
    pool.parallelFor(0, 8, 1, [&](int64_t i, int64_t) {
        if (xs[i] > 0.0)
            ++hits; // fires: parallel-capture-mutation
    });
    return hits;
}

inline double
maxBad(boreas::ThreadPool &pool, const std::vector<double> &xs)
{
    double peak = -1.0;
    pool.parallelForEach(0, 8, [&](int64_t i) {
        peak = peak > xs[i] ? peak : xs[i]; // fires: fp-reduction
    });
    return peak;
}

} // namespace fixture
