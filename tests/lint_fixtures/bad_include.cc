// Fixture: non-repo-relative includes fire [include-style]. The
// headers named here do not exist — the file is never compiled.
#include "../common/escape_hatch.hh"
#include <boreas/pipeline.hh>
#include "inline_impl.cc"

int
fixtureInclude()
{
    return 0;
}
