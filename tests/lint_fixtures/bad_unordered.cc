// Fixture: unordered containers fire [unordered-container]; the
// allow() marker suppresses a justified use. Not compiled.
#include <string>
#include <unordered_map>

double
fixtureUnordered()
{
    std::unordered_map<std::string, double> acc;
    acc["x"] = 1.0;
    double sum = 0.0;
    for (const auto &kv : acc)
        sum += kv.second;

    // Lookup-only cache, never iterated. boreas-lint: allow(unordered-container)
    std::unordered_map<int, int> cache;
    return sum + static_cast<double>(cache.size());
}
