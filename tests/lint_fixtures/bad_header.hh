// Fixture header: missing #pragma once fires [header-guard] and the
// namespace-scope using-directive fires [header-hygiene]. Not compiled.
#include <vector>

using namespace std;

inline vector<int>
fixtureHeader()
{
    return {1, 2, 3};
}
