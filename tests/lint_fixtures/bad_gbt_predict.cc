// Fixture: walking GBT trees outside src/ml fires [flat-gbt-predict];
// the allow() marker suppresses a justified structural use. Not
// compiled.

#include <cstddef>
#include <vector>

struct FixtureModel
{
    const std::vector<int> &trees() const { return trees_; }
    std::vector<int> trees_;
};

double
fixtureTreeWalk(const FixtureModel &model, const double *x)
{
    double acc = 0.0;
    const GBTTree *scratch = nullptr;
    for (size_t t = 0; t < model.trees_.size(); ++t)
        acc += static_cast<double>(model.trees()[t]) + x[0];

    // Structural audit, no predictions. boreas-lint: allow(flat-gbt-predict)
    acc += static_cast<double>(model.trees().at(0));
    return acc + (scratch != nullptr ? 1.0 : 0.0);
}
