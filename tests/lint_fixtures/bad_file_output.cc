// Fixture for the raw-file-output rule: every direct file-writing
// primitive fires; the allow() marker and comment/string mentions do
// not.
#include <cstdio>
#include <fstream>

void
bad_ofstream()
{
    std::ofstream out("artifact.json"); // fires
    out << 1;
}

void
bad_fstream()
{
    std::fstream io("scratch.bin"); // fires
}

void
bad_fopen()
{
    FILE *f = fopen("raw.txt", "w"); // fires
    if (f)
        fclose(f);
}

void
bad_freopen()
{
    freopen("redirect.log", "w", stdout); // fires
}

void
allowed_ofstream()
{
    // boreas-lint: allow(raw-file-output)
    std::ofstream out("exempted.json");
}

// std::ofstream fopen( in a comment must not fire.
inline const char *mention = "std::ofstream fopen(";
