// Fixture header that must produce zero violations: #pragma once,
// repo-relative include style, deleted special members, smart-pointer
// ownership. Not compiled.
#pragma once

#include <memory>
#include <vector>

namespace boreas_fixture
{

class Clean
{
  public:
    Clean() = default;
    Clean(const Clean &) = delete;
    Clean &operator=(const Clean &) = delete;

    // Words like renewal and deleter must not trip raw-new-delete.
    void renewal();

  private:
    std::unique_ptr<int> owned_ = std::make_unique<int>(0);
    std::vector<double> data_;
};

} // namespace boreas_fixture
