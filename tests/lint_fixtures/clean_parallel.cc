/**
 * False-positive guard for the parallelFor capture analysis: every
 * sanctioned parallel idiom in the repo, none of which may fire.
 */

#include <atomic>

#include "common/parallel.hh"

namespace fixture
{

/** Preallocated per-task slot writes — the canonical pattern. */
inline void
slotWrites(boreas::ThreadPool &pool, std::vector<double> &out,
           const std::vector<double> &xs)
{
    pool.parallelFor(0, 8, 1, [&](int64_t i, int64_t) {
        out[i] = xs[i] * 2.0;
    });
}

/** Body-local accumulation merged through a slot. */
inline void
bodyLocals(boreas::ThreadPool &pool, std::vector<double> &out)
{
    pool.parallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
        double acc = 0.0;
        for (int64_t i = lo; i < hi; ++i)
            acc += static_cast<double>(i);
        out[lo] = acc;
    });
}

/** Atomic counters are synchronized by construction. */
inline int
atomicCounts(boreas::ThreadPool &pool, const std::vector<double> &xs)
{
    std::atomic<int> hits{0};
    pool.parallelFor(0, 8, 1, [&](int64_t i, int64_t) {
        if (xs[i] > 0.0)
            hits.fetch_add(1);
    });
    return hits.load();
}

/** By-value captures cannot mutate shared state. */
inline void
byValue(boreas::ThreadPool &pool, double scale)
{
    pool.parallelFor(0, 8, 1, [scale](int64_t, int64_t) {
        (void)scale;
    });
}

} // namespace fixture
