// Fixture: raw new/delete fires [raw-new-delete]; deleted special
// members must not. Not compiled.

struct FixtureOwner
{
    FixtureOwner(const FixtureOwner &) = delete;
    FixtureOwner &operator=(const FixtureOwner &) = delete;

    int *raw = nullptr;
};

void
fixtureNewDelete(FixtureOwner &o)
{
    o.raw = new int(42);
    int *arr = new int[8];
    delete o.raw;
    delete[] arr;
}
