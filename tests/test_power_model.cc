/** @file Unit tests for the per-unit power model. */

#include <gtest/gtest.h>

#include "arch/core_model.hh"
#include "floorplan/skylake.hh"
#include "power/power_model.hh"

using namespace boreas;

namespace
{

struct PowerFixture : public ::testing::Test
{
    PowerFixture()
        : fp(buildSkylakeFloorplan()), model(fp),
          ambient_temps(fp.numUnits(), kAmbient)
    {
    }

    CounterSet
    typicalCounters(GHz freq, double fp_frac = 0.1)
    {
        IntervalCore core;
        Rng rng(1);
        PhaseParams p;
        p.activityNoise = 0.0;
        p.fpFraction = fp_frac;
        return core.step(p, freq, 80e-6, rng);
    }

    Floorplan fp;
    PowerModel model;
    std::vector<Celsius> ambient_temps;
};

} // namespace

TEST_F(PowerFixture, AllUnitPowersNonNegative)
{
    const auto p = model.unitPower(typicalCounters(4.0), 0, 1.0, 4.0,
                                   0.98, ambient_temps, 80e-6);
    ASSERT_EQ(p.size(), fp.numUnits());
    for (Watts w : p)
        EXPECT_GE(w, 0.0);
}

TEST_F(PowerFixture, TotalPowerInPlausibleTurboRange)
{
    const auto p = model.unitPower(typicalCounters(4.0), 0, 1.0, 4.0,
                                   0.98, ambient_temps, 80e-6);
    const Watts total = PowerModel::totalPower(p);
    EXPECT_GT(total, 5.0);
    EXPECT_LT(total, 60.0);
}

TEST_F(PowerFixture, VoltageSquaredScalingOfDynamicPower)
{
    // Same counters, two voltages: the dynamic component must scale by
    // (V2/V1)^2. Compare with leakage at fixed temperature subtracted.
    const CounterSet c = typicalCounters(4.0);
    const auto p1 = model.unitPower(c, 0, 1.0, 4.0, 1.0, ambient_temps,
                                    80e-6);
    const auto p2 = model.unitPower(c, 0, 1.0, 4.0, 1.2, ambient_temps,
                                    80e-6);
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    const Watts leak1 = model.leakagePower(alu, kAmbient, 1.0);
    const Watts leak2 = model.leakagePower(alu, kAmbient, 1.2);
    const double dyn_ratio =
        (p2[alu] - leak2) / (p1[alu] - leak1);
    EXPECT_NEAR(dyn_ratio, 1.44, 0.01);
}

TEST_F(PowerFixture, LeakageMonotoneInTemperature)
{
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    Watts prev = 0.0;
    for (Celsius t = 45.0; t <= 115.0; t += 10.0) {
        const Watts leak = model.leakagePower(alu, t, 1.0);
        EXPECT_GT(leak, prev);
        prev = leak;
    }
}

TEST_F(PowerFixture, LeakageClampedAboveValidityCeiling)
{
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    const Watts at_cap =
        model.leakagePower(alu, model.params().leakTmax, 1.0);
    const Watts above =
        model.leakagePower(alu, model.params().leakTmax + 200.0, 1.0);
    EXPECT_DOUBLE_EQ(at_cap, above);
}

TEST_F(PowerFixture, IdleCoresDrawMuchLessThanActiveCore)
{
    const auto p = model.unitPower(typicalCounters(4.0), 0, 1.0, 4.0,
                                   0.98, ambient_temps, 80e-6);
    auto core_power = [&](int core) {
        Watts acc = 0.0;
        for (size_t i = 0; i < fp.numUnits(); ++i)
            if (fp.unit(i).coreId == core)
                acc += p[i];
        return acc;
    };
    EXPECT_GT(core_power(0), 3.0 * core_power(1));
}

TEST_F(PowerFixture, FpHeavyPhaseShiftsPowerToFpu)
{
    const auto p_int = model.unitPower(typicalCounters(4.0, 0.02), 0,
                                       1.0, 4.0, 0.98, ambient_temps,
                                       80e-6);
    const auto p_fp = model.unitPower(typicalCounters(4.0, 0.45), 0,
                                      1.0, 4.0, 0.98, ambient_temps,
                                      80e-6);
    const int fpu = fp.findUnit(UnitKind::FPU, 0);
    EXPECT_GT(p_fp[fpu], 2.0 * p_int[fpu]);
}

TEST_F(PowerFixture, PowerIsAffineInIntensity)
{
    // Event and clock power scale linearly with the workload intensity
    // (leakage and idle power do not): equal intensity increments give
    // equal power increments.
    const CounterSet c = typicalCounters(4.0);
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    auto alu_power = [&](double intensity) {
        return model.unitPower(c, 0, intensity, 4.0, 0.98,
                               ambient_temps, 80e-6)[alu];
    };
    const Watts p1 = alu_power(1.0);
    const Watts p2 = alu_power(2.0);
    const Watts p3 = alu_power(3.0);
    EXPECT_GT(p2, p1);
    EXPECT_NEAR(p3 - p2, p2 - p1, 1e-9);
}

TEST_F(PowerFixture, MoreWorkMorePower)
{
    IntervalCore core;
    Rng rng(1);
    PhaseParams fast, slow;
    fast.activityNoise = slow.activityNoise = 0.0;
    fast.baseCpi = 0.3;
    slow.baseCpi = 2.0;
    const CounterSet cf = core.step(fast, 4.0, 80e-6, rng);
    const CounterSet cs = core.step(slow, 4.0, 80e-6, rng);
    const Watts pf = PowerModel::totalPower(model.unitPower(
        cf, 0, 1.0, 4.0, 0.98, ambient_temps, 80e-6));
    const Watts ps = PowerModel::totalPower(model.unitPower(
        cs, 0, 1.0, 4.0, 0.98, ambient_temps, 80e-6));
    EXPECT_GT(pf, ps);
}

TEST_F(PowerFixture, UncoreUnitsAlwaysDraw)
{
    // L3 and SoC draw idle power even when no core is marked active.
    CounterSet zero;
    zero[Counter::TotalCycles] = 1.0;
    const auto p = model.unitPower(zero, /*active_core=*/-2, 1.0, 2.0,
                                   0.64, ambient_temps, 80e-6);
    const int l3 = fp.findUnit(UnitKind::L3, -1);
    EXPECT_GT(p[l3], 0.1);
}
