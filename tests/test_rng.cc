/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

using namespace boreas;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(3);
    double acc = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(11);
    std::set<int> seen;
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(3, 3), 3);
}

TEST(Rng, NormalMomentsAreStandard)
{
    Rng rng(5);
    double sum = 0.0, sum2 = 0.0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / kN;
    const double var = sum2 / kN - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(5);
    double sum = 0.0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, ForkedStreamsDecorrelated)
{
    Rng parent(9);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(13);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleEmptyAndSingleton)
{
    Rng rng(1);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{42};
    rng.shuffle(one);
    EXPECT_EQ(one[0], 42);
}
