/** @file Unit tests for hotspot event extraction. */

#include <gtest/gtest.h>

#include <cmath>

#include "hotspot/events.hh"

using namespace boreas;

namespace
{

SeveritySnapshot
snap(double sev, int cell = 7, Celsius temp = 100.0,
     Celsius mltd = 20.0)
{
    SeveritySnapshot s;
    s.maxSeverity = sev;
    s.argmaxCell = cell;
    s.tempAtMax = temp;
    s.mltdAtMax = mltd;
    return s;
}

std::vector<SeveritySnapshot>
series(std::initializer_list<double> sevs)
{
    std::vector<SeveritySnapshot> out;
    for (double s : sevs)
        out.push_back(snap(s));
    return out;
}

} // namespace

TEST(HotspotEvents, QuietTraceHasNoEvents)
{
    const auto events = extractHotspotEvents(
        series({0.2, 0.5, 0.7, 0.79, 0.6}));
    EXPECT_TRUE(events.empty());
}

TEST(HotspotEvents, SingleEventBoundsAndPeak)
{
    // steps:          0    1    2    3    4    5    6
    const auto events = extractHotspotEvents(
        series({0.5, 0.85, 1.02, 1.20, 1.05, 0.70, 0.4}));
    ASSERT_EQ(events.size(), 1u);
    const HotspotEvent &e = events[0];
    EXPECT_EQ(e.startStep, 2);
    EXPECT_EQ(e.endStep, 5); // first step back below the arm level
    EXPECT_EQ(e.durationSteps(), 3);
    EXPECT_DOUBLE_EQ(e.peakSeverity, 1.20);
    EXPECT_EQ(e.peakCell, 7);
}

TEST(HotspotEvents, OnsetMeasuresArmToThresholdTime)
{
    // Armed at step 1 (0.85), threshold at step 3: onset = 2 steps.
    const auto events = extractHotspotEvents(
        series({0.5, 0.85, 0.9, 1.05, 0.5}));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_NEAR(events[0].onset, 2 * kTelemetryStep, 1e-12);
}

TEST(HotspotEvents, HysteresisMergesThresholdJitter)
{
    // Severity dips to 0.95 (below threshold, above arm level) mid-way:
    // still one event.
    const auto events = extractHotspotEvents(
        series({0.5, 0.9, 1.1, 0.95, 1.2, 0.6}));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].startStep, 2);
    EXPECT_EQ(events[0].endStep, 5);
    EXPECT_DOUBLE_EQ(events[0].peakSeverity, 1.2);
}

TEST(HotspotEvents, SeparateEventsWhenDroppingBelowArmLevel)
{
    const auto events = extractHotspotEvents(
        series({0.9, 1.1, 0.5, 0.9, 1.3, 0.5}));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].startStep, 1);
    EXPECT_EQ(events[1].startStep, 4);
    EXPECT_DOUBLE_EQ(events[1].peakSeverity, 1.3);
}

TEST(HotspotEvents, OpenEventClosedByFinish)
{
    HotspotDetector d;
    for (double s : {0.5, 0.9, 1.1, 1.2})
        d.observe(snap(s));
    EXPECT_TRUE(d.events().empty()); // still open
    d.finish();
    ASSERT_EQ(d.events().size(), 1u);
    EXPECT_EQ(d.events()[0].endStep, 4);
}

TEST(HotspotEvents, TraceStartingHotHasSentinelOnset)
{
    // Already above the arm level (even above threshold) at step 0:
    // onset is unknowable, reported as negative.
    const auto events = extractHotspotEvents(series({1.1, 1.2, 0.5}));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_LT(events[0].onset, 0.0);
}

TEST(HotspotEvents, AggregatesAndReset)
{
    HotspotDetector d;
    for (double s : {0.9, 1.1, 0.5, 0.85, 1.05, 1.1, 0.4})
        d.observe(snap(s));
    d.finish();
    EXPECT_EQ(d.events().size(), 2u);
    EXPECT_EQ(d.totalEventSteps(), 1 + 2);
    EXPECT_LT(d.fastestOnset(), 2 * kTelemetryStep + 1e-12);
    d.reset();
    EXPECT_TRUE(d.events().empty());
    EXPECT_TRUE(std::isinf(d.fastestOnset()));
}

TEST(HotspotEvents, CustomThresholdAndArmLevel)
{
    HotspotDetector d(0.95, 0.9);
    for (double s : {0.91, 0.96, 0.92, 0.8})
        d.observe(snap(s));
    d.finish();
    ASSERT_EQ(d.events().size(), 1u);
    EXPECT_EQ(d.events()[0].startStep, 1);
    EXPECT_EQ(d.events()[0].endStep, 3);
}

TEST(HotspotEventsDeathTest, ArmLevelMustBeBelowThreshold)
{
    EXPECT_DEATH(HotspotDetector(1.0, 1.0), "arm level");
}
