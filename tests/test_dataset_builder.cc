/** @file Tests for training-data generation. */

#include <gtest/gtest.h>

#include <set>

#include "boreas/dataset_builder.hh"
#include "ml/feature_schema.hh"
#include "test_util.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

namespace
{

DatasetConfig
smallConfig()
{
    DatasetConfig cfg;
    cfg.frequencies = {3.75, 4.5};
    cfg.constSegments = 1;
    cfg.walkSegments = 1;
    cfg.traceSteps = 60;
    cfg.horizonSteps = 12; // keep the count arithmetic below simple
    return cfg;
}

} // namespace

TEST(DatasetBuilder, InstanceCountMatchesConfig)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<const WorkloadSpec *> wl{&findWorkload("gamess")};
    const DatasetConfig cfg = smallConfig();
    const BuiltData built = buildTrainingData(p, wl, cfg);

    // Constant traces: per augment and frequency, (traceSteps -
    // horizon) instances.
    const size_t const_rows =
        cfg.intensityAugments.size() * 2 * (60 - 12);
    // Walk traces: instances at t = 11, 23, 35, 47 (t < 60-12=48).
    const size_t walk_rows = 4;
    EXPECT_EQ(built.severity.numRows(), const_rows + walk_rows);
    EXPECT_EQ(built.severity.numFeatures(), kNumFullFeatures);
}

TEST(DatasetBuilder, GroupsAreWorkloadSalts)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<const WorkloadSpec *> wl{
        &findWorkload("gamess"), &findWorkload("bzip2")};
    const BuiltData built = buildTrainingData(p, wl, smallConfig());
    const auto groups = built.severity.distinctGroups();
    const std::set<int> expect{
        static_cast<int>(findWorkload("gamess").seedSalt),
        static_cast<int>(findWorkload("bzip2").seedSalt)};
    EXPECT_EQ(std::set<int>(groups.begin(), groups.end()), expect);
}

TEST(DatasetBuilder, FrequencyColumnMatchesTraceFrequency)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<const WorkloadSpec *> wl{&findWorkload("gamess")};
    DatasetConfig cfg = smallConfig();
    cfg.walkSegments = 0;
    const BuiltData built = buildTrainingData(p, wl, cfg);
    std::set<double> freqs_seen;
    for (size_t r = 0; r < built.severity.numRows(); ++r)
        freqs_seen.insert(built.severity.x(r, kFreqFeatureIndex));
    EXPECT_EQ(freqs_seen, (std::set<double>{3.75, 4.5}));
}

TEST(DatasetBuilder, LabelsAreSaneSeverities)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<const WorkloadSpec *> wl{&findWorkload("povray")};
    const BuiltData built = buildTrainingData(p, wl, smallConfig());
    for (size_t r = 0; r < built.severity.numRows(); ++r) {
        EXPECT_GE(built.severity.y(r), 0.0);
        EXPECT_LT(built.severity.y(r), 5.0);
    }
    // povray at 4.5 must show some near-critical labels.
    double max_label = 0.0;
    for (size_t r = 0; r < built.severity.numRows(); ++r)
        max_label = std::max(max_label, built.severity.y(r));
    EXPECT_GT(max_label, 0.8);
}

TEST(DatasetBuilder, TemperatureColumnIsPlausible)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<const WorkloadSpec *> wl{&findWorkload("gamess")};
    const BuiltData built = buildTrainingData(p, wl, smallConfig());
    for (size_t r = 0; r < built.severity.numRows(); ++r) {
        const double temp = built.severity.x(r, kTempFeatureIndex);
        EXPECT_GT(temp, kAmbient - 1.0);
        EXPECT_LT(temp, 150.0);
    }
}

TEST(DatasetBuilder, PhaseSamplesShareTrajectories)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<const WorkloadSpec *> wl{&findWorkload("gamess")};
    const BuiltData built = buildTrainingData(p, wl, smallConfig());
    EXPECT_FALSE(built.phaseSamples.empty());
    for (const auto &s : built.phaseSamples) {
        EXPECT_EQ(s.counters.size(), kNumCounters);
        EXPECT_GE(s.freqIndex, 0);
        EXPECT_LT(s.freqIndex, p.vfTable().numPoints());
        EXPECT_GT(s.tempNow, 0.0);
        EXPECT_GT(s.tempNext, 0.0);
    }
}

TEST(DatasetBuilder, DeterministicAcrossCalls)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<const WorkloadSpec *> wl{&findWorkload("bzip2")};
    const BuiltData a = buildTrainingData(p, wl, smallConfig());
    const BuiltData b = buildTrainingData(p, wl, smallConfig());
    ASSERT_EQ(a.severity.numRows(), b.severity.numRows());
    for (size_t r = 0; r < a.severity.numRows(); r += 13) {
        EXPECT_DOUBLE_EQ(a.severity.y(r), b.severity.y(r));
        EXPECT_DOUBLE_EQ(a.severity.x(r, 0), b.severity.x(r, 0));
    }
}
