/** @file Unit tests for the DVFS controllers. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "control/boreas_controller.hh"
#include "control/static_controllers.hh"
#include "control/thermal_controller.hh"
#include "ml/feature_schema.hh"

using namespace boreas;

namespace
{

/** A context with a single sensor reading at the given temperature. */
DecisionContext
makeContext(const VFTable &vf, GHz freq, Celsius reading,
            const CounterSet *counters = nullptr)
{
    DecisionContext ctx;
    ctx.currentFreq = freq;
    ctx.counters = counters;
    ctx.sensorReadings = {reading};
    ctx.vf = &vf;
    return ctx;
}

/** A critical-temp table that linearly tightens with frequency. */
CriticalTempTable
syntheticTable(const VFTable &vf)
{
    CriticalTempTable t;
    for (int i = 0; i < vf.numPoints(); ++i)
        t.criticalTemp.push_back(100.0 - 3.0 * i); // 100 .. 64
    return t;
}

} // namespace

TEST(FixedFrequencyController, AlwaysReturnsItsFrequency)
{
    VFTable vf;
    FixedFrequencyController c("oracle-x", 4.25);
    EXPECT_STREQ(c.name(), "oracle-x");
    for (GHz f : {2.0, 3.75, 5.0}) {
        const auto ctx = makeContext(vf, f, 200.0);
        EXPECT_DOUBLE_EQ(c.decide(ctx), 4.25);
    }
}

TEST(ThermalController, ThrottlesWhenAboveThreshold)
{
    VFTable vf;
    ThermalThresholdController c("TH-00", syntheticTable(vf), 0.0, 0);
    // Threshold at 4.0 GHz (index 8) is 100-24=76.
    const auto hot = makeContext(vf, 4.0, 80.0);
    EXPECT_DOUBLE_EQ(c.decide(hot), 3.75);
}

TEST(ThermalController, BoostsWhenSafelyBelowNextThreshold)
{
    VFTable vf;
    ThermalThresholdController c("TH-00", syntheticTable(vf), 0.0, 0);
    // Threshold at 4.25 (index 9) is 73; a 50 C reading allows boost.
    const auto cool = makeContext(vf, 4.0, 50.0);
    EXPECT_DOUBLE_EQ(c.decide(cool), 4.25);
}

TEST(ThermalController, HoldsInTheDeadBand)
{
    VFTable vf;
    ThermalThresholdController c("TH-00", syntheticTable(vf), 0.0, 0);
    // Reading between thr(next)=73 and thr(cur)=76: hold.
    const auto mid = makeContext(vf, 4.0, 74.0);
    EXPECT_DOUBLE_EQ(c.decide(mid), 4.0);
}

TEST(ThermalController, SaturatesAtGridEdges)
{
    VFTable vf;
    ThermalThresholdController c("TH-00", syntheticTable(vf), 0.0, 0);
    const auto cold_at_max = makeContext(vf, 5.0, 10.0);
    EXPECT_DOUBLE_EQ(c.decide(cold_at_max), 5.0);
    const auto hot_at_min = makeContext(vf, 2.0, 500.0);
    EXPECT_DOUBLE_EQ(c.decide(hot_at_min), 2.0);
}

TEST(ThermalController, RelaxedOffsetAllowsHigherTemps)
{
    VFTable vf;
    ThermalThresholdController th00("TH-00", syntheticTable(vf), 0.0, 0);
    ThermalThresholdController th10("TH-10", syntheticTable(vf), 10.0, 0);
    // 80 C at 4.0 GHz: TH-00 throttles (thr 76), TH-10 boosts
    // (thr(4.25) = 73 + 10 = 83 > 80).
    const auto ctx = makeContext(vf, 4.0, 80.0);
    EXPECT_DOUBLE_EQ(th00.decide(ctx), 3.75);
    EXPECT_DOUBLE_EQ(th10.decide(ctx), 4.25);
}

TEST(ThermalController, InfiniteThresholdNeverThrottles)
{
    VFTable vf;
    CriticalTempTable t;
    t.criticalTemp.assign(vf.numPoints(),
                          std::numeric_limits<Celsius>::infinity());
    ThermalThresholdController c("TH-00", t, 0.0, 0);
    const auto ctx = makeContext(vf, 3.0, 500.0);
    EXPECT_DOUBLE_EQ(c.decide(ctx), 3.25);
}

namespace
{

/**
 * Train a tiny severity model on synthetic data where severity depends
 * linearly on temperature and frequency:
 *     sev = (temp - 45)/55 + 0.1 * (freq - 4.0)
 * so higher temperature and higher frequency both push severity up.
 */
GBTRegressor
syntheticSeverityModel()
{
    Dataset d(deployedFeatureNames());
    Rng rng(1);
    const size_t nf = deployedFeatureNames().size();
    for (int i = 0; i < 4000; ++i) {
        std::vector<double> x(nf, 0.0);
        const double temp = rng.uniform(45.0, 110.0);
        const double freq = 2.0 + 0.25 * rng.uniformInt(0, 12);
        x[nf - 2] = temp; // temperature_sensor_data
        x[nf - 1] = freq; // frequency
        const double sev = (temp - 45.0) / 55.0 + 0.1 * (freq - 4.0);
        d.addRow(x, sev, i % 4);
    }
    GBTRegressor model;
    GBTParams params;
    params.nEstimators = 150;
    model.train(d, params);
    return model;
}

} // namespace

TEST(BoreasController, ThrottlesOnPredictedUnsafeSeverity)
{
    VFTable vf;
    const GBTRegressor model = syntheticSeverityModel();
    BoreasController c("ML00", &model, deployedFeatureNames(), 0.0, 0);

    CounterSet counters;
    // temp 108, f 4.0 -> sev ~ 1.145 > 1: throttle.
    const auto ctx = makeContext(vf, 4.0, 108.0, &counters);
    EXPECT_DOUBLE_EQ(c.decide(ctx), 3.75);
}

TEST(BoreasController, BoostsWhenHeadroomPredicted)
{
    VFTable vf;
    const GBTRegressor model = syntheticSeverityModel();
    BoreasController c("ML00", &model, deployedFeatureNames(), 0.0, 0);
    CounterSet counters;
    // temp 60 -> sev ~ 0.27 even at +1 step: boost.
    const auto ctx = makeContext(vf, 4.0, 60.0, &counters);
    EXPECT_DOUBLE_EQ(c.decide(ctx), 4.25);
}

TEST(BoreasController, GuardbandOrdersAggressiveness)
{
    VFTable vf;
    const GBTRegressor model = syntheticSeverityModel();
    BoreasController ml00("ML00", &model, deployedFeatureNames(), 0.0, 0);
    BoreasController ml05("ML05", &model, deployedFeatureNames(), 0.05,
                          0);
    BoreasController ml10("ML10", &model, deployedFeatureNames(), 0.10,
                          0);
    CounterSet counters;
    // Pick a temperature where predicted severity sits between the
    // thresholds: sev(T=97) ~ 0.945.
    const auto ctx = makeContext(vf, 4.0, 97.0, &counters);
    const GHz f00 = ml00.decide(ctx);
    const GHz f05 = ml05.decide(ctx);
    const GHz f10 = ml10.decide(ctx);
    EXPECT_GE(f00, f05);
    EXPECT_GE(f05, f10);
    EXPECT_GT(f00, f10); // 0 and 10% guardbands must differ here
}

TEST(BoreasController, PredictSeverityIncreasesWithCandidate)
{
    VFTable vf;
    const GBTRegressor model = syntheticSeverityModel();
    BoreasController c("ML05", &model, deployedFeatureNames(), 0.05, 0);
    CounterSet counters;
    const auto ctx = makeContext(vf, 3.0, 85.0, &counters);
    EXPECT_LT(c.predictSeverity(ctx, 2.0),
              c.predictSeverity(ctx, 5.0));
}

TEST(BoreasControllerDeathTest, RequiresTrainedModel)
{
    GBTRegressor untrained;
    EXPECT_DEATH(BoreasController("ML05", &untrained,
                                  deployedFeatureNames(), 0.05, 0),
                 "trained");
}

TEST(ThermalController, OffsetAppliesToThresholdLookup)
{
    VFTable vf;
    CriticalTempTable t = syntheticTable(vf);
    EXPECT_DOUBLE_EQ(t.thresholdAt(vf, 4.0, 0.0), 76.0);
    EXPECT_DOUBLE_EQ(t.thresholdAt(vf, 4.0, 5.0), 81.0);
    EXPECT_DOUBLE_EQ(t.thresholdAt(vf, 2.0, 10.0), 110.0);
}

TEST(BoreasController, HoldsWhenOnlyNextStepIsUnsafe)
{
    VFTable vf;
    const GBTRegressor model = syntheticSeverityModel();
    BoreasController c("ML00", &model, deployedFeatureNames(), 0.0, 0);
    CounterSet counters;
    // sev(T, f) ~ (T-45)/55 + 0.1(f-4): at T=99, f=4.0 -> 0.98 (safe),
    // f=4.25 -> ~1.01 (unsafe): controller must hold at 4.0.
    const auto ctx = makeContext(vf, 4.0, 99.0, &counters);
    EXPECT_DOUBLE_EQ(c.decide(ctx), 4.0);
}
