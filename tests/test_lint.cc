/**
 * The repo linter's own tests: every rule must fire on its fixture
 * file under tests/lint_fixtures/ and stay silent on clean code
 * (including the src/common/rng and src/common/logging exemptions and
 * the inline allow() markers), plus the repo-level passes — layering
 * DAG, include cycles — and the SARIF/baseline reporting layer.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/baseline.hh"
#include "lint/linter.hh"
#include "lint/sarif.hh"

using boreas::lint::TreeLintOptions;
using boreas::lint::Violation;
using boreas::lint::lintContent;
using boreas::lint::lintPath;
using boreas::lint::lintTree;

namespace
{

std::string
fixtureDir()
{
    return std::string(BOREAS_LINT_FIXTURES);
}

std::vector<Violation>
lintFixture(const std::string &name)
{
    return lintPath(fixtureDir() + "/" + name);
}

int
countRule(const std::vector<Violation> &vs, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(vs.begin(), vs.end(), [&](const Violation &v) {
            return v.rule == rule;
        }));
}

bool
firesOnLine(const std::vector<Violation> &vs, const std::string &rule,
            int line)
{
    return std::any_of(vs.begin(), vs.end(), [&](const Violation &v) {
        return v.rule == rule && v.line == line;
    });
}

/** Materialize a throwaway repo tree for the include-graph pass.
 *  Each test runs as its own ctest process, so the directory is
 *  keyed by test name (and wiped first) to survive parallel runs. */
std::string
writeTree(const std::map<std::string, std::string> &files)
{
    namespace fs = std::filesystem;
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string key = std::string(info->test_suite_name()) + "_" +
        info->name();
    const fs::path root =
        fs::path(::testing::TempDir()) / ("boreas_lint_" + key);
    fs::remove_all(root);
    for (const auto &[rel, text] : files) {
        const fs::path p = root / rel;
        fs::create_directories(p.parent_path());
        std::ofstream(p) << text;
    }
    return root.string();
}

std::vector<Violation>
lintWholeTree(const std::string &root)
{
    TreeLintOptions opts;
    opts.repoRoot = root;
    std::vector<std::string> roots;
    for (const char *sub : {"src", "bench", "tests", "tools"}) {
        if (std::filesystem::is_directory(root + "/" + sub))
            roots.push_back(root + "/" + sub);
    }
    return lintTree(roots, opts).violations;
}

} // namespace

TEST(Lint, RawRandomFires)
{
    const auto vs = lintFixture("bad_random.cc");
    EXPECT_EQ(countRule(vs, "raw-random"), 4) << "include <random>, "
        "random_device, mt19937 and rand() should each fire";
    for (const auto &v : vs)
        EXPECT_EQ(v.rule, "raw-random");
}

TEST(Lint, RawRandomExemptInRngModule)
{
    const std::string body = "#include <random>\n"
                             "int f() { return rand(); }\n";
    EXPECT_TRUE(lintContent("src/common/rng.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/ml/kmeans.cc", body),
                        "raw-random"), 2);
}

TEST(Lint, UnorderedContainerFiresAndAllowSuppresses)
{
    const auto vs = lintFixture("bad_unordered.cc");
    EXPECT_EQ(countRule(vs, "unordered-container"), 1)
        << "the declaration fires; the allow() line must not";
}

TEST(Lint, DirectStdioFires)
{
    const auto vs = lintFixture("bad_stdio.cc");
    EXPECT_EQ(countRule(vs, "direct-stdio"), 5)
        << "cout, cerr, printf, puts and fprintf(stderr each fire; "
        "comment/string mentions must not";
}

TEST(Lint, DirectStdioExemptInLoggingModule)
{
    const std::string body = "void f() { std::cerr << 1; }\n";
    EXPECT_TRUE(lintContent("src/common/logging.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/thermal/thermal_grid.cc", body),
                        "direct-stdio"), 1);
}

TEST(Lint, RawFileOutputFires)
{
    const auto vs = lintFixture("bad_file_output.cc");
    EXPECT_EQ(countRule(vs, "raw-file-output"), 4)
        << "ofstream, fstream, fopen and freopen each fire; the "
        "allow() line and comment/string mentions must not";
}

TEST(Lint, RawFileOutputExemptInExportSink)
{
    const std::string body = "#include <fstream>\n"
                             "std::ofstream out(\"BENCH_x.json\");\n";
    EXPECT_TRUE(lintContent("src/obs/export.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/boreas/pipeline.cc", body),
                        "raw-file-output"), 1);
}

TEST(Lint, RawFileOutputExemptInTraceSerializer)
{
    // The boreas-trace-v1 serializer is the second designated file
    // sink (workload/trace_io); everything else in src/workload still
    // fires.
    const std::string body = "#include <fstream>\n"
                             "std::ofstream out(\"run.trace\");\n";
    EXPECT_TRUE(lintContent("src/workload/trace_io.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/workload/registry.cc", body),
                        "raw-file-output"), 1);
}

TEST(Lint, WorkloadSpecConstructionFires)
{
    const auto vs = lintFixture("bad_workload_spec.cc");
    EXPECT_EQ(countRule(vs, "workload-spec-construction"), 4)
        << "declaration, braced temporary, make_unique and owning "
        "vector each fire; references, pointers, the allow() line and "
        "comment/string mentions must not";
}

TEST(Lint, WorkloadSpecConstructionExemptInWorkloadModule)
{
    const std::string body = "#include \"workload/workload.hh\"\n"
                             "void f() { boreas::WorkloadSpec spec; }\n";
    EXPECT_TRUE(lintContent("src/workload/spec2006.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/control/controller.cc", body),
                        "workload-spec-construction"), 1);
}

TEST(Lint, RawNewDeleteFires)
{
    const auto vs = lintFixture("bad_new_delete.cc");
    EXPECT_EQ(countRule(vs, "raw-new-delete"), 4)
        << "new, new[], delete and delete[] each fire; '= delete' "
        "declarations must not";
}

TEST(Lint, FlatGbtPredictFires)
{
    const auto vs = lintFixture("bad_gbt_predict.cc");
    EXPECT_EQ(countRule(vs, "flat-gbt-predict"), 2)
        << "the GBTTree mention and the trees()[] walk each fire; "
        "the allow()ed trees().at() must not";
}

TEST(Lint, FlatGbtPredictExemptInMlModule)
{
    // The ML library implements both prediction paths; everywhere
    // else in src-like zones the rule points callers at the flat
    // engine. Tests and benches (reference/differential users by
    // design) are outside the rule's zone entirely.
    const std::string body =
        "#include \"ml/gbt.hh\"\n"
        "double f(const boreas::GBTTree &t, const double *x)\n"
        "{ return t.predict(x); }\n";
    EXPECT_TRUE(lintContent("src/ml/gbt_flat.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/control/controller.cc", body),
                        "flat-gbt-predict"), 1);
    EXPECT_EQ(countRule(lintContent("tests/test_gbt.cc", body),
                        "flat-gbt-predict"), 0);
    EXPECT_EQ(countRule(lintContent("bench/micro_latency.cc", body),
                        "flat-gbt-predict"), 0);
}

TEST(Lint, HeaderMissingPragmaOnceFires)
{
    const auto vs = lintFixture("bad_header.hh");
    EXPECT_EQ(countRule(vs, "header-guard"), 1);
    EXPECT_EQ(countRule(vs, "header-hygiene"), 1)
        << "'using namespace' at header scope";
}

TEST(Lint, LegacyGuardNextToPragmaOnceFires)
{
    const auto vs = lintFixture("bad_legacy_guard.hh");
    EXPECT_EQ(countRule(vs, "header-guard"), 1);
    EXPECT_TRUE(firesOnLine(vs, "header-guard", 4));
}

TEST(Lint, IncludeStyleFires)
{
    const auto vs = lintFixture("bad_include.cc");
    EXPECT_EQ(countRule(vs, "include-style"), 3)
        << "'..' path, <boreas/...> form and .cc include each fire";
}

TEST(Lint, CleanFixturePasses)
{
    const auto vs = lintFixture("clean.hh");
    for (const auto &v : vs)
        ADD_FAILURE() << boreas::lint::format(v);
}

TEST(Lint, CleanSpectralIdiomsPass)
{
    // The spectral fast path introduced function multi-versioning
    // attributes, endpoint-precision member templates and generic
    // lambdas; none of them may trip a rule.
    const auto vs = lintFixture("clean_spectral.hh");
    for (const auto &v : vs)
        ADD_FAILURE() << boreas::lint::format(v);
}

TEST(Lint, CommentedAndQuotedCodeIsIgnored)
{
    const std::string body =
        "#pragma once\n"
        "// int *p = new int; delete p; std::cout << rand();\n"
        "/* std::unordered_map<int,int> m; */\n"
        "inline const char *s = \"new delete printf( std::cout\";\n";
    EXPECT_TRUE(lintContent("src/common/types.hh", body).empty());
}

TEST(Lint, DigitSeparatorsAreNotCharLiterals)
{
    // 1'000'000 must not open a char literal and swallow real code.
    const std::string body = "#pragma once\n"
                             "inline long x = 1'000'000;\n"
                             "inline int *p = new int;\n";
    EXPECT_EQ(countRule(lintContent("src/common/types.hh", body),
                        "raw-new-delete"), 1);
}

TEST(Lint, DeleteThisFires)
{
    const std::string body = "#pragma once\n"
                             "struct S { void f() { delete this; } };\n";
    EXPECT_EQ(countRule(lintContent("src/common/types.hh", body),
                        "raw-new-delete"), 1);
}

TEST(Lint, WholeSrcTreeIsClean)
{
    // The acceptance gate, duplicated here so a plain `ctest -R Lint`
    // catches regressions even without the boreas_lint binary check.
    const auto vs = lintPath(std::string(BOREAS_SRC_DIR));
    for (const auto &v : vs)
        ADD_FAILURE() << boreas::lint::format(v);
}

// ------------------------------------------------------------------ //
// Lexer regressions
// ------------------------------------------------------------------ //

TEST(LintLexer, RawStringContentsNeverFire)
{
    // The fixture packs rule-worthy text (stdio, rand(), new, an
    // include) inside raw strings; only the genuine new/delete at the
    // bottom may fire.
    const auto vs = lintFixture("raw_string.cc");
    EXPECT_EQ(countRule(vs, "raw-new-delete"), 2);
    EXPECT_EQ(static_cast<int>(vs.size()), 2)
        << "raw-string contents or the BAD_R\"y\" false prefix "
           "leaked into the scan";
    EXPECT_TRUE(firesOnLine(vs, "raw-new-delete", 28));
    EXPECT_TRUE(firesOnLine(vs, "raw-new-delete", 34));
}

TEST(LintLexer, FalseRawStringPrefixDoesNotSwallowFile)
{
    // Regression: the old scanner treated any 'R' before '"' as a raw
    // string and searched for '(' without bound, so everything after
    // a macro name ending in R went dark.
    const std::string body =
        "#define BAD_R(s) s\n"
        "inline const char *x = BAD_R\"y\";\n"
        "inline int *p = new int;\n";
    EXPECT_EQ(countRule(lintContent("src/common/types.hh", body),
                        "raw-new-delete"), 1);
}

TEST(LintLexer, UnterminatedRawStringBlanksToEof)
{
    const std::string body =
        "#pragma once\n"
        "inline const char *x = R\"(no close\n"
        "int *p = new int;\n";
    EXPECT_TRUE(lintContent("src/common/types.hh", body).empty());
}

// ------------------------------------------------------------------ //
// File-scope suppression
// ------------------------------------------------------------------ //

TEST(LintAllow, AllowFileSuppressesRuleFileWide)
{
    const std::string body =
        "// boreas-lint: allow-file(direct-stdio)\n"
        "void f() { std::cout << 1; }\n"
        "void g() { std::cerr << 2; }\n";
    EXPECT_TRUE(lintContent("src/common/table.cc", body).empty());
}

TEST(LintAllow, AllowFileOnlySuppressesNamedRule)
{
    const std::string body =
        "// boreas-lint: allow-file(direct-stdio)\n"
        "void f() { std::cout << 1; delete this; }\n";
    const auto vs = lintContent("src/common/table.cc", body);
    EXPECT_EQ(countRule(vs, "direct-stdio"), 0);
    EXPECT_EQ(countRule(vs, "raw-new-delete"), 1);
}

TEST(LintAllow, AllowFileIgnoredAfterFirstCodeLine)
{
    // The marker is only honored in the file header (the leading run
    // of comment/blank lines); mid-file markers must not suppress.
    const std::string body =
        "void f() { std::cout << 1; }\n"
        "// boreas-lint: allow-file(direct-stdio)\n"
        "void g() { std::cerr << 2; }\n";
    EXPECT_EQ(countRule(lintContent("src/common/table.cc", body),
                        "direct-stdio"), 2);
}

// ------------------------------------------------------------------ //
// Concurrency / determinism rules
// ------------------------------------------------------------------ //

TEST(LintParallel, CaptureMutationTruePositives)
{
    const auto vs = lintFixture("bad_parallel_capture.cc");
    EXPECT_EQ(countRule(vs, "parallel-fp-reduction"), 2)
        << "+= into a capture and x = x-referencing assignment";
    EXPECT_EQ(countRule(vs, "parallel-capture-mutation"), 1)
        << "++ on a captured counter";
    EXPECT_TRUE(firesOnLine(vs, "parallel-fp-reduction", 17));
    EXPECT_TRUE(firesOnLine(vs, "parallel-capture-mutation", 28));
    EXPECT_TRUE(firesOnLine(vs, "parallel-fp-reduction", 38));
}

TEST(LintParallel, SanctionedIdiomsDoNotFire)
{
    // Slot writes, body locals, atomics and by-value captures are the
    // repo's sanctioned parallel patterns; none may fire.
    const auto vs = lintFixture("clean_parallel.cc");
    for (const auto &v : vs)
        ADD_FAILURE() << boreas::lint::format(v);
}

TEST(LintConcurrency, MutableGlobalStateFires)
{
    const std::string body = "int counter = 0;\n";
    EXPECT_EQ(countRule(lintContent("src/ml/gbt.cc", body),
                        "mutable-global-state"), 1);
    // The pool singleton home is allowlisted.
    EXPECT_TRUE(lintContent("src/common/parallel.cc", body).empty());
    // Tests/bench/tools zones keep their freedom.
    EXPECT_TRUE(lintContent("tests/test_foo.cc", body).empty());
}

TEST(LintConcurrency, ConstAndSynchronizedStatePasses)
{
    const std::string body =
        "const int limit = 3;\n"
        "constexpr double kPi = 3.14;\n"
        "std::mutex m;\n"
        "std::atomic<int> hits{0};\n"
        "static std::once_flag once;\n";
    EXPECT_TRUE(lintContent("src/ml/gbt.cc", body).empty());
}

TEST(LintConcurrency, WallClockFires)
{
    const std::string body =
        "void f() { auto t = std::chrono::steady_clock::now(); }\n";
    EXPECT_EQ(countRule(lintContent("src/thermal/thermal_grid.cc",
                                    body), "wall-clock"), 1);
    EXPECT_EQ(countRule(lintContent("tools/probe.cc", body),
                        "wall-clock"), 1);
    // obs owns timing; bench exists to measure.
    EXPECT_TRUE(lintContent("src/obs/export.cc", body).empty());
    EXPECT_TRUE(lintContent("bench/bench_solver.cc", body).empty());
}

// ------------------------------------------------------------------ //
// Include-graph pass (layering DAG + cycles)
// ------------------------------------------------------------------ //

TEST(LintGraph, LayeringViolationAcrossSrcModules)
{
    // obs is declared std-only: an obs -> workload include is a DAG
    // breach even though both are src modules.
    const auto root = writeTree({
        {"src/obs/bad.cc", "#include \"workload/registry.hh\"\n"},
        {"src/workload/registry.hh", "#pragma once\n"},
    });
    const auto vs = lintWholeTree(root);
    EXPECT_EQ(countRule(vs, "layering"), 1);
    EXPECT_TRUE(firesOnLine(vs, "layering", 1));
}

TEST(LintGraph, SrcMayNeverIncludeBenchOrTests)
{
    const auto root = writeTree({
        {"src/common/helper.cc", "#include \"bench_util.hh\"\n"},
        {"bench/bench_util.hh", "#pragma once\n"},
    });
    EXPECT_EQ(countRule(lintWholeTree(root), "layering"), 1);
}

TEST(LintGraph, DeclaredEdgesAreAllowed)
{
    // common -> obs is the one sanctioned upward edge (pool
    // telemetry); sensors -> thermal is a declared physics edge.
    const auto root = writeTree({
        {"src/common/parallel.cc", "#include \"obs/metrics.hh\"\n"},
        {"src/obs/metrics.hh", "#pragma once\n"},
        {"src/sensors/sensor.cc",
         "#include \"thermal/thermal_grid.hh\"\n"},
        {"src/thermal/thermal_grid.hh",
         "#pragma once\n#include \"floorplan/floorplan.hh\"\n"},
        {"src/floorplan/floorplan.hh", "#pragma once\n"},
    });
    const auto vs = lintWholeTree(root);
    EXPECT_EQ(countRule(vs, "layering"), 0)
        << (vs.empty() ? "" : boreas::lint::format(vs.front()));
}

TEST(LintGraph, IncludeCycleDetected)
{
    const auto root = writeTree({
        {"src/common/a.hh", "#pragma once\n#include \"common/b.hh\"\n"},
        {"src/common/b.hh", "#pragma once\n#include \"common/a.hh\"\n"},
    });
    const auto vs = lintWholeTree(root);
    EXPECT_EQ(countRule(vs, "include-cycle"), 1)
        << "a two-header cycle reports exactly once";
}

TEST(LintGraph, AcyclicChainHasNoCycleFindings)
{
    const auto root = writeTree({
        {"src/common/a.hh", "#pragma once\n#include \"common/b.hh\"\n"},
        {"src/common/b.hh", "#pragma once\n#include \"common/c.hh\"\n"},
        {"src/common/c.hh", "#pragma once\n"},
    });
    EXPECT_EQ(countRule(lintWholeTree(root), "include-cycle"), 0);
}

// ------------------------------------------------------------------ //
// SARIF + baseline reporting
// ------------------------------------------------------------------ //

TEST(LintSarif, MatchesGoldenOutput)
{
    // Byte-exact against the checked-in golden log: SARIF output is
    // deterministic so CI uploads never churn.
    const std::vector<Violation> vs = {
        {"src/thermal/thermal_grid.cc", 42, "unordered-container",
         "example \"quoted\" finding"},
        {"src/obs/metrics.cc", 7, "layering",
         "include of src/workload/registry.hh crosses the layering "
         "DAG"},
    };
    std::ifstream in(fixtureDir() + "/golden.sarif",
                     std::ios::binary);
    ASSERT_TRUE(in) << "missing golden.sarif fixture";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(boreas::lint::toSarif(vs), golden.str());
}

TEST(LintSarif, EmptyRunIsWellFormed)
{
    const std::string sarif = boreas::lint::toSarif({});
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

TEST(LintSarif, EscapesControlAndQuoteCharacters)
{
    const std::vector<Violation> vs = {
        {"src/a.cc", 1, "direct-stdio", "say \"hi\"\tnow\n"}};
    const std::string sarif = boreas::lint::toSarif(vs);
    EXPECT_NE(sarif.find("say \\\"hi\\\"\\tnow\\n"),
              std::string::npos);
}

TEST(LintBaseline, SuppressesListedRuleFilePairs)
{
    const auto base = boreas::lint::parseBaseline(
        "# acknowledged debt\n"
        "unordered-container src/foo.cc\n");
    const std::vector<Violation> vs = {
        {"src/foo.cc", 10, "unordered-container", "m"},
        {"src/foo.cc", 11, "raw-random", "m"},
        {"src/bar.cc", 12, "unordered-container", "m"},
    };
    const auto left = boreas::lint::filterBaselined(vs, base);
    ASSERT_EQ(left.size(), 2u);
    EXPECT_EQ(left[0].rule, "raw-random");
    EXPECT_EQ(left[1].file, "src/bar.cc");
}

TEST(LintBaseline, WriteParseRoundTrip)
{
    const std::vector<Violation> vs = {
        {"src/foo.cc", 10, "unordered-container", "m"},
        {"src/bar.cc", 3, "wall-clock", "m"},
    };
    const auto rt = boreas::lint::parseBaseline(
        boreas::lint::writeBaseline(vs));
    EXPECT_TRUE(boreas::lint::filterBaselined(vs, rt).empty());
}

// ------------------------------------------------------------------ //
// The acceptance gate: the whole repo, full pipeline, empty baseline
// ------------------------------------------------------------------ //

TEST(LintRepo, WholeRepoPassesFullPipeline)
{
    TreeLintOptions opts;
    opts.repoRoot = BOREAS_REPO_DIR;
    const std::string root(BOREAS_REPO_DIR);
    const auto res =
        lintTree({root + "/src", root + "/bench", root + "/tools",
                  root + "/tests"},
                 opts);
    for (const auto &v : res.violations)
        ADD_FAILURE() << boreas::lint::format(v);
    EXPECT_GT(res.filesScanned, 100)
        << "the tree walk silently lost most of the repo";
}
