/**
 * The repo linter's own tests: every rule must fire on its fixture
 * file under tests/lint_fixtures/ and stay silent on clean code
 * (including the src/common/rng and src/common/logging exemptions and
 * the inline allow() marker).
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/linter.hh"

using boreas::lint::Violation;
using boreas::lint::lintContent;
using boreas::lint::lintPath;

namespace
{

std::string
fixtureDir()
{
    return std::string(BOREAS_LINT_FIXTURES);
}

std::vector<Violation>
lintFixture(const std::string &name)
{
    return lintPath(fixtureDir() + "/" + name);
}

int
countRule(const std::vector<Violation> &vs, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(vs.begin(), vs.end(), [&](const Violation &v) {
            return v.rule == rule;
        }));
}

bool
firesOnLine(const std::vector<Violation> &vs, const std::string &rule,
            int line)
{
    return std::any_of(vs.begin(), vs.end(), [&](const Violation &v) {
        return v.rule == rule && v.line == line;
    });
}

} // namespace

TEST(Lint, RawRandomFires)
{
    const auto vs = lintFixture("bad_random.cc");
    EXPECT_EQ(countRule(vs, "raw-random"), 4) << "include <random>, "
        "random_device, mt19937 and rand() should each fire";
    for (const auto &v : vs)
        EXPECT_EQ(v.rule, "raw-random");
}

TEST(Lint, RawRandomExemptInRngModule)
{
    const std::string body = "#include <random>\n"
                             "int x = rand();\n";
    EXPECT_TRUE(lintContent("src/common/rng.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/ml/kmeans.cc", body),
                        "raw-random"), 2);
}

TEST(Lint, UnorderedContainerFiresAndAllowSuppresses)
{
    const auto vs = lintFixture("bad_unordered.cc");
    EXPECT_EQ(countRule(vs, "unordered-container"), 1)
        << "the declaration fires; the allow() line must not";
}

TEST(Lint, DirectStdioFires)
{
    const auto vs = lintFixture("bad_stdio.cc");
    EXPECT_EQ(countRule(vs, "direct-stdio"), 5)
        << "cout, cerr, printf, puts and fprintf(stderr each fire; "
        "comment/string mentions must not";
}

TEST(Lint, DirectStdioExemptInLoggingModule)
{
    const std::string body = "void f() { std::cerr << 1; }\n";
    EXPECT_TRUE(lintContent("src/common/logging.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/thermal/thermal_grid.cc", body),
                        "direct-stdio"), 1);
}

TEST(Lint, RawFileOutputFires)
{
    const auto vs = lintFixture("bad_file_output.cc");
    EXPECT_EQ(countRule(vs, "raw-file-output"), 4)
        << "ofstream, fstream, fopen and freopen each fire; the "
        "allow() line and comment/string mentions must not";
}

TEST(Lint, RawFileOutputExemptInExportSink)
{
    const std::string body = "#include <fstream>\n"
                             "std::ofstream out(\"BENCH_x.json\");\n";
    EXPECT_TRUE(lintContent("src/obs/export.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/boreas/pipeline.cc", body),
                        "raw-file-output"), 1);
}

TEST(Lint, RawFileOutputExemptInTraceSerializer)
{
    // The boreas-trace-v1 serializer is the second designated file
    // sink (workload/trace_io); everything else in src/workload still
    // fires.
    const std::string body = "#include <fstream>\n"
                             "std::ofstream out(\"run.trace\");\n";
    EXPECT_TRUE(lintContent("src/workload/trace_io.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/workload/registry.cc", body),
                        "raw-file-output"), 1);
}

TEST(Lint, WorkloadSpecConstructionFires)
{
    const auto vs = lintFixture("bad_workload_spec.cc");
    EXPECT_EQ(countRule(vs, "workload-spec-construction"), 4)
        << "declaration, braced temporary, make_unique and owning "
        "vector each fire; references, pointers, the allow() line and "
        "comment/string mentions must not";
}

TEST(Lint, WorkloadSpecConstructionExemptInWorkloadModule)
{
    const std::string body = "#include \"workload/workload.hh\"\n"
                             "boreas::WorkloadSpec spec;\n";
    EXPECT_TRUE(lintContent("src/workload/spec2006.cc", body).empty());
    EXPECT_EQ(countRule(lintContent("src/control/controller.cc", body),
                        "workload-spec-construction"), 1);
}

TEST(Lint, RawNewDeleteFires)
{
    const auto vs = lintFixture("bad_new_delete.cc");
    EXPECT_EQ(countRule(vs, "raw-new-delete"), 4)
        << "new, new[], delete and delete[] each fire; '= delete' "
        "declarations must not";
}

TEST(Lint, HeaderMissingPragmaOnceFires)
{
    const auto vs = lintFixture("bad_header.hh");
    EXPECT_EQ(countRule(vs, "header-guard"), 1);
    EXPECT_EQ(countRule(vs, "header-hygiene"), 1)
        << "'using namespace' at header scope";
}

TEST(Lint, LegacyGuardNextToPragmaOnceFires)
{
    const auto vs = lintFixture("bad_legacy_guard.hh");
    EXPECT_EQ(countRule(vs, "header-guard"), 1);
    EXPECT_TRUE(firesOnLine(vs, "header-guard", 4));
}

TEST(Lint, IncludeStyleFires)
{
    const auto vs = lintFixture("bad_include.cc");
    EXPECT_EQ(countRule(vs, "include-style"), 3)
        << "'..' path, <boreas/...> form and .cc include each fire";
}

TEST(Lint, CleanFixturePasses)
{
    const auto vs = lintFixture("clean.hh");
    for (const auto &v : vs)
        ADD_FAILURE() << boreas::lint::format(v);
}

TEST(Lint, CleanSpectralIdiomsPass)
{
    // The spectral fast path introduced function multi-versioning
    // attributes, endpoint-precision member templates and generic
    // lambdas; none of them may trip a rule.
    const auto vs = lintFixture("clean_spectral.hh");
    for (const auto &v : vs)
        ADD_FAILURE() << boreas::lint::format(v);
}

TEST(Lint, CommentedAndQuotedCodeIsIgnored)
{
    const std::string body =
        "#pragma once\n"
        "// int *p = new int; delete p; std::cout << rand();\n"
        "/* std::unordered_map<int,int> m; */\n"
        "inline const char *s = \"new delete printf( std::cout\";\n";
    EXPECT_TRUE(lintContent("src/common/types.hh", body).empty());
}

TEST(Lint, DigitSeparatorsAreNotCharLiterals)
{
    // 1'000'000 must not open a char literal and swallow real code.
    const std::string body = "#pragma once\n"
                             "inline long x = 1'000'000;\n"
                             "inline int *p = new int;\n";
    EXPECT_EQ(countRule(lintContent("src/common/types.hh", body),
                        "raw-new-delete"), 1);
}

TEST(Lint, DeleteThisFires)
{
    const std::string body = "#pragma once\n"
                             "struct S { void f() { delete this; } };\n";
    EXPECT_EQ(countRule(lintContent("src/common/types.hh", body),
                        "raw-new-delete"), 1);
}

TEST(Lint, WholeSrcTreeIsClean)
{
    // The acceptance gate, duplicated here so a plain `ctest -R Lint`
    // catches regressions even without the boreas_lint binary check.
    const auto vs = lintPath(std::string(BOREAS_SRC_DIR));
    for (const auto &v : vs)
        ADD_FAILURE() << boreas::lint::format(v);
}
