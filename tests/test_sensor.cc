/** @file Unit tests for thermal sensors and placement. */

#include <gtest/gtest.h>

#include "floorplan/skylake.hh"
#include "sensors/placement.hh"
#include "sensors/sensor.hh"
#include "thermal/thermal_grid.hh"

using namespace boreas;

namespace
{

struct SensorFixture : public ::testing::Test
{
    SensorFixture()
        : fp(buildSkylakeFloorplan()),
          grid(fp, [] {
              ThermalParams p;
              p.nx = 16;
              p.ny = 16;
              return p;
          }()),
          rng(1)
    {
        alu = fp.findUnit(UnitKind::IntALU, 0);
        site = fp.unit(alu).rect.center();
    }

    /** Heat the ALU and advance one telemetry step. */
    void
    heatStep(std::vector<ThermalSensor *> sensors, Watts watts)
    {
        std::vector<Watts> power(fp.numUnits(), 0.0);
        power[alu] = watts;
        grid.setUnitPower(power);
        grid.step(80e-6);
        for (auto *s : sensors)
            s->sample(grid, 80e-6, rng);
    }

    Floorplan fp;
    ThermalGrid grid;
    Rng rng;
    int alu = -1;
    Point site;
};

} // namespace

TEST_F(SensorFixture, ZeroDelayTracksTrueTemperature)
{
    SensorParams params;
    params.delaySteps = 0;
    ThermalSensor s("s", site, params);
    for (int i = 0; i < 30; ++i) {
        heatStep({&s}, 5.0);
        EXPECT_DOUBLE_EQ(s.reading(), s.lastTrueTemp());
    }
    EXPECT_GT(s.reading(), kAmbient + 1.0);
}

TEST_F(SensorFixture, DelayedReadingLagsByExactlyDelaySteps)
{
    SensorParams delayed;
    delayed.delaySteps = 5;
    ThermalSensor lag("lag", site, delayed);
    ThermalSensor now("now", site, SensorParams{.delaySteps = 0});

    std::vector<Celsius> history;
    for (int i = 0; i < 40; ++i) {
        heatStep({&lag, &now}, 6.0);
        history.push_back(now.reading());
        if (i >= 5) {
            EXPECT_DOUBLE_EQ(lag.reading(), history[i - 5]);
        }
    }
    // While heating, the delayed reading is strictly behind (cooler).
    EXPECT_LT(lag.reading(), now.reading());
}

// Regression (sensor warm-up under-delay): a freshly constructed
// sensor must honor its full delay from the first sample on. The old
// code left the prefilled history marked empty, so reading() clamped
// its look-back to the samples taken so far and a 960 µs-delay sensor
// (12 telemetry steps at 80 µs) returned the *current* temperature on
// step one.
TEST_F(SensorFixture, FreshSensorNeverUnderDelays)
{
    SensorParams params;
    params.delaySteps = 12; // 960 µs at the 80 µs telemetry step
    ThermalSensor lag("lag", site, params);
    ThermalSensor now("now", site, SensorParams{.delaySteps = 0});

    std::vector<Celsius> history;
    for (int i = 0; i < 40; ++i) {
        heatStep({&lag, &now}, 6.0);
        history.push_back(now.reading());
        if (i < 12) {
            // Nothing younger than delaySteps may surface: the sensor
            // still reports its power-on (ambient) history.
            EXPECT_DOUBLE_EQ(lag.reading(), kAmbient) << "step " << i;
        } else {
            EXPECT_DOUBLE_EQ(lag.reading(), history[i - 12])
                << "step " << i;
        }
        // The reading is never newer than the delayed sample (the
        // true temperature rises monotonically under constant power).
        EXPECT_LE(lag.reading(),
                  i >= 12 ? history[i - 12] : kAmbient);
    }
}

// Construction and reset(kAmbient) are now the same state.
TEST_F(SensorFixture, FreshSensorMatchesAmbientReset)
{
    SensorParams params;
    params.delaySteps = 10;
    ThermalSensor fresh("fresh", site, params);
    ThermalSensor resetted("reset", site, params);
    resetted.reset(kAmbient);
    Rng rng_a(7), rng_b(7);
    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[alu] = 6.0;
    grid.setUnitPower(power);
    for (int i = 0; i < 25; ++i) {
        grid.step(80e-6);
        fresh.sample(grid, 80e-6, rng_a);
        resetted.sample(grid, 80e-6, rng_b);
        EXPECT_DOUBLE_EQ(fresh.reading(), resetted.reading());
    }
}

TEST_F(SensorFixture, FilterSmoothsSteps)
{
    SensorParams filtered;
    filtered.delaySteps = 0;
    filtered.filterTau = 500e-6;
    ThermalSensor slow("slow", site, filtered);
    ThermalSensor fast("fast", site, SensorParams{.delaySteps = 0});
    for (int i = 0; i < 10; ++i)
        heatStep({&slow, &fast}, 8.0);
    EXPECT_LT(slow.reading(), fast.reading());
    EXPECT_GT(slow.reading(), kAmbient);
}

TEST_F(SensorFixture, NoiseIsDeterministicPerRng)
{
    SensorParams noisy;
    noisy.delaySteps = 0;
    noisy.noiseSigma = 0.5;
    ThermalSensor a("a", site, noisy);
    ThermalSensor b("b", site, noisy);
    Rng rng_a(3), rng_b(3);
    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[alu] = 5.0;
    grid.setUnitPower(power);
    for (int i = 0; i < 10; ++i) {
        grid.step(80e-6);
        a.sample(grid, 80e-6, rng_a);
        b.sample(grid, 80e-6, rng_b);
        EXPECT_DOUBLE_EQ(a.reading(), b.reading());
    }
}

TEST_F(SensorFixture, ResetPrefillsHistory)
{
    SensorParams params;
    params.delaySteps = 8;
    ThermalSensor s("s", site, params);
    s.reset(70.0);
    EXPECT_DOUBLE_EQ(s.reading(), 70.0);
    heatStep({&s}, 0.0);
    // Still reading the pre-filled history for delaySteps samples.
    EXPECT_DOUBLE_EQ(s.reading(), 70.0);
}

TEST_F(SensorFixture, BankSamplesAllSensors)
{
    SensorBank bank;
    bank.addSensor("a", site, SensorParams{.delaySteps = 0});
    bank.addSensor("b", {fp.dieWidth() * 0.9, fp.dieHeight() * 0.9},
                   SensorParams{.delaySteps = 0});
    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[alu] = 6.0;
    grid.setUnitPower(power);
    for (int i = 0; i < 30; ++i) {
        grid.step(80e-6);
        bank.sampleAll(grid, 80e-6, rng);
    }
    const auto readings = bank.readings();
    ASSERT_EQ(readings.size(), 2u);
    // Sensor on the hot unit reads hotter than the far-corner sensor.
    EXPECT_GT(readings[0], readings[1] + 2.0);
    bank.resetAll(50.0);
    for (Celsius r : bank.readings())
        EXPECT_DOUBLE_EQ(r, 50.0);
}

TEST(Placement, CanonicalSitesLieOnTheirUnits)
{
    const Floorplan fp = buildSkylakeFloorplan();
    const auto sites = canonicalSensorSites(fp, 0);
    ASSERT_EQ(sites.size(), 7u);
    // tsens03 is the ALU sensor (the paper's best site).
    const auto &alu = fp.unit(fp.findUnit(UnitKind::IntALU, 0)).rect;
    EXPECT_TRUE(alu.contains(sites[kBestSensorIndex]));
    // All sites are on the die.
    for (const auto &p : sites) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LT(p.x, fp.dieWidth());
        EXPECT_GE(p.y, 0.0);
        EXPECT_LT(p.y, fp.dieHeight());
    }
}

TEST(Placement, KmeansRecoversSeparatedClusters)
{
    Rng rng(5);
    std::vector<Point> sites;
    // Two tight clusters far apart.
    for (int i = 0; i < 50; ++i) {
        sites.push_back({1e-3 + rng.uniform(-1e-5, 1e-5),
                         1e-3 + rng.uniform(-1e-5, 1e-5)});
        sites.push_back({6e-3 + rng.uniform(-1e-5, 1e-5),
                         6e-3 + rng.uniform(-1e-5, 1e-5)});
    }
    const auto centers = kmeansPlacement(sites, 2, rng);
    ASSERT_EQ(centers.size(), 2u);
    const bool a_low = centers[0].x < 3e-3;
    const Point &low = a_low ? centers[0] : centers[1];
    const Point &high = a_low ? centers[1] : centers[0];
    EXPECT_NEAR(low.x, 1e-3, 5e-5);
    EXPECT_NEAR(low.y, 1e-3, 5e-5);
    EXPECT_NEAR(high.x, 6e-3, 5e-5);
    EXPECT_NEAR(high.y, 6e-3, 5e-5);
}

TEST(Placement, KmeansHandlesKEqualsN)
{
    Rng rng(1);
    std::vector<Point> sites{{1e-3, 1e-3}, {2e-3, 2e-3}, {3e-3, 3e-3}};
    const auto centers = kmeansPlacement(sites, 3, rng);
    EXPECT_EQ(centers.size(), 3u);
}

TEST(PlacementDeathTest, KmeansRejectsTooFewSites)
{
    Rng rng(1);
    std::vector<Point> sites{{1e-3, 1e-3}};
    EXPECT_DEATH(kmeansPlacement(sites, 3, rng), "at least k");
}
