/** @file Cross-module property tests: invariants that must hold across
 *  parameter sweeps rather than at hand-picked points. */

#include <gtest/gtest.h>

#include <cmath>

#include "boreas/dataset_builder.hh"
#include "common/rng.hh"
#include "hotspot/severity.hh"
#include "ml/gbt.hh"
#include "power/vf_table.hh"
#include "test_util.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

// ---------------------------------------------------------------------
// Severity metric properties.
// ---------------------------------------------------------------------

class SeverityContour : public ::testing::TestWithParam<double>
{
};

TEST_P(SeverityContour, CriticalCurveIsTheUnitContour)
{
    // By construction, severity(T_crit(M), M) == 1 for every MLTD —
    // the critical-temperature curve IS the severity-1.0 contour.
    const double mltd = GetParam();
    SeverityModel model;
    const Celsius t_crit = model.criticalTemp(mltd);
    EXPECT_NEAR(model.severity(t_crit, mltd), 1.0, 1e-12);
    // Just below/above the contour falls on the right side.
    EXPECT_LT(model.severity(t_crit - 1.0, mltd), 1.0);
    EXPECT_GT(model.severity(t_crit + 1.0, mltd), 1.0);
}

INSTANTIATE_TEST_SUITE_P(MltdSweep, SeverityContour,
                         ::testing::Values(0.0, 5.0, 12.5, 20.0, 27.0,
                                           35.0, 40.0, 55.0));

TEST(SeverityProperties, MltdInvariantToUniformShift)
{
    // MLTD is a difference field: adding a constant to every cell
    // leaves it unchanged.
    SeverityModel model;
    Rng rng(3);
    const int nx = 12, ny = 12;
    std::vector<Celsius> temps(nx * ny);
    for (auto &t : temps)
        t = rng.uniform(50.0, 90.0);
    std::vector<Celsius> shifted = temps;
    for (auto &t : shifted)
        t += 7.5;
    const auto a = model.mltdField(temps, nx, ny, 0.5e-3);
    const auto b = model.mltdField(shifted, nx, ny, 0.5e-3);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(SeverityProperties, MltdNonNegativeAndBoundedByRange)
{
    SeverityModel model;
    Rng rng(5);
    const int nx = 16, ny = 16;
    std::vector<Celsius> temps(nx * ny);
    Celsius lo = 1e9, hi = -1e9;
    for (auto &t : temps) {
        t = rng.uniform(45.0, 110.0);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
    }
    for (Celsius m : model.mltdField(temps, nx, ny, 0.5e-3)) {
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, hi - lo + 1e-9);
    }
}

TEST(SeverityProperties, WiderRadiusNeverDecreasesMltd)
{
    // A larger neighborhood can only expose colder cells.
    Rng rng(7);
    const int nx = 16, ny = 16;
    std::vector<Celsius> temps(nx * ny);
    for (auto &t : temps)
        t = rng.uniform(50.0, 100.0);
    SeverityParams narrow, wide;
    narrow.mltdRadius = 0.5e-3;
    wide.mltdRadius = 2.0e-3;
    const auto a =
        SeverityModel(narrow).mltdField(temps, nx, ny, 0.5e-3);
    const auto b = SeverityModel(wide).mltdField(temps, nx, ny, 0.5e-3);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LE(a[i], b[i] + 1e-9);
}

// ---------------------------------------------------------------------
// VF table properties.
// ---------------------------------------------------------------------

class VfInterpolation : public ::testing::TestWithParam<int>
{
};

TEST_P(VfInterpolation, MidpointsAreAnchorAverages)
{
    // Each off-anchor grid point lies halfway between two anchors, so
    // its voltage is their average (piecewise-linear interpolation).
    VFTable vf;
    const auto &anchors = VFTable::anchors();
    const size_t k = static_cast<size_t>(GetParam());
    const GHz mid = 0.5 * (anchors[k].first + anchors[k + 1].first);
    EXPECT_NEAR(vf.voltage(mid),
                0.5 * (anchors[k].second + anchors[k + 1].second),
                1e-12);
}

INSTANTIATE_TEST_SUITE_P(AnchorGaps, VfInterpolation,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(VfProperties, StepUpThenDownIsIdentityInTheInterior)
{
    VFTable vf;
    for (int i = 1; i + 1 < vf.numPoints(); ++i) {
        const GHz f = vf.frequency(i);
        EXPECT_DOUBLE_EQ(vf.stepDown(vf.stepUp(f)), f);
        EXPECT_DOUBLE_EQ(vf.stepUp(vf.stepDown(f)), f);
    }
}

// ---------------------------------------------------------------------
// Thermal solver properties.
// ---------------------------------------------------------------------

TEST(ThermalProperties, SteadyStateIsAFixedPointOfTheTransient)
{
    // After solveSteadyState, integrating further must not move the
    // solution (the two code paths discretize the same network).
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params;
    params.nx = 16;
    params.ny = 16;
    params.sinkCapacitance = 0.05; // let the sink participate
    ThermalGrid grid(fp, params);
    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[fp.findUnit(UnitKind::IntALU, 0)] = 4.0;
    power[fp.findUnit(UnitKind::L3, -1)] = 2.0;
    grid.setUnitPower(power);
    grid.solveSteadyState(1e-10);
    const std::vector<Celsius> before = grid.siliconTemps();
    grid.step(2e-3);
    const std::vector<Celsius> &after = grid.siliconTemps();
    for (size_t i = 0; i < before.size(); i += 5)
        EXPECT_NEAR(before[i], after[i], 0.02);
}

TEST(ThermalProperties, SuperpositionOfSources)
{
    // Linear network: T(P1 + P2) - Tamb == (T(P1) - Tamb) + (T(P2) -
    // Tamb) at steady state.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params;
    params.nx = 16;
    params.ny = 16;
    auto solve = [&](std::vector<Watts> p) {
        ThermalGrid grid(fp, params);
        grid.setUnitPower(p);
        grid.solveSteadyState(1e-10);
        return grid.siliconTemps();
    };
    std::vector<Watts> p1(fp.numUnits(), 0.0);
    std::vector<Watts> p2(fp.numUnits(), 0.0);
    p1[fp.findUnit(UnitKind::IntALU, 0)] = 3.0;
    p2[fp.findUnit(UnitKind::DCache, 0)] = 5.0;
    std::vector<Watts> sum = p1;
    for (size_t i = 0; i < sum.size(); ++i)
        sum[i] += p2[i];
    const auto t1 = solve(p1);
    const auto t2 = solve(p2);
    const auto ts = solve(sum);
    for (size_t i = 0; i < ts.size(); i += 7) {
        EXPECT_NEAR(ts[i] - kAmbient,
                    (t1[i] - kAmbient) + (t2[i] - kAmbient), 0.05);
    }
}

// ---------------------------------------------------------------------
// GBT properties.
// ---------------------------------------------------------------------

TEST(GBTProperties, InvariantToConstantFeatures)
{
    // A feature with a single value can never split; adding one must
    // not change predictions.
    Rng rng(11);
    Dataset base({"x"});
    Dataset padded({"x", "constant"});
    for (int i = 0; i < 400; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        base.addRow({x}, std::sin(3.0 * x), i % 3);
        padded.addRow({x, 42.0}, std::sin(3.0 * x), i % 3);
    }
    GBTParams params;
    params.nEstimators = 30;
    GBTRegressor a, b;
    a.train(base, params);
    b.train(padded, params);
    for (int i = 0; i < 50; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        const std::vector<double> xa{x};
        const std::vector<double> xb{x, 42.0};
        EXPECT_DOUBLE_EQ(a.predict(xa), b.predict(xb));
    }
    EXPECT_DOUBLE_EQ(b.featureImportance()[1], 0.0);
}

TEST(GBTProperties, PredictionsBoundedByTargetRangeOnTraining)
{
    // With squared loss and lr<=1 level-wise trees, in-distribution
    // predictions should stay within a modest margin of the label
    // range.
    Rng rng(13);
    Dataset d({"a", "b"});
    for (int i = 0; i < 600; ++i) {
        const double a = rng.uniform(0.0, 1.0);
        const double b = rng.uniform(0.0, 1.0);
        d.addRow({a, b}, 0.3 + 0.4 * a * b, i % 4);
    }
    GBTRegressor model;
    model.train(d, GBTParams{.nEstimators = 60});
    for (size_t r = 0; r < d.numRows(); r += 11) {
        const double p = model.predict(d.row(r));
        EXPECT_GT(p, 0.3 - 0.1);
        EXPECT_LT(p, 0.7 + 0.1);
    }
}

class GBTDepthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(GBTDepthSweep, DeeperTreesFitTrainingAtLeastAsWell)
{
    Rng rng(17);
    Dataset d({"x0", "x1", "x2"});
    for (int i = 0; i < 800; ++i) {
        const double x0 = rng.uniform(-1.0, 1.0);
        const double x1 = rng.uniform(-1.0, 1.0);
        const double x2 = rng.uniform(-1.0, 1.0);
        d.addRow({x0, x1, x2}, x0 * x1 + 0.5 * x2, i % 4);
    }
    const int depth = GetParam();
    GBTParams shallow, deep;
    shallow.maxDepth = depth;
    deep.maxDepth = depth + 2;
    shallow.nEstimators = deep.nEstimators = 40;
    GBTRegressor ms, md;
    ms.train(d, shallow);
    md.train(d, deep);
    EXPECT_LE(md.mse(d), ms.mse(d) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Depths, GBTDepthSweep,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Dataset-builder properties.
// ---------------------------------------------------------------------

TEST(DatasetBuilderProperties, LabelsRespectTheClamp)
{
    SimulationPipeline p(fastPipelineConfig());
    DatasetConfig cfg;
    cfg.frequencies = {5.0}; // deep into unsafe territory
    cfg.walkSegments = 0;
    cfg.traceSteps = 60;
    cfg.labelClamp = 1.1;
    const std::vector<const WorkloadSpec *> wl{&findWorkload("povray")};
    const BuiltData built = buildTrainingData(p, wl, cfg);
    double max_label = 0.0;
    for (size_t r = 0; r < built.severity.numRows(); ++r)
        max_label = std::max(max_label, built.severity.y(r));
    EXPECT_LE(max_label, 1.1 + 1e-12);
    EXPECT_NEAR(max_label, 1.1, 1e-9); // povray@5GHz definitely hits it
}

TEST(DatasetBuilderProperties, LongerHorizonNeverLowersLabels)
{
    // The label is a running max: growing the window can only keep or
    // raise it (same trajectory, matched rows).
    SimulationPipeline p(fastPipelineConfig());
    DatasetConfig short_cfg;
    short_cfg.frequencies = {4.5};
    short_cfg.walkSegments = 0;
    short_cfg.traceSteps = 72;
    short_cfg.horizonSteps = 6;
    short_cfg.intensityAugments = {1.0}; // single trace: rows align
    DatasetConfig long_cfg = short_cfg;
    long_cfg.horizonSteps = 24;
    const std::vector<const WorkloadSpec *> wl{&findWorkload("gamess")};
    const BuiltData a = buildTrainingData(p, wl, short_cfg);
    const BuiltData b = buildTrainingData(p, wl, long_cfg);
    // Rows align on the first (traceSteps - 24) instances.
    const size_t n = b.severity.numRows();
    ASSERT_LE(n, a.severity.numRows());
    for (size_t r = 0; r < n; ++r)
        EXPECT_GE(b.severity.y(r) + 1e-12, a.severity.y(r));
}

// ---------------------------------------------------------------------
// Workload-suite properties.
// ---------------------------------------------------------------------

TEST(WorkloadProperties, MixFractionsStayNormalized)
{
    for (const auto &w : spec2006Suite()) {
        for (const auto &phase : w.phases) {
            const auto &p = phase.params;
            EXPECT_GE(p.fpFraction, 0.0) << w.name;
            EXPECT_GE(p.mulFraction, 0.0) << w.name;
            EXPECT_LE(p.fpFraction + p.mulFraction, 1.0) << w.name;
            EXPECT_LE(p.loadFraction + p.storeFraction, 0.8) << w.name;
            EXPECT_GT(p.baseCpi, 0.2) << w.name;
            EXPECT_GT(p.intensity, 0.0) << w.name;
        }
    }
}

TEST(WorkloadProperties, DwellTimesResolvableAtTelemetryRate)
{
    // Phases shorter than one telemetry step would alias.
    for (const auto &w : spec2006Suite())
        for (const auto &phase : w.phases)
            EXPECT_GE(phase.meanDuration, 4 * kTelemetryStep) << w.name;
}
