/**
 * @file
 * Tests of the pluggable workload-source subsystem (DESIGN.md §10):
 * the registry grammar, the spec-vs-source pipeline byte-identity
 * contract, mix: staggered starts, the NAS instruction-rate
 * calibration, the adversarial scenarios, and the WorkloadRun
 * dwell-carry regression (phases shorter than one telemetry step).
 */

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boreas/pipeline.hh"
#include "test_util.hh"
#include "workload/adversarial.hh"
#include "workload/mix.hh"
#include "workload/nas.hh"
#include "workload/registry.hh"
#include "workload/spec2006.hh"
#include "workload/workload.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

// --- WorkloadRun dwell bookkeeping -------------------------------------

TEST(WorkloadRun, DwellShorterThanStepCarriesDeficit)
{
    // Three phases of exactly 30 us each (no jitter), advanced in
    // 80 us telemetry steps: every step crosses 2-3 phase boundaries
    // and the fractional remainder must carry, so after t seconds the
    // active phase is floor(t / 30us) mod 3 exactly. A version that
    // reset the dwell instead of carrying the deficit drifts off this
    // schedule within a few steps.
    WorkloadSpec spec;
    spec.name = "microphase";
    spec.pattern = PhasePattern::Cyclic;
    for (int i = 0; i < 3; ++i) {
        WorkloadPhase ph;
        ph.params.baseCpi = 1.0 + i;
        ph.meanDuration = 30e-6;
        ph.durationJitter = 0.0;
        spec.phases.push_back(ph);
    }

    WorkloadRun run(spec, 7);
    const Seconds dt = kTelemetryStep; // 80 us
    for (int step = 1; step <= 200; ++step) {
        run.advance(dt);
        const double t = static_cast<double>(step) * dt;
        // Nudge off the boundary: a dwell expiring exactly at t counts
        // as switched (advance() switches on <= 0).
        const int expected =
            static_cast<int>(std::floor(t / 30e-6 + 1e-9)) % 3;
        ASSERT_EQ(run.phaseIndex(), expected)
            << "dwell carry drifted at step " << step;
    }
}

// --- Registry grammar --------------------------------------------------

TEST(WorkloadRegistry, BareNamesResolveAcrossFamilies)
{
    EXPECT_EQ(makeWorkloadSource("mcf")->name(),
              "synthetic:spec2006/mcf");
    EXPECT_EQ(makeWorkloadSource("cg.B")->name(), "synthetic:nas/cg.B");
    EXPECT_EQ(makeWorkloadSource("synthetic:nas/ep.B")->name(),
              "synthetic:nas/ep.B");
}

TEST(WorkloadRegistry, MalformedSpecsReportErrors)
{
    const std::vector<std::string> bad = {
        "",
        "nosuchprogram",
        "synthetic:spec2006/nosuchprogram",
        "synthetic:unknownfamily/mcf",
        "mix:",
        "mix:mcf+nosuchprogram",
        "mix:mcf+cg.B@stagger=banana",
        "adversarial:meltdown",
        "trace:/nonexistent/file.trace",
        "unknown-scheme:whatever",
    };
    for (const auto &spec : bad) {
        std::string error;
        EXPECT_EQ(tryMakeWorkloadSource(spec, &error), nullptr)
            << "'" << spec << "' should not parse";
        EXPECT_FALSE(error.empty()) << "'" << spec << "'";
    }
}

TEST(WorkloadRegistry, MixParsesProgramsAndStagger)
{
    auto source = makeWorkloadSource("mix:mcf+cg.B+povray@stagger=1e-3");
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->numCores(), 3);
    auto *mix = dynamic_cast<MixSource *>(source.get());
    ASSERT_NE(mix, nullptr);
    ASSERT_EQ(mix->programs().size(), 3u);
    EXPECT_EQ(mix->programs()[0].spec.name, "mcf");
    EXPECT_EQ(mix->programs()[1].spec.name, "cg.B");
    EXPECT_EQ(mix->programs()[2].spec.name, "povray");
    EXPECT_DOUBLE_EQ(mix->programs()[0].startOffset, 0.0);
    EXPECT_DOUBLE_EQ(mix->programs()[1].startOffset, 1e-3);
    EXPECT_DOUBLE_EQ(mix->programs()[2].startOffset, 2e-3);
}

TEST(WorkloadRegistry, MixOptionsComposeInAnyOrder)
{
    for (const char *spec :
         {"mix:mcf+cg.B@stagger=1e-3@scale=1.5",
          "mix:mcf+cg.B@scale=1.5@stagger=1e-3"}) {
        auto source = makeWorkloadSource(spec);
        ASSERT_NE(source, nullptr) << spec;
        auto *mix = dynamic_cast<MixSource *>(source.get());
        ASSERT_NE(mix, nullptr) << spec;
        ASSERT_EQ(mix->programs().size(), 2u) << spec;
        EXPECT_DOUBLE_EQ(mix->programs()[1].startOffset, 1e-3) << spec;
        // scale multiplies each program's intensity relative to the
        // registry spec.
        const WorkloadSpec &base = findWorkload("mcf");
        EXPECT_DOUBLE_EQ(mix->programs()[0].spec.thermalScale,
                         base.thermalScale * 1.5)
            << spec;
    }
}

TEST(WorkloadRegistry, MixGrammarEdgeCasesAreRejected)
{
    // Each of these mis-parsed (or parsed silently wrong) under the
    // old rfind('@') single-option parser.
    const std::vector<std::string> bad = {
        "mix:mcf+cg.B@",                      // '@' at end
        "mix:mcf+cg.B@stagger=1e-3@",         // dangling second '@'
        "mix:mcf+cg.B@@stagger=1e-3",         // empty option
        "mix:mcf+cg.B@stagger=1e-3@stagger=2e-3", // duplicate
        "mix:mcf+cg.B@scale=1.5@scale=2",     // duplicate
        "mix:mcf+cg.B@stagger",               // no value
        "mix:mcf+cg.B@stagger=",              // empty value
        "mix:mcf+cg.B@stagger=-1e-3",         // negative
        "mix:mcf+cg.B@scale=0",               // zero multiplier
        "mix:mcf+cg.B@turbo=1",               // unknown key
        "mix:mcf+",                           // '+' at end
        "mix:+mcf",                           // leading '+'
        "mix:mcf++cg.B",                      // empty middle program
    };
    for (const auto &spec : bad) {
        std::string error;
        EXPECT_EQ(tryMakeWorkloadSource(spec, &error), nullptr)
            << "'" << spec << "' should not parse";
        EXPECT_FALSE(error.empty()) << "'" << spec << "'";
    }
}

TEST(WorkloadRegistry, SplitSpecListPreservesEmptyEntries)
{
    using V = std::vector<std::string>;
    EXPECT_EQ(splitWorkloadSpecList("bzip2"), V({"bzip2"}));
    EXPECT_EQ(splitWorkloadSpecList("a,mix:b+c@stagger=1e-3,d"),
              V({"a", "mix:b+c@stagger=1e-3", "d"}));
    // Empty entries stay visible so the fleet can report the typo
    // instead of silently renumbering dies.
    EXPECT_EQ(splitWorkloadSpecList(""), V({""}));
    EXPECT_EQ(splitWorkloadSpecList("a,,b"), V({"a", "", "b"}));
    EXPECT_EQ(splitWorkloadSpecList("a,"), V({"a", ""}));
}

// --- Spec vs. source byte identity -------------------------------------

TEST(WorkloadSource, SyntheticWrapperIsBitIdenticalToSpecRun)
{
    // The spec overload of runConstantFrequency wraps the spec in a
    // SyntheticSource and forwards; both entry points must therefore
    // produce the same runHash bit for bit.
    SimulationPipeline a(fastPipelineConfig());
    SimulationPipeline b(fastPipelineConfig());
    const WorkloadSpec &wl = findWorkload("omnetpp");

    const RunResult ra = a.runConstantFrequency(wl, 42, 4.5, 48);
    auto source = makeSyntheticSource(wl);
    const RunResult rb = b.runConstantFrequency(*source, 42, 4.5, 48);

    ASSERT_EQ(ra.steps.size(), rb.steps.size());
    for (size_t i = 0; i < ra.steps.size(); ++i)
        ASSERT_EQ(ra.steps[i].stateHash, rb.steps[i].stateHash)
            << "step " << i;
    EXPECT_EQ(a.runHash(), b.runHash());
    // Single-core runs keep the legacy record shape.
    EXPECT_TRUE(rb.steps.front().coreCounters.empty());
}

// --- mix: staggered starts ---------------------------------------------

TEST(WorkloadSource, MixStaggerGatesLateCores)
{
    auto source = makeWorkloadSource("mix:mcf+gromacs@stagger=0.4e-3");
    source->reset(11);
    // Core 1 idles until its 0.4 ms offset has elapsed.
    EXPECT_TRUE(source->stimulus(0).active);
    EXPECT_FALSE(source->stimulus(1).active);

    Seconds t = 0.0;
    while (t + 1e-12 < 0.4e-3) {
        source->advance(kTelemetryStep);
        t += kTelemetryStep;
    }
    EXPECT_TRUE(source->stimulus(0).active);
    EXPECT_TRUE(source->stimulus(1).active);
}

TEST(WorkloadSource, MixStaggerActivatesExactlyPastAMillionSteps)
{
    // A start offset exactly (2^20 + 1) steps out must gate the core
    // for exactly that many advances. The old `elapsed_ += dt`
    // accumulator drifts by ULPs over a run this long and could flip
    // the activation a step early or late; step counting cannot.
    constexpr int64_t kStartStep = (int64_t{1} << 20) + 1; // 1048577
    std::vector<MixProgram> programs;
    programs.push_back({findWorkload("mcf"), 0.0});
    programs.push_back(
        {findWorkload("gromacs"),
         static_cast<Seconds>(kStartStep) * kTelemetryStep});
    MixSource source("mix:driftcheck", std::move(programs));
    source.reset(3);

    EXPECT_TRUE(source.stimulus(0).active);
    for (int64_t step = 1; step < kStartStep; ++step) {
        source.advance(kTelemetryStep);
        if (step >= kStartStep - 2) {
            ASSERT_FALSE(source.stimulus(1).active)
                << "activated early, at step " << step;
        }
    }
    source.advance(kTelemetryStep); // step kStartStep
    EXPECT_TRUE(source.stimulus(1).active) << "activated late";
    EXPECT_TRUE(source.stimulus(0).active);
}

TEST(WorkloadSource, MixRunsEndToEndWithPerCoreTelemetry)
{
    SimulationPipeline pipeline(fastPipelineConfig());
    auto source = makeWorkloadSource("mix:mcf+cg.B@stagger=0.8e-3");
    const RunResult r =
        pipeline.runConstantFrequency(*source, 2023, 4.25, 36);
    ASSERT_EQ(r.steps.size(), 36u);
    // Multi-core runs expose per-core counters; [0] mirrors the
    // legacy single-core field.
    ASSERT_EQ(r.steps.front().coreCounters.size(), 2u);
    EXPECT_EQ(r.steps.front().coreCounters[0].values,
              r.steps.front().counters.values);
    EXPECT_GT(r.peakSeverity(), 0.0);
    EXPECT_NE(pipeline.runHash(), 0u);
}

// --- NAS calibration ----------------------------------------------------

TEST(WorkloadNas, CalibrationReproducesCpaInstructionRates)
{
    // Each NAS phase program is calibrated so its dwell-weighted mean
    // instruction rate at the reference clock reproduces the CPA
    // measurement. The calibration solves the phase's *effective* CPI
    // (base + miss-event penalties, arch/core_model.hh), so evaluate
    // the same quantity here and require the dwell-weighted rate to
    // land within 15% of the published target.
    const IntervalCore core{CoreParams{}};
    for (const WorkloadSpec &wl : nasSuite()) {
        double dwell_sum = 0.0;
        double instr_sum = 0.0;
        for (const WorkloadPhase &ph : wl.phases) {
            const double cpi =
                core.effectiveCpi(ph.params, kNasReferenceFrequency);
            dwell_sum += ph.meanDuration;
            instr_sum += ph.meanDuration * kNasReferenceFrequency * 1e9 /
                         cpi;
        }
        const double rate = instr_sum / dwell_sum;
        const double target = nasTargetInstructionRate(wl.name);
        ASSERT_GT(target, 0.0) << wl.name;
        EXPECT_NEAR(rate / target, 1.0, 0.15) << wl.name;
    }
}

TEST(WorkloadNas, SuiteRunsThroughPipeline)
{
    SimulationPipeline pipeline(fastPipelineConfig());
    auto source = makeWorkloadSource("synthetic:nas/is.D");
    const RunResult r =
        pipeline.runConstantFrequency(*source, 5, 4.5, 24);
    EXPECT_EQ(r.steps.size(), 24u);
    EXPECT_GT(r.peakSeverity(), 0.0);
}

// --- Adversarial scenarios ----------------------------------------------

TEST(WorkloadAdversarial, EveryScenarioRunsEndToEnd)
{
    for (const std::string &scenario : adversarialScenarios()) {
        SimulationPipeline pipeline(fastPipelineConfig());
        auto source = makeWorkloadSource("adversarial:" + scenario);
        ASSERT_NE(source, nullptr) << scenario;
        const RunResult r =
            pipeline.runConstantFrequency(*source, 2023, 4.5, 36);
        ASSERT_EQ(r.steps.size(), 36u) << scenario;
        EXPECT_GT(r.peakSeverity(), 0.0) << scenario;
        for (const StepRecord &s : r.steps)
            ASSERT_TRUE(std::isfinite(s.totalPower)) << scenario;
    }
}

TEST(WorkloadAdversarial, PowerVirusOutheatsSoloWorkload)
{
    // The 4-core synchronized power virus must run hotter than any
    // single-core program — otherwise it is not adversarial.
    SimulationPipeline a(fastPipelineConfig());
    auto virus = makeWorkloadSource("adversarial:powervirus");
    const RunResult rv = a.runConstantFrequency(*virus, 2023, 4.5, 48);

    SimulationPipeline b(fastPipelineConfig());
    const RunResult rs =
        b.runConstantFrequency(findWorkload("povray"), 2023, 4.5, 48);

    EXPECT_GT(rv.peakSeverity(), rs.peakSeverity());
}

TEST(WorkloadAdversarial, CoreHopMigratesTheActiveCore)
{
    auto source = makeWorkloadSource("adversarial:corehop");
    source->reset(1);
    ASSERT_EQ(source->numCores(), 4);

    std::vector<int> seen;
    for (int step = 0; step < 200; ++step) {
        int active = -1;
        for (int c = 0; c < source->numCores(); ++c) {
            if (source->stimulus(c).active) {
                ASSERT_EQ(active, -1) << "two cores hot at step " << step;
                active = c;
            }
        }
        ASSERT_NE(active, -1) << "no core hot at step " << step;
        if (seen.empty() || seen.back() != active)
            seen.push_back(active);
        source->advance(kTelemetryStep);
    }
    // 200 steps * 80us = 16ms; with a 3ms hop period the hotspot must
    // have visited several cores in round-robin order.
    ASSERT_GE(seen.size(), 4u);
    for (size_t i = 1; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], (seen[i - 1] + 1) % 4);
}

// --- Clone / determinism ------------------------------------------------

TEST(WorkloadSource, ClonesReplayIdentically)
{
    for (const char *spec :
         {"mcf", "synthetic:nas/cg.B", "mix:mcf+cg.B@stagger=0.5e-3",
          "adversarial:corehop", "adversarial:ambientsweep"}) {
        auto original = makeWorkloadSource(spec);
        auto copy = original->clone();

        SimulationPipeline a(fastPipelineConfig());
        SimulationPipeline b(fastPipelineConfig());
        a.runConstantFrequency(*original, 99, 4.25, 24);
        b.runConstantFrequency(*copy, 99, 4.25, 24);
        EXPECT_EQ(a.runHash(), b.runHash()) << spec;
    }
}
