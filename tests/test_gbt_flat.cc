/**
 * @file
 * Differential tests for the flat GBT inference engine: FlatGBT must
 * be bit-identical to the reference GBTRegressor::predict on every
 * row, at every batch size, at any thread count, and across a
 * save/load round trip (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "ml/gbt.hh"
#include "ml/gbt_flat.hh"

using namespace boreas;

namespace
{

/** Restores the global pool to its default size on scope exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard()
    {
        ThreadPool::resetGlobal(ThreadPool::defaultThreads());
    }
};

/** y = 3*x0 - 2*x1 + noise, with two distractor features. */
Dataset
flatData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset d({"x0", "x1", "junk0", "junk1"});
    for (size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(-1.0, 1.0);
        const double x1 = rng.uniform(-1.0, 1.0);
        const double j0 = rng.uniform(-1.0, 1.0);
        const double j1 = rng.uniform(-1.0, 1.0);
        const double y = 3.0 * x0 - 2.0 * x1 + rng.normal(0.0, 0.05);
        d.addRow({x0, x1, j0, j1}, y, static_cast<int>(i % 4));
    }
    return d;
}

/** The fig7-style deployed shape: 223 trees of depth 3 (Table II
 *  defaults), trained once and shared across the tests below. */
struct Fig7Model
{
    Fig7Model() : data(flatData(3000, 41))
    {
        model.train(data, GBTParams{}); // defaults = Table II
    }

    Dataset data;
    GBTRegressor model;
};

const Fig7Model &
fig7()
{
    static Fig7Model m;
    return m;
}

/** Row-major copy of a dataset's feature block. */
std::vector<double>
packRows(const Dataset &d)
{
    const size_t nf = d.numFeatures();
    std::vector<double> rows(d.numRows() * nf);
    for (size_t r = 0; r < d.numRows(); ++r)
        std::memcpy(rows.data() + r * nf, d.row(r),
                    nf * sizeof(double));
    return rows;
}

/** Bit-level equality (EXPECT_DOUBLE_EQ tolerates 4 ulps; we do not). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

} // namespace

TEST(FlatGBT, CompilesThePaperModelShape)
{
    const FlatGBT flat(fig7().model);
    EXPECT_TRUE(flat.compiled());
    EXPECT_EQ(flat.numTrees(), fig7().model.numTrees());
    EXPECT_EQ(flat.numFeatures(), fig7().model.numFeatures());
    EXPECT_EQ(flat.basePrediction(), fig7().model.basePrediction());
    // Depth-3 trees pad to at most 7 internal slots + 8 leaf slots.
    EXPECT_LE(flat.paddedNodes(), flat.numTrees() * 7);
    EXPECT_LE(flat.paddedLeaves(), flat.numTrees() * 8);
    EXPECT_GT(flat.numCuts(), 0u);
    EXPECT_GT(flat.flatBytes(), 0u);
}

TEST(FlatGBT, PredictOneMatchesReferenceOnEveryRow)
{
    const Fig7Model &m = fig7();
    const FlatGBT flat(m.model);
    for (size_t r = 0; r < m.data.numRows(); ++r) {
        const double *x = m.data.row(r);
        ASSERT_TRUE(sameBits(flat.predictOne(x), m.model.predict(x)))
            << "row " << r;
    }
}

TEST(FlatGBT, PredictBatchMatchesAtEveryBatchSize)
{
    const Fig7Model &m = fig7();
    const FlatGBT flat(m.model);
    const size_t nf = m.data.numFeatures();
    const std::vector<double> rows = packRows(m.data);
    const size_t n = m.data.numRows();

    std::vector<double> ref(n);
    for (size_t r = 0; r < n; ++r)
        ref[r] = m.model.predict(rows.data() + r * nf);

    for (const size_t batch : {size_t{1}, size_t{7}, size_t{4096}}) {
        std::vector<double> out(n, 0.0);
        for (size_t lo = 0; lo < n; lo += batch) {
            const size_t len = std::min(batch, n - lo);
            flat.predictBatch(rows.data() + lo * nf, len,
                              out.data() + lo);
        }
        for (size_t r = 0; r < n; ++r)
            ASSERT_TRUE(sameBits(out[r], ref[r]))
                << "batch " << batch << " row " << r;
    }
}

TEST(FlatGBT, ThreadCountDoesNotChangeAnyBit)
{
    const Fig7Model &m = fig7();
    const FlatGBT flat(m.model);
    const std::vector<double> rows = packRows(m.data);
    const size_t n = m.data.numRows();

    GlobalPoolGuard guard;
    ThreadPool::resetGlobal(1);
    std::vector<double> serial(n);
    flat.predictBatch(rows.data(), n, serial.data());

    ThreadPool::resetGlobal(8);
    std::vector<double> threaded(n);
    flat.predictBatch(rows.data(), n, threaded.data());

    for (size_t r = 0; r < n; ++r)
        ASSERT_TRUE(sameBits(serial[r], threaded[r])) << "row " << r;
}

TEST(FlatGBT, PredictDatasetMatchesPredictAll)
{
    const Fig7Model &m = fig7();
    const FlatGBT flat(m.model);
    const std::vector<double> flat_out = flat.predictDataset(m.data);
    const std::vector<double> all = m.model.predictAll(m.data);
    ASSERT_EQ(flat_out.size(), all.size());
    for (size_t r = 0; r < all.size(); ++r)
        ASSERT_TRUE(sameBits(flat_out[r], all[r])) << "row " << r;
}

TEST(FlatGBT, SaveLoadFlattenIsEquivalent)
{
    const Fig7Model &m = fig7();
    std::stringstream buf;
    m.model.save(buf);
    GBTRegressor loaded;
    loaded.load(buf);

    const FlatGBT flat(loaded);
    for (size_t r = 0; r < 200; ++r) {
        const double *x = m.data.row(r);
        ASSERT_TRUE(sameBits(flat.predictOne(x), m.model.predict(x)))
            << "row " << r;
    }
}

TEST(FlatGBT, SingleTreeLeafMatchesTreeWalk)
{
    const Fig7Model &m = fig7();
    for (size_t t = 0; t < 5; ++t) {
        const GBTTree &tree = m.model.trees()[t];
        const FlatGBT flat =
            FlatGBT::fromSingleTree(tree, m.data.numFeatures());
        for (size_t r = 0; r < 200; ++r) {
            const double *x = m.data.row(r);
            ASSERT_TRUE(sameBits(flat.treeLeaf(0, x), tree.predict(x)))
                << "tree " << t << " row " << r;
        }
    }
}

TEST(FlatGBT, StumpEnsembleAndEmptyBatchWork)
{
    // Degenerate shapes: depth-0 trees (gamma prunes every split) and
    // a zero-row batch must both be handled.
    Dataset d({"x"});
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        d.addRow({rng.uniform()}, 7.5, 0);
    GBTRegressor model;
    model.train(d, GBTParams{.gamma = 1e6, .nEstimators = 8});

    const FlatGBT flat(model);
    EXPECT_EQ(flat.paddedNodes(), 0u); // all roots are leaves
    const double x = 0.25;
    EXPECT_TRUE(sameBits(flat.predictOne(&x), model.predict(&x)));
    flat.predictBatch(&x, 0, nullptr); // no rows: no touch, no crash
}

TEST(FlatGBTDeathTest, RejectsMalformedTree)
{
    GBTTree tree;
    tree.nodes.push_back({/*feature=*/3, /*threshold=*/0.5,
                          /*left=*/1, /*right=*/2, /*value=*/0.0,
                          /*gain=*/0.0});
    tree.nodes.push_back({-1, 0.0, -1, -1, 1.0, 0.0});
    tree.nodes.push_back({-1, 0.0, -1, -1, 2.0, 0.0});
    // Splits on feature 3 of a 2-feature model.
    EXPECT_DEATH(FlatGBT::fromSingleTree(tree, 2), "feature");
}

TEST(FlatGBTDeathTest, RejectsBackwardChildLink)
{
    GBTTree tree;
    tree.nodes.push_back({0, 0.5, 0, 2, 0.0, 0.0}); // left = self
    tree.nodes.push_back({-1, 0.0, -1, -1, 1.0, 0.0});
    tree.nodes.push_back({-1, 0.0, -1, -1, 2.0, 0.0});
    EXPECT_DEATH(FlatGBT::fromSingleTree(tree, 2), "children");
}
