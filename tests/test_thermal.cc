/** @file Unit tests for the RC-grid thermal solver. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/checked.hh"
#include "floorplan/skylake.hh"
#include "thermal/thermal_grid.hh"

using namespace boreas;

namespace
{

ThermalParams
smallGrid()
{
    ThermalParams p;
    p.nx = 16;
    p.ny = 16;
    return p;
}

} // namespace

TEST(ThermalGrid, StartsAtAmbient)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    for (Celsius t : grid.siliconTemps())
        EXPECT_DOUBLE_EQ(t, kAmbient);
    EXPECT_DOUBLE_EQ(grid.sinkTemp(), kAmbient);
}

TEST(ThermalGrid, ZeroPowerStaysAtAmbient)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    grid.setUnitPower(std::vector<Watts>(fp.numUnits(), 0.0));
    for (int i = 0; i < 100; ++i)
        grid.step(80e-6);
    EXPECT_NEAR(grid.maxSiliconTemp(), kAmbient, 1e-9);
}

TEST(ThermalGrid, StableDtIsPositiveAndSubMillisecond)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    EXPECT_GT(grid.maxStableDt(), 0.0);
    EXPECT_LT(grid.maxStableDt(), 1e-3);
}

TEST(ThermalGrid, HeatingRaisesTemperatureOverHotUnit)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    std::vector<Watts> power(fp.numUnits(), 0.0);
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    power[alu] = 5.0;
    grid.setUnitPower(power);
    for (int i = 0; i < 50; ++i)
        grid.step(80e-6);
    const Point alu_center = fp.unit(alu).rect.center();
    const Point far_corner{fp.dieWidth() * 0.95,
                           fp.dieHeight() * 0.95};
    EXPECT_GT(grid.temperatureAt(alu_center), kAmbient + 5.0);
    EXPECT_GT(grid.temperatureAt(alu_center),
              grid.temperatureAt(far_corner) + 5.0);
}

TEST(ThermalGrid, SteadyStateEnergyBalance)
{
    // At steady state, all injected power must flow to ambient through
    // the sink: P = (T_sink - T_amb) / R_sink_ambient.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params = smallGrid();
    ThermalGrid grid(fp, params);
    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[fp.findUnit(UnitKind::DCache, 0)] = 10.0;
    grid.setUnitPower(power);
    grid.solveSteadyState(1e-9);
    const double flow = (grid.sinkTemp() - params.ambient) /
        params.sinkAmbientResistance;
    EXPECT_NEAR(flow, 10.0, 0.05);
}

TEST(ThermalGrid, TransientConvergesToSteadyState)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params = smallGrid();
    // Tiny sink capacitance so the whole stack settles within the test.
    params.sinkCapacitance = 0.05;
    ThermalGrid steady(fp, params);
    ThermalGrid transient(fp, params);

    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[fp.findUnit(UnitKind::FPU, 0)] = 8.0;
    steady.setUnitPower(power);
    steady.solveSteadyState(1e-9);

    transient.setUnitPower(power);
    for (int i = 0; i < 4000; ++i)
        transient.step(80e-6);

    const auto &ts = steady.siliconTemps();
    const auto &tt = transient.siliconTemps();
    double max_err = 0.0;
    for (size_t i = 0; i < ts.size(); ++i)
        max_err = std::max(max_err, std::fabs(ts[i] - tt[i]));
    EXPECT_LT(max_err, 0.5);
}

TEST(ThermalGrid, MorePowerMeansHigherSteadyTemp)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    std::vector<Watts> power(fp.numUnits(), 0.0);

    power[alu] = 2.0;
    grid.setUnitPower(power);
    grid.solveSteadyState();
    const Celsius t2 = grid.maxSiliconTemp();

    grid.reset(kAmbient);
    power[alu] = 6.0;
    grid.setUnitPower(power);
    grid.solveSteadyState();
    const Celsius t6 = grid.maxSiliconTemp();
    EXPECT_GT(t6, t2 + 1.0);
}

TEST(ThermalGrid, LinearityOfSteadyState)
{
    // The network is linear: doubling power doubles the rise.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params = smallGrid();
    ThermalGrid grid(fp, params);
    const int fpu = fp.findUnit(UnitKind::FPU, 0);
    std::vector<Watts> power(fp.numUnits(), 0.0);

    power[fpu] = 3.0;
    grid.setUnitPower(power);
    grid.solveSteadyState(1e-9);
    const double rise1 = grid.maxSiliconTemp() - params.ambient;

    grid.reset(params.ambient);
    power[fpu] = 6.0;
    grid.setUnitPower(power);
    grid.solveSteadyState(1e-9);
    const double rise2 = grid.maxSiliconTemp() - params.ambient;
    EXPECT_NEAR(rise2 / rise1, 2.0, 0.01);
}

TEST(ThermalGrid, FastLocalTransient)
{
    // The advanced-hotspot property: a strong local source must raise
    // its cell by several degrees within ~200 us (microsecond-scale
    // hotspot formation).
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, ThermalParams{}); // default 64x64
    std::vector<Watts> power(fp.numUnits(), 0.0);
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    power[alu] = 6.0;
    grid.setUnitPower(power);
    const Point site = fp.unit(alu).rect.center();
    const Celsius before = grid.temperatureAt(site);
    grid.step(160e-6);
    EXPECT_GT(grid.temperatureAt(site), before + 3.0);
}

TEST(ThermalGrid, UnitTempsAreAreaWeightedAverages)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    std::vector<Watts> power(fp.numUnits(), 0.0);
    const int alu = fp.findUnit(UnitKind::IntALU, 0);
    power[alu] = 5.0;
    grid.setUnitPower(power);
    for (int i = 0; i < 100; ++i)
        grid.step(80e-6);
    const auto unit_temps = grid.unitTemps();
    // The heated unit must be the hottest unit.
    for (size_t i = 0; i < unit_temps.size(); ++i)
        EXPECT_LE(unit_temps[i], unit_temps[alu] + 1e-9);
    // And its average is between ambient and the global max.
    EXPECT_GT(unit_temps[alu], kAmbient);
    EXPECT_LE(unit_temps[alu], grid.maxSiliconTemp());
}

TEST(ThermalGrid, CellGeometryRoundTrip)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    for (int cell : {0, 5, 17, 255}) {
        EXPECT_EQ(grid.cellAt(grid.cellCenter(cell)), cell);
    }
}

TEST(ThermalGrid, ResetRestoresUniformState)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    std::vector<Watts> power(fp.numUnits(), 1.0);
    grid.setUnitPower(power);
    for (int i = 0; i < 20; ++i)
        grid.step(80e-6);
    grid.reset(60.0);
    for (Celsius t : grid.siliconTemps())
        EXPECT_DOUBLE_EQ(t, 60.0);
    EXPECT_DOUBLE_EQ(grid.sinkTemp(), 60.0);
}

TEST(ThermalGrid, TotalPowerReportsInjectedSum)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    std::vector<Watts> power(fp.numUnits(), 0.5);
    grid.setUnitPower(power);
    EXPECT_NEAR(grid.totalPower(), 0.5 * fp.numUnits(), 1e-9);
}

class ThermalSubstepInvariance : public ::testing::TestWithParam<double>
{
};

TEST_P(ThermalSubstepInvariance, ResultIndependentOfStepPartition)
{
    // Integrating 800 us as one call or as many smaller calls must give
    // (nearly) the same state: substepping is internal and stable. Use
    // a tight safety factor so both partitions run small substeps and
    // the comparison probes bookkeeping, not integration order.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams params = smallGrid();
    params.dtSafety = 0.1;
    ThermalGrid a(fp, params);
    ThermalGrid b(fp, params);
    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[fp.findUnit(UnitKind::IntALU, 0)] = 5.0;
    a.setUnitPower(power);
    b.setUnitPower(power);

    const double piece = GetParam();
    a.step(800e-6);
    for (double t = 0.0; t < 800e-6 - 1e-12; t += piece)
        b.step(piece);

    const auto &ta = a.siliconTemps();
    const auto &tb = b.siliconTemps();
    for (size_t i = 0; i < ta.size(); i += 7)
        EXPECT_NEAR(ta[i], tb[i], 0.12);
}

INSTANTIATE_TEST_SUITE_P(Partitions, ThermalSubstepInvariance,
                         ::testing::Values(80e-6, 160e-6, 400e-6));

TEST(ThermalGrid, RepeatedIdenticalPowerVectorIsSkippedHarmlessly)
{
    // setUnitPower() detects an input identical to the previous call
    // and skips the cell scatter; the trajectory must be bit-identical
    // to calling it once.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid a(fp, smallGrid());
    ThermalGrid b(fp, smallGrid());
    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[fp.findUnit(UnitKind::IntALU, 0)] = 4.0;

    a.setUnitPower(power);
    b.setUnitPower(power);
    for (int i = 0; i < 25; ++i) {
        // a: redundant re-set every step (the skip path); b: set once.
        a.setUnitPower(std::vector<Watts>(power));
        a.step(80e-6);
        b.step(80e-6);
    }
    const auto &ta = a.siliconTemps();
    const auto &tb = b.siliconTemps();
    for (size_t i = 0; i < ta.size(); ++i)
        ASSERT_EQ(ta[i], tb[i]);
    EXPECT_EQ(a.sinkTemp(), b.sinkTemp());
}

TEST(ThermalGrid, ChangedPowerVectorIsNotSkipped)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    std::vector<Watts> power(fp.numUnits(), 1.0);
    grid.setUnitPower(power);
    EXPECT_NEAR(grid.totalPower(), fp.numUnits(), 1e-9);
    power.back() = 3.0; // one element differs -> must rescatter
    grid.setUnitPower(power);
    EXPECT_NEAR(grid.totalPower(), fp.numUnits() + 2.0, 1e-9);
}

using ThermalGridDeathTest = ::testing::Test;

TEST(ThermalGridDeathTest, MidRunDtChangeIsFlaggedInCheckedBuilds)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "dt-change flagging is checked-build only";
    // The per-dt step plan assumes the pipeline's fixed-stepLength
    // pattern; changing dt mid-run (without a reset) trips the check.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalGrid grid(fp, smallGrid());
    grid.setUnitPower(std::vector<Watts>(fp.numUnits(), 0.0));
    grid.step(80e-6);
    EXPECT_DEATH(grid.step(160e-6), "dt changed mid-run");
    // A reset starts a fresh run; a new dt is then fine.
    grid.reset(kAmbient);
    grid.step(160e-6);
}
