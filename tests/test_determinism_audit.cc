/**
 * @file
 * The determinism audit (DESIGN.md §7): compares the pipeline's
 * per-step state hashes — the bitwise fingerprint of everything a
 * telemetry step observes — between 1-thread and 8-thread executions
 * of the parallel fan-outs, and does the same for parallel GBT
 * training. test_parallel.cc compares selected fields; the hash
 * covers the full state (all 76 counters, the whole silicon
 * temperature field, severity, sensors), so any nondeterminism that
 * slips into a future change trips it.
 */

#include <gtest/gtest.h>

#include <vector>

#include "boreas/dataset_builder.hh"
#include "boreas/pipeline.hh"
#include "common/hash.hh"
#include "common/parallel.hh"
#include "ml/gbt.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "test_util.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

namespace
{

/** Restores the global pool to its default size on scope exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard()
    {
        ThreadPool::resetGlobal(ThreadPool::defaultThreads());
    }
};

/** Per-step hash streams of a fanned-out 2x2 sweep, plus run hashes. */
struct SweepHashes
{
    std::vector<std::vector<uint64_t>> stepHashes;
    std::vector<uint64_t> runHashes;
};

SweepHashes
sweepHashes()
{
    const std::vector<const WorkloadSpec *> wls{
        &findWorkload("bzip2"), &findWorkload("gromacs")};
    const std::vector<GHz> freqs{3.75, 4.75};
    constexpr int kSteps = 48;

    SweepHashes out;
    out.stepHashes.resize(wls.size() * freqs.size());
    out.runHashes.resize(wls.size() * freqs.size());
    parallelForEach(
        0, static_cast<int64_t>(out.runHashes.size()), 1, [&](int64_t i) {
            SimulationPipeline pipeline(fastPipelineConfig());
            const size_t wi = static_cast<size_t>(i) / freqs.size();
            const size_t fi = static_cast<size_t>(i) % freqs.size();
            const RunResult run = pipeline.runConstantFrequency(
                *wls[wi], 11 + wls[wi]->seedSalt, freqs[fi], kSteps);
            for (const StepRecord &s : run.steps)
                out.stepHashes[i].push_back(s.stateHash);
            out.runHashes[i] = pipeline.runHash();
        });
    return out;
}

/** Bitwise fingerprint of a trained GBT model. */
uint64_t
modelHash(const GBTRegressor &model)
{
    Fnv1a h;
    h.add(model.basePrediction());
    h.add(static_cast<uint64_t>(model.numTrees()));
    for (const GBTTree &tree : model.trees()) {
        for (const GBTNode &node : tree.nodes) {
            h.add(node.feature);
            h.add(node.threshold);
            h.add(node.left);
            h.add(node.right);
            h.add(node.value);
            h.add(node.gain);
        }
    }
    return h.digest();
}

Dataset
smallTrainingSet()
{
    DatasetConfig cfg;
    cfg.frequencies = {3.75, 4.5};
    cfg.walkSegments = 2;
    cfg.traceSteps = 48;
    const std::vector<const WorkloadSpec *> wls{
        &findWorkload("povray"), &findWorkload("mcf")};
    SimulationPipeline pipeline(fastPipelineConfig());
    return buildTrainingData(pipeline, wls, cfg).severity;
}

} // namespace

TEST(DeterminismAudit, StepHashesIdenticalAt1And8Threads)
{
    GlobalPoolGuard guard;

    ThreadPool::resetGlobal(1);
    const SweepHashes serial = sweepHashes();

    ThreadPool::resetGlobal(8);
    const SweepHashes threaded = sweepHashes();

    ASSERT_EQ(serial.stepHashes.size(), threaded.stepHashes.size());
    for (size_t r = 0; r < serial.stepHashes.size(); ++r) {
        ASSERT_EQ(serial.stepHashes[r].size(),
                  threaded.stepHashes[r].size());
        for (size_t s = 0; s < serial.stepHashes[r].size(); ++s) {
            ASSERT_EQ(serial.stepHashes[r][s], threaded.stepHashes[r][s])
                << "run " << r << " step " << s
                << ": pipeline state diverged between 1 and 8 threads";
        }
        EXPECT_EQ(serial.runHashes[r], threaded.runHashes[r]);
    }
}

TEST(DeterminismAudit, StepHashDiscriminatesSeeds)
{
    // A hash that never changes would vacuously pass the audit; make
    // sure different seeds (and different steps) actually differ.
    SimulationPipeline pipeline(fastPipelineConfig());
    const WorkloadSpec &wl = findWorkload("bzip2");

    const RunResult a = pipeline.runConstantFrequency(wl, 1, 4.5, 16);
    const uint64_t hash_a = pipeline.runHash();
    const RunResult b = pipeline.runConstantFrequency(wl, 2, 4.5, 16);
    const uint64_t hash_b = pipeline.runHash();

    EXPECT_NE(hash_a, hash_b);
    EXPECT_NE(a.steps.front().stateHash, a.steps.back().stateHash);
    for (const StepRecord &s : a.steps)
        EXPECT_NE(s.stateHash, 0u);
}

TEST(DeterminismAudit, RunHashReproducesForSameSeed)
{
    SimulationPipeline pipeline(fastPipelineConfig());
    const WorkloadSpec &wl = findWorkload("sjeng");

    pipeline.runConstantFrequency(wl, 5, 4.25, 16);
    const uint64_t first = pipeline.runHash();
    pipeline.runConstantFrequency(wl, 5, 4.25, 16);
    const uint64_t second = pipeline.runHash();

    EXPECT_EQ(first, second);
}

TEST(DeterminismAudit, RunHashIdenticalWithObsOnAndOff)
{
    // The observability layer (src/obs) reads simulator state but must
    // never feed it: enabling metrics + tracing cannot move a single
    // bit of any state hash, at any thread count.
    GlobalPoolGuard guard;
    struct ObsOffGuard
    {
        ~ObsOffGuard()
        {
            obs::setEnabled(false);
            obs::MetricsRegistry::global().reset();
            obs::TraceBuffer::global().clear();
        }
    } obs_guard;

    for (int threads : {1, 8}) {
        ThreadPool::resetGlobal(threads);

        obs::setEnabled(false);
        const SweepHashes off = sweepHashes();

        obs::setEnabled(true);
        const SweepHashes on = sweepHashes();
        obs::setEnabled(false);

        ASSERT_EQ(off.runHashes, on.runHashes)
            << "observability perturbed the run hash at " << threads
            << " thread(s)";
        ASSERT_EQ(off.stepHashes, on.stepHashes)
            << "observability perturbed a step hash at " << threads
            << " thread(s)";
    }
}

TEST(DeterminismAudit, ParallelGBTTrainingIsBitwiseDeterministic)
{
    GlobalPoolGuard guard;

    // Build the dataset once (its own determinism is covered by
    // test_parallel.cc); audit the feature-parallel trainer.
    ThreadPool::resetGlobal(1);
    const Dataset data = smallTrainingSet();

    GBTParams params;
    params.nEstimators = 24;
    params.maxDepth = 3;

    GBTRegressor serial;
    serial.train(data, params);
    const uint64_t serial_hash = modelHash(serial);

    ThreadPool::resetGlobal(8);
    GBTRegressor threaded;
    threaded.train(data, params);
    const uint64_t threaded_hash = modelHash(threaded);

    EXPECT_EQ(serial_hash, threaded_hash)
        << "GBT model diverged between 1- and 8-thread training";

    // And the models must predict identically, bit for bit.
    const auto pa = serial.predictAll(data);
    ThreadPool::resetGlobal(1);
    const auto pb = threaded.predictAll(data);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i)
        ASSERT_EQ(pa[i], pb[i]);
}
