/** @file Unit tests for the floorplan container and the Skylake die. */

#include <gtest/gtest.h>

#include <numeric>

#include "floorplan/floorplan.hh"
#include "floorplan/skylake.hh"

using namespace boreas;

TEST(Floorplan, AddAndFindUnits)
{
    Floorplan fp(1e-3, 1e-3);
    const int a = fp.addUnit("a", UnitKind::IntALU,
                             {0.0, 0.0, 0.5e-3, 0.5e-3}, 0);
    const int b = fp.addUnit("b", UnitKind::FPU,
                             {0.5e-3, 0.0, 0.5e-3, 0.5e-3}, 0);
    EXPECT_EQ(fp.numUnits(), 2u);
    EXPECT_EQ(fp.findUnit("a"), a);
    EXPECT_EQ(fp.findUnit("b"), b);
    EXPECT_EQ(fp.findUnit("missing"), -1);
    EXPECT_EQ(fp.findUnit(UnitKind::FPU, 0), b);
    EXPECT_EQ(fp.findUnit(UnitKind::L3, -1), -1);
}

TEST(FloorplanDeathTest, RejectsDuplicateNames)
{
    Floorplan fp(1e-3, 1e-3);
    fp.addUnit("a", UnitKind::IntALU, {0.0, 0.0, 1e-4, 1e-4}, 0);
    EXPECT_DEATH(fp.addUnit("a", UnitKind::FPU,
                            {0.0, 0.0, 1e-4, 1e-4}, 0),
                 "duplicate");
}

TEST(FloorplanDeathTest, RejectsUnitsOutsideDie)
{
    Floorplan fp(1e-3, 1e-3);
    EXPECT_DEATH(fp.addUnit("big", UnitKind::L2,
                            {0.5e-3, 0.0, 1e-3, 1e-4}, 0),
                 "outside");
}

TEST(Floorplan, UtilizationIsPlacedFraction)
{
    Floorplan fp(2e-3, 2e-3);
    fp.addUnit("quarter", UnitKind::L2, {0.0, 0.0, 1e-3, 1e-3}, 0);
    EXPECT_NEAR(fp.utilization(), 0.25, 1e-12);
}

TEST(Floorplan, RasterizeFractionsSumToOne)
{
    Floorplan fp(1e-3, 1e-3);
    fp.addUnit("u", UnitKind::DCache,
               {0.1e-3, 0.2e-3, 0.55e-3, 0.35e-3}, 0);
    const auto maps = fp.rasterize(8, 8);
    ASSERT_EQ(maps.size(), 1u);
    const double total = std::accumulate(maps[0].fractions.begin(),
                                         maps[0].fractions.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (int cell : maps[0].cells) {
        EXPECT_GE(cell, 0);
        EXPECT_LT(cell, 64);
    }
}

TEST(Floorplan, RasterizeAlignedUnitHitsExactCells)
{
    Floorplan fp(1e-3, 1e-3);
    // Exactly the top-left quadrant of a 2x2 grid.
    fp.addUnit("q", UnitKind::L2, {0.0, 0.0, 0.5e-3, 0.5e-3}, 0);
    const auto maps = fp.rasterize(2, 2);
    ASSERT_EQ(maps[0].cells.size(), 1u);
    EXPECT_EQ(maps[0].cells[0], 0);
    EXPECT_NEAR(maps[0].fractions[0], 1.0, 1e-9);
}

class SkylakeCores : public ::testing::TestWithParam<int>
{
};

TEST_P(SkylakeCores, BuildsRequestedCores)
{
    SkylakeParams params;
    params.numCores = GetParam();
    const Floorplan fp = buildSkylakeFloorplan(params);

    // 13 units per core + L3 + SoC.
    EXPECT_EQ(fp.numUnits(),
              static_cast<size_t>(13 * params.numCores + 2));
    for (int c = 0; c < params.numCores; ++c) {
        EXPECT_GE(fp.findUnit(UnitKind::IntALU, c), 0);
        EXPECT_GE(fp.findUnit(UnitKind::FPU, c), 0);
        EXPECT_GE(fp.findUnit(UnitKind::DCache, c), 0);
    }
    EXPECT_GE(fp.findUnit(UnitKind::L3, -1), 0);
    EXPECT_GE(fp.findUnit(UnitKind::SoC, -1), 0);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SkylakeCores,
                         ::testing::Values(1, 2, 3, 4));

TEST(Skylake, CoreUnitsTileTheCoreExactly)
{
    const Floorplan fp = buildSkylakeFloorplan();
    double core0_area = 0.0;
    for (const auto &u : fp.units())
        if (u.coreId == 0)
            core0_area += u.rect.area();
    const double edge = SkylakeParams{}.coreSize;
    EXPECT_NEAR(core0_area, edge * edge, edge * edge * 0.01);
}

TEST(Skylake, UnitsDoNotOverlap)
{
    const Floorplan fp = buildSkylakeFloorplan();
    const auto &units = fp.units();
    for (size_t i = 0; i < units.size(); ++i) {
        for (size_t j = i + 1; j < units.size(); ++j) {
            EXPECT_LT(units[i].rect.overlapArea(units[j].rect),
                      1e-12)
                << units[i].name << " overlaps " << units[j].name;
        }
    }
}

TEST(Skylake, AluIsAdjacentToSchedulerAndFpu)
{
    // The hotspot cluster: ALU must sit next to scheduler and FPU so
    // execution bursts heat a contiguous region (what makes tsens03 the
    // best sensor site).
    const Floorplan fp = buildSkylakeFloorplan();
    const auto &alu = fp.unit(fp.findUnit(UnitKind::IntALU, 0)).rect;
    const auto &sched =
        fp.unit(fp.findUnit(UnitKind::Scheduler, 0)).rect;
    const auto &fpu = fp.unit(fp.findUnit(UnitKind::FPU, 0)).rect;
    EXPECT_LT(distance(alu.center(), sched.center()), 1.5e-3);
    EXPECT_LT(distance(alu.center(), fpu.center()), 1.5e-3);
}

TEST(Skylake, UtilizationIsReasonable)
{
    const Floorplan fp = buildSkylakeFloorplan();
    EXPECT_GT(fp.utilization(), 0.5);
    EXPECT_LE(fp.utilization(), 1.0);
}
