/** @file Unit tests for the ML dataset container. */

#include <gtest/gtest.h>

#include "ml/dataset.hh"

using namespace boreas;

namespace
{

Dataset
toyData()
{
    Dataset d({"a", "b", "c"});
    d.addRow({1.0, 2.0, 3.0}, 10.0, 0);
    d.addRow({4.0, 5.0, 6.0}, 20.0, 1);
    d.addRow({7.0, 8.0, 9.0}, 30.0, 0);
    d.addRow({1.5, 2.5, 3.5}, 40.0, 2);
    return d;
}

} // namespace

TEST(Dataset, BasicAccessors)
{
    const Dataset d = toyData();
    EXPECT_EQ(d.numRows(), 4u);
    EXPECT_EQ(d.numFeatures(), 3u);
    EXPECT_DOUBLE_EQ(d.x(1, 2), 6.0);
    EXPECT_DOUBLE_EQ(d.y(2), 30.0);
    EXPECT_EQ(d.group(3), 2);
    EXPECT_DOUBLE_EQ(d.row(1)[0], 4.0);
}

TEST(Dataset, TargetMean)
{
    EXPECT_DOUBLE_EQ(toyData().targetMean(), 25.0);
    Dataset empty({"x"});
    EXPECT_DOUBLE_EQ(empty.targetMean(), 0.0);
}

TEST(Dataset, DistinctGroupsInFirstAppearanceOrder)
{
    const auto groups = toyData().distinctGroups();
    EXPECT_EQ(groups, (std::vector<int>{0, 1, 2}));
}

TEST(Dataset, SelectGroupsKeepsMatchingRows)
{
    const Dataset sel = toyData().selectGroups({0});
    EXPECT_EQ(sel.numRows(), 2u);
    EXPECT_DOUBLE_EQ(sel.y(0), 10.0);
    EXPECT_DOUBLE_EQ(sel.y(1), 30.0);
}

TEST(Dataset, SelectGroupsInverted)
{
    const Dataset sel = toyData().selectGroups({0}, /*invert=*/true);
    EXPECT_EQ(sel.numRows(), 2u);
    EXPECT_DOUBLE_EQ(sel.y(0), 20.0);
    EXPECT_DOUBLE_EQ(sel.y(1), 40.0);
}

TEST(Dataset, SelectFeaturesReordersColumns)
{
    const Dataset sel = toyData().selectFeatures({2, 0});
    EXPECT_EQ(sel.numFeatures(), 2u);
    EXPECT_EQ(sel.featureNames()[0], "c");
    EXPECT_EQ(sel.featureNames()[1], "a");
    EXPECT_DOUBLE_EQ(sel.x(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(sel.x(0, 1), 1.0);
    // Targets and groups carry over.
    EXPECT_DOUBLE_EQ(sel.y(3), 40.0);
    EXPECT_EQ(sel.group(1), 1);
}

TEST(Dataset, FeatureIndexLookup)
{
    const Dataset d = toyData();
    EXPECT_EQ(d.featureIndex("b"), 1);
    EXPECT_EQ(d.featureIndex("zz"), -1);
}

TEST(DatasetDeathTest, RowWidthMismatchPanics)
{
    Dataset d({"a", "b"});
    EXPECT_DEATH(d.addRow({1.0}, 0.0, 0), "row width");
}
