/**
 * @file
 * Tests for the spectral thermal fast path: the 2-D DCT plan, the
 * mode-space exponential integrator, analytic closed-form solutions
 * for both integrators, and the surrogate seam (DESIGN.md §9).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/checked.hh"
#include "common/dct.hh"
#include "common/rng.hh"
#include "floorplan/skylake.hh"
#include "thermal/spectral_solver.hh"
#include "thermal/surrogate.hh"
#include "thermal/thermal_grid.hh"

using namespace boreas;

namespace
{

std::vector<double>
randomField(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> field(n);
    for (double &v : field)
        v = rng.uniform(20.0, 120.0);
    return field;
}

/**
 * Apply the explicit solver's lateral stencil (missing boundary
 * neighbors simply omitted — the grid's Neumann condition) in real
 * space: out[i] = sum_neighbors (x[j] - x[i]).
 */
std::vector<double>
applyStencil(const std::vector<double> &x, int nx, int ny)
{
    std::vector<double> out(x.size(), 0.0);
    for (int y = 0; y < ny; ++y) {
        for (int xx = 0; xx < nx; ++xx) {
            const int i = y * nx + xx;
            double acc = 0.0;
            if (xx > 0)
                acc += x[i - 1] - x[i];
            if (xx < nx - 1)
                acc += x[i + 1] - x[i];
            if (y > 0)
                acc += x[i - nx] - x[i];
            if (y < ny - 1)
                acc += x[i + nx] - x[i];
            out[i] = acc;
        }
    }
    return out;
}

/** A one-unit floorplan covering the entire (square or not) die. */
Floorplan
fullDieFloorplan(Meters w, Meters h)
{
    Floorplan fp(w, h);
    fp.addUnit("die", UnitKind::IntALU, {0.0, 0.0, w, h}, 0);
    return fp;
}

} // namespace

// ---------------------------------------------------------------------
// Dct2Plan
// ---------------------------------------------------------------------

TEST(Dct2Plan, RoundTripPow2)
{
    for (int n : {16, 64}) {
        Dct2Plan plan(n, n);
        const std::vector<double> field = randomField(n * n, 7 + n);
        std::vector<double> modes(field.size());
        std::vector<double> back(field.size());
        plan.forward(field.data(), modes.data());
        plan.inverse(modes.data(), back.data());
        for (size_t i = 0; i < field.size(); ++i)
            ASSERT_NEAR(back[i], field[i], 1e-9);
    }
}

TEST(Dct2Plan, RoundTripNonPow2)
{
    Dct2Plan plan(12, 20);
    const std::vector<double> field = randomField(12 * 20, 11);
    std::vector<double> modes(field.size());
    std::vector<double> back(field.size());
    plan.forward(field.data(), modes.data());
    plan.inverse(modes.data(), back.data());
    for (size_t i = 0; i < field.size(); ++i)
        ASSERT_NEAR(back[i], field[i], 1e-9);
}

TEST(Dct2Plan, ModeZeroIsFieldSum)
{
    // The sink node couples to the spreader through the field *sum*,
    // which must be exactly the (0,0) coefficient of the unnormalized
    // DCT-II.
    Dct2Plan plan(16, 16);
    const std::vector<double> field = randomField(256, 3);
    double sum = 0.0;
    for (double v : field)
        sum += v;
    std::vector<double> modes(field.size());
    plan.forward(field.data(), modes.data());
    EXPECT_NEAR(modes[0], sum, std::fabs(sum) * 1e-12);
}

TEST(Dct2Plan, DiagonalizesTheLateralStencil)
{
    // DCT(stencil(x)) == -lam .* DCT(x): the transform's cosine basis
    // satisfies the same half-sample reflective boundary condition as
    // the explicit stencil's missing-neighbor omission, so the solvers
    // integrate the *same* semi-discrete system.
    struct Size { int nx, ny; };
    for (const auto &[nx, ny] : {Size{16, 16}, Size{12, 8}}) {
        Dct2Plan plan(nx, ny);
        const std::vector<double> x = randomField(nx * ny, 19);
        const std::vector<double> sx = applyStencil(x, nx, ny);

        std::vector<double> mx(x.size()), msx(x.size());
        plan.forward(x.data(), mx.data());
        plan.forward(sx.data(), msx.data());

        for (int kx = 0; kx < nx; ++kx) {
            for (int ky = 0; ky < ny; ++ky) {
                const double lam =
                    Dct2Plan::laplacianEigenvalue(kx, nx) +
                    Dct2Plan::laplacianEigenvalue(ky, ny);
                const int m = kx * ny + ky;
                ASSERT_NEAR(msx[m], -lam * mx[m], 1e-7)
                    << "mode (" << kx << ", " << ky << ")";
            }
        }
    }
}

// ---------------------------------------------------------------------
// Spectral solver vs the explicit reference
// ---------------------------------------------------------------------

namespace
{

/** Scatter unit powers to cells the way ThermalGrid does. */
std::vector<Watts>
scatterPower(const std::vector<UnitCellMap> &maps,
             const std::vector<Watts> &unit_power, int n)
{
    std::vector<Watts> cell(n, 0.0);
    for (size_t u = 0; u < unit_power.size(); ++u)
        for (size_t k = 0; k < maps[u].cells.size(); ++k)
            cell[maps[u].cells[k]] +=
                unit_power[u] * maps[u].fractions[k];
    return cell;
}

/**
 * Max per-step spectral-vs-explicit divergence over a fig7-style run:
 * each step the raw spectral solver is re-synced to the explicit
 * grid's state, both advance one telemetry interval from that shared
 * state, and the fields are compared. `dt_safety` controls the
 * explicit reference's substep.
 */
double
perStepDivergence(double dt_safety, int steps)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams pe;
    pe.dtSafety = dt_safety;
    ThermalGrid ge(fp, pe);
    SpectralThermalSolver solver(ge.spectralNetwork());
    const std::vector<UnitCellMap> maps = fp.rasterize(pe.nx, pe.ny);

    Rng rng(2023);
    std::vector<Watts> power(fp.numUnits(), 0.0);
    std::vector<double> ssi, ssp;
    double max_err = 0.0;
    for (int step = 0; step < steps; ++step) {
        if (step % 12 == 0) {
            for (double &p : power)
                p = rng.uniform(0.0, 8.0);
            ge.setUnitPower(power);
            solver.setPower(
                scatterPower(maps, power, ge.numCells()));
        }
        solver.loadState(ge.siliconTemps(), ge.spreaderTemps(),
                         ge.sinkTemp());
        solver.step(kTelemetryStep);
        ge.step(kTelemetryStep);
        solver.realizeSilicon(ssi);
        solver.realizeSpreader(ssp);
        const std::vector<Celsius> &te = ge.siliconTemps();
        const std::vector<Celsius> &tp = ge.spreaderTemps();
        for (size_t i = 0; i < te.size(); ++i) {
            max_err = std::max(max_err, std::fabs(te[i] - ssi[i]));
            max_err = std::max(max_err, std::fabs(tp[i] - ssp[i]));
        }
        max_err = std::max(
            max_err, std::fabs(ge.sinkTemp() - solver.sinkTemp()));
    }
    return max_err;
}

} // namespace

TEST(SpectralSolver, PerStepDivergenceWithinShadowBound)
{
    // Per-step divergence from the production explicit reference stays
    // under the checked-build shadow tolerance, so shadow verification
    // never falls back on realistic runs. The divergence is dominated
    // by the reference's own forward-Euler truncation (it shrinks
    // ~linearly with dtSafety; see WithinBoundOfRefinedReference).
    const double bound = ThermalParams{}.spectralShadowTolerance;
    EXPECT_LT(perStepDivergence(ThermalParams{}.dtSafety, 240), bound);
}

TEST(SpectralSolver, WithinBoundOfRefinedReference)
{
    // The headline accuracy claim (ISSUE/DESIGN §9.5): against a
    // 16x-refined explicit reference — whose truncation error is
    // correspondingly 16x smaller, i.e. near-exact — the spectral step
    // is within the documented 0.05 C bound per step (measured
    // ~0.011 C; most of even that is the reference's residual error).
    EXPECT_LT(perStepDivergence(0.025, 120), 0.05);
}

TEST(SpectralSolver, MatchesExplicitOnNonPow2Grid)
{
    // Exercises the dense-transform DCT fallback end to end.
    Floorplan fp = fullDieFloorplan(12e-3, 20e-3);
    fp.addUnit("hot", UnitKind::FPU, {1e-3, 2e-3, 4e-3, 6e-3}, 0);
    ThermalParams pe;
    pe.nx = 12;
    pe.ny = 20;
    ThermalParams ps = pe;
    ps.solver = ThermalSolverKind::Spectral;
    ps.spectralShadowCheck = false;
    ThermalGrid ge(fp, pe);
    ThermalGrid gs(fp, ps);

    const std::vector<Watts> power{4.0, 12.0};
    ge.setUnitPower(power);
    gs.setUnitPower(power);
    double max_err = 0.0;
    for (int step = 0; step < 100; ++step) {
        ge.step(kTelemetryStep);
        gs.step(kTelemetryStep);
        const std::vector<Celsius> &te = ge.siliconTemps();
        const std::vector<Celsius> &ts = gs.siliconTemps();
        for (size_t i = 0; i < te.size(); ++i)
            max_err = std::max(max_err, std::fabs(te[i] - ts[i]));
    }
    EXPECT_LT(max_err, 0.05);
}

TEST(SpectralSolver, ZeroPowerStaysAtAmbient)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams p;
    p.nx = 16;
    p.ny = 16;
    p.solver = ThermalSolverKind::Spectral;
    ThermalGrid grid(fp, p);
    grid.setUnitPower(std::vector<Watts>(fp.numUnits(), 0.0));
    for (int i = 0; i < 100; ++i)
        grid.step(kTelemetryStep);
    EXPECT_NEAR(grid.maxSiliconTemp(), kAmbient, 1e-9);
    EXPECT_NEAR(grid.sinkTemp(), kAmbient, 1e-9);
}

TEST(SpectralSolver, DeterministicAcrossInstances)
{
    // Two identical spectral grids must produce bit-identical
    // trajectories — the pipeline runHash audit depends on it.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams p;
    p.solver = ThermalSolverKind::Spectral;
    p.spectralShadowCheck = false;
    ThermalGrid a(fp, p);
    ThermalGrid b(fp, p);

    Rng rng(77);
    std::vector<Watts> power(fp.numUnits(), 0.0);
    for (int step = 0; step < 50; ++step) {
        if (step % 12 == 0)
            for (double &w : power)
                w = rng.uniform(0.0, 10.0);
        a.setUnitPower(power);
        b.setUnitPower(power);
        a.step(kTelemetryStep);
        b.step(kTelemetryStep);
    }
    const std::vector<Celsius> &ta = a.siliconTemps();
    const std::vector<Celsius> &tb = b.siliconTemps();
    for (size_t i = 0; i < ta.size(); ++i)
        ASSERT_EQ(ta[i], tb[i]);
    EXPECT_EQ(a.sinkTemp(), b.sinkTemp());
}

// ---------------------------------------------------------------------
// Analytic closed-form solutions (both integrators)
// ---------------------------------------------------------------------

namespace
{

/**
 * Closed-form uniform-power steady state of the resistance chain.
 * Uniform power means zero lateral flux, so the grid collapses to
 * silicon -> spreader -> sink -> ambient in series:
 *
 *   T_sink = Ta + P * R_amb
 *   T_sp   = T_sink + P * R_spread         (per cell: (P/n)/gSinkCell)
 *   T_si   = T_sp + (P/n) / gVert
 */
struct SteadyExpect
{
    double sink, sp, si;
};

SteadyExpect
steadyExpect(const ThermalGrid &grid, Watts total_power)
{
    const ThermalParams &p = grid.params();
    SteadyExpect e;
    e.sink = p.ambient + total_power * p.sinkAmbientResistance;
    e.sp = e.sink + total_power * p.sinkSpreadResistance;
    const double p_cell = total_power / grid.numCells();
    // Reconstruct gVert exactly the way computeConstants() does.
    const double cell_area =
        (8e-3 / p.nx) * (8e-3 / p.ny);
    const double r_si =
        0.5 * p.siThickness / (p.siConductivity * cell_area);
    const double r_tim =
        p.timThickness / (p.timConductivity * cell_area);
    const double r_sp =
        0.5 * p.spreaderThickness / (p.cuConductivity * cell_area);
    e.si = e.sp + p_cell * (r_si + r_tim + r_sp);
    return e;
}

void
expectUniformSteadyState(ThermalSolverKind kind, Seconds dt, int steps)
{
    const Floorplan fp = fullDieFloorplan(8e-3, 8e-3);
    ThermalParams p;
    p.nx = 8;
    p.ny = 8;
    p.solver = kind;
    p.spectralShadowCheck = false; // coarse dt; explicit would disagree
    p.sinkCapacitance = 0.5;       // small sink so the test converges
    ThermalGrid grid(fp, p);

    const Watts total = 20.0;
    grid.setUnitPower({total});
    for (int i = 0; i < steps; ++i)
        grid.step(dt);

    const SteadyExpect e = steadyExpect(grid, total);
    EXPECT_NEAR(grid.sinkTemp(), e.sink, 1e-3);
    for (Celsius t : grid.siliconTemps())
        EXPECT_NEAR(t, e.si, 1e-3);
}

} // namespace

TEST(AnalyticSteadyState, ExplicitMatchesResistanceChain)
{
    // Forward Euler's fixed point solves A x + b = 0 exactly, so after
    // settling the explicit field must hit the closed form to within
    // the residual transient (~1e-5 C after ~25 time constants).
    expectUniformSteadyState(ThermalSolverKind::Explicit, 5e-3, 800);
}

TEST(AnalyticSteadyState, SpectralMatchesResistanceChain)
{
    // The exponential integrator has no stability limit: second-scale
    // steps are exact, so far fewer steps reach the same fixed point.
    expectUniformSteadyState(ThermalSolverKind::Spectral, 0.1, 50);
}

namespace
{

void
expectExponentialCooling(ThermalSolverKind kind, Seconds dt, int steps)
{
    // Zero power, everything starting hot and uniform: the internal
    // capacitances (~0.24 J/K) ride the dominant sink mode
    // (C = 150 J/K), so the stack cools as a single exponential with
    //   tau = R_amb * (C_sink + C_si_total + C_sp_total)
    // to within ~0.2 % (interior-resistance correction).
    const Floorplan fp = fullDieFloorplan(8e-3, 8e-3);
    ThermalParams p;
    p.nx = 8;
    p.ny = 8;
    p.solver = kind;
    p.spectralShadowCheck = false;
    ThermalGrid grid(fp, p);

    const double delta0 = 20.0;
    grid.reset(p.ambient + delta0);
    grid.setUnitPower({0.0});
    for (int i = 0; i < steps; ++i)
        grid.step(dt);
    const Seconds elapsed = dt * steps;

    const double die_area = 8e-3 * 8e-3;
    const double c_si = p.siVolHeatCap * die_area * p.siThickness;
    const double c_sp = p.cuVolHeatCap * die_area * p.spreaderThickness;
    const double tau =
        p.sinkAmbientResistance * (p.sinkCapacitance + c_si + c_sp);
    const double expected =
        p.ambient + delta0 * std::exp(-elapsed / tau);

    EXPECT_NEAR(grid.sinkTemp(), expected, 0.1);
    EXPECT_NEAR(grid.maxSiliconTemp(), expected, 0.1);
}

} // namespace

TEST(AnalyticCooling, ExplicitMatchesTimeConstant)
{
    expectExponentialCooling(ThermalSolverKind::Explicit, 2e-3, 1500);
}

TEST(AnalyticCooling, SpectralMatchesTimeConstant)
{
    expectExponentialCooling(ThermalSolverKind::Spectral, 0.1, 30);
}

// ---------------------------------------------------------------------
// Checked-build shadow verification
// ---------------------------------------------------------------------

TEST(SpectralShadow, ZeroToleranceFallsBackToExplicitExactly)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "shadow verification is checked-build only";

    // With the divergence bound forced to zero the shadow run rejects
    // every spectral step, so the grid must reproduce the explicit
    // trajectory bit for bit — proving both that the fallback engages
    // and that it adopts the reference result wholesale.
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams pe;
    pe.nx = 16;
    pe.ny = 16;
    ThermalParams ps = pe;
    ps.solver = ThermalSolverKind::Spectral;
    ps.spectralShadowCheck = true;
    ps.spectralShadowTolerance = 0.0;
    ThermalGrid ge(fp, pe);
    ThermalGrid gs(fp, ps);

    std::vector<Watts> power(fp.numUnits(), 0.0);
    power[fp.findUnit(UnitKind::FPU, 0)] = 6.0;
    ge.setUnitPower(power);
    gs.setUnitPower(power);
    for (int i = 0; i < 20; ++i) {
        ge.step(kTelemetryStep);
        gs.step(kTelemetryStep);
    }
    const std::vector<Celsius> &te = ge.siliconTemps();
    const std::vector<Celsius> &ts = gs.siliconTemps();
    for (size_t i = 0; i < te.size(); ++i)
        ASSERT_EQ(ts[i], te[i]);
    EXPECT_EQ(gs.sinkTemp(), ge.sinkTemp());
}

// ---------------------------------------------------------------------
// Surrogate seam
// ---------------------------------------------------------------------

namespace
{

/** Mock backend: deposits power/heat as a fixed offset per step. */
class RampSurrogate : public ThermalSurrogate
{
  public:
    void
    step(const std::vector<Watts> &cell_power, Seconds dt,
         std::vector<Celsius> &si, std::vector<Celsius> &sp,
         Celsius &sink) override
    {
        (void)cell_power;
        (void)dt;
        for (Celsius &t : si)
            t += 1.0;
        for (Celsius &t : sp)
            t += 0.5;
        sink += 0.25;
        ++calls;
    }

    int calls = 0;
};

} // namespace

TEST(SurrogateSeam, GridDispatchesToAttachedBackend)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams p;
    p.nx = 16;
    p.ny = 16;
    p.solver = ThermalSolverKind::Surrogate;
    ThermalGrid grid(fp, p);
    RampSurrogate surrogate;
    grid.setSurrogate(&surrogate);

    grid.setUnitPower(std::vector<Watts>(fp.numUnits(), 0.0));
    for (int i = 0; i < 4; ++i)
        grid.step(kTelemetryStep);

    EXPECT_EQ(surrogate.calls, 4);
    EXPECT_DOUBLE_EQ(grid.maxSiliconTemp(), kAmbient + 4.0);
    EXPECT_DOUBLE_EQ(grid.sinkTemp(), kAmbient + 1.0);
}

using SurrogateSeamDeathTest = ::testing::Test;

TEST(SurrogateSeamDeathTest, SteppingWithoutBackendPanics)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams p;
    p.nx = 16;
    p.ny = 16;
    p.solver = ThermalSolverKind::Surrogate;
    ThermalGrid grid(fp, p);
    EXPECT_DEATH(grid.step(kTelemetryStep), "none attached");
}

TEST(SurrogateSeamDeathTest, AttachingToWrongSolverPanics)
{
    const Floorplan fp = buildSkylakeFloorplan();
    ThermalParams p;
    p.nx = 16;
    p.ny = 16;
    ThermalGrid grid(fp, p);
    RampSurrogate surrogate;
    EXPECT_DEATH(grid.setSurrogate(&surrogate), "explicit");
}

// ---------------------------------------------------------------------
// Solver selection plumbing
// ---------------------------------------------------------------------

TEST(SolverSelection, NamesRoundTrip)
{
    for (ThermalSolverKind kind :
         {ThermalSolverKind::Explicit, ThermalSolverKind::Spectral,
          ThermalSolverKind::Surrogate})
        EXPECT_EQ(parseThermalSolverName(thermalSolverName(kind)), kind);
}

using SolverSelectionDeathTest = ::testing::Test;

TEST(SolverSelectionDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(parseThermalSolverName("crank-nicolson"),
                 "unknown thermal solver");
}
