/**
 * @file
 * Shared helpers for the Boreas test suite: a reduced-cost pipeline
 * configuration (coarser thermal grid) and a tiny trainer configuration
 * so integration tests run in seconds. Physics-calibration assertions
 * (exact severity values) only hold at the default 64x64 grid and are
 * confined to the tests that use defaults.
 */

#pragma once

#include "boreas/pipeline.hh"
#include "boreas/trainer.hh"

namespace boreas::test
{

/** Pipeline config with a 32x32 grid: ~4x faster, same qualitative
 *  behaviour. */
inline PipelineConfig
fastPipelineConfig()
{
    PipelineConfig cfg;
    cfg.thermal.nx = 32;
    cfg.thermal.ny = 32;
    return cfg;
}

/** Trainer config small enough for unit tests (seconds, not minutes). */
inline TrainerConfig
tinyTrainerConfig()
{
    TrainerConfig cfg;
    cfg.data.frequencies = {3.5, 3.75, 4.0, 4.25, 4.5, 4.75, 5.0};
    cfg.data.walkSegments = 2;
    cfg.data.traceSteps = 96;
    cfg.gbt.nEstimators = 100;
    return cfg;
}

} // namespace boreas::test
