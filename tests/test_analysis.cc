/** @file Tests for the Sec. III characterization analyses. */

#include <gtest/gtest.h>

#include "boreas/analysis.hh"
#include "test_util.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

namespace
{

std::vector<const WorkloadSpec *>
pick(std::initializer_list<const char *> names)
{
    std::vector<const WorkloadSpec *> out;
    for (const char *n : names)
        out.push_back(&findWorkload(n));
    return out;
}

} // namespace

TEST(SeveritySweep, ShapeAndMonotonicity)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<GHz> freqs{3.0, 4.0, 5.0};
    const SeveritySweep sweep = severitySweep(
        p, pick({"povray", "cactusADM"}), freqs, 42, 75);
    ASSERT_EQ(sweep.workloads.size(), 2u);
    ASSERT_EQ(sweep.peak.size(), 2u);
    ASSERT_EQ(sweep.peak[0].size(), 3u);
    // Severity grows with frequency for both workloads.
    for (size_t w = 0; w < 2; ++w) {
        EXPECT_LE(sweep.peak[w][0], sweep.peak[w][1] + 0.05);
        EXPECT_LT(sweep.peak[w][1], sweep.peak[w][2]);
    }
    EXPECT_EQ(sweep.workloadIndex("cactusADM"), 1);
    EXPECT_EQ(sweep.workloadIndex("nope"), -1);
}

TEST(SeveritySweep, OracleAndGlobalLimitLogic)
{
    // Synthetic sweep: oracle picks the highest sub-1.0 frequency and
    // the global limit is the min across workloads.
    SeveritySweep sweep;
    sweep.workloads = {"a", "b"};
    sweep.freqs = {3.0, 4.0, 5.0};
    sweep.peak = {{0.5, 0.9, 1.2}, {0.4, 1.1, 1.5}};
    EXPECT_DOUBLE_EQ(sweep.oracleFrequency(0), 4.0);
    EXPECT_DOUBLE_EQ(sweep.oracleFrequency(1), 3.0);
    EXPECT_DOUBLE_EQ(sweep.globalLimit(), 3.0);
}

TEST(SeveritySweep, NothingSafeFallsBackToLowest)
{
    SeveritySweep sweep;
    sweep.workloads = {"x"};
    sweep.freqs = {3.0, 4.0};
    sweep.peak = {{1.3, 1.8}};
    EXPECT_DOUBLE_EQ(sweep.oracleFrequency(0), 3.0);
}

TEST(CriticalTemps, UnsafePointsHaveFiniteCriticalTemp)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<GHz> freqs{3.75, 5.0};
    const CriticalTempStudy study = criticalTempStudy(
        p, pick({"povray"}), freqs, kBestSensorIndex, 42, 75);
    ASSERT_EQ(study.crit.size(), 1u);
    // povray at 5.0 GHz is deep in unsafe territory: a critical
    // temperature must have been observed.
    EXPECT_LT(study.crit[0][1], kNoCriticalTemp);
    EXPECT_GT(study.crit[0][1], kAmbient);
}

TEST(CriticalTemps, SafeWorkloadHasNoCriticalTemp)
{
    SimulationPipeline p(fastPipelineConfig());
    const std::vector<GHz> freqs{2.0};
    const CriticalTempStudy study = criticalTempStudy(
        p, pick({"cactusADM"}), freqs, kBestSensorIndex, 42, 75);
    EXPECT_EQ(study.crit[0][0], kNoCriticalTemp);
}

TEST(CriticalTemps, GlobalTableTakesMinimum)
{
    CriticalTempStudy study;
    study.workloads = {"a", "b"};
    study.freqs = {3.0, 4.0};
    study.crit = {{kNoCriticalTemp, 80.0}, {90.0, 70.0}};
    const CriticalTempTable table = study.globalTable();
    ASSERT_EQ(table.criticalTemp.size(), 2u);
    EXPECT_DOUBLE_EQ(table.criticalTemp[0], 90.0);
    EXPECT_DOUBLE_EQ(table.criticalTemp[1], 70.0);
}

TEST(CriticalTemps, LargerDelayLowersCriticalTemp)
{
    // With a longer sensor delay, the reading at the moment severity
    // crosses 1.0 is older (cooler while heating), so the observed
    // critical temperature drops — the paper's gromacs effect.
    PipelineConfig fast_sensor = fastPipelineConfig();
    fast_sensor.sensors.delaySteps = 0;
    PipelineConfig slow_sensor = fastPipelineConfig();
    slow_sensor.sensors.delaySteps = 12;

    const std::vector<GHz> freqs{5.0};
    SimulationPipeline p_fast(fast_sensor);
    SimulationPipeline p_slow(slow_sensor);
    const auto study_fast = criticalTempStudy(
        p_fast, pick({"gromacs"}), freqs, kBestSensorIndex, 42, 150);
    const auto study_slow = criticalTempStudy(
        p_slow, pick({"gromacs"}), freqs, kBestSensorIndex, 42, 150);
    ASSERT_LT(study_fast.crit[0][0], kNoCriticalTemp);
    ASSERT_LT(study_slow.crit[0][0], kNoCriticalTemp);
    EXPECT_LT(study_slow.crit[0][0], study_fast.crit[0][0]);
}
