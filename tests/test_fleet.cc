/**
 * @file
 * Tests of the fleet layer (DESIGN.md §13): the global-budget cap
 * assignment, epoch chaining against a single long run, per-die fault
 * containment, heterogeneous per-die configuration, and the
 * 1-vs-8-thread rollup determinism gate.
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boreas/pipeline.hh"
#include "common/parallel.hh"
#include "control/static_controllers.hh"
#include "fleet/fleet.hh"
#include "test_util.hh"
#include "workload/registry.hh"

using namespace boreas;
using namespace boreas::fleet;
using boreas::test::fastPipelineConfig;

namespace
{

/** Restores the global pool to its default size on scope exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard()
    {
        ThreadPool::resetGlobal(ThreadPool::defaultThreads());
    }
};

DieControllerFactory
fixedFactory(GHz freq)
{
    return [freq](int) {
        return std::make_unique<FixedFrequencyController>("fixed", freq);
    };
}

/** A small heterogeneous fleet on the fast 32x32 thermal grid. */
FleetConfig
smallFleet(Watts budget = 0.0)
{
    FleetConfig cfg;
    cfg.base = fastPipelineConfig();
    cfg.epochs = 2;
    cfg.epochSteps = 2 * kStepsPerDecision;
    cfg.controller.globalBudget = budget;
    const char *const workloads[] = {"mcf", "povray", "bzip2",
                                     "synthetic:nas/cg.B"};
    for (int i = 0; i < 4; ++i) {
        FleetDieSpec die;
        die.workload = workloads[i];
        die.seed = 100 + static_cast<uint64_t>(i);
        die.ambient = 42.0 + 2.0 * static_cast<double>(i);
        cfg.dies.push_back(die);
    }
    return cfg;
}

} // namespace

// --- FleetController cap assignment ------------------------------------

TEST(FleetController, UnderBudgetLeavesCapsOpen)
{
    FleetControllerConfig cfg;
    cfg.globalBudget = 100.0;
    const FleetController fc(cfg);
    std::vector<DieEpochTelemetry> dies(3);
    for (auto &d : dies) {
        d.avgPower = 20.0; // 60 W total, well under budget
        d.avgFrequency = 4.0;
    }
    const std::vector<GHz> caps = fc.assign(dies);
    ASSERT_EQ(caps.size(), 3u);
    for (const GHz cap : caps)
        EXPECT_DOUBLE_EQ(cap, kMaxFrequency);
}

TEST(FleetController, OverBudgetSharesProportionally)
{
    FleetControllerConfig cfg;
    cfg.globalBudget = 60.0;
    const FleetController fc(cfg);
    std::vector<DieEpochTelemetry> dies(2);
    dies[0].avgPower = 60.0; // 2/3 of the fleet draw
    dies[0].avgFrequency = 4.5;
    dies[1].avgPower = 30.0;
    dies[1].avgFrequency = 4.5;
    const std::vector<GHz> caps = fc.assign(dies);

    // Every cap fits its die's proportional share, and is the highest
    // grid point that does (one step up would not fit).
    const VFTable vf;
    const Watts shares[] = {40.0, 20.0};
    for (int i = 0; i < 2; ++i) {
        EXPECT_LT(caps[i], kMaxFrequency) << "die " << i;
        EXPECT_LE(fc.estimatePowerAt(dies[i], caps[i]), shares[i])
            << "die " << i;
        const GHz up = vf.stepUp(caps[i]);
        if (up > caps[i] && caps[i] > kMinFrequency) {
            EXPECT_GT(fc.estimatePowerAt(dies[i], up), shares[i])
                << "die " << i;
        }
    }
    // The heavier die keeps the same cap (same power-per-share ratio),
    // never a lower one, so the cut lands fleet-wide.
    EXPECT_GE(caps[0], caps[1] - 1e-12);
}

TEST(FleetController, IncursionStepsDownEvenUnderBudget)
{
    FleetControllerConfig cfg;
    cfg.globalBudget = 0.0; // unlimited
    cfg.incursionGuardSteps = 2;
    const FleetController fc(cfg);
    std::vector<DieEpochTelemetry> dies(2);
    dies[0].avgPower = 20.0;
    dies[0].avgFrequency = 4.5;
    dies[1] = dies[0];
    dies[1].incursionSteps = 3;
    const std::vector<GHz> caps = fc.assign(dies);
    EXPECT_DOUBLE_EQ(caps[0], kMaxFrequency);
    EXPECT_DOUBLE_EQ(caps[1], kMaxFrequency - 2 * kFrequencyStep);
}

TEST(FleetController, FailedDiesAreSkipped)
{
    FleetControllerConfig cfg;
    cfg.globalBudget = 10.0;
    const FleetController fc(cfg);
    std::vector<DieEpochTelemetry> dies(2);
    dies[0].ok = false;
    dies[0].avgPower = 1000.0; // must not count against the budget
    dies[1].avgPower = 5.0;
    dies[1].avgFrequency = 4.0;
    const std::vector<GHz> caps = fc.assign(dies);
    EXPECT_DOUBLE_EQ(caps[1], kMaxFrequency);
}

// --- Epoch chaining ------------------------------------------------------

TEST(Fleet, ChainedEpochsMatchOneLongRun)
{
    // Two 36-step continueWithController() segments must reproduce one
    // 72-step runWithController() step stream bit for bit (the fleet
    // epoch loop relies on this; DESIGN.md §13).
    const int kSteps = 6 * kStepsPerDecision;
    auto source_a = makeWorkloadSource("mix:mcf+cg.B@stagger=0.8e-3");
    auto source_b = source_a->clone();

    SimulationPipeline a(fastPipelineConfig());
    FixedFrequencyController ctrl_a("fixed", 4.5);
    const RunResult one = a.runWithController(*source_a, 7, ctrl_a,
                                              4.5, kSteps);

    SimulationPipeline b(fastPipelineConfig());
    FixedFrequencyController ctrl_b("fixed", 4.5);
    ctrl_b.reset();
    b.start(*source_b, 7);
    GHz freq = 4.5;
    std::vector<StepRecord> chained;
    for (int epoch = 0; epoch < 2; ++epoch) {
        const RunResult seg =
            b.continueWithController(ctrl_b, &freq, kSteps / 2);
        chained.insert(chained.end(), seg.steps.begin(),
                       seg.steps.end());
    }

    ASSERT_EQ(one.steps.size(), chained.size());
    for (size_t s = 0; s < chained.size(); ++s)
        ASSERT_EQ(one.steps[s].stateHash, chained[s].stateHash)
            << "step " << s;
    EXPECT_EQ(a.runHash(), b.runHash());
}

// --- FleetSimulator ------------------------------------------------------

TEST(Fleet, RollupIsIdenticalAcrossThreadCounts)
{
    GlobalPoolGuard guard;
    const FleetConfig cfg = smallFleet();
    const DieControllerFactory factory = fixedFactory(4.5);

    ThreadPool::resetGlobal(1);
    const FleetRollup serial = FleetSimulator(cfg, factory).run();

    ThreadPool::resetGlobal(8);
    const FleetRollup threaded = FleetSimulator(cfg, factory).run();

    ASSERT_EQ(serial.perDie.size(), threaded.perDie.size());
    for (size_t i = 0; i < serial.perDie.size(); ++i) {
        EXPECT_EQ(serial.perDie[i].runHash, threaded.perDie[i].runHash)
            << "die " << i;
        EXPECT_EQ(serial.perDie[i].steps, threaded.perDie[i].steps);
        EXPECT_EQ(serial.perDie[i].incursionSteps,
                  threaded.perDie[i].incursionSteps);
    }
    EXPECT_EQ(serial.rollupHash, threaded.rollupHash);
    EXPECT_EQ(serial.totalSteps, threaded.totalSteps);
}

TEST(Fleet, BadDieSpecsAreReportedWithoutAbortingTheFleet)
{
    FleetConfig cfg = smallFleet();
    cfg.dies[1].workload = "mix:mcf+nosuchprogram"; // parse failure
    // More cores than the 4-core die: core-count containment (the
    // pipeline itself would panic on this).
    cfg.dies[2].workload = "mix:mcf+povray+bzip2+gromacs+mcf";

    const FleetRollup r =
        FleetSimulator(cfg, fixedFactory(4.5)).run();
    EXPECT_EQ(r.dies, 4);
    EXPECT_EQ(r.failedDies, 2);
    EXPECT_FALSE(r.perDie[1].ok);
    EXPECT_NE(r.perDie[1].error.find("nosuchprogram"),
              std::string::npos);
    EXPECT_FALSE(r.perDie[2].ok);
    EXPECT_NE(r.perDie[2].error.find("cores"), std::string::npos);
    // The healthy dies still ran every configured step.
    const int64_t expected =
        static_cast<int64_t>(cfg.epochs) * cfg.epochSteps;
    EXPECT_TRUE(r.perDie[0].ok);
    EXPECT_EQ(r.perDie[0].steps, expected);
    EXPECT_TRUE(r.perDie[3].ok);
    EXPECT_EQ(r.perDie[3].steps, expected);
    EXPECT_EQ(r.totalSteps, 2 * expected);
}

TEST(Fleet, TightBudgetLowersFleetFrequency)
{
    const FleetRollup open =
        FleetSimulator(smallFleet(0.0), fixedFactory(4.75)).run();
    // A budget far below the observed draw must pull caps down.
    const Watts tight = 0.25 * open.meanPower *
                        static_cast<double>(open.dies);
    const FleetRollup capped =
        FleetSimulator(smallFleet(tight), fixedFactory(4.75)).run();
    EXPECT_LT(capped.meanFrequency, open.meanFrequency);
    EXPECT_LT(capped.meanPower, open.meanPower);
    // Caps ended below the open fleet's.
    for (const FleetDieResult &d : capped.perDie)
        EXPECT_LT(d.finalCap, kMaxFrequency) << "die " << d.die;
}

TEST(Fleet, PerDieAmbientChangesTheRunHash)
{
    FleetConfig cfg = smallFleet();
    cfg.dies[1] = cfg.dies[0]; // same workload + seed...
    cfg.dies[1].ambient = cfg.dies[0].ambient + 5.0; // ...hotter rack

    const FleetRollup r =
        FleetSimulator(cfg, fixedFactory(4.5)).run();
    ASSERT_TRUE(r.perDie[0].ok);
    ASSERT_TRUE(r.perDie[1].ok);
    EXPECT_NE(r.perDie[0].runHash, r.perDie[1].runHash);
}
