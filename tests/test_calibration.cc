/** @file Calibration contract tests at the default (64x64) resolution:
 *  the Fig. 2 safe/unsafe boundaries the whole evaluation rests on.
 *  These use the same multi-seed max statistic as the calibration. */

#include <gtest/gtest.h>

#include "boreas/pipeline.hh"
#include "workload/spec2006.hh"

using namespace boreas;

namespace
{

double
multiSeedPeak(SimulationPipeline &pipeline, const WorkloadSpec &w,
              GHz freq)
{
    double peak = 0.0;
    for (uint64_t s : {0ULL, 97ULL, 194ULL}) {
        peak = std::max(peak,
                        pipeline.runConstantFrequency(
                            w, 2023 + w.seedSalt + s, freq)
                            .peakSeverity());
    }
    return peak;
}

} // namespace

class CalibrationBoundary : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CalibrationBoundary, OracleIsSafeAndNextStepIsNot)
{
    SimulationPipeline pipeline;
    const WorkloadSpec &w = findWorkload(GetParam());
    const GHz oracle = designOracleFrequency(w.name);
    EXPECT_LT(multiSeedPeak(pipeline, w, oracle), 1.0) << w.name;
    EXPECT_GE(multiSeedPeak(pipeline, w,
                            pipeline.vfTable().stepUp(oracle)), 1.0)
        << w.name;
}

// One workload per oracle tier: the global-limit pair, a 4.0/4.25/4.5
// representative each, and the 4.75 GHz tail.
INSTANTIATE_TEST_SUITE_P(Tiers, CalibrationBoundary,
                         ::testing::Values("povray", "hmmer", "gamess",
                                           "bzip2", "cactusADM"));

TEST(CalibrationBoundary, BaselineSafeForHottestWorkload)
{
    // 3.75 GHz must be globally safe (Sec. III-C): check the two
    // workloads whose oracle IS the baseline.
    SimulationPipeline pipeline;
    EXPECT_LT(multiSeedPeak(pipeline, findWorkload("povray"),
                            kBaselineFrequency), 1.0);
    EXPECT_LT(multiSeedPeak(pipeline, findWorkload("namd"),
                            kBaselineFrequency), 1.0);
}
