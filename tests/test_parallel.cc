/**
 * @file
 * Tests of the shared parallel-execution layer: pool/task-group
 * correctness (coverage, exception propagation, nested degradation)
 * and the end-to-end determinism contract — a fanned-out sweep must
 * produce bit-identical results at every thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "boreas/dataset_builder.hh"
#include "boreas/pipeline.hh"
#include "common/parallel.hh"
#include "test_util.hh"
#include "workload/spec2006.hh"

using namespace boreas;
using boreas::test::fastPipelineConfig;

namespace
{

/** Restores the global pool to its default size on scope exit. */
struct GlobalPoolGuard
{
    ~GlobalPoolGuard()
    {
        ThreadPool::resetGlobal(ThreadPool::defaultThreads());
    }
};

} // namespace

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(0, kN, 7, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1);
    });
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForSerialFastPathPreservesOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(0, 10, 3, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            order.push_back(static_cast<int>(i));
    });
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [&](int64_t lo, int64_t) {
                             if (lo == 42)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDegradesToSerial)
{
    ThreadPool pool(4);
    std::atomic<int> nested_escapes{0};
    pool.parallelFor(0, 8, 1, [&](int64_t, int64_t) {
        EXPECT_TRUE(ThreadPool::inWorker());
        // Thread identity is the assertion here.
        // boreas-lint: allow(wall-clock)
        const std::thread::id outer = std::this_thread::get_id();
        // A nested loop must run inline on the same thread.
        pool.parallelFor(0, 16, 1, [&](int64_t, int64_t) {
            if (std::this_thread::get_id() != outer) // boreas-lint: allow(wall-clock)
                nested_escapes.fetch_add(1);
        });
    });
    EXPECT_EQ(nested_escapes.load(), 0);
}

TEST(TaskGroup, RunsEveryTaskAndWaits)
{
    ThreadPool pool(4);
    TaskGroup group(pool);
    std::atomic<int> count{0};
    for (int i = 0; i < 32; ++i)
        group.run([&count] { count.fetch_add(1); });
    group.wait();
    EXPECT_EQ(count.load(), 32);
}

TEST(TaskGroup, PropagatesFirstException)
{
    ThreadPool pool(4);
    TaskGroup group(pool);
    group.run([] { throw std::logic_error("task failed"); });
    group.run([] {});
    EXPECT_THROW(group.wait(), std::logic_error);
    // After the throw the group is drained and reusable.
    group.run([] {});
    EXPECT_NO_THROW(group.wait());
}

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride)
{
    // Only checks the parsing contract when the variable is set by the
    // harness; without it the hardware default must be >= 1.
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(ThreadPool, TryParseThreadCountAcceptsWholeIntegersOnly)
{
    int n = 0;
    EXPECT_TRUE(tryParseThreadCount("1", &n));
    EXPECT_EQ(n, 1);
    EXPECT_TRUE(tryParseThreadCount("8", &n));
    EXPECT_EQ(n, 8);
    EXPECT_TRUE(tryParseThreadCount("4096", &n));
    EXPECT_EQ(n, kMaxThreadOverride);
    // strtol skips leading whitespace; full consumption still holds.
    EXPECT_TRUE(tryParseThreadCount(" 8", &n));
    EXPECT_EQ(n, 8);
}

TEST(ThreadPool, TryParseThreadCountRejectsJunkAndOverflow)
{
    int n = -1;
    // Trailing junk: std::atoi silently returned 8 for "8x".
    EXPECT_FALSE(tryParseThreadCount("8x", &n));
    EXPECT_FALSE(tryParseThreadCount("8 ", &n));
    EXPECT_FALSE(tryParseThreadCount("x8", &n));
    EXPECT_FALSE(tryParseThreadCount("0x8", &n));
    EXPECT_FALSE(tryParseThreadCount("8.0", &n));
    // Nothing parsed at all.
    EXPECT_FALSE(tryParseThreadCount("", &n));
    EXPECT_FALSE(tryParseThreadCount(" ", &n));
    EXPECT_FALSE(tryParseThreadCount(nullptr, &n));
    // Out of the sane range (including values that overflow long,
    // where std::atoi's behaviour was undefined).
    EXPECT_FALSE(tryParseThreadCount("0", &n));
    EXPECT_FALSE(tryParseThreadCount("-4", &n));
    EXPECT_FALSE(tryParseThreadCount("4097", &n));
    EXPECT_FALSE(tryParseThreadCount("99999999999999999999999", &n));
    // A rejected parse never writes the output.
    EXPECT_EQ(n, -1);
}

TEST(ThreadPoolDeathTest, DefaultThreadsFatalsOnMalformedEnv)
{
    EXPECT_DEATH(
        {
            setenv("BOREAS_THREADS", "8x", 1);
            ThreadPool::defaultThreads();
        },
        "BOREAS_THREADS must be an integer");
}

namespace
{

/** Fan a 2-workload x 2-frequency sweep out over the global pool. */
std::vector<RunResult>
sweepRuns()
{
    const std::vector<const WorkloadSpec *> wls{
        &findWorkload("bzip2"), &findWorkload("gamess")};
    const std::vector<GHz> freqs{3.75, 4.5};
    constexpr int kSteps = 48;

    std::vector<RunResult> out(wls.size() * freqs.size());
    parallelForEach(
        0, static_cast<int64_t>(out.size()), 1, [&](int64_t i) {
            SimulationPipeline pipeline(fastPipelineConfig());
            const size_t wi = static_cast<size_t>(i) / freqs.size();
            const size_t fi = static_cast<size_t>(i) % freqs.size();
            out[i] = pipeline.runConstantFrequency(
                *wls[wi], 7 + wls[wi]->seedSalt, freqs[fi], kSteps);
        });
    return out;
}

/** Bitwise comparison of the telemetry that feeds every figure. */
void
expectIdenticalRuns(const std::vector<RunResult> &a,
                    const std::vector<RunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t r = 0; r < a.size(); ++r) {
        ASSERT_EQ(a[r].steps.size(), b[r].steps.size());
        ASSERT_EQ(a[r].decidedFreqs, b[r].decidedFreqs);
        for (size_t s = 0; s < a[r].steps.size(); ++s) {
            const StepRecord &x = a[r].steps[s];
            const StepRecord &y = b[r].steps[s];
            ASSERT_EQ(x.frequency, y.frequency);
            ASSERT_EQ(x.voltage, y.voltage);
            ASSERT_EQ(x.totalPower, y.totalPower);
            ASSERT_EQ(x.severity.maxSeverity, y.severity.maxSeverity);
            ASSERT_EQ(x.sensorReadings, y.sensorReadings);
            ASSERT_EQ(x.sensorTrue, y.sensorTrue);
        }
    }
}

} // namespace

TEST(Determinism, SweepIsIdenticalAcrossThreadCounts)
{
    GlobalPoolGuard guard;

    ThreadPool::resetGlobal(1);
    const std::vector<RunResult> serial = sweepRuns();

    ThreadPool::resetGlobal(8);
    const std::vector<RunResult> threaded = sweepRuns();

    expectIdenticalRuns(serial, threaded);
}

TEST(Determinism, TrainingDataIsIdenticalAcrossThreadCounts)
{
    GlobalPoolGuard guard;

    DatasetConfig cfg;
    cfg.frequencies = {3.75, 4.5};
    cfg.walkSegments = 2;
    cfg.traceSteps = 48;
    const std::vector<const WorkloadSpec *> wls{
        &findWorkload("povray"), &findWorkload("mcf")};

    ThreadPool::resetGlobal(1);
    SimulationPipeline p1(fastPipelineConfig());
    const BuiltData serial = buildTrainingData(p1, wls, cfg);

    ThreadPool::resetGlobal(8);
    SimulationPipeline p8(fastPipelineConfig());
    const BuiltData threaded = buildTrainingData(p8, wls, cfg);

    ASSERT_EQ(serial.severity.numRows(), threaded.severity.numRows());
    ASSERT_EQ(serial.severity.numFeatures(),
              threaded.severity.numFeatures());
    for (size_t r = 0; r < serial.severity.numRows(); ++r) {
        ASSERT_EQ(serial.severity.y(r), threaded.severity.y(r));
        ASSERT_EQ(serial.severity.group(r), threaded.severity.group(r));
        for (size_t f = 0; f < serial.severity.numFeatures(); ++f)
            ASSERT_EQ(serial.severity.x(r, f), threaded.severity.x(r, f));
    }
    ASSERT_EQ(serial.phaseSamples.size(), threaded.phaseSamples.size());
    for (size_t i = 0; i < serial.phaseSamples.size(); ++i) {
        ASSERT_EQ(serial.phaseSamples[i].tempNow,
                  threaded.phaseSamples[i].tempNow);
        ASSERT_EQ(serial.phaseSamples[i].tempNext,
                  threaded.phaseSamples[i].tempNext);
        ASSERT_EQ(serial.phaseSamples[i].freqIndex,
                  threaded.phaseSamples[i].freqIndex);
        ASSERT_EQ(serial.phaseSamples[i].counters,
                  threaded.phaseSamples[i].counters);
    }
}
