/** @file Unit tests for statistics helpers and the text table. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.hh"
#include "common/table.hh"

using namespace boreas;

TEST(OnlineStats, MatchesBatchComputation)
{
    OnlineStats s;
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> v{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, MeanSquaredError)
{
    EXPECT_DOUBLE_EQ(meanSquaredError({1.0, 2.0}, {1.0, 4.0}), 2.0);
    EXPECT_DOUBLE_EQ(meanSquaredError({1.0}, {1.0}), 0.0);
}

TEST(TextTable, AlignsAndPrintsRows)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1.5"});
    t.addRow({"b", "20"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("20"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(TextTableDeathTest, RowWidthMismatchPanics)
{
    TextTable t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}
