/** @file Unit tests for the VF operating-point table (Table I). */

#include <gtest/gtest.h>

#include "power/vf_table.hh"

using namespace boreas;

TEST(VFTable, ThirteenGridPoints)
{
    VFTable vf;
    EXPECT_EQ(vf.numPoints(), 13);
    EXPECT_DOUBLE_EQ(vf.frequency(0), 2.0);
    EXPECT_DOUBLE_EQ(vf.frequency(12), 5.0);
}

TEST(VFTable, AnchorsMatchTableI)
{
    VFTable vf;
    const std::vector<std::pair<GHz, Volts>> expected = {
        {2.0, 0.64}, {2.5, 0.71}, {3.0, 0.77}, {3.5, 0.87},
        {4.0, 0.98}, {4.5, 1.15}, {5.0, 1.40},
    };
    EXPECT_EQ(VFTable::anchors(), expected);
    for (const auto &[f, v] : expected)
        EXPECT_DOUBLE_EQ(vf.voltage(f), v);
}

TEST(VFTable, InterpolatedVoltagesBetweenAnchors)
{
    VFTable vf;
    EXPECT_NEAR(vf.voltage(2.25), 0.675, 1e-12);
    EXPECT_NEAR(vf.voltage(3.75), 0.925, 1e-12);
    EXPECT_NEAR(vf.voltage(4.75), 1.275, 1e-12);
}

TEST(VFTable, VoltageStrictlyIncreasing)
{
    VFTable vf;
    for (int i = 1; i < vf.numPoints(); ++i)
        EXPECT_GT(vf.voltage(vf.frequency(i)),
                  vf.voltage(vf.frequency(i - 1)));
}

TEST(VFTable, IndexRoundTrips)
{
    VFTable vf;
    for (int i = 0; i < vf.numPoints(); ++i)
        EXPECT_EQ(vf.index(vf.frequency(i)), i);
}

TEST(VFTableDeathTest, OffGridFrequencyPanics)
{
    VFTable vf;
    EXPECT_DEATH(vf.index(3.8), "not on the 250 MHz grid");
}

TEST(VFTable, ClampSnapsToGrid)
{
    VFTable vf;
    EXPECT_DOUBLE_EQ(vf.clamp(1.0), 2.0);
    EXPECT_DOUBLE_EQ(vf.clamp(9.9), 5.0);
    EXPECT_DOUBLE_EQ(vf.clamp(3.8), 3.75);
    EXPECT_DOUBLE_EQ(vf.clamp(4.25), 4.25);
}

TEST(VFTable, StepUpDownSaturate)
{
    VFTable vf;
    EXPECT_DOUBLE_EQ(vf.stepUp(4.0), 4.25);
    EXPECT_DOUBLE_EQ(vf.stepDown(4.0), 3.75);
    EXPECT_DOUBLE_EQ(vf.stepUp(5.0), 5.0);
    EXPECT_DOUBLE_EQ(vf.stepDown(2.0), 2.0);
}
