/** @file Unit tests for CV/grid search, linear regression, PCA, k-means
 *  and the feature schema. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "ml/cv.hh"
#include "ml/feature_schema.hh"
#include "ml/kmeans.hh"
#include "ml/linreg.hh"
#include "ml/pca.hh"

using namespace boreas;

namespace
{

Dataset
groupedLinearData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset d({"x0", "x1"});
    for (size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(-1.0, 1.0);
        const double x1 = rng.uniform(-1.0, 1.0);
        d.addRow({x0, x1}, 2.0 * x0 + x1 + rng.normal(0.0, 0.05),
                 static_cast<int>(i % 5));
    }
    return d;
}

} // namespace

TEST(CV, LeaveOneGroupOutUsesEveryGroupOnce)
{
    const Dataset d = groupedLinearData(500, 1);
    GBTParams params;
    params.nEstimators = 20;
    const CVResult res = leaveOneGroupOutCV(d, params);
    EXPECT_EQ(res.foldMse.size(), 5u);
    EXPECT_GT(res.meanMse, 0.0);
    EXPECT_LT(res.meanMse, 0.2);
}

TEST(CV, MaxFoldsCapsWork)
{
    const Dataset d = groupedLinearData(500, 2);
    GBTParams params;
    params.nEstimators = 10;
    const CVResult res = leaveOneGroupOutCV(d, params, /*max_folds=*/2);
    EXPECT_EQ(res.foldMse.size(), 2u);
}

TEST(CV, GridSearchPrefersBetterConfig)
{
    const Dataset d = groupedLinearData(800, 3);
    GBTParams bad;
    bad.nEstimators = 1;
    bad.maxDepth = 1;
    GBTParams good;
    good.nEstimators = 60;
    const GridSearchResult res = gridSearchCV(d, {bad, good});
    EXPECT_EQ(res.bestIndex, 1u);
    EXPECT_LT(res.bestMse(), res.entries[0].cv.meanMse);
}

namespace
{

GridSearchEntry
entryOf(int trees, int depth, double mean, double std_mse)
{
    GridSearchEntry e;
    e.params.nEstimators = trees;
    e.params.maxDepth = depth;
    e.cv.meanMse = mean;
    e.cv.stdMse = std_mse;
    return e;
}

} // namespace

TEST(CV, SelectBestEntryTreatsSubTolScoresAsTied)
{
    // A noise-level std difference (1e-15) must NOT outweigh a large
    // model-size difference: the 5-tree model at index 0 wins even
    // though the 400-tree model's std is infinitesimally lower.
    const std::vector<GridSearchEntry> entries{
        entryOf(5, 2, 1.0, 0.5 + 1e-15),
        entryOf(400, 6, 1.0, 0.5),
    };
    EXPECT_EQ(selectBestEntry(entries), 0u);
}

TEST(CV, SelectBestEntryPrefersLowerVarianceBeyondTol)
{
    // A real std gap (beyond tol) still decides before model size.
    const std::vector<GridSearchEntry> entries{
        entryOf(5, 2, 1.0, 0.6),
        entryOf(400, 6, 1.0, 0.5),
    };
    EXPECT_EQ(selectBestEntry(entries), 1u);
}

TEST(CV, SelectBestEntryPrefersSmallerModelOnTie)
{
    const std::vector<GridSearchEntry> entries{
        entryOf(400, 6, 1.0, 0.5),
        entryOf(223, 3, 1.0, 0.5),
        entryOf(5, 2, 1.0, 0.5),
    };
    EXPECT_EQ(selectBestEntry(entries), 2u);
}

TEST(CV, SelectBestEntryPinsLowerIndexOnFullTie)
{
    const std::vector<GridSearchEntry> entries{
        entryOf(10, 3, 1.0, 0.5),
        entryOf(10, 3, 1.0, 0.5),
        entryOf(10, 3, 1.0, 0.5),
    };
    EXPECT_EQ(selectBestEntry(entries), 0u);
}

TEST(CV, SelectBestEntryMeanStillDominates)
{
    // A mean gap beyond tol beats any std/size advantage.
    const std::vector<GridSearchEntry> entries{
        entryOf(5, 2, 1.001, 0.0),
        entryOf(400, 6, 1.0, 10.0),
    };
    EXPECT_EQ(selectBestEntry(entries), 1u);
}

TEST(LinearRegression, ExactOnNoiselessLinearData)
{
    Dataset d({"x0", "x1"});
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const double x0 = rng.uniform(-2.0, 2.0);
        const double x1 = rng.uniform(-2.0, 2.0);
        d.addRow({x0, x1}, 3.0 * x0 - 1.5 * x1 + 0.7, 0);
    }
    LinearRegression lr;
    lr.fit(d, 1e-9);
    EXPECT_NEAR(lr.weights()[0], 3.0, 1e-6);
    EXPECT_NEAR(lr.weights()[1], -1.5, 1e-6);
    EXPECT_NEAR(lr.intercept(), 0.7, 1e-6);
    EXPECT_LT(lr.mse(d), 1e-10);
}

TEST(LinearRegression, RidgeShrinksWeights)
{
    Dataset d({"x"});
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        d.addRow({x}, 5.0 * x, 0);
    }
    LinearRegression loose, tight;
    loose.fit(d, 1e-9);
    tight.fit(d, 1e3);
    EXPECT_NEAR(loose.weights()[0], 5.0, 1e-6);
    EXPECT_LT(std::fabs(tight.weights()[0]),
              std::fabs(loose.weights()[0]));
}

TEST(PCA, RecoversDominantDirection)
{
    // Data on the line x1 = 2*x0 with small orthogonal noise.
    Rng rng(6);
    std::vector<double> x;
    for (int i = 0; i < 500; ++i) {
        const double t = rng.uniform(-1.0, 1.0);
        x.push_back(t + rng.normal(0.0, 0.01));
        x.push_back(2.0 * t + rng.normal(0.0, 0.01));
    }
    PCA pca;
    pca.fit(x, 2, 2);
    // First component explains almost all variance.
    EXPECT_GT(pca.explainedVariance()[0], 0.95);
    EXPECT_LT(pca.explainedVariance()[1], 0.05);
}

TEST(PCA, TransformHasRequestedDimension)
{
    Rng rng(7);
    std::vector<double> x;
    for (int i = 0; i < 100; ++i)
        for (int j = 0; j < 6; ++j)
            x.push_back(rng.uniform());
    PCA pca;
    pca.fit(x, 6, 3);
    const auto z = pca.transform(std::vector<double>(6, 0.5));
    EXPECT_EQ(z.size(), 3u);
    const auto all = pca.transformAll(x);
    EXPECT_EQ(all.size(), 100u * 3u);
}

TEST(PCA, CentersData)
{
    // Transformed training data has ~zero mean per component.
    Rng rng(8);
    std::vector<double> x;
    for (int i = 0; i < 400; ++i) {
        x.push_back(10.0 + rng.normal(0.0, 1.0));
        x.push_back(-5.0 + rng.normal(0.0, 2.0));
    }
    PCA pca;
    pca.fit(x, 2, 2);
    const auto z = pca.transformAll(x);
    double m0 = 0.0, m1 = 0.0;
    for (size_t i = 0; i < 400; ++i) {
        m0 += z[i * 2];
        m1 += z[i * 2 + 1];
    }
    EXPECT_NEAR(m0 / 400.0, 0.0, 1e-9);
    EXPECT_NEAR(m1 / 400.0, 0.0, 1e-9);
}

TEST(KMeans, SeparatesGaussianBlobs)
{
    Rng rng(9);
    std::vector<double> x;
    for (int i = 0; i < 200; ++i) {
        x.push_back(rng.normal(0.0, 0.1));
        x.push_back(rng.normal(0.0, 0.1));
    }
    for (int i = 0; i < 200; ++i) {
        x.push_back(rng.normal(5.0, 0.1));
        x.push_back(rng.normal(5.0, 0.1));
    }
    const KMeansResult res = kmeans(x, 2, 2, rng);
    EXPECT_EQ(res.k(), 2u);
    // All points of each blob share an assignment.
    const int first = res.assignments[0];
    for (int i = 1; i < 200; ++i)
        EXPECT_EQ(res.assignments[i], first);
    const int second = res.assignments[200];
    EXPECT_NE(second, first);
    for (int i = 201; i < 400; ++i)
        EXPECT_EQ(res.assignments[i], second);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters)
{
    Rng rng(10);
    std::vector<double> x;
    for (int i = 0; i < 300; ++i)
        x.push_back(rng.uniform(0.0, 10.0));
    Rng r1(1), r2(1);
    const double inertia2 = kmeans(x, 1, 2, r1).inertia;
    const double inertia8 = kmeans(x, 1, 8, r2).inertia;
    EXPECT_LT(inertia8, inertia2);
}

TEST(KMeans, NearestMatchesAssignments)
{
    Rng rng(11);
    std::vector<double> x;
    for (int i = 0; i < 50; ++i) {
        x.push_back(rng.uniform());
        x.push_back(rng.uniform());
    }
    const KMeansResult res = kmeans(x, 2, 3, rng);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(res.nearest(x.data() + i * 2), res.assignments[i]);
}

TEST(FeatureSchema, Has78Attributes)
{
    const auto &schema = fullFeatureSchema();
    EXPECT_EQ(schema.size(), 78u);
    EXPECT_EQ(schema.size(), kNumFullFeatures);
    EXPECT_EQ(schema[kTempFeatureIndex], "temperature_sensor_data");
    EXPECT_EQ(schema[kFreqFeatureIndex], "frequency");
    // No duplicates.
    std::set<std::string> uniq(schema.begin(), schema.end());
    EXPECT_EQ(uniq.size(), schema.size());
}

TEST(FeatureSchema, AssembleLaysOutCountersThenTempThenFreq)
{
    CounterSet c;
    c[Counter::TotalCycles] = 123.0;
    c[Counter::RobReads] = 9.0;
    const auto x = assembleFeatures(c, 77.5, 4.25);
    ASSERT_EQ(x.size(), kNumFullFeatures);
    EXPECT_DOUBLE_EQ(x[static_cast<size_t>(Counter::TotalCycles)], 123.0);
    EXPECT_DOUBLE_EQ(x[static_cast<size_t>(Counter::RobReads)], 9.0);
    EXPECT_DOUBLE_EQ(x[kTempFeatureIndex], 77.5);
    EXPECT_DOUBLE_EQ(x[kFreqFeatureIndex], 4.25);
}

TEST(FeatureSchema, PaperTop20AllExistInSchema)
{
    const auto &top = paperTop20Features();
    EXPECT_EQ(top.size(), 20u);
    EXPECT_EQ(top.back(), "temperature_sensor_data");
    const auto idx = featureIndicesOf(top); // panics if any is unknown
    EXPECT_EQ(idx.size(), 20u);
}

TEST(FeatureSchema, DeployedSetIsTop20PlusFrequency)
{
    const auto &dep = deployedFeatureNames();
    EXPECT_EQ(dep.size(), 21u);
    EXPECT_EQ(dep.back(), "frequency");
}

TEST(FeatureSchemaDeathTest, UnknownFeaturePanics)
{
    EXPECT_DEATH(featureIndicesOf({"bogus_feature"}), "unknown feature");
}
