/**
 * @file
 * 2-D geometry primitives for floorplans and thermal grids.
 */

#pragma once

#include "common/types.hh"

namespace boreas
{

/** A point on the die, in meters, origin at the die's top-left corner. */
struct Point
{
    Meters x = 0.0;
    Meters y = 0.0;
};

/** Axis-aligned rectangle on the die, in meters. */
struct Rect
{
    Meters x = 0.0; ///< left edge
    Meters y = 0.0; ///< top edge
    Meters w = 0.0; ///< width
    Meters h = 0.0; ///< height

    Meters right() const { return x + w; }
    Meters bottom() const { return y + h; }
    double area() const { return w * h; }
    Point center() const { return {x + w / 2.0, y + h / 2.0}; }

    /** True if the point lies inside (inclusive of top/left edges). */
    bool contains(const Point &p) const;

    /** Area of the intersection with another rectangle. */
    double overlapArea(const Rect &other) const;

    /** Translate by (dx, dy). */
    Rect translated(Meters dx, Meters dy) const;
};

/** Euclidean distance between two points. */
Meters distance(const Point &a, const Point &b);

} // namespace boreas
