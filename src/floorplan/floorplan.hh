/**
 * @file
 * Floorplan representation: a die populated with named functional units.
 *
 * The floorplan is the glue between the architectural power model (which
 * produces watts per functional unit) and the thermal grid (which needs
 * watts per cell). rasterize() precomputes the unit-to-cell area mapping.
 */

#pragma once

#include <string>
#include <vector>

#include "floorplan/geometry.hh"

namespace boreas
{

/**
 * Kind of on-die logic a unit implements. Drives which architectural
 * activity counters feed power into the unit.
 */
enum class UnitKind
{
    IFU,        ///< fetch + decode frontend
    ICache,     ///< L1 instruction cache
    BPU,        ///< branch prediction (incl. BTB)
    Rename,     ///< rename/allocate (incl. RAT)
    ROB,        ///< reorder buffer
    Scheduler,  ///< reservation stations / issue queue
    RegFile,    ///< integer + FP physical register files
    IntALU,     ///< integer execution cluster
    MUL,        ///< integer multiply/divide
    FPU,        ///< FP/SIMD execution
    LSU,        ///< load/store unit + AGUs + TLBs
    DCache,     ///< L1 data cache
    L2,         ///< per-core mid-level cache
    L3,         ///< shared last-level cache
    SoC,        ///< system agent, memory controller, IO
    NumKinds
};

/** Human-readable name of a unit kind. */
const char *unitKindName(UnitKind kind);

/** One placed functional unit. */
struct FunctionalUnit
{
    std::string name;   ///< unique instance name, e.g. "core0.alu"
    UnitKind kind;      ///< logic type
    Rect rect;          ///< placement on the die, meters
    int coreId;         ///< owning core index, -1 for uncore
};

/**
 * Mapping of one functional unit onto thermal grid cells: the list of
 * cells it overlaps and the fraction of the unit's area in each.
 */
struct UnitCellMap
{
    std::vector<int> cells;        ///< flat cell indices (y * nx + x)
    std::vector<double> fractions; ///< area fractions, sums to ~1
};

/** A die with its functional units. */
class Floorplan
{
  public:
    Floorplan(Meters die_width, Meters die_height);

    /** Add a unit; panics if it lies outside the die or the name repeats. */
    int addUnit(const std::string &name, UnitKind kind, const Rect &rect,
                int core_id);

    Meters dieWidth() const { return dieWidth_; }
    Meters dieHeight() const { return dieHeight_; }

    const std::vector<FunctionalUnit> &units() const { return units_; }
    const FunctionalUnit &unit(int idx) const { return units_[idx]; }
    size_t numUnits() const { return units_.size(); }

    /** Index of the unit with the given name; -1 if absent. */
    int findUnit(const std::string &name) const;

    /** First unit of the given kind owned by core_id; -1 if absent. */
    int findUnit(UnitKind kind, int core_id) const;

    /** Total placed area over die area (sanity metric). */
    double utilization() const;

    /**
     * Precompute the unit -> cell area mapping for an nx x ny grid over
     * the die. Cell (cx, cy) covers
     * [cx*W/nx, (cx+1)*W/nx) x [cy*H/ny, (cy+1)*H/ny).
     */
    std::vector<UnitCellMap> rasterize(int nx, int ny) const;

  private:
    Meters dieWidth_;
    Meters dieHeight_;
    std::vector<FunctionalUnit> units_;
};

} // namespace boreas
