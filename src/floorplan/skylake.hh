/**
 * @file
 * A parametric Skylake-like client-die floorplan.
 *
 * Mirrors the modelling setup of HotGauge / Boreas: a 4-core desktop client
 * processor at a 7nm-class node. Exact dimensions are not published in the
 * paper; the layout here preserves what matters for hotspot behaviour:
 * a small, dense integer-execution cluster adjacent to the scheduler and
 * register file (where advanced hotspots form), large cool caches nearby
 * (which create steep local gradients, i.e. high MLTD), and uncore away
 * from the active core.
 */

#pragma once

#include "floorplan/floorplan.hh"

namespace boreas
{

/** Geometry knobs for the Skylake-like die. */
struct SkylakeParams
{
    Meters dieWidth = 8.0e-3;
    Meters dieHeight = 8.0e-3;
    Meters coreSize = 2.6e-3;  ///< cores are square
    int numCores = 4;
};

/**
 * Build the Skylake-like client floorplan: numCores cores in a 2-wide
 * grid at the top-left, an L3 strip below them, and a SoC/system-agent
 * strip on the right edge.
 */
Floorplan buildSkylakeFloorplan(const SkylakeParams &params = {});

} // namespace boreas
