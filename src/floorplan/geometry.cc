#include "floorplan/geometry.hh"

#include <algorithm>
#include <cmath>

namespace boreas
{

bool
Rect::contains(const Point &p) const
{
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
}

double
Rect::overlapArea(const Rect &other) const
{
    const Meters ox = std::max(x, other.x);
    const Meters oy = std::max(y, other.y);
    const Meters ox2 = std::min(right(), other.right());
    const Meters oy2 = std::min(bottom(), other.bottom());
    if (ox2 <= ox || oy2 <= oy)
        return 0.0;
    return (ox2 - ox) * (oy2 - oy);
}

Rect
Rect::translated(Meters dx, Meters dy) const
{
    return {x + dx, y + dy, w, h};
}

Meters
distance(const Point &a, const Point &b)
{
    const Meters dx = a.x - b.x;
    const Meters dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

} // namespace boreas
