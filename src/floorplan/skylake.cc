#include "floorplan/skylake.hh"

#include "common/logging.hh"

namespace boreas
{

namespace
{

/**
 * Place the functional units of one core. Offsets are fractions of the
 * (square) core edge so the layout scales with coreSize.
 */
void
addCore(Floorplan &fp, int core_id, Meters ox, Meters oy, Meters edge)
{
    struct UnitDef
    {
        const char *suffix;
        UnitKind kind;
        double x, y, w, h; // fractions of the core edge
    };
    // Four rows: frontend / OoO bookkeeping / execution / memory.
    static const UnitDef defs[] = {
        {"icache",    UnitKind::ICache,    0.000, 0.000, 0.462, 0.231},
        {"ifu",       UnitKind::IFU,       0.462, 0.000, 0.346, 0.231},
        {"bpu",       UnitKind::BPU,       0.808, 0.000, 0.192, 0.231},
        {"rename",    UnitKind::Rename,    0.000, 0.231, 0.212, 0.192},
        {"rob",       UnitKind::ROB,       0.212, 0.231, 0.212, 0.192},
        {"scheduler", UnitKind::Scheduler, 0.424, 0.231, 0.288, 0.192},
        {"regfile",   UnitKind::RegFile,   0.712, 0.231, 0.288, 0.192},
        {"alu",       UnitKind::IntALU,    0.000, 0.423, 0.231, 0.231},
        {"mul",       UnitKind::MUL,       0.231, 0.423, 0.173, 0.231},
        {"fpu",       UnitKind::FPU,       0.404, 0.423, 0.365, 0.231},
        {"lsu",       UnitKind::LSU,       0.769, 0.423, 0.231, 0.231},
        {"dcache",    UnitKind::DCache,    0.000, 0.654, 0.500, 0.346},
        {"l2",        UnitKind::L2,        0.500, 0.654, 0.500, 0.346},
    };
    for (const auto &d : defs) {
        const Rect r{ox + d.x * edge, oy + d.y * edge,
                     d.w * edge, d.h * edge};
        fp.addUnit(strfmt("core%d.%s", core_id, d.suffix), d.kind, r,
                   core_id);
    }
}

} // namespace

Floorplan
buildSkylakeFloorplan(const SkylakeParams &params)
{
    boreas_assert(params.numCores >= 1 && params.numCores <= 4,
                  "numCores must be 1..4");
    Floorplan fp(params.dieWidth, params.dieHeight);

    const Meters margin = 0.3e-3;
    const Meters gap = 0.2e-3;
    const Meters edge = params.coreSize;

    for (int c = 0; c < params.numCores; ++c) {
        const int col = c % 2;
        const int row = c / 2;
        const Meters ox = margin + col * (edge + gap);
        const Meters oy = margin + row * (edge + gap);
        addCore(fp, c, ox, oy, edge);
    }

    // L3 strip across the bottom, under the core cluster.
    const Meters cluster_w = 2 * edge + gap;
    const Meters cluster_h = 2 * edge + gap;
    const Meters l3_y = margin + cluster_h + gap;
    const Meters l3_h = params.dieHeight - l3_y - margin;
    if (l3_h > 0.5e-3) {
        fp.addUnit("l3", UnitKind::L3,
                   {margin, l3_y, cluster_w, l3_h}, -1);
    }

    // SoC / system agent strip along the right edge.
    const Meters soc_x = margin + cluster_w + gap;
    const Meters soc_w = params.dieWidth - soc_x - margin;
    if (soc_w > 0.5e-3) {
        fp.addUnit("soc", UnitKind::SoC,
                   {soc_x, margin, soc_w,
                    params.dieHeight - 2 * margin}, -1);
    }

    return fp;
}

} // namespace boreas
