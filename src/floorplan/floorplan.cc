#include "floorplan/floorplan.hh"

#include "common/logging.hh"

namespace boreas
{

const char *
unitKindName(UnitKind kind)
{
    switch (kind) {
      case UnitKind::IFU: return "IFU";
      case UnitKind::ICache: return "ICache";
      case UnitKind::BPU: return "BPU";
      case UnitKind::Rename: return "Rename";
      case UnitKind::ROB: return "ROB";
      case UnitKind::Scheduler: return "Scheduler";
      case UnitKind::RegFile: return "RegFile";
      case UnitKind::IntALU: return "IntALU";
      case UnitKind::MUL: return "MUL";
      case UnitKind::FPU: return "FPU";
      case UnitKind::LSU: return "LSU";
      case UnitKind::DCache: return "DCache";
      case UnitKind::L2: return "L2";
      case UnitKind::L3: return "L3";
      case UnitKind::SoC: return "SoC";
      default: return "?";
    }
}

Floorplan::Floorplan(Meters die_width, Meters die_height)
    : dieWidth_(die_width), dieHeight_(die_height)
{
    boreas_assert(die_width > 0 && die_height > 0, "bad die dimensions");
}

int
Floorplan::addUnit(const std::string &name, UnitKind kind, const Rect &rect,
                   int core_id)
{
    boreas_assert(findUnit(name) < 0, "duplicate unit name '%s'",
                  name.c_str());
    constexpr double kEps = 1e-9;
    boreas_assert(rect.x >= -kEps && rect.y >= -kEps &&
                  rect.right() <= dieWidth_ + kEps &&
                  rect.bottom() <= dieHeight_ + kEps,
                  "unit '%s' outside die", name.c_str());
    boreas_assert(rect.w > 0 && rect.h > 0, "unit '%s' has no area",
                  name.c_str());
    units_.push_back({name, kind, rect, core_id});
    return static_cast<int>(units_.size()) - 1;
}

int
Floorplan::findUnit(const std::string &name) const
{
    for (size_t i = 0; i < units_.size(); ++i)
        if (units_[i].name == name)
            return static_cast<int>(i);
    return -1;
}

int
Floorplan::findUnit(UnitKind kind, int core_id) const
{
    for (size_t i = 0; i < units_.size(); ++i)
        if (units_[i].kind == kind && units_[i].coreId == core_id)
            return static_cast<int>(i);
    return -1;
}

double
Floorplan::utilization() const
{
    double placed = 0.0;
    for (const auto &u : units_)
        placed += u.rect.area();
    return placed / (dieWidth_ * dieHeight_);
}

std::vector<UnitCellMap>
Floorplan::rasterize(int nx, int ny) const
{
    boreas_assert(nx > 0 && ny > 0, "bad grid %dx%d", nx, ny);
    const Meters cw = dieWidth_ / nx;
    const Meters ch = dieHeight_ / ny;

    std::vector<UnitCellMap> maps(units_.size());
    for (size_t ui = 0; ui < units_.size(); ++ui) {
        const Rect &r = units_[ui].rect;
        const double unit_area = r.area();
        // Only scan the cells the unit's bounding box touches.
        const int cx0 = std::max(0, static_cast<int>(r.x / cw));
        const int cy0 = std::max(0, static_cast<int>(r.y / ch));
        const int cx1 = std::min(nx - 1,
                                 static_cast<int>(r.right() / cw));
        const int cy1 = std::min(ny - 1,
                                 static_cast<int>(r.bottom() / ch));
        for (int cy = cy0; cy <= cy1; ++cy) {
            for (int cx = cx0; cx <= cx1; ++cx) {
                const Rect cell{cx * cw, cy * ch, cw, ch};
                const double ov = r.overlapArea(cell);
                if (ov <= 0.0)
                    continue;
                maps[ui].cells.push_back(cy * nx + cx);
                maps[ui].fractions.push_back(ov / unit_area);
            }
        }
    }
    return maps;
}

} // namespace boreas
