/**
 * @file
 * The hardware-telemetry counter schema.
 *
 * Boreas consumes 78 "system attributes" per 80 us interval (Sec. IV-B):
 * this module defines the 76 microarchitectural counters; the remaining
 * two attributes — temperature_sensor_data and the commanded frequency —
 * are appended at feature-vector assembly time (see ml/feature_schema).
 *
 * Counter names follow the paper's Table IV / McPAT conventions
 * (e.g. "ROB_reads", "cdb_alu_accesses", "MUL_cdb_duty_cycle") so that the
 * reproduced feature-importance table keys match the paper verbatim.
 */

#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace boreas
{

/**
 * X-macro master list keeping the enum and the name table in sync.
 * Order is stable; it defines dataset column order.
 */
#define BOREAS_COUNTER_LIST(X) \
    X(TotalCycles, "total_cycles") \
    X(BusyCycles, "busy_cycles") \
    X(IdleCycles, "idle_cycles") \
    X(CommittedInstructions, "committed_instructions") \
    X(CommittedIntInstructions, "committed_int_instructions") \
    X(CommittedFpInstructions, "committed_fp_instructions") \
    X(CommittedBranchInstructions, "committed_branch_instructions") \
    X(CommittedLoadInstructions, "committed_load_instructions") \
    X(CommittedStoreInstructions, "committed_store_instructions") \
    X(CommittedMulInstructions, "committed_mul_instructions") \
    X(FetchedInstructions, "fetched_instructions") \
    X(DecodeStallCycles, "decode_stall_cycles") \
    X(UopsIssued, "uops_issued") \
    X(PipelineFlushes, "pipeline_flushes") \
    X(RenameReads, "rename_reads") \
    X(RenameWrites, "rename_writes") \
    X(FpRenameReads, "fp_rename_reads") \
    X(FpRenameWrites, "fp_rename_writes") \
    X(RatReadAccesses, "RAT_read_accesses") \
    X(RatWriteAccesses, "RAT_write_accesses") \
    X(RobReads, "ROB_reads") \
    X(RobWrites, "ROB_writes") \
    X(InstWindowReads, "inst_window_reads") \
    X(InstWindowWrites, "inst_window_writes") \
    X(InstWindowWakeups, "inst_window_wakeup_accesses") \
    X(FpInstWindowReads, "fp_inst_window_reads") \
    X(FpInstWindowWrites, "fp_inst_window_writes") \
    X(FpInstWindowWakeups, "fp_inst_window_wakeup_accesses") \
    X(IntRegfileReads, "int_regfile_reads") \
    X(IntRegfileWrites, "int_regfile_writes") \
    X(FpRegfileReads, "fp_regfile_reads") \
    X(FpRegfileWrites, "fp_regfile_writes") \
    X(CdbAluAccesses, "cdb_alu_accesses") \
    X(CdbMulAccesses, "cdb_mul_accesses") \
    X(CdbFpuAccesses, "cdb_fpu_accesses") \
    X(IaluAccesses, "ialu_accesses") \
    X(MulAccesses, "mul_accesses") \
    X(FpuAccesses, "fpu_accesses") \
    X(AluDutyCycle, "ALU_duty_cycle") \
    X(MulDutyCycle, "MUL_duty_cycle") \
    X(FpuDutyCycle, "FPU_duty_cycle") \
    X(AluCdbDutyCycle, "ALU_cdb_duty_cycle") \
    X(MulCdbDutyCycle, "MUL_cdb_duty_cycle") \
    X(FpuCdbDutyCycle, "FPU_cdb_duty_cycle") \
    X(IfuDutyCycle, "IFU_duty_cycle") \
    X(LsuDutyCycle, "LSU_duty_cycle") \
    X(ExuDutyCycle, "EXU_duty_cycle") \
    X(MemManUIDutyCycle, "MemManU_I_duty_cycle") \
    X(MemManUDDutyCycle, "MemManU_D_duty_cycle") \
    X(BranchInstructions, "branch_instructions") \
    X(BranchMispredictions, "branch_mispredictions") \
    X(BtbReadAccesses, "BTB_read_accesses") \
    X(BtbWriteAccesses, "BTB_write_accesses") \
    X(PredictorLookups, "predictor_lookups") \
    X(IcacheReadAccesses, "icache_read_accesses") \
    X(IcacheReadMisses, "icache_read_misses") \
    X(DcacheReadAccesses, "dcache_read_accesses") \
    X(DcacheReadMisses, "dcache_read_misses") \
    X(DcacheWriteAccesses, "dcache_write_accesses") \
    X(DcacheWriteMisses, "dcache_write_misses") \
    X(L2ReadAccesses, "l2_read_accesses") \
    X(L2ReadMisses, "l2_read_misses") \
    X(L2WriteAccesses, "l2_write_accesses") \
    X(L2WriteMisses, "l2_write_misses") \
    X(L3ReadAccesses, "l3_read_accesses") \
    X(L3ReadMisses, "l3_read_misses") \
    X(ItlbTotalAccesses, "itlb_total_accesses") \
    X(ItlbTotalMisses, "itlb_total_misses") \
    X(DtlbTotalAccesses, "dtlb_total_accesses") \
    X(DtlbTotalMisses, "dtlb_total_misses") \
    X(LoadQueueReads, "load_queue_reads") \
    X(LoadQueueWrites, "load_queue_writes") \
    X(StoreQueueReads, "store_queue_reads") \
    X(StoreQueueWrites, "store_queue_writes") \
    X(MemoryReads, "memory_reads") \
    X(MemoryWrites, "memory_writes")

/** Microarchitectural counter identifiers. */
enum class Counter : int
{
#define BOREAS_COUNTER_ENUM(id, name) id,
    BOREAS_COUNTER_LIST(BOREAS_COUNTER_ENUM)
#undef BOREAS_COUNTER_ENUM
    NumCounters
};

constexpr size_t kNumCounters = static_cast<size_t>(Counter::NumCounters);

/** Paper-style name of a counter ("ROB_reads", ...). */
const char *counterName(Counter c);

/** Counter from its paper-style name; panics on an unknown name. */
Counter counterFromName(const std::string &name);

/** One interval's worth of telemetry: a value per counter. */
struct CounterSet
{
    std::array<double, kNumCounters> values{};

    double &operator[](Counter c)
    {
        return values[static_cast<size_t>(c)];
    }
    double operator[](Counter c) const
    {
        return values[static_cast<size_t>(c)];
    }

    /** Element-wise accumulate (used when aggregating sub-intervals). */
    void accumulate(const CounterSet &other);

    /** Scale all values (used when averaging). */
    void scale(double factor);
};

} // namespace boreas
