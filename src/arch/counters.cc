#include "arch/counters.hh"

#include "common/logging.hh"

namespace boreas
{

namespace
{

const char *const kCounterNames[] = {
#define BOREAS_COUNTER_NAME(id, name) name,
    BOREAS_COUNTER_LIST(BOREAS_COUNTER_NAME)
#undef BOREAS_COUNTER_NAME
};

static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
              kNumCounters, "counter name table out of sync");

} // namespace

const char *
counterName(Counter c)
{
    const auto idx = static_cast<size_t>(c);
    boreas_assert(idx < kNumCounters, "bad counter id %zu", idx);
    return kCounterNames[idx];
}

Counter
counterFromName(const std::string &name)
{
    for (size_t i = 0; i < kNumCounters; ++i)
        if (name == kCounterNames[i])
            return static_cast<Counter>(i);
    boreas_panic("unknown counter name '%s'", name.c_str());
}

void
CounterSet::accumulate(const CounterSet &other)
{
    for (size_t i = 0; i < kNumCounters; ++i)
        values[i] += other.values[i];
}

void
CounterSet::scale(double factor)
{
    for (auto &v : values)
        v *= factor;
}

} // namespace boreas
