#include "arch/core_model.hh"

#include <algorithm>
#include <cmath>

#include "common/checked.hh"
#include "common/logging.hh"

namespace boreas
{

IntervalCore::IntervalCore(const CoreParams &params)
    : params_(params)
{
    boreas_assert(params_.fetchWidth > 0 && params_.issueWidth > 0 &&
                  params_.commitWidth > 0, "bad core widths");
}

double
IntervalCore::effectiveCpi(const PhaseParams &phase, GHz freq) const
{
    boreas_assert(freq > 0.0, "bad frequency %f", freq);
    const double per_ki = 1e-3;
    // Off-core latencies are constant in wall-clock time, so their cycle
    // cost scales with frequency.
    const double l3_cycles = params_.l3LatencyNs * freq * 1e9;
    const double mem_cycles = params_.memLatencyNs * freq * 1e9;
    const double mlp = std::max(1.0, phase.mlp);

    double cpi = phase.baseCpi;
    cpi += phase.branchMpki * per_ki * params_.branchPenaltyCycles;
    cpi += phase.l1iMpki * per_ki * params_.l2LatencyCycles;
    cpi += phase.l1dMpki * per_ki * params_.l2LatencyCycles;
    cpi += phase.l2Mpki * per_ki * l3_cycles / mlp;
    cpi += phase.l3Mpki * per_ki * mem_cycles / mlp;
    cpi += (phase.itlbMpki + phase.dtlbMpki) * per_ki *
        params_.tlbPenaltyCycles;
    return cpi;
}

double
IntervalCore::instructionsPerSecond(const PhaseParams &phase,
                                    GHz freq) const
{
    return freq * 1e9 / effectiveCpi(phase, freq);
}

CounterSet
IntervalCore::step(const PhaseParams &phase, GHz freq, Seconds dt,
                   Rng &rng) const
{
    CounterSet c;

    const double cycles = freq * 1e9 * dt;
    const double cpi = effectiveCpi(phase, freq);

    // Multiplicative activity noise models the short-term burstiness of
    // real instruction streams that the phase mean abstracts away.
    double noise = 1.0;
    if (phase.activityNoise > 0.0) {
        noise = std::exp(rng.normal(0.0, phase.activityNoise));
        noise = std::clamp(noise, 0.5, 1.6);
    }

    const double committed =
        std::min(cycles * params_.commitWidth, cycles / cpi * noise);
    const double ki = committed * 1e-3;

    const double int_frac = std::max(
        0.0, 1.0 - phase.fpFraction - phase.mulFraction);
    const double committed_int = committed * int_frac;
    const double committed_fp = committed * phase.fpFraction;
    const double committed_mul = committed * phase.mulFraction;
    const double loads = committed * phase.loadFraction;
    const double stores = committed * phase.storeFraction;
    const double branches = committed * phase.branchFraction;

    const double fetched = committed * params_.wrongPathFactor;
    // Execution-engine churn scales with the phase's intensity: the
    // same committed stream can expand into more uops, wakeups and
    // functional-unit events (see PhaseParams::intensity).
    const double isc = std::max(0.0, phase.intensity);
    const double uops = committed * params_.uopExpansion * isc;

    // Busy cycles: cycles in which at least one uop dispatched. Approximate
    // with the dispatch occupancy implied by base CPI plus a floor for
    // miss-shadow activity.
    const double dispatch_util = std::min(
        1.0, (committed * phase.baseCpi) / cycles + 0.08);
    const double busy = cycles * dispatch_util;

    c[Counter::TotalCycles] = cycles;
    c[Counter::BusyCycles] = busy;
    c[Counter::IdleCycles] = cycles - busy;

    c[Counter::CommittedInstructions] = committed;
    c[Counter::CommittedIntInstructions] = committed_int;
    c[Counter::CommittedFpInstructions] = committed_fp;
    c[Counter::CommittedBranchInstructions] = branches;
    c[Counter::CommittedLoadInstructions] = loads;
    c[Counter::CommittedStoreInstructions] = stores;
    c[Counter::CommittedMulInstructions] = committed_mul;

    c[Counter::FetchedInstructions] = fetched;
    c[Counter::DecodeStallCycles] = cycles - busy;
    c[Counter::UopsIssued] = uops;

    const double mispredictions = phase.branchMpki * ki;
    c[Counter::PipelineFlushes] = mispredictions;

    // Rename/ROB/issue bookkeeping tracks the uop stream.
    c[Counter::RenameReads] = uops * 2.0;      // two sources per uop
    c[Counter::RenameWrites] = uops;           // one dest per uop
    c[Counter::FpRenameReads] = committed_fp * params_.uopExpansion * 2.0;
    c[Counter::FpRenameWrites] = committed_fp * params_.uopExpansion;
    c[Counter::RatReadAccesses] = uops * 2.0;
    c[Counter::RatWriteAccesses] = uops;
    c[Counter::RobReads] = uops;
    c[Counter::RobWrites] = uops;
    c[Counter::InstWindowReads] = uops;
    c[Counter::InstWindowWrites] = uops;
    c[Counter::InstWindowWakeups] = uops * 2.0;
    const double fp_uops = committed_fp * params_.uopExpansion * isc;
    c[Counter::FpInstWindowReads] = fp_uops;
    c[Counter::FpInstWindowWrites] = fp_uops;
    c[Counter::FpInstWindowWakeups] = fp_uops * 2.0;

    c[Counter::IntRegfileReads] =
        (committed_int + committed_mul) * 1.6 * isc;
    c[Counter::IntRegfileWrites] =
        (committed_int + committed_mul) * 0.8 * isc;
    c[Counter::FpRegfileReads] = committed_fp * 1.8 * isc;
    c[Counter::FpRegfileWrites] = committed_fp * 0.9 * isc;

    // Execution: ALU ops are int minus the memory-address-only fraction
    // handled in the AGUs (counted under LSU).
    const double alu_ops = (std::max(
        0.0, committed_int - loads - stores) + branches * 0.5) * isc;
    c[Counter::IaluAccesses] = alu_ops;
    c[Counter::MulAccesses] = committed_mul * isc;
    c[Counter::FpuAccesses] = committed_fp * isc;
    // Common-data-bus writebacks: one per producing uop.
    c[Counter::CdbAluAccesses] = alu_ops;
    c[Counter::CdbMulAccesses] = committed_mul * isc;
    c[Counter::CdbFpuAccesses] = committed_fp * isc;

    auto duty = [&](double events, double per_cycle_capacity) {
        return std::min(1.0, events / (cycles * per_cycle_capacity));
    };
    c[Counter::AluDutyCycle] = duty(alu_ops, 3.0);            // 3 ports
    c[Counter::MulDutyCycle] = duty(committed_mul * isc, 1.0); // 1 port
    c[Counter::FpuDutyCycle] = duty(committed_fp * isc, 2.0);  // 2 ports
    c[Counter::AluCdbDutyCycle] = c[Counter::AluDutyCycle];
    c[Counter::MulCdbDutyCycle] = c[Counter::MulDutyCycle];
    c[Counter::FpuCdbDutyCycle] = c[Counter::FpuDutyCycle];
    c[Counter::IfuDutyCycle] = duty(fetched, params_.fetchWidth);
    c[Counter::LsuDutyCycle] = duty(loads + stores, 2.0);
    c[Counter::ExuDutyCycle] = duty(
        alu_ops + (committed_mul + committed_fp) * isc,
        params_.issueWidth);

    const double icache_accesses = fetched / params_.fetchWidth;
    const double icache_misses = phase.l1iMpki * ki;
    c[Counter::MemManUIDutyCycle] = duty(icache_accesses, 1.0);
    c[Counter::MemManUDDutyCycle] = duty(loads + stores, 2.0);

    c[Counter::BranchInstructions] = branches;
    c[Counter::BranchMispredictions] = mispredictions;
    c[Counter::BtbReadAccesses] = branches;
    c[Counter::BtbWriteAccesses] = mispredictions;
    c[Counter::PredictorLookups] = branches;

    c[Counter::IcacheReadAccesses] = icache_accesses;
    c[Counter::IcacheReadMisses] = icache_misses;

    const double dcache_read_misses = phase.l1dMpki * ki;
    c[Counter::DcacheReadAccesses] = loads;
    c[Counter::DcacheReadMisses] = std::min(loads, dcache_read_misses);
    c[Counter::DcacheWriteAccesses] = stores;
    c[Counter::DcacheWriteMisses] =
        std::min(stores, dcache_read_misses * 0.3);

    const double l2_accesses = dcache_read_misses + icache_misses +
        c[Counter::DcacheWriteMisses];
    const double l2_misses = std::min(l2_accesses, phase.l2Mpki * ki);
    c[Counter::L2ReadAccesses] = l2_accesses * 0.8;
    c[Counter::L2ReadMisses] = l2_misses * 0.8;
    c[Counter::L2WriteAccesses] = l2_accesses * 0.2;
    c[Counter::L2WriteMisses] = l2_misses * 0.2;

    const double l3_accesses = l2_misses;
    const double l3_misses = std::min(l3_accesses, phase.l3Mpki * ki);
    c[Counter::L3ReadAccesses] = l3_accesses;
    c[Counter::L3ReadMisses] = l3_misses;

    c[Counter::ItlbTotalAccesses] = icache_accesses;
    c[Counter::ItlbTotalMisses] =
        std::min(icache_accesses, phase.itlbMpki * ki);
    c[Counter::DtlbTotalAccesses] = loads + stores;
    c[Counter::DtlbTotalMisses] =
        std::min(loads + stores, phase.dtlbMpki * ki);

    c[Counter::LoadQueueReads] = loads;
    c[Counter::LoadQueueWrites] = loads;
    c[Counter::StoreQueueReads] = loads * 0.3 + stores;
    c[Counter::StoreQueueWrites] = stores;
    c[Counter::MemoryReads] = l3_misses;
    c[Counter::MemoryWrites] = l3_misses * 0.4;

    if constexpr (kCheckedBuild) {
        // Every counter is a per-interval event count or duty cycle:
        // finite and nonnegative by construction, and bounded far
        // below 1e15 even at 5 GHz x 80 us x wide issue.
        checkValuesInRange(c.values.data(), c.values.size(), 0.0,
                           1e15, "counter value");
    }
    return c;
}

} // namespace boreas
