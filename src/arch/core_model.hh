/**
 * @file
 * Interval-analysis out-of-order core model.
 *
 * The paper's substrate (Sniper) is itself an interval simulator: it
 * computes a base dispatch throughput and charges penalties for "miss
 * events" (branch mispredictions, cache/TLB misses). Boreas only consumes
 * the per-80us counter telemetry, so this module implements exactly that
 * level of modelling: given a workload phase's statistical profile and the
 * operating frequency, it produces one CounterSet per telemetry step.
 *
 * Frequency dependence is physical: memory and L3 latencies are fixed in
 * nanoseconds, so the cycle cost of off-core misses grows with frequency.
 * Memory-bound phases therefore gain little IPS from higher clocks while
 * compute-bound phases scale nearly linearly — which is what differentiates
 * workload power/thermal response across the VF range.
 */

#pragma once

#include "arch/counters.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace boreas
{

/** Statistical profile of one workload phase (rates per kilo-instruction,
 *  fractions of the committed mix, and the phase's intrinsic ILP). */
struct PhaseParams
{
    /** Ideal cycles-per-instruction absent miss events (>= 1/width). */
    double baseCpi = 0.4;

    // Committed instruction mix (fractions of committed instructions).
    double fpFraction = 0.05;     ///< FP/SIMD ops
    double mulFraction = 0.02;    ///< integer multiply/divide
    double loadFraction = 0.25;
    double storeFraction = 0.10;
    double branchFraction = 0.15;

    // Miss-event rates, events per kilo-instruction.
    double branchMpki = 5.0;   ///< mispredictions
    double l1iMpki = 1.0;      ///< L1I misses
    double l1dMpki = 10.0;     ///< L1D misses (to L2)
    double l2Mpki = 2.0;       ///< L2 misses (to L3)
    double l3Mpki = 0.5;       ///< L3 misses (to memory)
    double itlbMpki = 0.2;
    double dtlbMpki = 1.0;

    /** Memory-level parallelism: effective divisor on off-core latency. */
    double mlp = 2.0;

    /** Relative per-step lognormal-ish activity noise (0 = deterministic). */
    double activityNoise = 0.03;

    /**
     * Relative per-step noise on the dynamic energy per event, on top
     * of `intensity`. Models data-dependent switching activity: the
     * same counter vector dissipates varying power step to step. The
     * counters cannot see it — only the thermal telemetry integrates
     * it — which is one reason temperature is the dominant predictor.
     */
    double intensityNoise = 0.06;

    /**
     * Execution-engine activity multiplier: scales the out-of-order
     * engine's event counters (uops, wakeups, rename/ROB traffic, ALU /
     * MUL / FPU accesses) relative to the committed-instruction stream.
     * It models micro-op amplification and speculative execution-cluster
     * churn, which differ per binary. Because the scaled counters are
     * exactly what the power model charges, per-workload power remains
     * fully observable from telemetry — the property the paper's
     * counter-driven predictor depends on. The per-workload
     * thermalScale calibration folds into this knob.
     */
    double intensity = 1.0;
};

/** Microarchitectural configuration of the modeled Skylake-like core. */
struct CoreParams
{
    int fetchWidth = 4;
    int issueWidth = 4;
    int commitWidth = 4;

    double branchPenaltyCycles = 14.0; ///< pipeline refill on mispredict
    double l2LatencyCycles = 12.0;     ///< L1 miss, L2 hit (core cycles)
    Seconds l3LatencyNs = 10e-9;       ///< L2 miss, L3 hit (wall-clock)
    Seconds memLatencyNs = 80e-9;      ///< L3 miss to DRAM (wall-clock)
    double tlbPenaltyCycles = 20.0;    ///< page-walk cost

    /** Wrong-path fetch inflation on the fetched-instruction stream. */
    double wrongPathFactor = 1.12;
    /** Micro-op expansion of the committed instruction stream. */
    double uopExpansion = 1.1;
};

/**
 * The per-interval core model. Stateless across calls except for the
 * caller-provided Rng; all phase state lives in the workload layer.
 */
class IntervalCore
{
  public:
    explicit IntervalCore(const CoreParams &params = {});

    const CoreParams &params() const { return params_; }

    /**
     * Effective cycles-per-instruction for a phase at a frequency,
     * without noise. Exposed for tests and for the oracle analyses.
     */
    double effectiveCpi(const PhaseParams &phase, GHz freq) const;

    /**
     * Instructions retired per second for a phase at a frequency
     * (the performance metric behind "most performant VF point").
     */
    double instructionsPerSecond(const PhaseParams &phase, GHz freq) const;

    /**
     * Simulate one telemetry interval of the given length and produce
     * the full counter set. Noise perturbs the phase's activity level
     * around its mean; all derived counters stay self-consistent (e.g.
     * committed <= fetched, misses <= accesses).
     *
     * @param phase statistical profile currently executing
     * @param freq core clock in GHz
     * @param dt interval length in seconds (normally kTelemetryStep)
     * @param rng noise source (deterministic per caller stream)
     */
    CounterSet step(const PhaseParams &phase, GHz freq, Seconds dt,
                    Rng &rng) const;

  private:
    CoreParams params_;
};

} // namespace boreas
