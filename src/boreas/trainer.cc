#include "boreas/trainer.hh"

#include <istream>
#include <ostream>

#include <algorithm>
#include <numeric>

#include "common/iofmt.hh"
#include "common/logging.hh"
#include "ml/feature_schema.hh"

namespace boreas
{

TrainedBoreas
trainBoreas(SimulationPipeline &pipeline,
            const std::vector<const WorkloadSpec *> &train_workloads,
            const TrainerConfig &config)
{
    TrainedBoreas out;

    BuiltData built = buildTrainingData(pipeline, train_workloads,
                                        config.data);
    out.fullTrainData = std::move(built.severity);
    boreas_assert(out.fullTrainData.numRows() > 0,
                  "empty training dataset");

    // Full-schema model: used for the Sec. IV-B importance study.
    out.fullModel.train(out.fullTrainData, config.gbt);

    // Deployed model on the selected columns.
    out.featureNames = config.deployedFeatures.empty()
        ? deployedFeatureNames() : config.deployedFeatures;
    out.trainData = out.fullTrainData.selectFeatures(
        featureIndicesOf(out.featureNames));
    out.model.train(out.trainData, config.gbt);

    // Cochran-Reda baseline on the same trajectories.
    Rng rng(config.data.baseSeed ^ 0xCDAC10ULL);
    out.phaseModel.train(built.phaseSamples, /*num_phases=*/8,
                         /*num_components=*/5,
                         pipeline.vfTable().numPoints(), rng);
    return out;
}

std::vector<std::string>
selectTopFeatures(const GBTRegressor &full_model, size_t k)
{
    const auto &schema = fullFeatureSchema();
    boreas_assert(full_model.numFeatures() == schema.size(),
                  "model is not a full-schema model");
    const std::vector<double> gains = full_model.featureImportance();

    std::vector<size_t> order(gains.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return gains[a] > gains[b];
    });
    k = std::min(k, order.size());

    // Return ascending by importance, matching Table IV's presentation.
    std::vector<std::string> names;
    for (size_t i = k; i-- > 0;)
        names.push_back(schema[order[i]]);
    return names;
}

double
evaluateMse(const GBTRegressor &model,
            const std::vector<std::string> &feature_names,
            const Dataset &full_data)
{
    const Dataset view = full_data.selectFeatures(
        featureIndicesOf(feature_names));
    return model.mse(view);
}

void
saveTrainedBoreas(const TrainedBoreas &trained, std::ostream &os)
{
    boreas_assert(trained.model.trained(),
                  "cannot save an untrained bundle");
    ScopedStreamPrecision precision(os);
    os << "boreas-bundle 1\n";
    os << trained.featureNames.size() << "\n";
    for (const auto &name : trained.featureNames)
        os << name << "\n";
    trained.model.save(os);
    os << (trained.phaseModel.trained() ? 1 : 0) << "\n";
    if (trained.phaseModel.trained())
        trained.phaseModel.save(os);
}

TrainedBoreas
loadTrainedBoreas(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    boreas_assert(magic == "boreas-bundle" && version == 1,
                  "bad bundle header");
    TrainedBoreas out;
    size_t n = 0;
    is >> n;
    boreas_assert(n > 0 && n <= kNumFullFeatures,
                  "bad bundle feature count %zu", n);
    out.featureNames.resize(n);
    for (auto &name : out.featureNames)
        is >> name;
    // A bundle whose feature names drifted from the counter schema
    // would silently feed the model the wrong telemetry columns; fail
    // loudly at load time instead.
    const auto &schema = fullFeatureSchema();
    for (const auto &name : out.featureNames) {
        const bool known = std::find(schema.begin(), schema.end(),
                                     name) != schema.end();
        boreas_assert(known,
                      "bundle feature '%s' is not in the telemetry "
                      "schema (stale or corrupt bundle?)",
                      name.c_str());
    }
    out.model.load(is);
    boreas_assert(out.model.numFeatures() == n,
                  "bundle model/feature mismatch");
    int has_phase = 0;
    is >> has_phase;
    if (has_phase)
        out.phaseModel.load(is);
    return out;
}

} // namespace boreas
