#include "boreas/dataset_builder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ml/feature_schema.hh"

namespace boreas
{

namespace
{

/** Max severity over steps (t, t + horizon], clamped. */
double
labelFor(const RunResult &run, int t, int horizon, double clamp)
{
    double peak = 0.0;
    for (int k = t + 1;
         k <= t + horizon && k < static_cast<int>(run.steps.size()); ++k)
        peak = std::max(peak, run.steps[k].severity.maxSeverity);
    return std::min(peak, clamp);
}

/** Emit one severity instance from step t of a run. */
void
emitInstance(Dataset &out, const RunResult &run, int t,
             const DatasetConfig &config, GHz window_freq, int group)
{
    const StepRecord &rec = run.steps[t];
    const std::vector<double> x = assembleFeatures(
        rec.counters, rec.sensorReadings[config.sensorIndex],
        window_freq);
    out.addRow(x, labelFor(run, t, config.horizonSteps,
                           config.labelClamp), group);
}

/** Emit a Cochran-Reda sample at a decision boundary. */
void
emitPhaseSample(std::vector<PhaseThermalSample> &out,
                const RunResult &run, int t, int horizon,
                int sensor_index, int freq_index)
{
    const int next = t + horizon;
    if (next >= static_cast<int>(run.steps.size()))
        return;
    PhaseThermalSample s;
    const StepRecord &rec = run.steps[t];
    s.counters.assign(rec.counters.values.begin(),
                      rec.counters.values.end());
    s.tempNow = rec.sensorReadings[sensor_index];
    s.freqIndex = freq_index;
    s.tempNext = run.steps[next].sensorReadings[sensor_index];
    out.push_back(std::move(s));
}

} // namespace

BuiltData
buildTrainingData(SimulationPipeline &pipeline,
                  const std::vector<const WorkloadSpec *> &workloads,
                  const DatasetConfig &config)
{
    boreas_assert(!workloads.empty(), "no workloads");
    boreas_assert(config.horizonSteps >= 1, "bad horizon");

    const VFTable &vf = pipeline.vfTable();
    std::vector<GHz> freqs = config.frequencies;
    if (freqs.empty())
        freqs = vf.frequencies();

    BuiltData built;
    built.severity = Dataset(fullFeatureSchema());

    Rng walk_rng(config.baseSeed ^ 0xdecaf000ULL);

    std::vector<double> augments = config.intensityAugments;
    if (augments.empty())
        augments.push_back(1.0);

    for (const WorkloadSpec *base : workloads) {
        const int group = static_cast<int>(base->seedSalt);

        // Constant-frequency traces, repeated per intensity augment.
        for (size_t ai = 0; ai < augments.size(); ++ai) {
            WorkloadSpec aug = *base;
            aug.thermalScale *= augments[ai];
            for (GHz f : freqs) {
                for (int seg = 0; seg < config.constSegments; ++seg) {
                    const uint64_t seed = config.baseSeed +
                        base->seedSalt * 1000 + vf.index(f) * 10 + seg +
                        ai * 31337;
                    // Diversify the initial thermal state: real traces
                    // are windows of much longer executions, so the
                    // die can be anywhere between cool and saturated
                    // when a window begins.
                    const GHz warm = vf.frequency(
                        (vf.index(f) + static_cast<int>(ai) * 4 + seg) %
                        vf.numPoints());
                    const RunResult run = pipeline.runConstantFrequency(
                        aug, seed, f, config.traceSteps, warm);
                    const int last =
                        config.traceSteps - config.horizonSteps;
                    for (int t = 0; t < last; ++t)
                        emitInstance(built.severity, run, t, config, f,
                                     group);
                    // Phase samples at decision boundaries.
                    for (int t = config.horizonSteps - 1; t < last;
                         t += config.horizonSteps)
                        emitPhaseSample(built.phaseSamples, run, t,
                                        config.horizonSteps,
                                        config.sensorIndex, vf.index(f));
                }
            }
        }

        // Random-walk traces: +/- one VF step (or hold) per decision,
        // holding each point long enough that label windows with a
        // single frequency exist.
        const int hold = std::max(
            1, (config.horizonSteps + kStepsPerDecision - 1) /
                   kStepsPerDecision);
        for (int seg = 0; seg < config.walkSegments; ++seg) {
            WorkloadSpec aug = *base;
            aug.thermalScale *= augments[seg % augments.size()];
            const int decisions =
                (config.traceSteps + kStepsPerDecision - 1) /
                kStepsPerDecision;
            std::vector<GHz> schedule;
            GHz f = vf.frequency(
                walk_rng.uniformInt(0, vf.numPoints() - 1));
            while (static_cast<int>(schedule.size()) < decisions) {
                for (int h = 0; h < hold; ++h)
                    schedule.push_back(f);
                const int move = walk_rng.uniformInt(-1, 1);
                if (move < 0)
                    f = vf.stepDown(f);
                else if (move > 0)
                    f = vf.stepUp(f);
            }
            schedule.resize(decisions);
            const uint64_t seed = config.baseSeed +
                base->seedSalt * 1000 + 777 + seg;
            const GHz warm = vf.frequency(
                walk_rng.uniformInt(0, vf.numPoints() - 1));
            const RunResult run = pipeline.runWithSchedule(
                aug, seed, schedule, config.traceSteps, warm);

            // Instances only where the label window [t+1, t+horizon]
            // runs at a single frequency: t+1 on a decision boundary
            // and every decision period the window touches unchanged.
            const int last = config.traceSteps - config.horizonSteps;
            auto decision_of = [&](int step) {
                return std::min(static_cast<size_t>(
                                    step / kStepsPerDecision),
                                schedule.size() - 1);
            };
            for (int t = kStepsPerDecision - 1; t < last;
                 t += kStepsPerDecision) {
                const GHz wf = schedule[decision_of(t + 1)];
                bool constant = true;
                for (int k = t + 1; k <= t + config.horizonSteps;
                     k += kStepsPerDecision) {
                    if (schedule[decision_of(k)] != wf) {
                        constant = false;
                        break;
                    }
                }
                if (!constant ||
                    schedule[decision_of(t + config.horizonSteps)] != wf)
                    continue;
                emitInstance(built.severity, run, t, config, wf, group);
                emitPhaseSample(built.phaseSamples, run, t,
                                config.horizonSteps, config.sensorIndex,
                                vf.index(wf));
            }
        }
    }
    return built;
}

} // namespace boreas
