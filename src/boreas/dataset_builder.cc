#include "boreas/dataset_builder.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "ml/feature_schema.hh"
#include "workload/registry.hh"

namespace boreas
{

namespace
{

/** Max severity over steps (t, t + horizon], clamped. */
double
labelFor(const RunResult &run, int t, int horizon, double clamp)
{
    double peak = 0.0;
    for (int k = t + 1;
         k <= t + horizon && k < static_cast<int>(run.steps.size()); ++k)
        peak = std::max(peak, run.steps[k].severity.maxSeverity);
    return std::min(peak, clamp);
}

/** Emit one severity instance from step t of a run. */
void
emitInstance(Dataset &out, const RunResult &run, int t,
             const DatasetConfig &config, GHz window_freq, int group)
{
    const StepRecord &rec = run.steps[t];
    const std::vector<double> x = assembleFeatures(
        rec.counters, rec.sensorReadings[config.sensorIndex],
        window_freq);
    out.addRow(x, labelFor(run, t, config.horizonSteps,
                           config.labelClamp), group);
}

/** Emit a Cochran-Reda sample at a decision boundary. */
void
emitPhaseSample(std::vector<PhaseThermalSample> &out,
                const RunResult &run, int t, int horizon,
                int sensor_index, int freq_index)
{
    const int next = t + horizon;
    if (next >= static_cast<int>(run.steps.size()))
        return;
    PhaseThermalSample s;
    const StepRecord &rec = run.steps[t];
    s.counters.assign(rec.counters.values.begin(),
                      rec.counters.values.end());
    s.tempNow = rec.sensorReadings[sensor_index];
    s.freqIndex = freq_index;
    s.tempNext = run.steps[next].sensorReadings[sensor_index];
    out.push_back(std::move(s));
}

/**
 * One independent trace to simulate: either a constant-frequency run
 * (schedule empty) or a random-walk run (schedule non-empty). Jobs are
 * enumerated serially — in the exact order the former single-threaded
 * loop emitted instances, with the walk RNG drawn in that same order —
 * then executed on the pool and merged back in job order, so the built
 * dataset is bit-identical for every BOREAS_THREADS value.
 */
struct TraceJob
{
    std::unique_ptr<WorkloadSource> source; ///< private to this job
    uint64_t seed = 0;
    GHz warm = 0.0;
    int group = 0;
    GHz constFreq = 0.0;      ///< constant-frequency job when schedule empty
    std::vector<GHz> schedule;
};

/** Output shard of one job. */
struct JobResult
{
    Dataset severity;
    std::vector<PhaseThermalSample> phaseSamples;
};

/** Run one job on the given (task-local) pipeline and emit its shard. */
void
runJob(SimulationPipeline &pipeline, const VFTable &vf,
       const TraceJob &job, const DatasetConfig &config, JobResult &out)
{
    out.severity = Dataset(fullFeatureSchema());
    const int last = config.traceSteps - config.horizonSteps;

    if (job.schedule.empty()) {
        const RunResult run = pipeline.runConstantFrequency(
            *job.source, job.seed, job.constFreq, config.traceSteps,
            job.warm);
        for (int t = 0; t < last; ++t)
            emitInstance(out.severity, run, t, config, job.constFreq,
                         job.group);
        for (int t = config.horizonSteps - 1; t < last;
             t += config.horizonSteps)
            emitPhaseSample(out.phaseSamples, run, t,
                            config.horizonSteps, config.sensorIndex,
                            vf.index(job.constFreq));
        return;
    }

    const RunResult run = pipeline.runWithSchedule(
        *job.source, job.seed, job.schedule, config.traceSteps,
        job.warm);

    // Instances only where the label window [t+1, t+horizon] runs at a
    // single frequency: t+1 on a decision boundary and every decision
    // period the window touches unchanged.
    const std::vector<GHz> &schedule = job.schedule;
    auto decision_of = [&](int step) {
        return std::min(static_cast<size_t>(step / kStepsPerDecision),
                        schedule.size() - 1);
    };
    for (int t = kStepsPerDecision - 1; t < last;
         t += kStepsPerDecision) {
        const GHz wf = schedule[decision_of(t + 1)];
        bool constant = true;
        for (int k = t + 1; k <= t + config.horizonSteps;
             k += kStepsPerDecision) {
            if (schedule[decision_of(k)] != wf) {
                constant = false;
                break;
            }
        }
        if (!constant ||
            schedule[decision_of(t + config.horizonSteps)] != wf)
            continue;
        emitInstance(out.severity, run, t, config, wf, job.group);
        emitPhaseSample(out.phaseSamples, run, t, config.horizonSteps,
                        config.sensorIndex, vf.index(wf));
    }
}

} // namespace

BuiltData
buildTrainingData(SimulationPipeline &pipeline,
                  const std::vector<const WorkloadSpec *> &workloads,
                  const DatasetConfig &config)
{
    boreas_assert(!workloads.empty(), "no workloads");
    std::vector<std::unique_ptr<WorkloadSource>> owned;
    std::vector<const WorkloadSource *> sources;
    owned.reserve(workloads.size());
    sources.reserve(workloads.size());
    for (const WorkloadSpec *spec : workloads) {
        owned.push_back(makeSyntheticSource(*spec));
        sources.push_back(owned.back().get());
    }
    return buildTrainingData(pipeline, sources, config);
}

BuiltData
buildTrainingData(SimulationPipeline &pipeline,
                  const std::vector<const WorkloadSource *> &sources,
                  const DatasetConfig &config)
{
    boreas_assert(!sources.empty(), "no workload sources");
    boreas_assert(config.horizonSteps >= 1, "bad horizon");

    const VFTable &vf = pipeline.vfTable();
    std::vector<GHz> freqs = config.frequencies;
    if (freqs.empty())
        freqs = vf.frequencies();

    Rng walk_rng(config.baseSeed ^ 0xdecaf000ULL);

    std::vector<double> augments = config.intensityAugments;
    if (augments.empty())
        augments.push_back(1.0);

    // Phase 1 (serial): enumerate every trace job in emission order.
    std::vector<TraceJob> jobs;
    for (const WorkloadSource *base : sources) {
        // groupId() == seedSalt for the synthetic suite, so every
        // seed below matches the former spec-based enumeration.
        const uint64_t salt = base->groupId();
        const int group = static_cast<int>(salt);

        // Constant-frequency traces, repeated per intensity augment.
        for (size_t ai = 0; ai < augments.size(); ++ai) {
            for (GHz f : freqs) {
                for (int seg = 0; seg < config.constSegments; ++seg) {
                    TraceJob job;
                    job.source = base->cloneScaled(augments[ai]);
                    job.group = group;
                    job.constFreq = f;
                    job.seed = config.baseSeed + salt * 1000 +
                        vf.index(f) * 10 + seg + ai * 31337;
                    // Diversify the initial thermal state: real traces
                    // are windows of much longer executions, so the
                    // die can be anywhere between cool and saturated
                    // when a window begins.
                    job.warm = vf.frequency(
                        (vf.index(f) + static_cast<int>(ai) * 4 + seg) %
                        vf.numPoints());
                    jobs.push_back(std::move(job));
                }
            }
        }

        // Random-walk traces: +/- one VF step (or hold) per decision,
        // holding each point long enough that label windows with a
        // single frequency exist. The walk RNG is consumed here, in
        // enumeration order, never on the pool.
        const int hold = std::max(
            1, (config.horizonSteps + kStepsPerDecision - 1) /
                   kStepsPerDecision);
        for (int seg = 0; seg < config.walkSegments; ++seg) {
            TraceJob job;
            job.source =
                base->cloneScaled(augments[seg % augments.size()]);
            job.group = group;
            const int decisions =
                (config.traceSteps + kStepsPerDecision - 1) /
                kStepsPerDecision;
            GHz f = vf.frequency(
                walk_rng.uniformInt(0, vf.numPoints() - 1));
            while (static_cast<int>(job.schedule.size()) < decisions) {
                for (int h = 0; h < hold; ++h)
                    job.schedule.push_back(f);
                const int move = walk_rng.uniformInt(-1, 1);
                if (move < 0)
                    f = vf.stepDown(f);
                else if (move > 0)
                    f = vf.stepUp(f);
            }
            job.schedule.resize(decisions);
            job.seed = config.baseSeed + salt * 1000 + 777 + seg;
            job.warm = vf.frequency(
                walk_rng.uniformInt(0, vf.numPoints() - 1));
            jobs.push_back(std::move(job));
        }
    }

    // Phase 2 (parallel): run the traces. Each chunk owns a private
    // pipeline cloned from the caller's configuration, so scheduling
    // order cannot perturb any run.
    std::vector<JobResult> results(jobs.size());
    ThreadPool &pool = ThreadPool::global();
    const int64_t grain = std::max<int64_t>(
        1, static_cast<int64_t>(jobs.size()) /
            (static_cast<int64_t>(pool.numThreads()) * 4));
    pool.parallelFor(
        0, static_cast<int64_t>(jobs.size()), grain,
        [&](int64_t lo, int64_t hi) {
            SimulationPipeline local(pipeline.config());
            for (int64_t j = lo; j < hi; ++j)
                runJob(local, local.vfTable(), jobs[j], config,
                       results[j]);
        });

    // Phase 3 (serial): merge shards in job order.
    BuiltData built;
    built.severity = Dataset(fullFeatureSchema());
    for (const JobResult &r : results) {
        built.severity.append(r.severity);
        built.phaseSamples.insert(built.phaseSamples.end(),
                                  r.phaseSamples.begin(),
                                  r.phaseSamples.end());
    }
    return built;
}

} // namespace boreas
