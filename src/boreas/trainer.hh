/**
 * @file
 * The Boreas training recipe (Fig. 3, Secs. IV-A/IV-B): generate the
 * telemetry dataset from the training workloads, fit the full-schema GBT
 * for the feature-importance study, and fit the deployed model on the
 * selected feature subset.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "boreas/dataset_builder.hh"
#include "boreas/pipeline.hh"
#include "control/phase_thermal.hh"
#include "ml/cv.hh"
#include "ml/gbt.hh"

namespace boreas
{

/** Configuration of one training pass. */
struct TrainerConfig
{
    DatasetConfig data{};
    GBTParams gbt{};          ///< defaults = Table II
    /** Feature names of the deployed model; empty = Table IV top-20 +
     *  frequency. */
    std::vector<std::string> deployedFeatures;
};

/** Everything the evaluation needs from one training pass. */
struct TrainedBoreas
{
    /** Deployed model (selected features). */
    GBTRegressor model;
    /** Column names of the deployed model, in order. */
    std::vector<std::string> featureNames;
    /** Model over all 78 attributes (feature-importance study). */
    GBTRegressor fullModel;
    /** The raw training data (full schema). */
    Dataset fullTrainData;
    /** Training data restricted to the deployed columns. */
    Dataset trainData;
    /** Cochran-Reda baseline model trained on the same trajectories. */
    PhaseThermalModel phaseModel;
};

/** Run the full training pass on the given (training) workloads. */
TrainedBoreas trainBoreas(SimulationPipeline &pipeline,
                          const std::vector<const WorkloadSpec *> &
                              train_workloads,
                          const TrainerConfig &config = {});

/**
 * The feature-selection procedure of Sec. IV-B: rank the full model's
 * features by normalized gain and return the names of the top k
 * (ascending importance, like Table IV).
 */
std::vector<std::string> selectTopFeatures(const GBTRegressor &full_model,
                                           size_t k);

/** Evaluate a dataset restricted to the model's columns. */
double evaluateMse(const GBTRegressor &model,
                   const std::vector<std::string> &feature_names,
                   const Dataset &full_data);

/**
 * Persist the deployable parts of a training pass: the deployed GBT,
 * its feature names, and the Cochran-Reda baseline model. Datasets and
 * the 78-feature study model are not persisted (regenerate them).
 */
void saveTrainedBoreas(const TrainedBoreas &trained, std::ostream &os);

/**
 * Restore a persisted training pass. The returned bundle is ready to
 * drive BoreasController / PhaseThermalController; its datasets are
 * empty and fullModel is untrained.
 */
TrainedBoreas loadTrainedBoreas(std::istream &is);

} // namespace boreas
