/**
 * @file
 * Offline characterization analyses of Sec. III: the peak-severity
 * sweep behind Fig. 2, the oracle / global-limit frequency selection,
 * and the critical-temperature study behind the thermal-aware models.
 */

#pragma once

#include <limits>
#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "control/thermal_controller.hh"

namespace boreas
{

/** Peak Hotspot-Severity per (workload, frequency) — the Fig. 2 data. */
struct SeveritySweep
{
    std::vector<std::string> workloads;
    std::vector<GHz> freqs;
    /** peak[w][f], indexed as the vectors above. */
    std::vector<std::vector<double>> peak;

    /**
     * Oracle frequency of workload w: the highest grid point whose
     * peak severity stays below 1.0 (Sec. III-B). Falls back to the
     * lowest grid point if nothing is safe.
     */
    GHz oracleFrequency(size_t w) const;

    /** The globally safe VF limit: min over workloads (Sec. III-C). */
    GHz globalLimit() const;

    int workloadIndex(const std::string &name) const;
};

/**
 * Run the Fig. 2 sweep: every workload at every frequency for `steps`
 * telemetry steps.
 */
SeveritySweep severitySweep(SimulationPipeline &pipeline,
                            const std::vector<const WorkloadSpec *> &
                                workloads,
                            const std::vector<GHz> &freqs,
                            uint64_t seed, int steps = kTraceSteps);

/**
 * Same sweep over arbitrary workload sources (mix:, adversarial:,
 * trace: — anything the registry builds). Each grid point runs a
 * private clone of the source; rows are labeled with source names.
 */
SeveritySweep severitySweep(SimulationPipeline &pipeline,
                            const std::vector<const WorkloadSource *> &
                                sources,
                            const std::vector<GHz> &freqs,
                            uint64_t seed, int steps = kTraceSteps);

/** Sentinel for "severity never reached 1.0 at this point". */
constexpr Celsius kNoCriticalTemp =
    std::numeric_limits<Celsius>::infinity();

/** Per-(workload, frequency) critical temperatures (Sec. III-D.1). */
struct CriticalTempStudy
{
    std::vector<std::string> workloads;
    std::vector<GHz> freqs;
    /**
     * crit[w][f]: the lowest *sensor reading* observed while severity
     * was >= 1.0; kNoCriticalTemp if severity never got there.
     */
    std::vector<std::vector<Celsius>> crit;

    /** Global table: min across workloads per frequency (Sec. III-D.2). */
    CriticalTempTable globalTable() const;
};

/**
 * Critical-temperature characterization on the given sensor (with that
 * sensor's configured delay: the delay is what differentiates the
 * 180 us vs 960 us columns of the paper's study).
 */
CriticalTempStudy criticalTempStudy(SimulationPipeline &pipeline,
                                    const std::vector<
                                        const WorkloadSpec *> &workloads,
                                    const std::vector<GHz> &freqs,
                                    int sensor_index, uint64_t seed,
                                    int steps = kTraceSteps);

/** The same study over arbitrary workload sources. */
CriticalTempStudy criticalTempStudy(SimulationPipeline &pipeline,
                                    const std::vector<
                                        const WorkloadSource *> &sources,
                                    const std::vector<GHz> &freqs,
                                    int sensor_index, uint64_t seed,
                                    int steps = kTraceSteps);

} // namespace boreas
