/**
 * @file
 * Training-data generation (Sec. IV-A, Table II "Dataset").
 *
 * Instances are rows of the 78-attribute schema extracted every 80 us,
 * labeled with the *max severity over the next decision window* — the
 * quantity the controller needs predicted. Two kinds of trajectories are
 * generated per workload:
 *
 *   - constant-frequency traces at every VF grid point (the paper's
 *     sweep data): instances at every step;
 *   - random-walk traces whose frequency moves +/-250 MHz at decision
 *     boundaries: instances only where the label window has a single
 *     frequency. These cover the "hot state, different frequency"
 *     transitions the controller's what-if queries depend on.
 *
 * The same trajectories also yield the (counters, temp_now, freq,
 * temp_next) samples the Cochran-Reda baseline trains on.
 */

#pragma once

#include <vector>

#include "boreas/pipeline.hh"
#include "control/phase_thermal.hh"
#include "ml/dataset.hh"

namespace boreas
{

/** Knobs of the data-generation pass. */
struct DatasetConfig
{
    /** VF points for constant-frequency traces; empty = full grid. */
    std::vector<GHz> frequencies;
    /** Seeded repetitions of each constant-frequency trace. */
    int constSegments = 1;
    /** Random-walk traces per workload. */
    int walkSegments = 4;
    int traceSteps = kTraceSteps;
    /**
     * Label horizon: max severity over this many future steps ("the
     * severity of the future steps", Sec. IV). Two decision periods by
     * default: a boost must be sustainable, not merely survivable for
     * one period — this is what catches slow thermal ramps that a
     * one-period lookahead (plus a delayed sensor) would walk into.
     */
    int horizonSteps = 2 * kStepsPerDecision;
    /** Sensor feeding temperature_sensor_data. */
    int sensorIndex = kBestSensorIndex;
    uint64_t baseSeed = 1234;

    /**
     * Dynamic-energy augmentation: each trace is additionally generated
     * with the workload's thermal scale multiplied by these factors.
     * Synthetic workloads carry a per-binary switching-activity scale
     * that no counter exposes (as in real silicon, where identical
     * counter vectors can dissipate different power across binaries);
     * training across scales teaches the regressor that counters alone
     * cannot pin down power, so it must anchor on the temperature
     * telemetry — matching the paper's temperature-dominated model
     * (Table IV). {1.0} disables augmentation.
     */
    std::vector<double> intensityAugments{0.8, 1.0, 1.25};

    /**
     * Labels are clamped to this ceiling. Severity far above 1.0 is
     * all equally fatal — uncapped labels make the regressor spend
     * capacity ranking catastrophes and hurt accuracy near the
     * 0.9-1.0 decision band the controller actually operates in.
     */
    double labelClamp = 1.3;
};

/** Output of one data-generation pass. */
struct BuiltData
{
    Dataset severity;                         ///< full 78-column schema
    std::vector<PhaseThermalSample> phaseSamples;
};

/**
 * Generate training/evaluation data for the given workloads. Group ids
 * in the dataset are the workloads' seedSalt values (unique per
 * workload), preserving the paper's application-exclusive splits.
 * Wraps each spec as a synthetic source and forwards to the source
 * overload; seeds and emitted rows are unchanged.
 */
BuiltData buildTrainingData(SimulationPipeline &pipeline,
                            const std::vector<const WorkloadSpec *> &
                                workloads,
                            const DatasetConfig &config);

/**
 * Source-generic data generation: any WorkloadSource (synthetic, nas,
 * mix, adversarial, trace replay) can contribute trajectories. Group
 * ids come from WorkloadSource::groupId(), which equals seedSalt for
 * the synthetic suite, so existing splits are untouched. Sources are
 * cloned per trace job (with cloneScaled() for the intensity
 * augments) and never mutated.
 */
BuiltData buildTrainingData(SimulationPipeline &pipeline,
                            const std::vector<const WorkloadSource *> &
                                sources,
                            const DatasetConfig &config);

} // namespace boreas
