#include "boreas/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "common/hash.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace boreas
{

double
RunResult::averageFrequency() const
{
    if (steps.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &s : steps)
        acc += s.frequency;
    return acc / static_cast<double>(steps.size());
}

double
RunResult::peakSeverity() const
{
    double peak = 0.0;
    for (const auto &s : steps)
        peak = std::max(peak, s.severity.maxSeverity);
    return peak;
}

int
RunResult::incursionSteps() const
{
    int n = 0;
    for (const auto &s : steps)
        if (s.severity.maxSeverity >= 1.0)
            ++n;
    return n;
}

SimulationPipeline::SimulationPipeline(const PipelineConfig &config)
    : config_(config),
      floorplan_(buildSkylakeFloorplan(config.floorplan)),
      vf_(),
      core_(config.core),
      power_(floorplan_, config.power),
      grid_(floorplan_, config.thermal),
      severity_(config.severity)
{
    const auto sites = canonicalSensorSites(floorplan_,
                                            config_.activeCore);
    for (size_t i = 0; i < sites.size(); ++i) {
        sensors_.addSensor(strfmt("tsens%02zu", i), sites[i],
                           config_.sensors);
    }
}

std::vector<Watts>
SimulationPipeline::meanUnitPower(const WorkloadSpec &workload,
                                  uint64_t seed, GHz freq)
{
    // Average the workload's counter stream over a probe window with
    // leakage evaluated at a warm, uniform estimate.
    WorkloadRun probe(workload, seed);
    const Volts volts = vf_.voltage(freq);
    const std::vector<Celsius> warm_temps(floorplan_.numUnits(),
                                          config_.thermal.ambient + 20.0);

    constexpr int kProbeSteps = 64;
    std::vector<Watts> acc(floorplan_.numUnits(), 0.0);
    for (int s = 0; s < kProbeSteps; ++s) {
        const PhaseParams phase = probe.currentPhase();
        const CounterSet counters = core_.step(
            phase, freq, config_.stepLength, probe.rng());
        const auto p = power_.unitPower(
            counters, config_.activeCore, /*intensity=*/1.0, freq,
            volts, warm_temps, config_.stepLength);
        for (size_t i = 0; i < acc.size(); ++i)
            acc[i] += p[i];
        probe.advance(config_.stepLength);
    }
    for (auto &w : acc)
        w /= kProbeSteps;
    return acc;
}

void
SimulationPipeline::start(const WorkloadSpec &workload, uint64_t seed,
                          GHz warm_freq_override)
{
    run_ = std::make_unique<WorkloadRun>(workload, seed);
    sensorRng_ = Rng(seed ^ 0xb0a3a5c1d2e3f405ULL);
    stepIndex_ = 0;
    runHash_ = 0;

    grid_.reset(config_.thermal.ambient);
    if (config_.warmStart) {
        const GHz warm_freq = warm_freq_override > 0.0
            ? warm_freq_override : config_.warmStartFreq;
        const auto mean_power = meanUnitPower(workload, seed ^ 0x5eedULL,
                                              warm_freq);
        grid_.setUnitPower(mean_power);
        grid_.solveSteadyState();
    }

    // Sensors start in equilibrium with their local silicon.
    for (size_t i = 0; i < sensors_.size(); ++i) {
        sensors_.sensor(static_cast<int>(i)).reset(
            grid_.temperatureAt(
                sensors_.sensor(static_cast<int>(i)).location()));
    }
}

StepRecord
SimulationPipeline::step(GHz freq)
{
    boreas_assert(run_ != nullptr, "step() before start()");
    obs::MetricsRegistry::global().add("pipeline.steps");
    const Volts volts = vf_.voltage(freq);

    const PhaseParams phase = run_->currentPhase();
    // Residual switching-activity noise: data-dependent energy per
    // event that no counter captures. Applied to power only (the
    // counter-visible activity scale lives in phase.intensity and is
    // consumed by the core model).
    double residual = 1.0;
    if (phase.intensityNoise > 0.0) {
        residual =
            std::exp(run_->rng().normal(0.0, phase.intensityNoise));
    }
    StepRecord rec;
    rec.step = stepIndex_;
    rec.frequency = freq;
    rec.voltage = volts;
    {
        obs::ScopedTimer timer("stage.arch");
        rec.counters = core_.step(phase, freq, config_.stepLength,
                                  run_->rng());
    }

    const std::vector<Celsius> &unit_temps = grid_.unitTemps();
    {
        obs::ScopedTimer timer("stage.power");
        const auto unit_power = power_.unitPower(
            rec.counters, config_.activeCore, residual, freq, volts,
            unit_temps, config_.stepLength);
        rec.totalPower = PowerModel::totalPower(unit_power);
        grid_.setUnitPower(unit_power);
    }

    {
        obs::ScopedTimer timer("stage.thermal");
        // Nested split so BENCH artifacts can attribute the stage to
        // the configured integrator (stage.thermal.explicit vs
        // stage.thermal.spectral vs stage.thermal.surrogate).
        obs::ScopedTimer split(grid_.solverTimerName());
        grid_.step(config_.stepLength);
    }

    {
        obs::ScopedTimer timer("stage.sensors");
        sensors_.sampleAll(grid_, config_.stepLength, sensorRng_);
        rec.sensorReadings = sensors_.readings();
        rec.sensorTrue.reserve(sensors_.size());
        for (size_t i = 0; i < sensors_.size(); ++i)
            rec.sensorTrue.push_back(
                sensors_.sensor(static_cast<int>(i)).lastTrueTemp());
    }

    {
        obs::ScopedTimer timer("stage.severity");
        const Meters cell_size = floorplan_.dieWidth() / grid_.nx();
        rec.severity = severity_.evaluate(grid_.siliconTemps(),
                                          grid_.nx(), grid_.ny(),
                                          cell_size);
    }

    // Bitwise fingerprint of everything this step observed or
    // mutated. Fed by the determinism audit (tests compare it across
    // thread counts); cheap next to the thermal integration.
    {
        obs::ScopedTimer timer("stage.hash");
        Fnv1a hasher;
        hasher.add(rec.step);
        hasher.add(rec.frequency);
        hasher.add(rec.voltage);
        for (double v : rec.counters.values)
            hasher.add(v);
        hasher.add(rec.totalPower);
        hasher.add(rec.severity.maxSeverity);
        hasher.add(rec.severity.argmaxCell);
        hasher.add(rec.severity.tempAtMax);
        hasher.add(rec.severity.mltdAtMax);
        hasher.add(rec.severity.maxTemp);
        hasher.add(rec.severity.maxMltd);
        hasher.add(rec.sensorReadings);
        hasher.add(rec.sensorTrue);
        hasher.add(grid_.siliconTemps());
        hasher.add(grid_.sinkTemp());
        rec.stateHash = hasher.digest();

        Fnv1a combine;
        combine.add(runHash_);
        combine.add(rec.stateHash);
        runHash_ = combine.digest();
    }

    run_->advance(config_.stepLength);
    ++stepIndex_;
    return rec;
}

RunResult
SimulationPipeline::runConstantFrequency(const WorkloadSpec &workload,
                                         uint64_t seed, GHz freq,
                                         int steps,
                                         GHz warm_freq_override)
{
    start(workload, seed, warm_freq_override);
    RunResult result;
    result.steps.reserve(steps);
    for (int s = 0; s < steps; ++s)
        result.steps.push_back(step(freq));
    result.decidedFreqs.assign(
        static_cast<size_t>((steps + kStepsPerDecision - 1) /
                            kStepsPerDecision), freq);
    return result;
}

RunResult
SimulationPipeline::runWithController(const WorkloadSpec &workload,
                                      uint64_t seed,
                                      FrequencyController &controller,
                                      GHz initial_freq, int steps)
{
    start(workload, seed);
    controller.reset();

    RunResult result;
    result.steps.reserve(steps);
    GHz freq = initial_freq;
    for (int s = 0; s < steps; ++s) {
        result.steps.push_back(step(freq));
        if ((s + 1) % kStepsPerDecision == 0 && s + 1 < steps) {
            obs::ScopedTimer timer("stage.controller");
            DecisionContext ctx;
            ctx.currentFreq = freq;
            ctx.counters = &result.steps.back().counters;
            ctx.sensorReadings = result.steps.back().sensorReadings;
            ctx.vf = &vf_;
            freq = controller.decide(ctx);
            result.decidedFreqs.push_back(freq);
        }
    }
    return result;
}

RunResult
SimulationPipeline::runWithSchedule(const WorkloadSpec &workload,
                                    uint64_t seed,
                                    const std::vector<GHz> &schedule,
                                    int steps, GHz warm_freq_override)
{
    boreas_assert(!schedule.empty(), "empty frequency schedule");
    start(workload, seed, warm_freq_override);
    RunResult result;
    result.steps.reserve(steps);
    for (int s = 0; s < steps; ++s) {
        const size_t decision = std::min(
            static_cast<size_t>(s / kStepsPerDecision),
            schedule.size() - 1);
        result.steps.push_back(step(schedule[decision]));
    }
    result.decidedFreqs = schedule;
    return result;
}

} // namespace boreas
