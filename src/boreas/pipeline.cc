#include "boreas/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "common/hash.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "workload/registry.hh"
#include "workload/trace_io.hh"

namespace boreas
{

double
RunResult::averageFrequency() const
{
    if (steps.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &s : steps)
        acc += s.frequency;
    return acc / static_cast<double>(steps.size());
}

double
RunResult::peakSeverity() const
{
    double peak = 0.0;
    for (const auto &s : steps)
        peak = std::max(peak, s.severity.maxSeverity);
    return peak;
}

int
RunResult::incursionSteps() const
{
    int n = 0;
    for (const auto &s : steps)
        if (s.severity.maxSeverity >= 1.0)
            ++n;
    return n;
}

SimulationPipeline::SimulationPipeline(const PipelineConfig &config)
    : config_(config),
      floorplan_(buildSkylakeFloorplan(config.floorplan)),
      vf_(),
      core_(config.core),
      power_(floorplan_, config.power),
      grid_(floorplan_, config.thermal),
      severity_(config.severity)
{
    const auto sites = canonicalSensorSites(floorplan_,
                                            config_.activeCore);
    for (size_t i = 0; i < sites.size(); ++i) {
        sensors_.addSensor(strfmt("tsens%02zu", i), sites[i],
                           config_.sensors);
    }
}

std::vector<Watts>
SimulationPipeline::meanUnitPower(const WorkloadSource &source,
                                  uint64_t seed, GHz freq)
{
    // Average the source's counter stream over a probe window with
    // leakage evaluated at a warm, uniform estimate. The probe runs
    // on a fresh clone so the main run's noise streams are untouched.
    const std::unique_ptr<WorkloadSource> probe = source.clone();
    probe->reset(seed);
    const int ncores = probe->numCores();
    const Volts volts = vf_.voltage(freq);
    const std::vector<Celsius> warm_temps(floorplan_.numUnits(),
                                          config_.thermal.ambient + 20.0);

    constexpr int kProbeSteps = 64;
    std::vector<Watts> acc(floorplan_.numUnits(), 0.0);
    for (int s = 0; s < kProbeSteps; ++s) {
        std::vector<Watts> p;
        if (ncores == 1) {
            const PhaseParams phase = probe->stimulus(0).phase;
            const CounterSet counters = core_.step(
                phase, freq, config_.stepLength, probe->noiseRng(0));
            p = power_.unitPower(
                counters, config_.activeCore, /*intensity=*/1.0, freq,
                volts, warm_temps, config_.stepLength);
        } else {
            std::vector<CounterSet> counters(ncores);
            std::vector<const CounterSet *> ptrs(ncores, nullptr);
            const std::vector<double> nominal(ncores, 1.0);
            for (int c = 0; c < ncores; ++c) {
                const CoreStimulus stim = probe->stimulus(c);
                if (!stim.active)
                    continue;
                counters[c] = core_.step(stim.phase, freq,
                                         config_.stepLength,
                                         probe->noiseRng(c));
                ptrs[c] = &counters[c];
            }
            p = power_.unitPowerMulti(ptrs, nominal, freq, volts,
                                      warm_temps, config_.stepLength);
        }
        for (size_t i = 0; i < acc.size(); ++i)
            acc[i] += p[i];
        probe->advance(config_.stepLength);
    }
    for (auto &w : acc)
        w /= kProbeSteps;
    return acc;
}

void
SimulationPipeline::start(const WorkloadSpec &workload, uint64_t seed,
                          GHz warm_freq_override)
{
    owned_ = makeSyntheticSource(workload);
    startSource(*owned_, seed, warm_freq_override);
}

void
SimulationPipeline::start(WorkloadSource &source, uint64_t seed,
                          GHz warm_freq_override)
{
    owned_.reset();
    startSource(source, seed, warm_freq_override);
}

void
SimulationPipeline::startSource(WorkloadSource &source, uint64_t seed,
                                GHz warm_freq_override)
{
    boreas_assert(source.numCores() >= 1 &&
                      source.numCores() <= config_.floorplan.numCores,
                  "source '%s' drives %d cores, die has %d",
                  source.name().c_str(), source.numCores(),
                  config_.floorplan.numCores);
    source_ = &source;
    source.reset(seed);
    sensorRng_ = Rng(seed ^ 0xb0a3a5c1d2e3f405ULL);
    stepIndex_ = 0;
    runHash_ = 0;

    grid_.reset(config_.thermal.ambient);
    std::vector<Watts> warm_power;
    if (config_.warmStart) {
        const GHz warm_freq = warm_freq_override > 0.0
            ? warm_freq_override : config_.warmStartFreq;
        // Trace replays carry the recorded warm power: the live probe
        // draws from the generator, which a recording cannot re-run.
        const std::vector<Watts> *recorded = source.recordedWarmPower();
        const auto mean_power = recorded
            ? *recorded
            : meanUnitPower(source, seed ^ 0x5eedULL, warm_freq);
        grid_.setUnitPower(mean_power);
        grid_.solveSteadyState();
        warm_power = mean_power;
    }

    // Sensors start in equilibrium with their local silicon.
    for (size_t i = 0; i < sensors_.size(); ++i) {
        sensors_.sensor(static_cast<int>(i)).reset(
            grid_.temperatureAt(
                sensors_.sensor(static_cast<int>(i)).location()));
    }

    if (recorder_) {
        recorder_->onRunStart(source.name(), source.numCores(),
                              config_.stepLength, seed,
                              std::move(warm_power));
    }
}

StepRecord
SimulationPipeline::step(GHz freq)
{
    boreas_assert(source_ != nullptr, "step() before start()");
    obs::MetricsRegistry::global().add("pipeline.steps");
    const Volts volts = vf_.voltage(freq);
    const int ncores = source_->numCores();

    std::vector<CoreStimulus> stimuli(ncores);
    for (int c = 0; c < ncores; ++c)
        stimuli[c] = source_->stimulus(c);

    // The recorder tap runs before any pipeline draw: replay restores
    // these exact pre-step Rng snapshots, so the residual and
    // core-model draws below reproduce bit-identically.
    if (recorder_) {
        std::vector<TraceCoreRecord> cores(ncores);
        for (int c = 0; c < ncores; ++c) {
            cores[c].active = stimuli[c].active;
            cores[c].rng = source_->noiseRng(c).saveState();
            cores[c].phase = stimuli[c].phase;
        }
        recorder_->recordStep(static_cast<uint32_t>(stepIndex_),
                              std::move(cores));
    }

    StepRecord rec;
    rec.step = stepIndex_;
    rec.frequency = freq;
    rec.voltage = volts;

    std::vector<CounterSet> core_counters(ncores);
    std::vector<double> residuals(ncores, 1.0);
    {
        obs::ScopedTimer timer("stage.arch");
        for (int c = 0; c < ncores; ++c) {
            if (!stimuli[c].active)
                continue;
            const PhaseParams &phase = stimuli[c].phase;
            // Residual switching-activity noise: data-dependent
            // energy per event that no counter captures. Applied to
            // power only (the counter-visible activity scale lives in
            // phase.intensity and is consumed by the core model).
            if (phase.intensityNoise > 0.0) {
                residuals[c] = std::exp(source_->noiseRng(c).normal(
                    0.0, phase.intensityNoise));
            }
            core_counters[c] = core_.step(phase, freq,
                                          config_.stepLength,
                                          source_->noiseRng(c));
        }
    }
    rec.counters = core_counters[0];
    if (ncores > 1)
        rec.coreCounters = core_counters;

    const std::vector<Celsius> &unit_temps = grid_.unitTemps();
    {
        obs::ScopedTimer timer("stage.power");
        // Single-core runs keep the original power path so their
        // floating-point op order (hence runHash) is unchanged.
        std::vector<Watts> unit_power;
        if (ncores == 1 && stimuli[0].active) {
            unit_power = power_.unitPower(
                rec.counters, config_.activeCore, residuals[0], freq,
                volts, unit_temps, config_.stepLength);
        } else {
            std::vector<const CounterSet *> ptrs(ncores, nullptr);
            for (int c = 0; c < ncores; ++c) {
                if (stimuli[c].active)
                    ptrs[c] = &core_counters[c];
            }
            unit_power = power_.unitPowerMulti(ptrs, residuals, freq,
                                               volts, unit_temps,
                                               config_.stepLength);
        }
        rec.totalPower = PowerModel::totalPower(unit_power);
        grid_.setUnitPower(unit_power);
    }

    {
        obs::ScopedTimer timer("stage.thermal");
        // Nested split so BENCH artifacts can attribute the stage to
        // the configured integrator (stage.thermal.explicit vs
        // stage.thermal.spectral vs stage.thermal.surrogate).
        obs::ScopedTimer split(grid_.solverTimerName());
        grid_.step(config_.stepLength);
    }

    {
        obs::ScopedTimer timer("stage.sensors");
        sensors_.sampleAll(grid_, config_.stepLength, sensorRng_);
        rec.sensorReadings = sensors_.readings();
        rec.sensorTrue.reserve(sensors_.size());
        for (size_t i = 0; i < sensors_.size(); ++i)
            rec.sensorTrue.push_back(
                sensors_.sensor(static_cast<int>(i)).lastTrueTemp());
    }

    {
        obs::ScopedTimer timer("stage.severity");
        const Meters cell_size = floorplan_.dieWidth() / grid_.nx();
        rec.severity = severity_.evaluate(grid_.siliconTemps(),
                                          grid_.nx(), grid_.ny(),
                                          cell_size);
    }

    // Bitwise fingerprint of everything this step observed or
    // mutated. Fed by the determinism audit (tests compare it across
    // thread counts); cheap next to the thermal integration.
    {
        obs::ScopedTimer timer("stage.hash");
        Fnv1a hasher;
        hasher.add(rec.step);
        hasher.add(rec.frequency);
        hasher.add(rec.voltage);
        for (double v : rec.counters.values)
            hasher.add(v);
        hasher.add(rec.totalPower);
        hasher.add(rec.severity.maxSeverity);
        hasher.add(rec.severity.argmaxCell);
        hasher.add(rec.severity.tempAtMax);
        hasher.add(rec.severity.mltdAtMax);
        hasher.add(rec.severity.maxTemp);
        hasher.add(rec.severity.maxMltd);
        hasher.add(rec.sensorReadings);
        hasher.add(rec.sensorTrue);
        hasher.add(grid_.siliconTemps());
        hasher.add(grid_.sinkTemp());
        // Multi-core sources append the other cores' telemetry (and
        // activity) after the legacy fields, leaving every
        // single-core hash byte-identical to earlier releases.
        if (ncores > 1) {
            for (int c = 1; c < ncores; ++c) {
                for (double v : rec.coreCounters[c].values)
                    hasher.add(v);
            }
            for (int c = 0; c < ncores; ++c)
                hasher.add(static_cast<int>(stimuli[c].active));
        }
        rec.stateHash = hasher.digest();

        Fnv1a combine;
        combine.add(runHash_);
        combine.add(rec.stateHash);
        runHash_ = combine.digest();
    }

    source_->advance(config_.stepLength);
    ++stepIndex_;
    return rec;
}

RunResult
SimulationPipeline::runConstInner(GHz freq, int steps)
{
    RunResult result;
    result.steps.reserve(steps);
    for (int s = 0; s < steps; ++s)
        result.steps.push_back(step(freq));
    result.decidedFreqs.assign(
        static_cast<size_t>((steps + kStepsPerDecision - 1) /
                            kStepsPerDecision), freq);
    return result;
}

RunResult
SimulationPipeline::runConstantFrequency(const WorkloadSpec &workload,
                                         uint64_t seed, GHz freq,
                                         int steps,
                                         GHz warm_freq_override)
{
    start(workload, seed, warm_freq_override);
    return runConstInner(freq, steps);
}

RunResult
SimulationPipeline::runConstantFrequency(WorkloadSource &source,
                                         uint64_t seed, GHz freq,
                                         int steps,
                                         GHz warm_freq_override)
{
    start(source, seed, warm_freq_override);
    return runConstInner(freq, steps);
}

RunResult
SimulationPipeline::runControllerInner(FrequencyController &controller,
                                       GHz initial_freq, int steps)
{
    controller.reset();

    RunResult result;
    result.steps.reserve(steps);
    GHz freq = initial_freq;
    for (int s = 0; s < steps; ++s) {
        result.steps.push_back(step(freq));
        if ((s + 1) % kStepsPerDecision == 0 && s + 1 < steps) {
            obs::ScopedTimer timer("stage.controller");
            DecisionContext ctx;
            ctx.currentFreq = freq;
            ctx.counters = &result.steps.back().counters;
            ctx.sensorReadings = result.steps.back().sensorReadings;
            ctx.vf = &vf_;
            freq = controller.decide(ctx);
            result.decidedFreqs.push_back(freq);
        }
    }
    return result;
}

RunResult
SimulationPipeline::continueWithController(FrequencyController &controller,
                                           GHz *freq, int steps)
{
    boreas_assert(source_ != nullptr,
                  "continueWithController() before start()");
    boreas_assert(freq != nullptr, "null carried frequency");
    RunResult result;
    result.steps.reserve(steps);
    for (int s = 0; s < steps; ++s) {
        result.steps.push_back(step(*freq));
        if ((s + 1) % kStepsPerDecision == 0) {
            obs::ScopedTimer timer("stage.controller");
            DecisionContext ctx;
            ctx.currentFreq = *freq;
            ctx.counters = &result.steps.back().counters;
            ctx.sensorReadings = result.steps.back().sensorReadings;
            ctx.vf = &vf_;
            *freq = controller.decide(ctx);
            result.decidedFreqs.push_back(*freq);
        }
    }
    return result;
}

RunResult
SimulationPipeline::runWithController(const WorkloadSpec &workload,
                                      uint64_t seed,
                                      FrequencyController &controller,
                                      GHz initial_freq, int steps)
{
    start(workload, seed);
    return runControllerInner(controller, initial_freq, steps);
}

RunResult
SimulationPipeline::runWithController(WorkloadSource &source,
                                      uint64_t seed,
                                      FrequencyController &controller,
                                      GHz initial_freq, int steps)
{
    start(source, seed);
    return runControllerInner(controller, initial_freq, steps);
}

RunResult
SimulationPipeline::runScheduleInner(const std::vector<GHz> &schedule,
                                     int steps)
{
    boreas_assert(!schedule.empty(), "empty frequency schedule");
    RunResult result;
    result.steps.reserve(steps);
    for (int s = 0; s < steps; ++s) {
        const size_t decision = std::min(
            static_cast<size_t>(s / kStepsPerDecision),
            schedule.size() - 1);
        result.steps.push_back(step(schedule[decision]));
    }
    result.decidedFreqs = schedule;
    return result;
}

RunResult
SimulationPipeline::runWithSchedule(const WorkloadSpec &workload,
                                    uint64_t seed,
                                    const std::vector<GHz> &schedule,
                                    int steps, GHz warm_freq_override)
{
    start(workload, seed, warm_freq_override);
    return runScheduleInner(schedule, steps);
}

RunResult
SimulationPipeline::runWithSchedule(WorkloadSource &source,
                                    uint64_t seed,
                                    const std::vector<GHz> &schedule,
                                    int steps, GHz warm_freq_override)
{
    start(source, seed, warm_freq_override);
    return runScheduleInner(schedule, steps);
}

} // namespace boreas
