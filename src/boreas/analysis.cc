#include "boreas/analysis.hh"

#include <algorithm>

#include "common/logging.hh"

namespace boreas
{

GHz
SeveritySweep::oracleFrequency(size_t w) const
{
    boreas_assert(w < peak.size(), "bad workload index %zu", w);
    GHz best = freqs.front();
    for (size_t f = 0; f < freqs.size(); ++f)
        if (peak[w][f] < 1.0)
            best = std::max(best, freqs[f]);
    return best;
}

GHz
SeveritySweep::globalLimit() const
{
    GHz limit = freqs.back();
    for (size_t w = 0; w < workloads.size(); ++w)
        limit = std::min(limit, oracleFrequency(w));
    return limit;
}

int
SeveritySweep::workloadIndex(const std::string &name) const
{
    for (size_t i = 0; i < workloads.size(); ++i)
        if (workloads[i] == name)
            return static_cast<int>(i);
    return -1;
}

SeveritySweep
severitySweep(SimulationPipeline &pipeline,
              const std::vector<const WorkloadSpec *> &workloads,
              const std::vector<GHz> &freqs, uint64_t seed, int steps)
{
    boreas_assert(!workloads.empty() && !freqs.empty(),
                  "empty sweep spec");
    SeveritySweep sweep;
    sweep.freqs = freqs;
    // Peak severity is a max statistic of a stochastic trace; evaluate
    // a few seeded realizations per point so the safe/unsafe boundary
    // is not an artifact of one phase realization.
    constexpr int kSweepSeeds = 3;
    for (const WorkloadSpec *w : workloads) {
        sweep.workloads.push_back(w->name);
        std::vector<double> row;
        row.reserve(freqs.size());
        for (GHz f : freqs) {
            double peak = 0.0;
            for (int s = 0; s < kSweepSeeds; ++s) {
                const RunResult run = pipeline.runConstantFrequency(
                    *w, seed + w->seedSalt + 97 * s, f, steps);
                peak = std::max(peak, run.peakSeverity());
            }
            row.push_back(peak);
        }
        sweep.peak.push_back(std::move(row));
    }
    return sweep;
}

CriticalTempTable
CriticalTempStudy::globalTable() const
{
    CriticalTempTable table;
    table.criticalTemp.assign(freqs.size(), kNoCriticalTemp);
    for (size_t f = 0; f < freqs.size(); ++f)
        for (size_t w = 0; w < workloads.size(); ++w)
            table.criticalTemp[f] =
                std::min(table.criticalTemp[f], crit[w][f]);
    return table;
}

CriticalTempStudy
criticalTempStudy(SimulationPipeline &pipeline,
                  const std::vector<const WorkloadSpec *> &workloads,
                  const std::vector<GHz> &freqs, int sensor_index,
                  uint64_t seed, int steps)
{
    CriticalTempStudy study;
    study.freqs = freqs;
    // Traces are windows of longer executions: probe each operating
    // point from several initial thermal states, including cool ones.
    // Starting cool is what exposes the sensor-delay hazard — a fast
    // hotspot can reach severity 1.0 while the delayed reading is
    // still low, which is why observed critical temperatures drop
    // (Sec. III-D: libquantum with a 960 us delay).
    const std::vector<GHz> warm_starts{3.0, kBaselineFrequency};
    for (const WorkloadSpec *w : workloads) {
        study.workloads.push_back(w->name);
        std::vector<Celsius> row;
        row.reserve(freqs.size());
        for (GHz f : freqs) {
            Celsius crit = kNoCriticalTemp;
            for (GHz warm : warm_starts) {
                const RunResult run = pipeline.runConstantFrequency(
                    *w, seed + w->seedSalt, f, steps, warm);
                for (const auto &rec : run.steps) {
                    if (rec.severity.maxSeverity >= 1.0) {
                        crit = std::min(
                            crit, rec.sensorReadings[sensor_index]);
                    }
                }
            }
            row.push_back(crit);
        }
        study.crit.push_back(std::move(row));
    }
    return study;
}

} // namespace boreas
