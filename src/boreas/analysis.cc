#include "boreas/analysis.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace boreas
{

GHz
SeveritySweep::oracleFrequency(size_t w) const
{
    boreas_assert(w < peak.size(), "bad workload index %zu", w);
    GHz best = freqs.front();
    for (size_t f = 0; f < freqs.size(); ++f)
        if (peak[w][f] < 1.0)
            best = std::max(best, freqs[f]);
    return best;
}

GHz
SeveritySweep::globalLimit() const
{
    GHz limit = freqs.back();
    for (size_t w = 0; w < workloads.size(); ++w)
        limit = std::min(limit, oracleFrequency(w));
    return limit;
}

int
SeveritySweep::workloadIndex(const std::string &name) const
{
    for (size_t i = 0; i < workloads.size(); ++i)
        if (workloads[i] == name)
            return static_cast<int>(i);
    return -1;
}

SeveritySweep
severitySweep(SimulationPipeline &pipeline,
              const std::vector<const WorkloadSpec *> &workloads,
              const std::vector<GHz> &freqs, uint64_t seed, int steps)
{
    boreas_assert(!workloads.empty() && !freqs.empty(),
                  "empty sweep spec");
    SeveritySweep sweep;
    sweep.freqs = freqs;
    for (const WorkloadSpec *w : workloads)
        sweep.workloads.push_back(w->name);
    sweep.peak.assign(workloads.size(),
                      std::vector<double>(freqs.size(), 0.0));

    // Peak severity is a max statistic of a stochastic trace; evaluate
    // a few seeded realizations per point so the safe/unsafe boundary
    // is not an artifact of one phase realization.
    //
    // Every (workload, frequency) point is an independent run: fan the
    // grid out over the pool, one private pipeline per chunk, each
    // point writing its own slot — results are identical at any
    // BOREAS_THREADS.
    constexpr int kSweepSeeds = 3;
    const int64_t num_points =
        static_cast<int64_t>(workloads.size() * freqs.size());
    ThreadPool::global().parallelFor(
        0, num_points, 1, [&](int64_t lo, int64_t hi) {
            SimulationPipeline local(pipeline.config());
            for (int64_t p = lo; p < hi; ++p) {
                const size_t wi = static_cast<size_t>(p) / freqs.size();
                const size_t fi = static_cast<size_t>(p) % freqs.size();
                const WorkloadSpec *w = workloads[wi];
                double peak = 0.0;
                for (int s = 0; s < kSweepSeeds; ++s) {
                    const RunResult run = local.runConstantFrequency(
                        *w, seed + w->seedSalt + 97 * s, freqs[fi],
                        steps);
                    peak = std::max(peak, run.peakSeverity());
                }
                sweep.peak[wi][fi] = peak;
            }
        });
    return sweep;
}

SeveritySweep
severitySweep(SimulationPipeline &pipeline,
              const std::vector<const WorkloadSource *> &sources,
              const std::vector<GHz> &freqs, uint64_t seed, int steps)
{
    boreas_assert(!sources.empty() && !freqs.empty(), "empty sweep spec");
    SeveritySweep sweep;
    sweep.freqs = freqs;
    for (const WorkloadSource *s : sources)
        sweep.workloads.push_back(s->name());
    sweep.peak.assign(sources.size(),
                      std::vector<double>(freqs.size(), 0.0));

    // Same fan-out as the spec sweep; each point clones the source so
    // concurrent grid points never share generator state.
    constexpr int kSweepSeeds = 3;
    const int64_t num_points =
        static_cast<int64_t>(sources.size() * freqs.size());
    ThreadPool::global().parallelFor(
        0, num_points, 1, [&](int64_t lo, int64_t hi) {
            SimulationPipeline local(pipeline.config());
            for (int64_t p = lo; p < hi; ++p) {
                const size_t wi = static_cast<size_t>(p) / freqs.size();
                const size_t fi = static_cast<size_t>(p) % freqs.size();
                const auto src = sources[wi]->clone();
                double peak = 0.0;
                for (int s = 0; s < kSweepSeeds; ++s) {
                    const RunResult run = local.runConstantFrequency(
                        *src, seed + sources[wi]->groupId() + 97 * s,
                        freqs[fi], steps);
                    peak = std::max(peak, run.peakSeverity());
                }
                sweep.peak[wi][fi] = peak;
            }
        });
    return sweep;
}

CriticalTempTable
CriticalTempStudy::globalTable() const
{
    CriticalTempTable table;
    table.criticalTemp.assign(freqs.size(), kNoCriticalTemp);
    for (size_t f = 0; f < freqs.size(); ++f)
        for (size_t w = 0; w < workloads.size(); ++w)
            table.criticalTemp[f] =
                std::min(table.criticalTemp[f], crit[w][f]);
    return table;
}

CriticalTempStudy
criticalTempStudy(SimulationPipeline &pipeline,
                  const std::vector<const WorkloadSpec *> &workloads,
                  const std::vector<GHz> &freqs, int sensor_index,
                  uint64_t seed, int steps)
{
    CriticalTempStudy study;
    study.freqs = freqs;
    for (const WorkloadSpec *w : workloads)
        study.workloads.push_back(w->name);
    study.crit.assign(workloads.size(),
                      std::vector<Celsius>(freqs.size(),
                                           kNoCriticalTemp));

    // Traces are windows of longer executions: probe each operating
    // point from several initial thermal states, including cool ones.
    // Starting cool is what exposes the sensor-delay hazard — a fast
    // hotspot can reach severity 1.0 while the delayed reading is
    // still low, which is why observed critical temperatures drop
    // (Sec. III-D: libquantum with a 960 us delay).
    //
    // Like severitySweep, the (workload, frequency) grid fans out over
    // the pool with one private pipeline per chunk and one output slot
    // per point.
    const std::vector<GHz> warm_starts{3.0, kBaselineFrequency};
    const int64_t num_points =
        static_cast<int64_t>(workloads.size() * freqs.size());
    ThreadPool::global().parallelFor(
        0, num_points, 1, [&](int64_t lo, int64_t hi) {
            SimulationPipeline local(pipeline.config());
            for (int64_t p = lo; p < hi; ++p) {
                const size_t wi = static_cast<size_t>(p) / freqs.size();
                const size_t fi = static_cast<size_t>(p) % freqs.size();
                const WorkloadSpec *w = workloads[wi];
                Celsius crit = kNoCriticalTemp;
                for (GHz warm : warm_starts) {
                    const RunResult run = local.runConstantFrequency(
                        *w, seed + w->seedSalt, freqs[fi], steps, warm);
                    for (const auto &rec : run.steps) {
                        if (rec.severity.maxSeverity >= 1.0) {
                            crit = std::min(
                                crit,
                                rec.sensorReadings[sensor_index]);
                        }
                    }
                }
                study.crit[wi][fi] = crit;
            }
        });
    return study;
}

CriticalTempStudy
criticalTempStudy(SimulationPipeline &pipeline,
                  const std::vector<const WorkloadSource *> &sources,
                  const std::vector<GHz> &freqs, int sensor_index,
                  uint64_t seed, int steps)
{
    CriticalTempStudy study;
    study.freqs = freqs;
    for (const WorkloadSource *s : sources)
        study.workloads.push_back(s->name());
    study.crit.assign(sources.size(),
                      std::vector<Celsius>(freqs.size(),
                                           kNoCriticalTemp));

    const std::vector<GHz> warm_starts{3.0, kBaselineFrequency};
    const int64_t num_points =
        static_cast<int64_t>(sources.size() * freqs.size());
    ThreadPool::global().parallelFor(
        0, num_points, 1, [&](int64_t lo, int64_t hi) {
            SimulationPipeline local(pipeline.config());
            for (int64_t p = lo; p < hi; ++p) {
                const size_t wi = static_cast<size_t>(p) / freqs.size();
                const size_t fi = static_cast<size_t>(p) % freqs.size();
                const auto src = sources[wi]->clone();
                Celsius crit = kNoCriticalTemp;
                for (GHz warm : warm_starts) {
                    const RunResult run = local.runConstantFrequency(
                        *src, seed + sources[wi]->groupId(), freqs[fi],
                        steps, warm);
                    for (const auto &rec : run.steps) {
                        if (rec.severity.maxSeverity >= 1.0) {
                            crit = std::min(
                                crit,
                                rec.sensorReadings[sensor_index]);
                        }
                    }
                }
                study.crit[wi][fi] = crit;
            }
        });
    return study;
}

} // namespace boreas
