/**
 * @file
 * The closed-loop simulation pipeline (the HotGauge role in Fig. 3).
 *
 * Per 80 us telemetry step the pipeline:
 *   1. asks the workload for its current phase and the interval core
 *      model for the step's counters at the operating frequency;
 *   2. converts counters to per-unit power (with leakage at the current
 *      unit temperatures);
 *   3. advances the transient thermal grid;
 *   4. samples the sensor bank (delayed readings);
 *   5. evaluates MLTD + Hotspot-Severity on the silicon temperatures.
 *
 * Runs warm-start from the steady state of the workload's average power
 * at the baseline frequency, modelling a turbo window entered from
 * sustained operation.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/core_model.hh"
#include "control/controller.hh"
#include "floorplan/skylake.hh"
#include "hotspot/severity.hh"
#include "power/power_model.hh"
#include "power/vf_table.hh"
#include "sensors/placement.hh"
#include "sensors/sensor.hh"
#include "thermal/thermal_grid.hh"
#include "workload/source.hh"
#include "workload/workload.hh"

namespace boreas
{

class TraceRecorder;

/** Configuration of the full pipeline. */
struct PipelineConfig
{
    SkylakeParams floorplan{};
    ThermalParams thermal{};
    PowerModelParams power{};
    SeverityParams severity{};
    CoreParams core{};
    SensorParams sensors{};   ///< applied to every canonical sensor

    int activeCore = 0;
    Seconds stepLength = kTelemetryStep;

    /** Warm-start at the steady state of this frequency's mean power. */
    bool warmStart = true;
    GHz warmStartFreq = kBaselineFrequency;
};

/** Everything observed in one telemetry step. */
struct StepRecord
{
    int step = 0;
    GHz frequency = 0.0;
    Volts voltage = 0.0;
    /** Telemetry of core 0 (the only core for single-core sources). */
    CounterSet counters;
    /**
     * Per-core telemetry when the source drives several cores
     * (coreCounters[0] duplicates `counters`); left empty on
     * single-core runs so their records stay unchanged.
     */
    std::vector<CounterSet> coreCounters;
    Watts totalPower = 0.0;
    SeveritySnapshot severity;
    std::vector<Celsius> sensorReadings; ///< delayed
    std::vector<Celsius> sensorTrue;     ///< instantaneous at the sites

    /**
     * FNV-1a over this step's full observable state (counters, power,
     * severity, sensors) plus the silicon temperature field — the
     * bitwise fingerprint the determinism audit compares across
     * thread counts (DESIGN.md §7).
     */
    uint64_t stateHash = 0;
};

/** Aggregate outcome of one complete run. */
struct RunResult
{
    std::vector<StepRecord> steps;
    std::vector<GHz> decidedFreqs; ///< frequency after each decision

    double averageFrequency() const;
    double peakSeverity() const;
    /** Steps whose max severity reached 1.0 (hotspot incursions). */
    int incursionSteps() const;
};

/** The coupled perf/power/thermal/severity simulator. */
class SimulationPipeline
{
  public:
    explicit SimulationPipeline(const PipelineConfig &config = {});

    const PipelineConfig &config() const { return config_; }
    const Floorplan &floorplan() const { return floorplan_; }
    const VFTable &vfTable() const { return vf_; }
    const SeverityModel &severityModel() const { return severity_; }
    const ThermalGrid &thermalGrid() const { return grid_; }
    SensorBank &sensorBank() { return sensors_; }
    const IntervalCore &coreModel() const { return core_; }

    /**
     * Begin a run of the given workload. Resets thermal state (with
     * warm start if configured), sensors and the workload's phase
     * position/noise streams.
     *
     * @param warm_freq_override if > 0, warm-start at this frequency
     *        instead of config().warmStartFreq. Training traces use
     *        this to diversify initial thermal states.
     */
    void start(const WorkloadSpec &workload, uint64_t seed,
               GHz warm_freq_override = 0.0);

    /**
     * Begin a run driven by an arbitrary workload source (the spec
     * overload wraps the spec as a single-core synthetic source and
     * forwards here). The source is reset(seed) and must outlive the
     * run; it may drive up to the floorplan's core count.
     */
    void start(WorkloadSource &source, uint64_t seed,
               GHz warm_freq_override = 0.0);

    /**
     * Install a trace recorder tap (nullptr detaches). While set,
     * every start() reports the run parameters and every step()
     * records the per-core stimuli + pre-step Rng snapshots that
     * boreas-trace-v1 replay needs (workload/trace_io.hh).
     */
    void setTraceRecorder(TraceRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** The source driving the current run (nullptr before start()). */
    const WorkloadSource *source() const { return source_; }

    /** Advance one telemetry step at the given frequency. */
    StepRecord step(GHz freq);

    /** Steps executed since start(). */
    int currentStep() const { return stepIndex_; }

    /**
     * Running FNV-1a combination of every stateHash since start().
     * Two runs of the same workload/seed/schedule must agree bitwise
     * at any thread count (common/parallel.hh determinism contract).
     */
    uint64_t runHash() const { return runHash_; }

    /**
     * Run `steps` telemetry steps at a fixed frequency (Fig. 2 sweeps,
     * dataset generation).
     */
    RunResult runConstantFrequency(const WorkloadSpec &workload,
                                   uint64_t seed, GHz freq,
                                   int steps = kTraceSteps,
                                   GHz warm_freq_override = 0.0);

    RunResult runConstantFrequency(WorkloadSource &source,
                                   uint64_t seed, GHz freq,
                                   int steps = kTraceSteps,
                                   GHz warm_freq_override = 0.0);

    /**
     * Closed-loop run: the controller is consulted every
     * kStepsPerDecision steps, starting at initial_freq.
     */
    RunResult runWithController(const WorkloadSpec &workload,
                                uint64_t seed,
                                FrequencyController &controller,
                                GHz initial_freq,
                                int steps = kTraceSteps);

    RunResult runWithController(WorkloadSource &source, uint64_t seed,
                                FrequencyController &controller,
                                GHz initial_freq,
                                int steps = kTraceSteps);

    /**
     * Advance an already-started run by `steps` telemetry steps under
     * closed-loop control, without resetting the controller or the
     * pipeline. *freq carries the operating frequency across calls:
     * the segment starts there and the last decision is written back,
     * so chaining segments whose lengths are multiples of
     * kStepsPerDecision reproduces one long runWithController() step
     * stream (and runHash) bit for bit. Unlike runWithController()
     * the controller is also consulted at the segment end — the fleet
     * epoch barrier adjusts caps between segments, and the carried
     * frequency must already reflect the die's own policy. Callers
     * reset() the controller once before the first segment.
     */
    RunResult continueWithController(FrequencyController &controller,
                                     GHz *freq, int steps);

    /**
     * Run with an arbitrary per-decision frequency schedule (one entry
     * per decision period; the last entry persists). Used to generate
     * training trajectories with frequency transitions.
     */
    RunResult runWithSchedule(const WorkloadSpec &workload, uint64_t seed,
                              const std::vector<GHz> &schedule,
                              int steps = kTraceSteps,
                              GHz warm_freq_override = 0.0);

    RunResult runWithSchedule(WorkloadSource &source, uint64_t seed,
                              const std::vector<GHz> &schedule,
                              int steps = kTraceSteps,
                              GHz warm_freq_override = 0.0);

  private:
    /** Common start() body once the source to drive is known. */
    void startSource(WorkloadSource &source, uint64_t seed,
                     GHz warm_freq_override);

    /** Mean per-unit power of the source at a frequency (for warm
     *  start), probed on a fresh clone with ambient leakage. */
    std::vector<Watts> meanUnitPower(const WorkloadSource &source,
                                     uint64_t seed, GHz freq);

    RunResult runConstInner(GHz freq, int steps);
    RunResult runControllerInner(FrequencyController &controller,
                                 GHz initial_freq, int steps);
    RunResult runScheduleInner(const std::vector<GHz> &schedule,
                               int steps);

    PipelineConfig config_;
    Floorplan floorplan_;
    VFTable vf_;
    IntervalCore core_;
    PowerModel power_;
    ThermalGrid grid_;
    SeverityModel severity_;
    SensorBank sensors_;

    std::unique_ptr<WorkloadSource> owned_; ///< spec-overload wrapper
    WorkloadSource *source_ = nullptr;      ///< driving the current run
    TraceRecorder *recorder_ = nullptr;     ///< optional recording tap
    Rng sensorRng_{0};
    int stepIndex_ = 0;
    uint64_t runHash_ = 0;
};

} // namespace boreas
