#include "sensors/placement.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace boreas
{

std::vector<Point>
kmeansPlacement(const std::vector<Point> &sites, int k, Rng &rng,
                int iters)
{
    boreas_assert(k > 0, "k must be positive");
    boreas_assert(static_cast<int>(sites.size()) >= k,
                  "need at least k=%d sites, have %zu", k, sites.size());

    // k-means++ initialization.
    std::vector<Point> centers;
    centers.push_back(sites[rng.uniformInt(
        0, static_cast<int>(sites.size()) - 1)]);
    std::vector<double> d2(sites.size());
    while (static_cast<int>(centers.size()) < k) {
        double total = 0.0;
        for (size_t i = 0; i < sites.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &c : centers) {
                const double d = distance(sites[i], c);
                best = std::min(best, d * d);
            }
            d2[i] = best;
            total += best;
        }
        if (total <= 0.0) {
            // All sites coincide with centers; duplicate one.
            centers.push_back(sites[0]);
            continue;
        }
        double pick = rng.uniform() * total;
        size_t chosen = sites.size() - 1;
        for (size_t i = 0; i < sites.size(); ++i) {
            pick -= d2[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        centers.push_back(sites[chosen]);
    }

    // Lloyd iterations.
    std::vector<int> assign(sites.size(), 0);
    for (int it = 0; it < iters; ++it) {
        bool changed = false;
        for (size_t i = 0; i < sites.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            int best_c = 0;
            for (int c = 0; c < k; ++c) {
                const double d = distance(sites[i], centers[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            if (assign[i] != best_c) {
                assign[i] = best_c;
                changed = true;
            }
        }
        if (!changed && it > 0)
            break;
        std::vector<Point> sums(k);
        std::vector<int> counts(k, 0);
        for (size_t i = 0; i < sites.size(); ++i) {
            sums[assign[i]].x += sites[i].x;
            sums[assign[i]].y += sites[i].y;
            ++counts[assign[i]];
        }
        for (int c = 0; c < k; ++c) {
            if (counts[c] > 0) {
                centers[c] = {sums[c].x / counts[c],
                              sums[c].y / counts[c]};
            }
        }
    }
    return centers;
}

std::vector<Point>
canonicalSensorSites(const Floorplan &floorplan, int core_id)
{
    auto unit_center = [&](UnitKind kind, int cid) {
        const int idx = floorplan.findUnit(kind, cid);
        boreas_assert(idx >= 0, "floorplan lacks unit kind %s",
                      unitKindName(kind));
        return floorplan.unit(idx).rect.center();
    };

    std::vector<Point> sites;
    // tsens00: edge of the data cache — sees the core but far from EX.
    sites.push_back(unit_center(UnitKind::DCache, core_id));
    // tsens01: scheduler — mid-core.
    sites.push_back(unit_center(UnitKind::Scheduler, core_id));
    // tsens02: FPU — next to the hot cluster.
    sites.push_back(unit_center(UnitKind::FPU, core_id));
    // tsens03: the ALUs in the EX stage — the paper's best sensor.
    sites.push_back(unit_center(UnitKind::IntALU, core_id));
    // tsens04: the core's L2 — thermally sluggish.
    sites.push_back(unit_center(UnitKind::L2, core_id));
    // tsens05: L3 — only sees global warming of the die.
    sites.push_back(unit_center(UnitKind::L3, -1));
    // tsens06: SoC corner — farthest from the active core.
    sites.push_back(unit_center(UnitKind::SoC, -1));
    return sites;
}

} // namespace boreas
