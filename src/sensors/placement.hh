/**
 * @file
 * Sensor placement.
 *
 * The paper places sensors "using K-means clustering to identify common
 * areas on the core where hotspots arise" (Sec. III-A). kmeansPlacement()
 * implements that: feed it the peak-severity locations observed across
 * characterization runs and it returns k cluster centers.
 *
 * canonicalSensorSites() returns the fixed 7-site bank used throughout
 * the evaluation (Fig. 5): tsens00-03 on the active core with increasing
 * fidelity (tsens03 adjacent to the ALUs in the EX stage — the paper's
 * best sensor), and tsens04-06 placed away from the action (far cache /
 * L3 / SoC), which is why they only see the chip slowly warming.
 */

#pragma once

#include <vector>

#include "common/rng.hh"
#include "floorplan/floorplan.hh"

namespace boreas
{

/**
 * K-means clustering of 2-D hotspot locations.
 *
 * @param sites observed hotspot locations
 * @param k number of sensors to place
 * @param rng seeding source (k-means++ initialization)
 * @param iters maximum Lloyd iterations
 * @return k cluster centers (sensor sites)
 */
std::vector<Point> kmeansPlacement(const std::vector<Point> &sites, int k,
                                   Rng &rng, int iters = 100);

/** The evaluation's 7 canonical sensor sites on/around the given core. */
std::vector<Point> canonicalSensorSites(const Floorplan &floorplan,
                                        int core_id);

/** Index of the paper's "best" sensor (near the ALUs): tsens03. */
constexpr int kBestSensorIndex = 3;

} // namespace boreas
