#include "sensors/sensor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace boreas
{

ThermalSensor::ThermalSensor(std::string name, Point location,
                             const SensorParams &params)
    : name_(std::move(name)), location_(location), params_(params)
{
    boreas_assert(params_.delaySteps >= 0, "negative sensor delay");
    // A fresh sensor starts with a full ambient-prefilled history, the
    // same state reset() establishes. Leaving the history logically
    // empty would let reading() clamp its look-back to the few samples
    // taken so far and report temperatures *newer* than delaySteps
    // during warm-up — an under-delay the controller never sees on
    // silicon, where the sensor chain latency exists from power-on.
    history_.assign(static_cast<size_t>(params_.delaySteps) + 1, kAmbient);
    filled_ = history_.size();
}

void
ThermalSensor::sample(const ThermalGrid &grid, Seconds dt, Rng &rng)
{
    lastTrue_ = grid.temperatureAt(location_);

    Celsius value = lastTrue_;
    if (params_.filterTau > 0.0) {
        const double alpha = 1.0 - std::exp(-dt / params_.filterTau);
        filtered_ += alpha * (value - filtered_);
        value = filtered_;
    } else {
        filtered_ = value;
    }
    if (params_.noiseSigma > 0.0)
        value += rng.normal(0.0, params_.noiseSigma);

    history_[head_] = value;
    head_ = (head_ + 1) % history_.size();
    filled_ = std::min(filled_ + 1, history_.size());
}

Celsius
ThermalSensor::reading() const
{
    if (filled_ == 0)
        return filtered_;
    // The newest sample sits just behind head_; the delayed reading is
    // delaySteps older (clamped to the oldest sample we have).
    const size_t depth = std::min(
        static_cast<size_t>(params_.delaySteps), filled_ - 1);
    const size_t newest = (head_ + history_.size() - 1) % history_.size();
    const size_t idx =
        (newest + history_.size() - depth) % history_.size();
    return history_[idx];
}

void
ThermalSensor::reset(Celsius temp)
{
    std::fill(history_.begin(), history_.end(), temp);
    head_ = 0;
    filled_ = history_.size();
    filtered_ = temp;
    lastTrue_ = temp;
}

int
SensorBank::addSensor(const std::string &name, const Point &location,
                      const SensorParams &params)
{
    sensors_.emplace_back(name, location, params);
    return static_cast<int>(sensors_.size()) - 1;
}

void
SensorBank::sampleAll(const ThermalGrid &grid, Seconds dt, Rng &rng)
{
    for (auto &s : sensors_)
        s.sample(grid, dt, rng);
}

void
SensorBank::resetAll(Celsius temp)
{
    for (auto &s : sensors_)
        s.reset(temp);
}

std::vector<Celsius>
SensorBank::readings() const
{
    std::vector<Celsius> out;
    out.reserve(sensors_.size());
    for (const auto &s : sensors_)
        out.push_back(s.reading());
    return out;
}

} // namespace boreas
