/**
 * @file
 * Thermal sensor models.
 *
 * Real on-die sensors report a delayed, filtered view of silicon
 * temperature; the paper shows this delay (180-960 us) is large relative
 * to advanced-hotspot formation and is a core reason reactive DVFS needs
 * big guardbands. A sensor here samples the thermal grid every telemetry
 * step and exposes a reading delayed by a configurable number of steps,
 * optionally low-pass filtered (sensor thermal mass) and with Gaussian
 * read noise.
 */

#pragma once

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "floorplan/geometry.hh"
#include "thermal/thermal_grid.hh"

namespace boreas
{

/** Non-ideality knobs of a sensor. */
struct SensorParams
{
    /** Readout delay in telemetry steps (12 steps = 960 us default). */
    int delaySteps = 12;
    /** First-order lag time constant; 0 disables filtering. */
    Seconds filterTau = 0.0;
    /** Gaussian read-noise sigma in C; 0 disables. */
    Celsius noiseSigma = 0.0;
};

/** One point thermal sensor. */
class ThermalSensor
{
  public:
    ThermalSensor(std::string name, Point location,
                  const SensorParams &params = {});

    const std::string &name() const { return name_; }
    const Point &location() const { return location_; }
    const SensorParams &params() const { return params_; }

    /** Sample the grid (call once per telemetry step). */
    void sample(const ThermalGrid &grid, Seconds dt, Rng &rng);

    /** Current delayed (and filtered/noisy) reading. */
    Celsius reading() const;

    /** Instantaneous true temperature at the sensor site (no delay). */
    Celsius lastTrueTemp() const { return lastTrue_; }

    /** Reset history to the given temperature. */
    void reset(Celsius temp);

  private:
    std::string name_;
    Point location_;
    SensorParams params_;

    std::vector<Celsius> history_; ///< ring buffer of filtered samples
    size_t head_ = 0;              ///< next write position
    size_t filled_ = 0;
    Celsius filtered_ = kAmbient;
    Celsius lastTrue_ = kAmbient;
};

/** A set of sensors sampled together. */
class SensorBank
{
  public:
    SensorBank() = default;

    /** Add a sensor; returns its index. */
    int addSensor(const std::string &name, const Point &location,
                  const SensorParams &params = {});

    size_t size() const { return sensors_.size(); }
    const ThermalSensor &sensor(int idx) const { return sensors_[idx]; }
    ThermalSensor &sensor(int idx) { return sensors_[idx]; }

    /** Sample every sensor from the grid. */
    void sampleAll(const ThermalGrid &grid, Seconds dt, Rng &rng);

    /** Reset all sensors to a temperature. */
    void resetAll(Celsius temp);

    /** Readings of all sensors (delayed). */
    std::vector<Celsius> readings() const;

  private:
    std::vector<ThermalSensor> sensors_;
};

} // namespace boreas
