/**
 * @file
 * The voltage/frequency operating points of the modeled 7 nm processor.
 *
 * Table I of the paper anchors seven VF pairs from 2.0 GHz / 0.64 V to
 * 5.0 GHz / 1.4 V; the evaluation sweeps frequency in 250 MHz steps
 * (Sec. III-A), so intermediate points interpolate voltage linearly
 * between anchors.
 */

#pragma once

#include <vector>

#include "common/types.hh"

namespace boreas
{

/** The DVFS operating-point table. */
class VFTable
{
  public:
    /** Build the paper's Table I (2.0-5.0 GHz in 250 MHz steps). */
    VFTable();

    /** Number of operating points (13). */
    int numPoints() const { return static_cast<int>(freqs_.size()); }

    /** Frequency of operating point idx (ascending). */
    GHz frequency(int idx) const;

    /** Supply voltage at the given frequency (interpolated). */
    Volts voltage(GHz freq) const;

    /** Index of the operating point for freq; panics if off-grid. */
    int index(GHz freq) const;

    /** Nearest on-grid point at or below freq (clamped to range). */
    GHz clamp(GHz freq) const;

    /** All grid frequencies, ascending. */
    const std::vector<GHz> &frequencies() const { return freqs_; }

    /** One step (250 MHz) up/down, clamped to the table range. */
    GHz stepUp(GHz freq) const;
    GHz stepDown(GHz freq) const;

    /** The paper's seven anchor pairs (for Table I reproduction). */
    static const std::vector<std::pair<GHz, Volts>> &anchors();

  private:
    std::vector<GHz> freqs_;
    std::vector<Volts> volts_;
};

} // namespace boreas
