/**
 * @file
 * McPAT-style per-functional-unit power model.
 *
 * Per telemetry interval, each unit's power is
 *
 *   P_unit = sum_events E_event * (V/Vnom)^2 / dt     (event dynamic)
 *          + duty * P_clk(unit) * (V/Vnom)^2 * f/fRef (clock/pipeline)
 *          + P_idle(unit) * (V/Vnom)^2 * f/fRef       (always-on clocking)
 *          + A_unit * leakDensity * (V/Vnom)
 *                   * exp(beta * (T_unit - Tref))     (leakage)
 *
 * The leakage term closes the electrothermal loop: hot units leak more,
 * which heats them further — part of what makes advanced hotspots fast.
 */

#pragma once

#include <vector>

#include "arch/counters.hh"
#include "common/types.hh"
#include "floorplan/floorplan.hh"

namespace boreas
{

/** Tunable coefficients of the power model. */
struct PowerModelParams
{
    Volts vNom = 1.0;          ///< voltage at which energies are specified
    GHz fRef = 4.0;            ///< frequency normalizing clock power

    /** Leakage power density at Tref and vNom, W/m^2 of unit area. */
    double leakDensity = 0.10e6;
    /** Exponential leakage-temperature coefficient, 1/K. */
    double leakBeta = 0.018;
    Celsius leakTref = kAmbient;
    /** Leakage-model validity ceiling (clamps the exponential). */
    Celsius leakTmax = 125.0;

    /** Global multiplier on all event (activity) energies. */
    double activityScale = 0.45;
};

/**
 * Computes per-functional-unit power for the active core, idle cores
 * and uncore from one interval's telemetry.
 */
class PowerModel
{
  public:
    PowerModel(const Floorplan &floorplan,
               const PowerModelParams &params = {});

    const PowerModelParams &params() const { return params_; }

    /**
     * Power of every floorplan unit for one interval.
     *
     * @param counters telemetry of the active core over the interval
     * @param active_core id of the core running the workload
     * @param intensity residual (counter-invisible) energy-per-event
     *        multiplier for the interval; 1.0 nominal. Workload-level
     *        activity scaling is already inside the counters.
     * @param freq core clock (GHz)
     * @param volts supply voltage
     * @param unit_temps current temperature of each unit (for leakage)
     * @param dt interval length, seconds
     * @return watts per unit, indexed like Floorplan::units()
     */
    std::vector<Watts> unitPower(const CounterSet &counters,
                                 int active_core, double intensity,
                                 GHz freq, Volts volts,
                                 const std::vector<Celsius> &unit_temps,
                                 Seconds dt) const;

    /**
     * Power of every floorplan unit with several cores executing at
     * once (mix:/adversarial: sources). `core_counters[c]` is core
     * c's telemetry for the interval, or nullptr if the core idles;
     * `intensities[c]` is its residual energy multiplier. Cores past
     * core_counters.size() idle. Shared uncore units accumulate every
     * active core's event energy, and their clock duty saturates at
     * the busiest requester. The single-core unitPower() overload
     * remains the (bit-exact) path when only one core runs.
     */
    std::vector<Watts>
    unitPowerMulti(const std::vector<const CounterSet *> &core_counters,
                   const std::vector<double> &intensities, GHz freq,
                   Volts volts, const std::vector<Celsius> &unit_temps,
                   Seconds dt) const;

    /** Leakage power of one unit at the given temperature and voltage. */
    Watts leakagePower(int unit_idx, Celsius temp, Volts volts) const;

    /** Sum of a unit-power vector (total chip power). */
    static Watts totalPower(const std::vector<Watts> &unit_power);

  private:
    /** Event dynamic energy (J) accumulated into one unit's kind. */
    double eventEnergy(UnitKind kind, const CounterSet &c) const;

    /** Full-duty clock/pipeline power of a unit kind at fRef/vNom. */
    static Watts clockPower(UnitKind kind);

    /** Always-on (idle-clocked) power of a unit kind at fRef/vNom. */
    static Watts idlePower(UnitKind kind);

    /** Activity duty factor of a unit kind from the counter set. */
    static double dutyOf(UnitKind kind, const CounterSet &c);

    const Floorplan *floorplan_;
    PowerModelParams params_;
};

} // namespace boreas
