#include "power/vf_table.hh"

#include <cmath>

#include "common/checked.hh"
#include "common/logging.hh"

namespace boreas
{

const std::vector<std::pair<GHz, Volts>> &
VFTable::anchors()
{
    // Table I of the paper.
    static const std::vector<std::pair<GHz, Volts>> kAnchors = {
        {2.0, 0.64}, {2.5, 0.71}, {3.0, 0.77}, {3.5, 0.87},
        {4.0, 0.98}, {4.5, 1.15}, {5.0, 1.40},
    };
    return kAnchors;
}

VFTable::VFTable()
{
    for (GHz f = kMinFrequency; f <= kMaxFrequency + 1e-9;
         f += kFrequencyStep) {
        freqs_.push_back(f);
        // Interpolate voltage between the Table I anchors.
        const auto &a = anchors();
        Volts v = a.back().second;
        for (size_t i = 0; i + 1 < a.size(); ++i) {
            if (f <= a[i + 1].first + 1e-9) {
                const double t = (f - a[i].first) /
                    (a[i + 1].first - a[i].first);
                v = a[i].second + t * (a[i + 1].second - a[i].second);
                break;
            }
        }
        volts_.push_back(v);
    }

    if constexpr (kCheckedBuild) {
        // A non-monotone VF curve would make stepUp()/stepDown() and
        // the controllers' "higher frequency costs more voltage"
        // reasoning silently wrong.
        checkMonotone(freqs_.data(), freqs_.size(), /*strict=*/true,
                      "VF table frequencies");
        checkMonotone(volts_.data(), volts_.size(), /*strict=*/true,
                      "VF table voltages");
        checkValuesInRange(volts_.data(), volts_.size(), 0.1, 2.0,
                           "VF table voltage");
    }
}

GHz
VFTable::frequency(int idx) const
{
    boreas_assert(idx >= 0 && idx < numPoints(), "bad VF index %d", idx);
    return freqs_[idx];
}

Volts
VFTable::voltage(GHz freq) const
{
    return volts_[index(freq)];
}

int
VFTable::index(GHz freq) const
{
    const double raw = (freq - kMinFrequency) / kFrequencyStep;
    const int idx = static_cast<int>(std::lround(raw));
    boreas_assert(idx >= 0 && idx < numPoints() &&
                  std::fabs(raw - idx) < 1e-6,
                  "frequency %.3f GHz not on the 250 MHz grid", freq);
    return idx;
}

GHz
VFTable::clamp(GHz freq) const
{
    if (freq <= kMinFrequency)
        return kMinFrequency;
    if (freq >= kMaxFrequency)
        return kMaxFrequency;
    const int idx = static_cast<int>(
        std::floor((freq - kMinFrequency) / kFrequencyStep + 1e-9));
    return freqs_[idx];
}

GHz
VFTable::stepUp(GHz freq) const
{
    const int idx = index(freq);
    return freqs_[std::min(idx + 1, numPoints() - 1)];
}

GHz
VFTable::stepDown(GHz freq) const
{
    const int idx = index(freq);
    return freqs_[std::max(idx - 1, 0)];
}

} // namespace boreas
