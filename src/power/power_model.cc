#include "power/power_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace boreas
{

PowerModel::PowerModel(const Floorplan &floorplan,
                       const PowerModelParams &params)
    : floorplan_(&floorplan), params_(params)
{
}

namespace
{
constexpr double kNJ = 1e-9;
} // namespace

double
PowerModel::eventEnergy(UnitKind kind, const CounterSet &c) const
{
    // Per-event energies (J at vNom); the unit's total switched energy
    // for the interval. Coefficients are McPAT-inspired magnitudes tuned
    // so a high-IPC phase at 4 GHz draws a mid-teens-of-watts core.
    double e = 0.0;
    switch (kind) {
      case UnitKind::IFU:
        e = c[Counter::FetchedInstructions] * 0.20 * kNJ;
        break;
      case UnitKind::ICache:
        e = c[Counter::IcacheReadAccesses] * 0.40 * kNJ +
            c[Counter::IcacheReadMisses] * 2.0 * kNJ +
            c[Counter::ItlbTotalMisses] * 1.0 * kNJ;
        break;
      case UnitKind::BPU:
        e = c[Counter::PredictorLookups] * 0.25 * kNJ +
            c[Counter::BtbReadAccesses] * 0.10 * kNJ +
            c[Counter::BranchMispredictions] * 2.0 * kNJ;
        break;
      case UnitKind::Rename:
        e = c[Counter::RenameReads] * 0.04 * kNJ +
            c[Counter::RenameWrites] * 0.06 * kNJ +
            c[Counter::RatReadAccesses] * 0.025 * kNJ +
            c[Counter::RatWriteAccesses] * 0.04 * kNJ;
        break;
      case UnitKind::ROB:
        e = (c[Counter::RobReads] + c[Counter::RobWrites]) * 0.08 * kNJ;
        break;
      case UnitKind::Scheduler:
        e = c[Counter::UopsIssued] * 0.20 * kNJ +
            c[Counter::InstWindowWakeups] * 0.04 * kNJ +
            (c[Counter::InstWindowReads] +
             c[Counter::InstWindowWrites]) * 0.04 * kNJ;
        break;
      case UnitKind::RegFile:
        e = c[Counter::IntRegfileReads] * 0.10 * kNJ +
            c[Counter::IntRegfileWrites] * 0.14 * kNJ +
            c[Counter::FpRegfileReads] * 0.14 * kNJ +
            c[Counter::FpRegfileWrites] * 0.18 * kNJ;
        break;
      case UnitKind::IntALU:
        e = c[Counter::IaluAccesses] * 1.00 * kNJ +
            c[Counter::CdbAluAccesses] * 0.05 * kNJ;
        break;
      case UnitKind::MUL:
        e = c[Counter::MulAccesses] * 2.5 * kNJ +
            c[Counter::CdbMulAccesses] * 0.05 * kNJ;
        break;
      case UnitKind::FPU:
        e = c[Counter::FpuAccesses] * 1.9 * kNJ +
            c[Counter::CdbFpuAccesses] * 0.05 * kNJ;
        break;
      case UnitKind::LSU:
        e = (c[Counter::LoadQueueReads] +
             c[Counter::LoadQueueWrites]) * 0.10 * kNJ +
            (c[Counter::StoreQueueReads] +
             c[Counter::StoreQueueWrites]) * 0.10 * kNJ +
            (c[Counter::DcacheReadAccesses] +
             c[Counter::DcacheWriteAccesses]) * 0.12 * kNJ +
            c[Counter::DtlbTotalAccesses] * 0.04 * kNJ +
            c[Counter::DtlbTotalMisses] * 1.0 * kNJ;
        break;
      case UnitKind::DCache:
        e = c[Counter::DcacheReadAccesses] * 0.28 * kNJ +
            c[Counter::DcacheWriteAccesses] * 0.34 * kNJ +
            (c[Counter::DcacheReadMisses] +
             c[Counter::DcacheWriteMisses]) * 0.9 * kNJ;
        break;
      case UnitKind::L2:
        e = (c[Counter::L2ReadAccesses] +
             c[Counter::L2WriteAccesses]) * 0.9 * kNJ +
            (c[Counter::L2ReadMisses] +
             c[Counter::L2WriteMisses]) * 1.2 * kNJ;
        break;
      case UnitKind::L3:
        e = c[Counter::L3ReadAccesses] * 2.5 * kNJ +
            c[Counter::L3ReadMisses] * 1.2 * kNJ;
        break;
      case UnitKind::SoC:
        e = (c[Counter::MemoryReads] +
             c[Counter::MemoryWrites]) * 5.0 * kNJ;
        break;
      default:
        break;
    }
    return e;
}

Watts
PowerModel::clockPower(UnitKind kind)
{
    // Full-duty clock/pipeline-latch power at fRef and vNom.
    switch (kind) {
      case UnitKind::IFU: return 0.50;
      case UnitKind::ICache: return 0.30;
      case UnitKind::BPU: return 0.20;
      case UnitKind::Rename: return 0.30;
      case UnitKind::ROB: return 0.35;
      case UnitKind::Scheduler: return 0.50;
      case UnitKind::RegFile: return 0.40;
      case UnitKind::IntALU: return 0.50;
      case UnitKind::MUL: return 0.30;
      case UnitKind::FPU: return 0.80;
      case UnitKind::LSU: return 0.50;
      case UnitKind::DCache: return 0.40;
      case UnitKind::L2: return 0.30;
      case UnitKind::L3: return 0.80;
      case UnitKind::SoC: return 1.00;
      default: return 0.0;
    }
}

Watts
PowerModel::idlePower(UnitKind kind)
{
    // Imperfect clock gating: uncore stays mostly on, core units retain
    // a residual clock load.
    switch (kind) {
      case UnitKind::L3: return 0.40;
      case UnitKind::SoC: return 0.60;
      default: return 0.12 * clockPower(kind);
    }
}

double
PowerModel::dutyOf(UnitKind kind, const CounterSet &c)
{
    const double cycles = std::max(1.0, c[Counter::TotalCycles]);
    const double busy = c[Counter::BusyCycles] / cycles;
    switch (kind) {
      case UnitKind::IntALU: return c[Counter::AluDutyCycle];
      case UnitKind::MUL: return c[Counter::MulDutyCycle];
      case UnitKind::FPU: return c[Counter::FpuDutyCycle];
      case UnitKind::IFU: return c[Counter::IfuDutyCycle];
      case UnitKind::ICache: return c[Counter::MemManUIDutyCycle];
      case UnitKind::BPU: return c[Counter::IfuDutyCycle];
      case UnitKind::LSU: return c[Counter::LsuDutyCycle];
      case UnitKind::DCache: return c[Counter::LsuDutyCycle];
      case UnitKind::L2: return 0.5 * c[Counter::LsuDutyCycle];
      case UnitKind::L3: return 0.3 * c[Counter::MemManUDDutyCycle];
      case UnitKind::SoC: return 0.3 * c[Counter::MemManUDDutyCycle];
      default: return busy;
    }
}

std::vector<Watts>
PowerModel::unitPower(const CounterSet &counters, int active_core,
                      double intensity, GHz freq, Volts volts,
                      const std::vector<Celsius> &unit_temps,
                      Seconds dt) const
{
    const auto &units = floorplan_->units();
    boreas_assert(unit_temps.size() == units.size(),
                  "unit temp vector size %zu != %zu units",
                  unit_temps.size(), units.size());
    boreas_assert(dt > 0.0 && freq > 0.0 && volts > 0.0,
                  "bad operating point");

    const double vsq = (volts / params_.vNom) * (volts / params_.vNom);
    const double fscale = freq / params_.fRef;

    std::vector<Watts> power(units.size(), 0.0);
    for (size_t i = 0; i < units.size(); ++i) {
        const FunctionalUnit &u = units[i];
        double p = 0.0;

        const bool active = (u.coreId == active_core) || (u.coreId < 0);
        if (active) {
            // Event-driven switching energy.
            p += eventEnergy(u.kind, counters) * intensity *
                params_.activityScale * vsq / dt;
            // Clock/pipeline power proportional to duty.
            p += dutyOf(u.kind, counters) * clockPower(u.kind) * vsq *
                fscale * intensity;
        }
        // Residual clocking (idle cores and gated units).
        p += idlePower(u.kind) * vsq * fscale;
        // Leakage with electrothermal feedback.
        p += leakagePower(static_cast<int>(i), unit_temps[i], volts);

        power[i] = p;
    }
    return power;
}

std::vector<Watts>
PowerModel::unitPowerMulti(
    const std::vector<const CounterSet *> &core_counters,
    const std::vector<double> &intensities, GHz freq, Volts volts,
    const std::vector<Celsius> &unit_temps, Seconds dt) const
{
    const auto &units = floorplan_->units();
    boreas_assert(unit_temps.size() == units.size(),
                  "unit temp vector size %zu != %zu units",
                  unit_temps.size(), units.size());
    boreas_assert(intensities.size() == core_counters.size(),
                  "intensity vector size %zu != %zu cores",
                  intensities.size(), core_counters.size());
    boreas_assert(dt > 0.0 && freq > 0.0 && volts > 0.0,
                  "bad operating point");

    const double vsq = (volts / params_.vNom) * (volts / params_.vNom);
    const double fscale = freq / params_.fRef;
    const int ncores = static_cast<int>(core_counters.size());

    std::vector<Watts> power(units.size(), 0.0);
    for (size_t i = 0; i < units.size(); ++i) {
        const FunctionalUnit &u = units[i];
        double p = 0.0;

        if (u.coreId >= 0) {
            // Per-core unit: driven by its own core's telemetry.
            const CounterSet *c = u.coreId < ncores
                ? core_counters[u.coreId] : nullptr;
            if (c) {
                const double intensity = intensities[u.coreId];
                p += eventEnergy(u.kind, *c) * intensity *
                    params_.activityScale * vsq / dt;
                p += dutyOf(u.kind, *c) * clockPower(u.kind) * vsq *
                    fscale * intensity;
            }
        } else {
            // Shared uncore: every active core's traffic switches it,
            // while its clock tree runs at the busiest requester's
            // duty rather than the sum (it cannot exceed full duty).
            double duty = 0.0;
            for (int core = 0; core < ncores; ++core) {
                const CounterSet *c = core_counters[core];
                if (!c)
                    continue;
                p += eventEnergy(u.kind, *c) * intensities[core] *
                    params_.activityScale * vsq / dt;
                duty = std::max(duty,
                                dutyOf(u.kind, *c) * intensities[core]);
            }
            p += duty * clockPower(u.kind) * vsq * fscale;
        }
        p += idlePower(u.kind) * vsq * fscale;
        p += leakagePower(static_cast<int>(i), unit_temps[i], volts);

        power[i] = p;
    }
    return power;
}

Watts
PowerModel::leakagePower(int unit_idx, Celsius temp, Volts volts) const
{
    const FunctionalUnit &u = floorplan_->unit(unit_idx);
    const double area = u.rect.area();
    const Celsius t = std::min(temp, params_.leakTmax);
    return area * params_.leakDensity * (volts / params_.vNom) *
        std::exp(params_.leakBeta * (t - params_.leakTref));
}

Watts
PowerModel::totalPower(const std::vector<Watts> &unit_power)
{
    Watts total = 0.0;
    for (Watts p : unit_power)
        total += p;
    return total;
}

} // namespace boreas
