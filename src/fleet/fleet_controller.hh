/**
 * @file
 * FleetController: the per-epoch global power-budget policy sitting
 * above the per-die Boreas controllers (DESIGN.md §13).
 *
 * Each control epoch the fleet barrier hands the controller one
 * telemetry summary per die; the controller returns one frequency cap
 * per die. Dies whose aggregate power fits the budget keep an open cap
 * (the die's own thermal policy governs); when the fleet oversubscribes
 * the budget, each die's share is its proportional slice and the cap is
 * the highest grid frequency whose estimated power fits that share.
 * Dies that logged hotspot incursions during the epoch are additionally
 * stepped down as a guardband, budget or not.
 *
 * The assignment is a pure function of the telemetry vector, evaluated
 * serially at the epoch barrier in die order — determinism follows
 * from the pipeline's own contract, nothing here depends on thread
 * count or timing.
 */

#pragma once

#include <vector>

#include "common/types.hh"
#include "power/vf_table.hh"

namespace boreas::fleet
{

/** Knobs of the global budget policy. */
struct FleetControllerConfig
{
    /** Fleet-wide power budget; <= 0 means unlimited (caps stay at
     *  maxCap unless an incursion guardband pulls one down). */
    Watts globalBudget = 0.0;
    /** VF steps (250 MHz each) a die is pulled down per epoch in
     *  which it logged at least one hotspot incursion. */
    int incursionGuardSteps = 1;
    /** Cap range (clamped to the VF grid). */
    GHz maxCap = kMaxFrequency;
    GHz minCap = kMinFrequency;
};

/** One die's telemetry summary over the last control epoch. */
struct DieEpochTelemetry
{
    Watts avgPower = 0.0;      ///< mean total die power over the epoch
    GHz avgFrequency = 0.0;    ///< mean applied frequency
    double peakSeverity = 0.0; ///< max hotspot severity seen
    int incursionSteps = 0;    ///< steps at severity >= 1.0
    bool ok = true;            ///< false: die failed setup, skip it
};

/** Assigns per-die frequency caps from a global power budget. */
class FleetController
{
  public:
    explicit FleetController(const FleetControllerConfig &config);

    const FleetControllerConfig &config() const { return config_; }

    /**
     * One cap per telemetry entry (failed dies get maxCap, unused).
     * Pure: identical telemetry vectors produce identical caps.
     */
    std::vector<GHz>
    assign(const std::vector<DieEpochTelemetry> &dies) const;

    /**
     * Power the die is estimated to draw at `freq`, scaling the
     * measured (avgFrequency, avgPower) point by the dynamic-power
     * ratio f * V(f)^2 (leakage folded in — a deliberate, conservative
     * overestimate when capping down). Exposed for tests.
     */
    Watts estimatePowerAt(const DieEpochTelemetry &die, GHz freq) const;

  private:
    FleetControllerConfig config_;
    VFTable vf_;
};

} // namespace boreas::fleet
