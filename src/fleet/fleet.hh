/**
 * @file
 * The sharded fleet simulator (DESIGN.md §13): N independent dies —
 * each a full SimulationPipeline with its own workload source, seed
 * and ambient — advanced in lockstep control epochs over the shared
 * thread pool, with a FleetController assigning per-die frequency
 * caps from a global power budget at every epoch barrier.
 *
 * Execution model per epoch:
 *   1. fan out: every live die runs `epochSteps` telemetry steps
 *      closed-loop under its own (capped) controller, writing
 *      telemetry into its private slot;
 *   2. barrier: the pool join publishes every slot; the fleet
 *      controller reads the per-die epoch summaries serially in die
 *      order and assigns the next epoch's caps.
 *
 * Determinism: dies never share mutable state inside an epoch, the
 * barrier is serial, and the cap assignment is a pure function of the
 * telemetry vector — so the rollup (including every per-die runHash)
 * is bit-identical at any thread count. tests/test_fleet.cc and the
 * bench/fleet_throughput gate both assert this.
 *
 * A die whose workload spec fails to parse (or needs more cores than
 * the floorplan has) is reported per-die and skipped; the rest of the
 * fleet still runs.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "boreas/pipeline.hh"
#include "control/capped_controller.hh"
#include "fleet/fleet_controller.hh"

namespace boreas::fleet
{

/** One die of the fleet: what it runs and how it differs. */
struct FleetDieSpec
{
    /** Workload-source spec string (workload/registry.hh grammar). */
    std::string workload;
    uint64_t seed = 0;
    /** Per-die ambient (rack position, inlet temperature). */
    Celsius ambient = kAmbient;
};

/** Configuration of one fleet run. */
struct FleetConfig
{
    /** Shared per-die pipeline configuration; each die overrides the
     *  thermal ambient from its FleetDieSpec. */
    PipelineConfig base;
    std::vector<FleetDieSpec> dies;

    int epochs = 4;
    /** Steps per control epoch; must be a positive multiple of
     *  kStepsPerDecision so epoch chaining preserves the decision
     *  schedule (SimulationPipeline::continueWithController). */
    int epochSteps = 3 * kStepsPerDecision;
    GHz initialFreq = kBaselineFrequency;

    FleetControllerConfig controller;
};

/**
 * Builds die i's frequency controller. Called once per die during
 * setup, from the calling thread (never a pool worker); the returned
 * controller is then driven concurrently with its siblings, so any
 * state shared between instances (e.g. a trained model) must be
 * read-only.
 */
using DieControllerFactory =
    std::function<std::unique_ptr<FrequencyController>(int die)>;

/** Outcome of one die across the whole fleet run. */
struct FleetDieResult
{
    int die = 0;
    bool ok = false;
    std::string error; ///< why the die never ran (when !ok)
    std::string workload;

    uint64_t runHash = 0; ///< pipeline fingerprint over every epoch
    int64_t steps = 0;
    int64_t incursionSteps = 0;
    double peakSeverity = 0.0;
    double meanFrequency = 0.0; ///< GHz over all steps
    double meanPower = 0.0;     ///< Watts over all steps
    GHz finalCap = 0.0;         ///< cap after the last barrier
};

/** Aggregate fleet telemetry (the BENCH_fleet.json headline). */
struct FleetRollup
{
    int dies = 0;
    int failedDies = 0;
    int64_t totalSteps = 0;
    int64_t incursionSteps = 0;
    /** incursionSteps / totalSteps (0 when nothing ran). */
    double aggregateIncursionRate = 0.0;
    double meanFrequency = 0.0; ///< step-weighted across live dies
    double meanPower = 0.0;     ///< step-weighted across live dies
    double peakSeverity = 0.0;
    /** Fleet-wide mean power per epoch (budget utilization curve). */
    std::vector<Watts> epochPower;
    /**
     * FNV-1a over every die's (index, ok, runHash, steps,
     * incursionSteps) in die order — the single fingerprint the
     * 1-vs-N-thread determinism gates compare.
     */
    uint64_t rollupHash = 0;

    std::vector<FleetDieResult> perDie;
};

/** Runs a fleet of pipelines under the global budget controller. */
class FleetSimulator
{
  public:
    FleetSimulator(FleetConfig config, DieControllerFactory factory);

    const FleetConfig &config() const { return config_; }

    /**
     * Execute the configured epochs and aggregate the rollup. Also
     * publishes fleet.* counters/gauges to the metrics registry (from
     * the calling thread, after the final barrier). May be called
     * repeatedly; each call is an independent run.
     */
    FleetRollup run();

  private:
    FleetConfig config_;
    DieControllerFactory factory_;
};

} // namespace boreas::fleet
