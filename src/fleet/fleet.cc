#include "fleet/fleet.hh"

#include <algorithm>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "workload/registry.hh"

namespace boreas::fleet
{

namespace
{

/** Everything one die owns for the duration of a run. Slots are
 *  strictly per-task: the epoch fan-out writes only its own slot, and
 *  the pool join is the barrier that publishes them. */
struct DieSlot
{
    bool ok = false;
    std::string error;
    std::unique_ptr<WorkloadSource> source;
    std::unique_ptr<SimulationPipeline> pipeline;
    std::unique_ptr<CappedController> controller;
    GHz freq = 0.0; ///< carried operating frequency

    DieEpochTelemetry epoch; ///< summary of the last epoch

    // Whole-run accumulators.
    int64_t steps = 0;
    int64_t incursionSteps = 0;
    double freqSum = 0.0;
    double powerSum = 0.0;
    double peakSeverity = 0.0;
};

/** Summarize one epoch segment into the slot (called on the worker
 *  that ran the segment, before the barrier). */
void
accumulateEpoch(DieSlot &slot, const RunResult &segment)
{
    double power_sum = 0.0;
    double freq_sum = 0.0;
    double peak = 0.0;
    int incursions = 0;
    for (const StepRecord &s : segment.steps) {
        power_sum += s.totalPower;
        freq_sum += s.frequency;
        peak = std::max(peak, s.severity.maxSeverity);
        if (s.severity.maxSeverity >= 1.0)
            ++incursions;
    }
    const double n = static_cast<double>(segment.steps.size());
    slot.epoch.avgPower = n > 0.0 ? power_sum / n : 0.0;
    slot.epoch.avgFrequency = n > 0.0 ? freq_sum / n : 0.0;
    slot.epoch.peakSeverity = peak;
    slot.epoch.incursionSteps = incursions;
    slot.epoch.ok = true;

    slot.steps += static_cast<int64_t>(segment.steps.size());
    slot.incursionSteps += incursions;
    slot.freqSum += freq_sum;
    slot.powerSum += power_sum;
    slot.peakSeverity = std::max(slot.peakSeverity, peak);
}

} // namespace

FleetSimulator::FleetSimulator(FleetConfig config,
                               DieControllerFactory factory)
    : config_(std::move(config)), factory_(std::move(factory))
{
    boreas_assert(!config_.dies.empty(), "fleet has no dies");
    boreas_assert(config_.epochs > 0, "fleet needs at least one epoch");
    boreas_assert(config_.epochSteps > 0 &&
                      config_.epochSteps % kStepsPerDecision == 0,
                  "epochSteps (%d) must be a positive multiple of the "
                  "decision period (%d)",
                  config_.epochSteps, kStepsPerDecision);
    boreas_assert(factory_ != nullptr, "fleet needs a controller "
                                       "factory");
}

FleetRollup
FleetSimulator::run()
{
    const int n = static_cast<int>(config_.dies.size());
    std::vector<DieSlot> slots(n);

    // Setup is serial: spec parsing is cheap, and a die that fails
    // must be reported without disturbing its siblings. startSource()
    // panics on a core-count mismatch, so validate here instead.
    for (int i = 0; i < n; ++i) {
        const FleetDieSpec &die = config_.dies[i];
        DieSlot &slot = slots[i];
        std::string error;
        slot.source = tryMakeWorkloadSource(die.workload, &error);
        if (!slot.source) {
            slot.error = "bad workload spec '" + die.workload +
                         "': " + error;
            continue;
        }
        if (slot.source->numCores() > config_.base.floorplan.numCores) {
            slot.error = strfmt(
                "workload '%s' drives %d cores but the die has %d",
                die.workload.c_str(), slot.source->numCores(),
                config_.base.floorplan.numCores);
            slot.source.reset();
            continue;
        }
        slot.controller = std::make_unique<CappedController>(
            factory_(i), config_.controller.maxCap);
        slot.freq = config_.initialFreq;
        slot.ok = true;
    }

    // Pipeline construction + warm start dominate setup cost; fan
    // them out. Each task touches only its slot.
    parallelForEach(0, n, 1, [&](int64_t i) {
        DieSlot &slot = slots[i];
        if (!slot.ok)
            return;
        PipelineConfig cfg = config_.base;
        cfg.thermal.ambient = config_.dies[i].ambient;
        slot.pipeline = std::make_unique<SimulationPipeline>(cfg);
        slot.controller->reset();
        slot.pipeline->start(*slot.source, config_.dies[i].seed);
    });

    const FleetController controller(config_.controller);
    FleetRollup rollup;
    rollup.epochPower.reserve(config_.epochs);

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        parallelForEach(0, n, 1, [&](int64_t i) {
            DieSlot &slot = slots[i];
            if (!slot.ok) {
                slot.epoch = DieEpochTelemetry{};
                slot.epoch.ok = false;
                return;
            }
            const RunResult segment =
                slot.pipeline->continueWithController(
                    *slot.controller, &slot.freq, config_.epochSteps);
            accumulateEpoch(slot, segment);
        });

        // Epoch barrier: the pool join above published every slot;
        // read them serially in die order and move the caps.
        obs::ScopedTimer timer("stage.fleet_barrier");
        std::vector<DieEpochTelemetry> telemetry(slots.size());
        Watts epoch_power = 0.0;
        for (int i = 0; i < n; ++i) {
            telemetry[i] = slots[i].epoch;
            if (slots[i].ok)
                epoch_power += slots[i].epoch.avgPower;
        }
        rollup.epochPower.push_back(epoch_power);
        const std::vector<GHz> caps = controller.assign(telemetry);
        for (int i = 0; i < n; ++i) {
            if (!slots[i].ok)
                continue;
            slots[i].controller->setCap(caps[i]);
            slots[i].freq = std::min(slots[i].freq, caps[i]);
        }
    }

    // Aggregate the rollup (serial, die order).
    rollup.dies = n;
    rollup.perDie.reserve(slots.size());
    Fnv1a hasher;
    for (int i = 0; i < n; ++i) {
        const DieSlot &slot = slots[i];
        FleetDieResult r;
        r.die = i;
        r.ok = slot.ok;
        r.error = slot.error;
        r.workload = config_.dies[i].workload;
        if (slot.ok) {
            r.runHash = slot.pipeline->runHash();
            r.steps = slot.steps;
            r.incursionSteps = slot.incursionSteps;
            r.peakSeverity = slot.peakSeverity;
            const double steps = static_cast<double>(slot.steps);
            r.meanFrequency = steps > 0.0 ? slot.freqSum / steps : 0.0;
            r.meanPower = steps > 0.0 ? slot.powerSum / steps : 0.0;
            r.finalCap = slot.controller->cap();
        } else {
            ++rollup.failedDies;
        }
        rollup.totalSteps += r.steps;
        rollup.incursionSteps += r.incursionSteps;
        rollup.peakSeverity =
            std::max(rollup.peakSeverity, r.peakSeverity);
        rollup.meanFrequency += r.meanFrequency * static_cast<double>(r.steps);
        rollup.meanPower += r.meanPower * static_cast<double>(r.steps);
        hasher.add(static_cast<int64_t>(i));
        hasher.add(static_cast<int64_t>(r.ok ? 1 : 0));
        hasher.add(r.runHash);
        hasher.add(r.steps);
        hasher.add(r.incursionSteps);
        rollup.perDie.push_back(std::move(r));
    }
    if (rollup.totalSteps > 0) {
        const double total = static_cast<double>(rollup.totalSteps);
        rollup.aggregateIncursionRate =
            static_cast<double>(rollup.incursionSteps) / total;
        rollup.meanFrequency /= total;
        rollup.meanPower /= total;
    }
    rollup.rollupHash = hasher.digest();

    // Observability (main thread, after the final barrier): reads the
    // finished rollup, never feeds the simulation.
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    metrics.add("fleet.runs");
    metrics.add("fleet.dies", static_cast<uint64_t>(rollup.dies));
    metrics.add("fleet.failed_dies",
                static_cast<uint64_t>(rollup.failedDies));
    metrics.add("fleet.steps",
                static_cast<uint64_t>(rollup.totalSteps));
    metrics.add("fleet.incursion_steps",
                static_cast<uint64_t>(rollup.incursionSteps));
    metrics.set("fleet.aggregate_incursion_rate",
                rollup.aggregateIncursionRate);
    metrics.set("fleet.mean_frequency_ghz", rollup.meanFrequency);
    metrics.set("fleet.mean_power_w", rollup.meanPower);
    metrics.set("fleet.peak_severity", rollup.peakSeverity);
    return rollup;
}

} // namespace boreas::fleet
