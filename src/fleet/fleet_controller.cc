#include "fleet/fleet_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace boreas::fleet
{

FleetController::FleetController(const FleetControllerConfig &config)
    : config_(config)
{
    boreas_assert(config_.minCap <= config_.maxCap,
                  "fleet cap range inverted (%g > %g GHz)",
                  config_.minCap, config_.maxCap);
    boreas_assert(config_.incursionGuardSteps >= 0,
                  "negative incursion guardband");
}

Watts
FleetController::estimatePowerAt(const DieEpochTelemetry &die,
                                 GHz freq) const
{
    if (die.avgFrequency <= 0.0 || die.avgPower <= 0.0)
        return 0.0;
    const Volts v_meas = vf_.voltage(vf_.clamp(die.avgFrequency));
    const Volts v_tgt = vf_.voltage(vf_.clamp(freq));
    const double ratio = (freq * v_tgt * v_tgt) /
                         (die.avgFrequency * v_meas * v_meas);
    return die.avgPower * ratio;
}

std::vector<GHz>
FleetController::assign(const std::vector<DieEpochTelemetry> &dies) const
{
    const GHz max_cap = vf_.clamp(config_.maxCap);
    const GHz min_cap = vf_.clamp(config_.minCap);
    std::vector<GHz> caps(dies.size(), max_cap);

    Watts total = 0.0;
    for (const DieEpochTelemetry &die : dies) {
        if (die.ok)
            total += die.avgPower;
    }

    const bool over_budget =
        config_.globalBudget > 0.0 && total > config_.globalBudget;

    for (size_t i = 0; i < dies.size(); ++i) {
        const DieEpochTelemetry &die = dies[i];
        if (!die.ok)
            continue;
        GHz cap = max_cap;
        if (over_budget && die.avgPower > 0.0) {
            // Proportional share of the budget: heavy dies keep their
            // relative weight, so the cut lands fleet-wide instead of
            // starving whichever die happened to report first.
            const Watts share =
                config_.globalBudget * (die.avgPower / total);
            cap = min_cap;
            for (const GHz f : vf_.frequencies()) {
                if (f > max_cap)
                    break;
                if (estimatePowerAt(die, f) <= share)
                    cap = std::max(cap, f);
            }
        }
        // Thermal guardband on top of the budget: a die that logged
        // incursions steps down regardless of how much power is left.
        for (int s = 0; s < config_.incursionGuardSteps &&
                        die.incursionSteps > 0;
             ++s)
            cap = vf_.stepDown(cap);
        caps[i] = std::clamp(cap, min_cap, max_cap);
    }
    return caps;
}

} // namespace boreas::fleet
