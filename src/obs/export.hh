/**
 * @file
 * The artifact export sink (DESIGN.md §8): serializes a BenchArtifact —
 * manifest + paper-vs-measured comparisons + data series + the merged
 * metrics snapshot — as the machine-readable BENCH_<id>.json every
 * bench binary drops next to its text tables.
 *
 * This module is the repository's single file-output point: the
 * boreas_lint `raw-file-output` rule flags std::ofstream / fopen
 * anywhere else under src/, so artifacts (and their schema) stay in
 * one auditable place.
 *
 * Schema (schema key "boreas-bench-v1"):
 *   {
 *     "schema": "boreas-bench-v1",
 *     "id": "<experiment>",
 *     "manifest": { experiment, scale, threads, seed, run_hash?,
 *                   wall_s, config{...} },
 *     "paper_vs_measured": [ {quantity, paper, measured}, ... ],
 *     "series": [ {name, columns[...], rows[[...], ...]}, ... ],
 *     "timings": { "<histogram>": {count, total_us, mean_us, min_us,
 *                                  max_us, buckets[[ub, n], ...]} },
 *     "counters": { "<counter>": n, ... },
 *     "gauges": { "<gauge>": v, ... }
 *   }
 * Series cells are strings; cells that parse as plain decimal numbers
 * are emitted as JSON numbers, everything else as JSON strings.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/manifest.hh"
#include "obs/metrics.hh"

namespace boreas::obs
{

/** One named table/series of an artifact (string cells). */
struct BenchSeries
{
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/** One paper-vs-measured headline row. */
struct BenchComparison
{
    std::string quantity;
    std::string paper;
    std::string measured;
};

/** Everything one bench run exports. */
struct BenchArtifact
{
    RunManifest manifest;
    std::vector<BenchComparison> comparisons;
    std::vector<BenchSeries> series;
    MetricsSnapshot metrics;
};

/** Canonical artifact file name: BENCH_<id>.json. */
std::string benchArtifactFileName(const std::string &id);

/** Serialize the artifact as JSON. */
void writeBenchArtifact(const BenchArtifact &artifact, std::ostream &os);

/**
 * Write the artifact to a file (the repo's one file-output sink).
 * Returns false if the file cannot be opened or written.
 */
bool writeBenchArtifactFile(const BenchArtifact &artifact,
                            const std::string &path);

/**
 * Write a chrome://tracing JSON of the global trace buffer to a file.
 * Returns false if the file cannot be opened or written.
 */
bool writeTraceFile(const std::string &path);

} // namespace boreas::obs
