/**
 * @file
 * RunManifest: the who/what/how of one experiment run, embedded in
 * every BENCH_<id>.json artifact (DESIGN.md §8) so a measured number
 * can always be traced back to the exact configuration, seed, thread
 * count and pipeline state fingerprint that produced it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace boreas::obs
{

/** Identity and provenance of one experiment run. */
struct RunManifest
{
    /** Experiment id (the <id> of BENCH_<id>.json). */
    std::string experiment;
    /** Bench scale ("small" / "full" / "paper"), "" when not scaled. */
    std::string scale;
    /** Parallel lanes the run was executed with. */
    int threads = 1;
    /**
     * Thermal integrator the run used ("explicit" / "spectral" /
     * "surrogate"); "" when the bench predates solver selection or
     * does not run the thermal stage.
     */
    std::string thermalSolver;
    /**
     * Workload-source spec string driving the run (registry grammar,
     * e.g. "synthetic:spec2006/astar" or "adversarial:corehop"); ""
     * for benches that sweep whole suites rather than one source.
     */
    std::string workloadSource;
    /**
     * GBT inference path the run measured ("flat" for the batched
     * SoA engine, "reference" for the pointer-chasing tree walk); ""
     * for benches that never serve severity predictions.
     */
    std::string predictEngine;
    /**
     * boreas-trace-v1 payload checksum when the run recorded or
     * replayed a trace (valid when hasTraceChecksum).
     */
    uint64_t traceChecksum = 0;
    bool hasTraceChecksum = false;
    /**
     * Dies simulated when the run is a fleet-scale experiment
     * (src/fleet); 0 for single-die benches, which omit the field.
     */
    int fleetDies = 0;
    /** Base RNG seed of the run. */
    uint64_t seed = 0;
    /** Pipeline runHash fingerprint (valid when hasRunHash). */
    uint64_t runHash = 0;
    bool hasRunHash = false;
    /** Wall-clock duration of the whole bench, in seconds. */
    double wallSeconds = 0.0;
    /** Free-form configuration key/values, emitted in insertion order. */
    std::vector<std::pair<std::string, std::string>> config;

    void
    addConfig(std::string key, std::string value)
    {
        config.emplace_back(std::move(key), std::move(value));
    }
};

} // namespace boreas::obs
