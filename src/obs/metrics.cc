#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>

namespace boreas::obs
{

namespace
{

/** Bucket 0 upper bound is 2^kBucketBias0 = 2^-12 (sub-nanosecond when
 *  observing microseconds); the last bucket tops out near 2^35 us. */
constexpr int kBucketExponentBias = 12;

} // namespace

size_t
HistogramData::bucketFor(double value)
{
    if (!(value > 0.0))
        return 0;
    int exp = 0;
    const double m = std::frexp(value, &exp); // value = m * 2^exp
    if (m == 0.5)
        --exp; // exact powers of two belong to their upper-bound bucket
    const int idx = exp + kBucketExponentBias;
    if (idx < 0)
        return 0;
    return std::min(static_cast<size_t>(idx), kHistogramBuckets - 1);
}

double
HistogramData::bucketUpperBound(size_t bucket)
{
    return std::ldexp(1.0, static_cast<int>(bucket) -
                      kBucketExponentBias);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    // The registry is a process singleton, so one thread-local slot per
    // thread suffices. Shards are never deallocated (reset() zeroes
    // them in place), so the cached pointer stays valid for the
    // thread's lifetime.
    static thread_local Shard *tls = nullptr;
    if (tls == nullptr) {
        auto shard = std::make_unique<Shard>();
        tls = shard.get();
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::move(shard));
    }
    return *tls;
}

void
MetricsRegistry::add(const std::string &name, uint64_t delta)
{
    if (!enabled())
        return;
    localShard().counters[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    if (!enabled())
        return;
    localShard().gauges[name] = value;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    if (!enabled())
        return;
    HistogramData &h = localShard().histograms[name];
    if (h.count == 0) {
        h.min = value;
        h.max = value;
    } else {
        h.min = std::min(h.min, value);
        h.max = std::max(h.max, value);
    }
    ++h.count;
    h.sum += value;
    ++h.buckets[HistogramData::bucketFor(value)];
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        for (const auto &[name, v] : shard->counters)
            out.counters[name] += v;
        for (const auto &[name, v] : shard->gauges)
            out.gauges.emplace(name, v); // earliest shard wins
        for (const auto &[name, h] : shard->histograms) {
            HistogramData &m = out.histograms[name];
            if (h.count == 0)
                continue;
            if (m.count == 0) {
                m.min = h.min;
                m.max = h.max;
            } else {
                m.min = std::min(m.min, h.min);
                m.max = std::max(m.max, h.max);
            }
            m.count += h.count;
            m.sum += h.sum;
            for (size_t b = 0; b < kHistogramBuckets; ++b)
                m.buckets[b] += h.buckets[b];
        }
    }
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        shard->counters.clear();
        shard->gauges.clear();
        shard->histograms.clear();
    }
}

} // namespace boreas::obs
