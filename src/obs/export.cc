#include "obs/export.hh"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/trace.hh"

namespace boreas::obs
{

namespace
{

/** JSON string escaping (control chars, quotes, backslash). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream oss;
                oss << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += oss.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * True for plain decimal JSON numbers only: [-+]?digits[.digits][e±digits].
 * Hex ("0x1a"), inf/nan and unit-suffixed cells stay strings.
 */
bool
isPlainNumber(const std::string &s)
{
    size_t i = 0;
    if (i < s.size() && (s[i] == '-' || s[i] == '+'))
        ++i;
    size_t digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
        ++digits;
    }
    if (i < s.size() && s[i] == '.') {
        ++i;
        while (i < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            ++digits;
        }
    }
    if (digits == 0)
        return false;
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        size_t exp_digits = 0;
        while (i < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            ++exp_digits;
        }
        if (exp_digits == 0)
            return false;
    }
    return i == s.size();
}

/** Emit a cell: JSON number when it parses as one, string otherwise.
 *  JSON has no leading '+', so "+5.7%"-style cells stay strings. */
void
emitCell(std::ostream &os, const std::string &cell)
{
    if (isPlainNumber(cell) && cell[0] != '+')
        os << cell;
    else
        os << '"' << escape(cell) << '"';
}

std::string
hexString(uint64_t v)
{
    std::ostringstream oss;
    oss << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
    return oss.str();
}

void
emitManifest(std::ostream &os, const RunManifest &m)
{
    os << "  \"manifest\": {\n"
       << "    \"experiment\": \"" << escape(m.experiment) << "\",\n"
       << "    \"scale\": \"" << escape(m.scale) << "\",\n"
       << "    \"threads\": " << m.threads << ",\n"
       << "    \"seed\": " << m.seed << ",\n";
    if (!m.thermalSolver.empty())
        os << "    \"thermal_solver\": \"" << escape(m.thermalSolver)
           << "\",\n";
    if (!m.workloadSource.empty())
        os << "    \"workload_source\": \"" << escape(m.workloadSource)
           << "\",\n";
    if (!m.predictEngine.empty())
        os << "    \"predict_engine\": \"" << escape(m.predictEngine)
           << "\",\n";
    if (m.hasTraceChecksum)
        os << "    \"trace_checksum\": \"" << hexString(m.traceChecksum)
           << "\",\n";
    if (m.hasRunHash)
        os << "    \"run_hash\": \"" << hexString(m.runHash) << "\",\n";
    if (m.fleetDies > 0)
        os << "    \"fleet_dies\": " << m.fleetDies << ",\n";
    os << "    \"wall_s\": " << m.wallSeconds << ",\n"
       << "    \"config\": {";
    bool first = true;
    for (const auto &[key, value] : m.config) {
        os << (first ? "\n" : ",\n") << "      \"" << escape(key)
           << "\": ";
        emitCell(os, value);
        first = false;
    }
    os << (first ? "" : "\n    ") << "}\n  }";
}

void
emitHistogram(std::ostream &os, const HistogramData &h)
{
    os << "{\"count\": " << h.count << ", \"total_us\": " << h.sum
       << ", \"mean_us\": " << h.mean() << ", \"min_us\": " << h.min
       << ", \"max_us\": " << h.max << ", \"buckets\": [";
    bool first = true;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
        if (h.buckets[b] == 0)
            continue;
        os << (first ? "" : ", ") << "["
           << HistogramData::bucketUpperBound(b) << ", "
           << h.buckets[b] << "]";
        first = false;
    }
    os << "]}";
}

} // namespace

std::string
benchArtifactFileName(const std::string &id)
{
    return "BENCH_" + id + ".json";
}

void
writeBenchArtifact(const BenchArtifact &artifact, std::ostream &os)
{
    const auto saved = os.precision(
        std::numeric_limits<double>::max_digits10);

    os << "{\n"
       << "  \"schema\": \"boreas-bench-v1\",\n"
       << "  \"id\": \"" << escape(artifact.manifest.experiment)
       << "\",\n";
    emitManifest(os, artifact.manifest);

    os << ",\n  \"paper_vs_measured\": [";
    for (size_t i = 0; i < artifact.comparisons.size(); ++i) {
        const BenchComparison &c = artifact.comparisons[i];
        os << (i == 0 ? "\n" : ",\n") << "    {\"quantity\": \""
           << escape(c.quantity) << "\", \"paper\": ";
        emitCell(os, c.paper);
        os << ", \"measured\": ";
        emitCell(os, c.measured);
        os << "}";
    }
    os << (artifact.comparisons.empty() ? "" : "\n  ") << "]";

    os << ",\n  \"series\": [";
    for (size_t i = 0; i < artifact.series.size(); ++i) {
        const BenchSeries &s = artifact.series[i];
        os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
           << escape(s.name) << "\",\n     \"columns\": [";
        for (size_t c = 0; c < s.columns.size(); ++c) {
            os << (c == 0 ? "" : ", ") << '"' << escape(s.columns[c])
               << '"';
        }
        os << "],\n     \"rows\": [";
        for (size_t r = 0; r < s.rows.size(); ++r) {
            os << (r == 0 ? "\n" : ",\n") << "       [";
            for (size_t c = 0; c < s.rows[r].size(); ++c) {
                os << (c == 0 ? "" : ", ");
                emitCell(os, s.rows[r][c]);
            }
            os << "]";
        }
        os << (s.rows.empty() ? "" : "\n     ") << "]}";
    }
    os << (artifact.series.empty() ? "" : "\n  ") << "]";

    os << ",\n  \"timings\": {";
    {
        bool first = true;
        for (const auto &[name, h] : artifact.metrics.histograms) {
            os << (first ? "\n" : ",\n") << "    \"" << escape(name)
               << "\": ";
            emitHistogram(os, h);
            first = false;
        }
        os << (first ? "" : "\n  ") << "}";
    }

    os << ",\n  \"counters\": {";
    {
        bool first = true;
        for (const auto &[name, v] : artifact.metrics.counters) {
            os << (first ? "\n" : ",\n") << "    \"" << escape(name)
               << "\": " << v;
            first = false;
        }
        os << (first ? "" : "\n  ") << "}";
    }

    os << ",\n  \"gauges\": {";
    {
        bool first = true;
        for (const auto &[name, v] : artifact.metrics.gauges) {
            os << (first ? "\n" : ",\n") << "    \"" << escape(name)
               << "\": " << v;
            first = false;
        }
        os << (first ? "" : "\n  ") << "}";
    }

    os << "\n}\n";
    os.precision(saved);
}

bool
writeBenchArtifactFile(const BenchArtifact &artifact,
                       const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeBenchArtifact(artifact, out);
    out.flush();
    return out.good();
}

bool
writeTraceFile(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    TraceBuffer::global().writeJson(out);
    out.flush();
    return out.good();
}

} // namespace boreas::obs
