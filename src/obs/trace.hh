/**
 * @file
 * Scoped stage timers and a chrome://tracing-compatible event buffer
 * (DESIGN.md §8).
 *
 * ScopedTimer is the one instrumentation primitive the simulator's hot
 * paths use: constructed on a stage name, it does nothing unless the
 * observability layer is enabled; when enabled it feeds the stage's
 * duration into the metrics registry (histogram, microseconds) and —
 * if tracing is also on — appends a complete ("ph":"X") event to the
 * TraceBuffer. Load the written JSON into chrome://tracing or Perfetto
 * to see the per-thread stage timeline.
 *
 * Like the metrics registry, the buffer is sharded per thread (no lock
 * on the record path) and may only be drained/cleared outside parallel
 * regions. Events never influence simulation state.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace boreas::obs
{

/** One complete trace event (microseconds since process start). */
struct TraceEvent
{
    const char *name = nullptr; ///< string literal owned by the caller
    double startUs = 0.0;
    double durationUs = 0.0;
    int tid = 0; ///< shard index, stable per thread
};

/** Sharded event buffer; use the process-wide global() instance. */
class TraceBuffer
{
  public:
    static TraceBuffer &global();

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append one complete event (no-op while disabled). `name` must be
     * a string literal (it is stored by pointer). Each shard is capped;
     * overflow increments droppedEvents() instead of growing without
     * bound.
     */
    void record(const char *name, double start_us, double duration_us);

    /** Events across all shards. Call outside parallel regions. */
    size_t eventCount() const;

    /** Events dropped to the per-shard cap since the last clear(). */
    size_t droppedEvents() const;

    /**
     * Write the chrome://tracing JSON object. Events are sorted by
     * (start, name, tid) so the output order is reproducible for
     * identical timings. Call outside parallel regions.
     */
    void writeJson(std::ostream &os) const;

    /** Drop all buffered events. Call outside parallel regions. */
    void clear();

    /** Microseconds elapsed since the process-wide trace origin. */
    static double nowUs();

  private:
    struct Shard
    {
        std::vector<TraceEvent> events;
        uint64_t dropped = 0;
        int tid = 0;
    };

    Shard &localShard();

    mutable std::mutex mutex_; ///< guards the shard list only
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<bool> enabled_{false};
};

/**
 * RAII stage timer: times its scope and reports to the metrics
 * registry (histogram `name`, in microseconds) and the trace buffer.
 * Costs one relaxed load when the layer is disabled.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *name)
    {
        if (MetricsRegistry::global().enabled() ||
            TraceBuffer::global().enabled()) {
            name_ = name;
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ScopedTimer()
    {
        if (name_ != nullptr)
            finish();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    void finish();

    const char *name_ = nullptr;
    std::chrono::steady_clock::time_point start_{};
};

/**
 * Master switch: flips metrics and tracing together. Benches enable it
 * on startup (bench/report.hh); unit tests toggle it directly.
 */
void setEnabled(bool on);

/** True when either metrics or tracing is collecting. */
bool enabled();

} // namespace boreas::obs
