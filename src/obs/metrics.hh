/**
 * @file
 * Process-wide metrics registry (DESIGN.md §8): counters, gauges and
 * power-of-two-bucketed histograms, sharded per thread so the hot path
 * never takes a lock, merged into one deterministically-ordered
 * snapshot on demand.
 *
 * Determinism contract
 *   - Observability reads simulator state, never feeds it: nothing in
 *     this module influences a simulation result. The determinism audit
 *     (tests/test_determinism_audit.cc) proves the pipeline's runHash
 *     is bit-identical with the layer enabled or disabled.
 *   - Counter values and histogram bucket/count fields are integers, so
 *     the merged snapshot is identical at every thread count under the
 *     parallel layer's usual discipline (each task owns its work).
 *     Histogram sum/min/max are floating point and, like any parallel
 *     FP reduction, are informational rather than bit-stable.
 *   - snapshot() and reset() must be called outside parallel regions:
 *     the thread-pool join is the happens-before edge that makes the
 *     cross-shard reads race-free (common/parallel.hh).
 *
 * Cost model: every update first checks one relaxed atomic flag; when
 * the registry is disabled (the default) that is the entire cost, so
 * instrumented hot paths stay at full speed in normal runs.
 *
 * This library is deliberately dependency-free (std only) so that even
 * src/common — including the thread pool itself — can be instrumented
 * without an include cycle.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace boreas::obs
{

/** Number of histogram buckets (one per power-of-two upper bound). */
constexpr size_t kHistogramBuckets = 48;

/**
 * One merged histogram: bucket b counts samples in
 * (2^(b-1-bias), 2^(b-bias)]; bucket 0 additionally absorbs
 * non-positive samples. Units are whatever the caller observed
 * (scoped timers observe microseconds).
 */
struct HistogramData
{
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    double mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /** Bucket index a value lands in. */
    static size_t bucketFor(double value);
    /** Inclusive upper bound of a bucket. */
    static double bucketUpperBound(size_t bucket);
};

/** Deterministically ordered (name-sorted) view of every metric. */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
};

/** Sharded registry; use the process-wide global() instance. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    /** Master switch; disabled updates cost one relaxed load. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Increment a counter (no-op while disabled). */
    void add(const std::string &name, uint64_t delta = 1);

    /** Set a gauge. Gauges are owned by whichever thread sets them;
     *  setting the same gauge from several threads merges to the
     *  earliest-registered shard's value. */
    void set(const std::string &name, double value);

    /** Record one histogram sample (scoped timers use microseconds). */
    void observe(const std::string &name, double value);

    /**
     * Merge every shard, walking shards in creation order and metrics
     * in name order. Call only outside parallel regions.
     */
    MetricsSnapshot snapshot() const;

    /** Zero every metric in place (shards stay registered). Call only
     *  outside parallel regions. */
    void reset();

  private:
    struct Shard
    {
        std::map<std::string, uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, HistogramData> histograms;
    };

    Shard &localShard();

    mutable std::mutex mutex_; ///< guards the shard list only
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<bool> enabled_{false};
};

} // namespace boreas::obs
