#include "obs/trace.hh"

#include <algorithm>
#include <cstring>
#include <ostream>

namespace boreas::obs
{

namespace
{

/** Per-shard cap; ~1M events is minutes of fully-traced simulation. */
constexpr size_t kMaxEventsPerShard = 1u << 20;

std::chrono::steady_clock::time_point
traceOrigin()
{
    static const auto origin = std::chrono::steady_clock::now();
    return origin;
}

} // namespace

TraceBuffer &
TraceBuffer::global()
{
    static TraceBuffer buffer;
    return buffer;
}

double
TraceBuffer::nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - traceOrigin())
        .count();
}

TraceBuffer::Shard &
TraceBuffer::localShard()
{
    static thread_local Shard *tls = nullptr;
    if (tls == nullptr) {
        auto shard = std::make_unique<Shard>();
        tls = shard.get();
        std::lock_guard<std::mutex> lock(mutex_);
        shard->tid = static_cast<int>(shards_.size());
        shards_.push_back(std::move(shard));
    }
    return *tls;
}

void
TraceBuffer::record(const char *name, double start_us,
                    double duration_us)
{
    if (!enabled())
        return;
    Shard &shard = localShard();
    if (shard.events.size() >= kMaxEventsPerShard) {
        ++shard.dropped;
        return;
    }
    shard.events.push_back({name, start_us, duration_us, shard.tid});
}

size_t
TraceBuffer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &shard : shards_)
        n += shard->events.size();
    return n;
}

size_t
TraceBuffer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &shard : shards_)
        n += shard->dropped;
    return n;
}

void
TraceBuffer::writeJson(std::ostream &os) const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &shard : shards_)
            events.insert(events.end(), shard->events.begin(),
                          shard->events.end());
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.startUs != b.startUs)
                      return a.startUs < b.startUs;
                  const int byName = std::strcmp(a.name, b.name);
                  if (byName != 0)
                      return byName < 0;
                  return a.tid < b.tid;
              });

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << e.name
           << "\",\"cat\":\"boreas\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << e.tid << ",\"ts\":" << e.startUs
           << ",\"dur\":" << e.durationUs << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
TraceBuffer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        shard->events.clear();
        shard->dropped = 0;
    }
}

void
ScopedTimer::finish()
{
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    MetricsRegistry &metrics = MetricsRegistry::global();
    if (metrics.enabled())
        metrics.observe(name_, us);
    TraceBuffer &trace = TraceBuffer::global();
    if (trace.enabled()) {
        const double end_us =
            std::chrono::duration<double, std::micro>(end -
                                                      traceOrigin())
                .count();
        trace.record(name_, end_us - us, us);
    }
}

void
setEnabled(bool on)
{
    MetricsRegistry::global().setEnabled(on);
    TraceBuffer::global().setEnabled(on);
}

bool
enabled()
{
    return MetricsRegistry::global().enabled() ||
        TraceBuffer::global().enabled();
}

} // namespace boreas::obs
