#include "control/thermal_controller.hh"

#include <limits>

#include "common/logging.hh"

namespace boreas
{

Celsius
CriticalTempTable::thresholdAt(const VFTable &vf, GHz freq,
                               Celsius offset) const
{
    boreas_assert(criticalTemp.size() ==
                  static_cast<size_t>(vf.numPoints()),
                  "critical temp table size mismatch");
    return criticalTemp[vf.index(freq)] + offset;
}

ThermalThresholdController::ThermalThresholdController(
    std::string name, CriticalTempTable table, Celsius offset,
    int sensor_index)
    : name_(std::move(name)), table_(std::move(table)), offset_(offset),
      sensorIndex_(sensor_index)
{
    boreas_assert(sensor_index >= 0, "bad sensor index");
}

GHz
ThermalThresholdController::decide(const DecisionContext &ctx)
{
    boreas_assert(ctx.vf != nullptr, "missing VF table");
    boreas_assert(static_cast<size_t>(sensorIndex_) <
                  ctx.sensorReadings.size(),
                  "sensor %d not in bank", sensorIndex_);
    const Celsius reading = ctx.sensorReadings[sensorIndex_];
    const VFTable &vf = *ctx.vf;

    // Too hot for the current point: back off one step.
    if (reading >= table_.thresholdAt(vf, ctx.currentFreq, offset_))
        return vf.stepDown(ctx.currentFreq);

    // Cool enough for the next point: boost one step.
    const GHz up = vf.stepUp(ctx.currentFreq);
    if (up > ctx.currentFreq &&
        reading < table_.thresholdAt(vf, up, offset_)) {
        return up;
    }
    return ctx.currentFreq;
}

} // namespace boreas
