/**
 * @file
 * Static VF selection policies: the global safe limit (Sec. III-C) and
 * the per-workload oracle (Sec. III-B).
 *
 * Both run the entire trace at one frequency; the oracle's frequency is
 * the highest point whose full-trace peak severity stays below 1.0,
 * computed offline from the Fig. 2 sweep.
 */

#pragma once

#include <string>

#include "control/controller.hh"

namespace boreas
{

/** Holds one frequency forever (global limit, oracle, ablations). */
class FixedFrequencyController : public FrequencyController
{
  public:
    FixedFrequencyController(std::string name, GHz freq)
        : name_(std::move(name)), freq_(freq)
    {
    }

    const char *name() const override { return name_.c_str(); }

    GHz decide(const DecisionContext &) override { return freq_; }

    GHz frequency() const { return freq_; }

  private:
    std::string name_;
    GHz freq_;
};

} // namespace boreas
