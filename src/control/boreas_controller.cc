#include "control/boreas_controller.hh"

#include "common/logging.hh"

namespace boreas
{

BoreasController::BoreasController(
    std::string name, const GBTRegressor *model,
    const std::vector<std::string> &feature_names, double guardband,
    int sensor_index)
    : name_(std::move(name)), model_(model),
      featureIndices_(featureIndicesOf(feature_names)),
      threshold_(1.0 - guardband), sensorIndex_(sensor_index)
{
    boreas_assert(model_ != nullptr && model_->trained(),
                  "BoreasController needs a trained model");
    flat_ = FlatGBT(*model_);
    boreas_assert(model_->numFeatures() == featureIndices_.size(),
                  "model expects %zu features, got %zu",
                  model_->numFeatures(), featureIndices_.size());
    boreas_assert(guardband >= 0.0 && guardband < 1.0,
                  "bad guardband %f", guardband);
}

double
BoreasController::predictSeverity(const DecisionContext &ctx,
                                  GHz candidate) const
{
    boreas_assert(ctx.counters != nullptr, "missing telemetry");
    boreas_assert(static_cast<size_t>(sensorIndex_) <
                  ctx.sensorReadings.size(),
                  "sensor %d not in bank", sensorIndex_);
    const std::vector<double> full = assembleFeatures(
        *ctx.counters, ctx.sensorReadings[sensorIndex_], candidate);
    std::vector<double> x;
    x.reserve(featureIndices_.size());
    for (size_t idx : featureIndices_)
        x.push_back(full[idx]);
    return flat_.predictOne(x.data());
}

GHz
BoreasController::decide(const DecisionContext &ctx)
{
    boreas_assert(ctx.vf != nullptr, "missing VF table");
    const VFTable &vf = *ctx.vf;

    if (predictSeverity(ctx, ctx.currentFreq) > threshold_)
        return vf.stepDown(ctx.currentFreq);

    const GHz up = vf.stepUp(ctx.currentFreq);
    if (up > ctx.currentFreq &&
        predictSeverity(ctx, up) <= threshold_) {
        return up;
    }
    return ctx.currentFreq;
}

} // namespace boreas
