/**
 * @file
 * CappedController: wraps any frequency controller and clamps its
 * decisions to an externally-assigned cap.
 *
 * The fleet layer uses this to impose a per-die power budget on top of
 * the die's own thermal policy: the inner controller (ML, TH, ...)
 * keeps deciding from its telemetry, and the fleet controller moves
 * the cap between control epochs. The inner controller still observes
 * its own (uncapped) decision stream semantics — only the applied
 * frequency is limited — matching how a firmware power limit sits
 * below an OS governor.
 */

#pragma once

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "control/controller.hh"

namespace boreas
{

/** Clamps an inner policy's decisions to a movable frequency cap. */
class CappedController final : public FrequencyController
{
  public:
    CappedController(std::unique_ptr<FrequencyController> inner,
                     GHz cap = kMaxFrequency)
        : inner_(std::move(inner)), cap_(cap)
    {
        boreas_assert(inner_ != nullptr, "capped controller needs an "
                                         "inner policy");
    }

    const char *name() const override { return inner_->name(); }

    void reset() override { inner_->reset(); }

    GHz
    decide(const DecisionContext &ctx) override
    {
        return std::min(inner_->decide(ctx), cap_);
    }

    /** Move the cap (fleet epoch barrier). Takes effect on the next
     *  decision; callers clamp any carried frequency themselves. */
    void setCap(GHz cap) { cap_ = cap; }

    GHz cap() const { return cap_; }

    FrequencyController &inner() { return *inner_; }

  private:
    std::unique_ptr<FrequencyController> inner_;
    GHz cap_;
};

} // namespace boreas
