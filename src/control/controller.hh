/**
 * @file
 * The DVFS frequency-controller interface.
 *
 * The pipeline invokes the controller once per decision period (12
 * telemetry steps = 960 us, Sec. V-A) with the telemetry a real
 * implementation would have: the latest counter interval and the
 * *delayed* sensor readings. The controller returns the frequency for
 * the next period; the VF table supplies the matching voltage.
 */

#pragma once

#include <vector>

#include "arch/counters.hh"
#include "common/types.hh"
#include "power/vf_table.hh"

namespace boreas
{

/** Everything a controller may observe at a decision point. */
struct DecisionContext
{
    GHz currentFreq = kBaselineFrequency;
    /** Telemetry of the most recent 80 us step. */
    const CounterSet *counters = nullptr;
    /** Delayed readings of every sensor in the bank. */
    std::vector<Celsius> sensorReadings;
    const VFTable *vf = nullptr;
};

/** Base class of all VF selection policies. */
class FrequencyController
{
  public:
    virtual ~FrequencyController() = default;

    /** Name used in result tables ("TH-00", "ML05", "oracle", ...). */
    virtual const char *name() const = 0;

    /** Reset internal state for a fresh run. */
    virtual void reset() {}

    /** Pick the frequency for the next decision period. */
    virtual GHz decide(const DecisionContext &ctx) = 0;
};

} // namespace boreas
