#include "control/phase_thermal.hh"

#include <istream>
#include <ostream>

#include "common/iofmt.hh"
#include "common/logging.hh"

namespace boreas
{

void
PhaseThermalModel::train(const std::vector<PhaseThermalSample> &samples,
                         int num_phases, int num_components,
                         int num_freqs, Rng &rng)
{
    boreas_assert(!samples.empty(), "no phase-thermal samples");
    boreas_assert(num_phases >= 1 && num_components >= 1 &&
                  num_freqs >= 1, "bad phase-thermal config");
    numFreqs_ = num_freqs;

    const size_t d = samples[0].counters.size();
    std::vector<double> raw;
    raw.reserve(samples.size() * d);
    for (const auto &s : samples) {
        boreas_assert(s.counters.size() == d, "inconsistent sample width");
        raw.insert(raw.end(), s.counters.begin(), s.counters.end());
    }

    pca_.fit(raw, d, static_cast<size_t>(num_components));
    const std::vector<double> comps = pca_.transformAll(raw);
    phases_ = kmeans(comps, static_cast<size_t>(num_components),
                     static_cast<size_t>(num_phases), rng);

    // Bucket samples into (phase, freq) cells.
    const size_t ncells =
        static_cast<size_t>(num_phases) * num_freqs;
    std::vector<std::vector<double>> cell_x(ncells);
    std::vector<std::vector<double>> cell_y(ncells);
    std::vector<std::vector<double>> freq_x(num_freqs);
    std::vector<std::vector<double>> freq_y(num_freqs);
    std::vector<double> all_x;
    std::vector<double> all_y;

    const size_t reg_d = static_cast<size_t>(num_components) + 1;
    for (size_t i = 0; i < samples.size(); ++i) {
        const auto &s = samples[i];
        boreas_assert(s.freqIndex >= 0 && s.freqIndex < num_freqs,
                      "bad freq index %d", s.freqIndex);
        std::vector<double> x(comps.begin() + i * num_components,
                              comps.begin() + (i + 1) * num_components);
        x.push_back(s.tempNow);
        const int phase = phases_.assignments[i];
        const size_t cell =
            static_cast<size_t>(phase) * num_freqs + s.freqIndex;
        cell_x[cell].insert(cell_x[cell].end(), x.begin(), x.end());
        cell_y[cell].push_back(s.tempNext);
        freq_x[s.freqIndex].insert(freq_x[s.freqIndex].end(), x.begin(),
                                   x.end());
        freq_y[s.freqIndex].push_back(s.tempNext);
        all_x.insert(all_x.end(), x.begin(), x.end());
        all_y.push_back(s.tempNext);
    }

    cells_.assign(ncells, {});
    for (size_t c = 0; c < ncells; ++c) {
        // Need meaningfully more rows than parameters to fit a cell.
        if (cell_y[c].size() >= 3 * reg_d)
            cells_[c].fit(cell_x[c], reg_d, cell_y[c], 1e-3);
    }
    freqFallback_.assign(num_freqs, {});
    for (int f = 0; f < num_freqs; ++f) {
        if (freq_y[f].size() >= 3 * reg_d)
            freqFallback_[f].fit(freq_x[f], reg_d, freq_y[f], 1e-3);
    }
    globalFallback_.fit(all_x, reg_d, all_y, 1e-3);
    trained_ = true;
}

std::vector<double>
PhaseThermalModel::regressionInput(const std::vector<double> &counters,
                                   Celsius temp_now) const
{
    std::vector<double> x = pca_.transform(counters);
    x.push_back(temp_now);
    return x;
}

int
PhaseThermalModel::classifyPhase(
    const std::vector<double> &counters) const
{
    boreas_assert(trained_, "model not trained");
    const std::vector<double> comps = pca_.transform(counters);
    return phases_.nearest(comps.data());
}

Celsius
PhaseThermalModel::predictNextTemp(const std::vector<double> &counters,
                                   Celsius temp_now,
                                   int freq_index) const
{
    boreas_assert(trained_, "model not trained");
    boreas_assert(freq_index >= 0 && freq_index < numFreqs_,
                  "bad freq index %d", freq_index);
    const std::vector<double> x = regressionInput(counters, temp_now);
    const int phase = classifyPhase(counters);
    const size_t cell =
        static_cast<size_t>(phase) * numFreqs_ + freq_index;
    if (cells_[cell].trained())
        return cells_[cell].predict(x);
    if (freqFallback_[freq_index].trained())
        return freqFallback_[freq_index].predict(x);
    return globalFallback_.predict(x);
}

PhaseThermalController::PhaseThermalController(
    std::string name, const PhaseThermalModel *model,
    CriticalTempTable table, Celsius offset, int sensor_index)
    : name_(std::move(name)), model_(model), table_(std::move(table)),
      offset_(offset), sensorIndex_(sensor_index)
{
    boreas_assert(model_ != nullptr && model_->trained(),
                  "PhaseThermalController needs a trained model");
}

GHz
PhaseThermalController::decide(const DecisionContext &ctx)
{
    boreas_assert(ctx.vf != nullptr && ctx.counters != nullptr,
                  "incomplete decision context");
    boreas_assert(static_cast<size_t>(sensorIndex_) <
                  ctx.sensorReadings.size(),
                  "sensor %d not in bank", sensorIndex_);
    const VFTable &vf = *ctx.vf;
    const Celsius reading = ctx.sensorReadings[sensorIndex_];

    std::vector<double> counters(ctx.counters->values.begin(),
                                 ctx.counters->values.end());

    const Celsius pred_cur = model_->predictNextTemp(
        counters, reading, vf.index(ctx.currentFreq));
    if (pred_cur >= table_.thresholdAt(vf, ctx.currentFreq, offset_))
        return vf.stepDown(ctx.currentFreq);

    const GHz up = vf.stepUp(ctx.currentFreq);
    if (up > ctx.currentFreq) {
        const Celsius pred_up = model_->predictNextTemp(
            counters, reading, vf.index(up));
        if (pred_up < table_.thresholdAt(vf, up, offset_))
            return up;
    }
    return ctx.currentFreq;
}

void
PhaseThermalModel::save(std::ostream &os) const
{
    boreas_assert(trained_, "cannot save an untrained model");
    ScopedStreamPrecision precision(os);
    os << "boreas-phase-thermal 1\n";
    os << numFreqs_ << " " << cells_.size() << "\n";
    pca_.save(os);
    phases_.save(os);
    for (const auto &cell : cells_) {
        os << (cell.trained() ? 1 : 0) << "\n";
        if (cell.trained())
            cell.save(os);
    }
    for (const auto &fb : freqFallback_) {
        os << (fb.trained() ? 1 : 0) << "\n";
        if (fb.trained())
            fb.save(os);
    }
    globalFallback_.save(os);
}

void
PhaseThermalModel::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    boreas_assert(magic == "boreas-phase-thermal" && version == 1,
                  "bad phase-thermal header");
    size_t ncells = 0;
    is >> numFreqs_ >> ncells;
    boreas_assert(numFreqs_ > 0 && ncells > 0 &&
                  ncells % numFreqs_ == 0, "bad phase-thermal shape");
    pca_.load(is);
    phases_.load(is);
    cells_.assign(ncells, {});
    for (auto &cell : cells_) {
        int has = 0;
        is >> has;
        if (has)
            cell.load(is);
    }
    freqFallback_.assign(static_cast<size_t>(numFreqs_), {});
    for (auto &fb : freqFallback_) {
        int has = 0;
        is >> has;
        if (has)
            fb.load(is);
    }
    globalFallback_.load(is);
    boreas_assert(is.good() || is.eof(),
                  "truncated phase-thermal model");
    trained_ = true;
}

} // namespace boreas
