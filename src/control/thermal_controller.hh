/**
 * @file
 * Temperature-threshold DVFS controllers (the paper's TH-xx models,
 * Secs. III-D and IV-C).
 *
 * A CriticalTempTable holds, per VF grid point, the lowest sensor
 * temperature at which any training workload's Hotspot-Severity reached
 * 1.0 (the "global critical temperature"). The controller throttles when
 * the (delayed) sensor reading is at/above the current frequency's
 * threshold, and boosts one step when the reading is safely below the
 * next frequency's threshold. TH-05 / TH-10 relax all thresholds by
 * +5 C / +10 C — the paper's Fig. 4 shows this helps mild workloads but
 * causes incursions on bursty ones.
 */

#pragma once

#include <string>
#include <vector>

#include "control/controller.hh"

namespace boreas
{

/** Per-VF-point critical temperature thresholds. */
struct CriticalTempTable
{
    /** One entry per VF grid point; +inf means never constrained. */
    std::vector<Celsius> criticalTemp;

    /** Threshold at a frequency with an additive relaxation offset. */
    Celsius thresholdAt(const VFTable &vf, GHz freq,
                        Celsius offset) const;
};

/** The TH-xx reactive thermal controller. */
class ThermalThresholdController : public FrequencyController
{
  public:
    /**
     * @param name display name ("TH-00", "TH-05", ...)
     * @param table global critical temperatures (train-set derived)
     * @param offset threshold relaxation in C (0, 5, 10)
     * @param sensor_index which sensor of the bank the policy trusts
     */
    ThermalThresholdController(std::string name, CriticalTempTable table,
                               Celsius offset, int sensor_index);

    const char *name() const override { return name_.c_str(); }

    GHz decide(const DecisionContext &ctx) override;

    const CriticalTempTable &table() const { return table_; }
    Celsius offset() const { return offset_; }

  private:
    std::string name_;
    CriticalTempTable table_;
    Celsius offset_;
    int sensorIndex_;
};

} // namespace boreas
