/**
 * @file
 * The Cochran & Reda (DAC'10) baseline the paper compares against in
 * Sec. IV-C: consistent runtime thermal prediction through workload
 * phase detection.
 *
 * Offline: raw performance counters are reduced with PCA, workload
 * phases are formed by k-means in component space, and a per-(phase,
 * frequency) linear regression predicts the *future temperature* from
 * the components and the current reading. Runtime: classify the phase,
 * predict the next interval's temperature at candidate frequencies, and
 * throttle against a temperature threshold.
 *
 * The point of carrying this baseline is the paper's argument that even
 * perfect temperature prediction is not enough — temperature alone does
 * not capture severity (MLTD), so the policy still needs conservative
 * thresholds.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "control/controller.hh"
#include "control/thermal_controller.hh"
#include "ml/kmeans.hh"
#include "ml/linreg.hh"
#include "ml/pca.hh"

namespace boreas
{

/** One offline training sample for the phase-thermal model. */
struct PhaseThermalSample
{
    std::vector<double> counters; ///< the 76 microarch counters
    Celsius tempNow = 0.0;        ///< sensor reading at decision time
    int freqIndex = 0;            ///< VF point of the next interval
    Celsius tempNext = 0.0;       ///< sensor reading one interval later
};

/** PCA + k-means phases + per-(phase, frequency) linear regression. */
class PhaseThermalModel
{
  public:
    /**
     * Fit the full offline pipeline.
     *
     * @param samples training samples (all workloads of the train set)
     * @param num_phases k for the phase clustering
     * @param num_components retained principal components
     * @param num_freqs VF grid size
     * @param rng k-means seeding
     */
    void train(const std::vector<PhaseThermalSample> &samples,
               int num_phases, int num_components, int num_freqs,
               Rng &rng);

    bool trained() const { return trained_; }
    int numPhases() const { return static_cast<int>(phases_.k()); }

    /** Phase id of a counter vector. */
    int classifyPhase(const std::vector<double> &counters) const;

    /** Predicted next-interval temperature. */
    Celsius predictNextTemp(const std::vector<double> &counters,
                            Celsius temp_now, int freq_index) const;

    /** Serialize the trained pipeline (PCA, phases, regressions). */
    void save(std::ostream &os) const;

    /** Deserialize; panics on malformed input. */
    void load(std::istream &is);

  private:
    /** Regression features: [components..., temp_now]. */
    std::vector<double> regressionInput(
        const std::vector<double> &counters, Celsius temp_now) const;

    bool trained_ = false;
    PCA pca_;
    KMeansResult phases_;
    int numFreqs_ = 0;
    /** (phase * numFreqs + freq) -> regression; may be untrained. */
    std::vector<LinearRegression> cells_;
    /** Per-frequency fallback when a (phase, freq) cell had no data. */
    std::vector<LinearRegression> freqFallback_;
    /** Global fallback of last resort. */
    LinearRegression globalFallback_;
};

/** The reactive controller built on the phase-thermal model. */
class PhaseThermalController : public FrequencyController
{
  public:
    PhaseThermalController(std::string name,
                           const PhaseThermalModel *model,
                           CriticalTempTable table, Celsius offset,
                           int sensor_index);

    const char *name() const override { return name_.c_str(); }

    GHz decide(const DecisionContext &ctx) override;

  private:
    std::string name_;
    const PhaseThermalModel *model_;
    CriticalTempTable table_;
    Celsius offset_;
    int sensorIndex_;
};

} // namespace boreas
