/**
 * @file
 * The Boreas ML frequency controller (Secs. IV and V-A).
 *
 * Every decision period the controller assembles the feature vector
 * (telemetry counters + delayed sensor reading + candidate frequency),
 * asks the GBT for the predicted max severity of the next period, and:
 *
 *   - if the prediction at the current frequency exceeds the threshold,
 *     steps down 250 MHz;
 *   - otherwise, if the prediction at +250 MHz is still under the
 *     threshold, steps up;
 *   - otherwise holds.
 *
 * The threshold is 1.0 minus the guardband: ML00/ML05/ML10 use
 * guardbands of 0%, 5% and 10% (thresholds 1.0, 0.95, 0.9; Sec. V-C).
 */

#pragma once

#include <string>
#include <vector>

#include "control/controller.hh"
#include "ml/feature_schema.hh"
#include "ml/gbt.hh"
#include "ml/gbt_flat.hh"

namespace boreas
{

/** The ML severity-prediction DVFS policy. */
class BoreasController : public FrequencyController
{
  public:
    /**
     * @param name display name ("ML00", "ML05", "ML10")
     * @param model trained severity regressor (not owned; outlives this)
     * @param feature_names model input columns (full-schema names)
     * @param guardband fraction subtracted from the 1.0 threshold
     * @param sensor_index sensor providing temperature_sensor_data
     */
    BoreasController(std::string name, const GBTRegressor *model,
                     const std::vector<std::string> &feature_names,
                     double guardband, int sensor_index);

    const char *name() const override { return name_.c_str(); }

    GHz decide(const DecisionContext &ctx) override;

    /** Predicted severity for a candidate frequency in a context. */
    double predictSeverity(const DecisionContext &ctx,
                           GHz candidate) const;

    double threshold() const { return threshold_; }

  private:
    std::string name_;
    const GBTRegressor *model_;
    /** Flat engine compiled from *model_ at construction: the serving
     *  path every per-period severity query goes through (bit-identical
     *  to model_->predict; DESIGN.md §12). */
    FlatGBT flat_;
    std::vector<size_t> featureIndices_;
    double threshold_;
    int sensorIndex_;
};

} // namespace boreas
