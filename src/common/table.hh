/**
 * @file
 * Text-table and CSV emission used by the bench harnesses to print the
 * rows/series of each paper table and figure.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace boreas
{

/** Column-aligned ASCII table builder. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (must match the header width if one is set). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render with aligned columns; numeric-looking cells right-align. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    size_t rowCount() const { return rows_.size(); }

    /** Header cells (empty if none was set). */
    const std::vector<std::string> &header() const { return header_; }

    /** Data rows, in insertion order. */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace boreas
