#include "common/table.hh"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace boreas
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!header_.empty()) {
        boreas_assert(row.size() == header_.size(),
                      "row width %zu != header width %zu",
                      row.size(), header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%')
            return false;
    }
    return true;
}

} // namespace

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            const bool right = looksNumeric(row[i]);
            os << (i == 0 ? "" : "  ");
            os << std::setw(static_cast<int>(widths[i]))
               << (right ? std::right : std::left) << row[i];
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w;
        total += 2 * (widths.size() - 1);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            os << (i == 0 ? "" : ",") << row[i];
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace boreas
