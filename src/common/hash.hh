/**
 * @file
 * FNV-1a streaming hasher over exact bit patterns.
 *
 * Used by the pipeline's per-step state hash (DESIGN.md §7): doubles
 * are hashed by their IEEE-754 bits, so two runs hash equal iff their
 * states are bitwise identical — exactly the determinism contract the
 * parallel layer promises (common/parallel.hh). Not a cryptographic
 * hash and not portable across endianness; it only needs to compare
 * runs within one process.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace boreas
{

/** Streaming 64-bit FNV-1a. */
class Fnv1a
{
  public:
    void
    addBytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= 0x100000001b3ULL;
        }
    }

    void
    add(uint64_t v)
    {
        addBytes(&v, sizeof(v));
    }

    void
    add(int64_t v)
    {
        addBytes(&v, sizeof(v));
    }

    void
    add(int v)
    {
        add(static_cast<int64_t>(v));
    }

    /** Hash the exact IEEE-754 bit pattern (distinguishes -0.0/+0.0). */
    void
    add(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        add(bits);
    }

    void
    add(const std::vector<double> &v)
    {
        for (double x : v)
            add(x);
    }

    uint64_t digest() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ULL;
};

} // namespace boreas
