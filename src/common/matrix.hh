/**
 * @file
 * Minimal dense row-major matrix used by the ML substrate (PCA, linear
 * regression) and the thermal solver's steady-state solve.
 *
 * This is deliberately a small, boring numeric kernel: only the operations
 * the project needs (multiply, transpose, Cholesky/Gaussian solves, Jacobi
 * eigen decomposition for symmetric matrices).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace boreas
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix initialized to fill. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /** Identity matrix of size n. */
    static Matrix identity(size_t n);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double &
    at(size_t r, size_t c)
    {
        boreas_check(r < rows_ && c < cols_,
                     "matrix index (%zu, %zu) outside %zux%zu",
                     r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    double
    at(size_t r, size_t c) const
    {
        boreas_check(r < rows_ && c < cols_,
                     "matrix index (%zu, %zu) outside %zux%zu",
                     r, c, rows_, cols_);
        return data_[r * cols_ + c];
    }

    double &operator()(size_t r, size_t c) { return at(r, c); }
    double operator()(size_t r, size_t c) const { return at(r, c); }

    const std::vector<double> &data() const { return data_; }

    /** Matrix product this * rhs. */
    Matrix multiply(const Matrix &rhs) const;

    /** Matrix-vector product. */
    std::vector<double> multiply(const std::vector<double> &v) const;

    /** Transpose. */
    Matrix transposed() const;

    /**
     * Solve A x = b for square A via partially-pivoted Gaussian
     * elimination. Panics on a (numerically) singular system.
     */
    static std::vector<double> solve(Matrix a, std::vector<double> b);

    /**
     * Eigen decomposition of a symmetric matrix by cyclic Jacobi
     * rotations. Eigenvalues are returned sorted descending with the
     * matching eigenvectors as the *columns* of vectors.
     *
     * @param eigenvalues output, size n
     * @param vectors output, n x n, column k pairs with eigenvalue k
     */
    void symmetricEigen(std::vector<double> &eigenvalues,
                        Matrix &vectors) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace boreas
