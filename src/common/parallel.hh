/**
 * @file
 * Shared parallel-execution layer: a small fixed-size thread pool with a
 * chunked parallel-for and a task-group API.
 *
 * Threading model
 *   - One process-wide pool (ThreadPool::global()), sized from the
 *     BOREAS_THREADS environment variable (default: hardware threads).
 *   - parallelFor() splits [begin, end) into chunks of at most `grain`
 *     and processes them on the pool; the calling thread participates.
 *   - Nested parallelism degrades to serial: a parallelFor issued from
 *     inside a pool worker runs inline on that worker. Outer fan-outs
 *     (one pipeline run per task) therefore automatically claim the
 *     whole pool while inner loops (GBT histograms) stay serial, and
 *     vice versa when a hot loop runs on the main thread.
 *
 * Determinism contract
 *   - At threads = 1 every construct runs inline on the caller, so
 *     results are bit-identical to a build without this layer.
 *   - Call sites are required to give each task its own output slot and
 *     its own RNG / pipeline state, and to merge results in task-index
 *     order. Under that discipline results are bit-identical for every
 *     thread count; tests/test_parallel.cc asserts it end-to-end.
 *
 * Exceptions thrown by tasks are captured and the first one is
 * rethrown on the waiting thread.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace boreas
{

/** Fixed-size worker pool; see the file comment for the model. */
class ThreadPool
{
  public:
    /** Spawns threads - 1 workers (the caller is the remaining lane). */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallel lanes, including the calling thread. */
    int numThreads() const { return numThreads_; }

    /**
     * The process-wide pool, created on first use with
     * defaultThreads() lanes.
     */
    static ThreadPool &global();

    /**
     * Lane count of the global pool: BOREAS_THREADS if set (validated
     * via tryParseThreadCount; a malformed value is fatal), else
     * std::thread::hardware_concurrency().
     */
    static int defaultThreads();

    /**
     * Replace the global pool (testing only; callers must not hold
     * references across this call and no work may be in flight).
     */
    static void resetGlobal(int threads);

    /** True when the calling thread is a worker of *any* pool. */
    static bool inWorker();

    /**
     * Chunked parallel loop: invoke fn(chunk_begin, chunk_end) for
     * consecutive chunks of at most `grain` elements covering
     * [begin, end). Runs inline (serial, in order) when the pool has
     * one lane, the range fits a single grain, or the caller is
     * already a pool worker.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** Enqueue one opaque task (used by TaskGroup). */
    void submit(std::function<void()> task);

  private:
    void workerLoop();

    int numThreads_ = 1;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Element-wise convenience wrapper over the global pool:
 * fn(i) for i in [begin, end).
 */
void parallelForEach(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t)> &fn);

/** Largest lane count a BOREAS_THREADS override may request. */
constexpr int kMaxThreadOverride = 4096;

/**
 * Strict parse of a BOREAS_THREADS-style lane count: the whole string
 * must be one base-10 integer in [1, kMaxThreadOverride]. Trailing
 * junk ("8x"), empty strings, overflowing digits and out-of-range
 * values all fail — std::atoi silently accepted the first two and had
 * undefined behaviour on the third. On success *out holds the count.
 */
bool tryParseThreadCount(const char *text, int *out);

/**
 * A set of independent tasks joined by wait(). Tasks run on the pool;
 * when the pool is single-laned (or the caller is a worker) run() runs
 * the task inline. wait() rethrows the first captured exception.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool = ThreadPool::global());

    /** Joins outstanding tasks (exceptions are swallowed here; call
     *  wait() to observe them). */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Add one task. */
    void run(std::function<void()> fn);

    /** Block until every task ran; rethrow the first exception. */
    void wait();

  private:
    struct State;
    ThreadPool *pool_;
    std::shared_ptr<State> state_;
};

} // namespace boreas
