#include "common/parallel.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace boreas
{

namespace
{

/** Set while a thread is executing pool work (any pool). */
thread_local bool t_in_worker = false;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    boreas_assert(threads >= 1, "thread pool needs >= 1 lane, got %d",
                  threads);
    numThreads_ = threads;
    workers_.reserve(static_cast<size_t>(threads - 1));
    for (int i = 0; i < threads - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    t_in_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        boreas_assert(!stop_, "submit() on a stopping pool");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool
tryParseThreadCount(const char *text, int *out)
{
    if (text == nullptr || *text == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    const long n = std::strtol(text, &end, 10);
    // Full consumption: strtol stopping early means trailing junk
    // ("8x") or no digits at all ("x8", " "); errno catches digit
    // strings outside long's range before the int cast could wrap.
    if (end == text || *end != '\0' || errno == ERANGE)
        return false;
    if (n < 1 || n > kMaxThreadOverride)
        return false;
    *out = static_cast<int>(n);
    return true;
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("BOREAS_THREADS")) {
        int n = 0;
        if (!tryParseThreadCount(env, &n)) {
            boreas_fatal("BOREAS_THREADS must be an integer in "
                         "[1, %d], got '%s'", kMaxThreadOverride, env);
        }
        return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (!g_global_pool)
        g_global_pool = std::make_unique<ThreadPool>(defaultThreads());
    return *g_global_pool;
}

void
ThreadPool::resetGlobal(int threads)
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    g_global_pool = std::make_unique<ThreadPool>(threads);
}

bool
ThreadPool::inWorker()
{
    return t_in_worker;
}

namespace
{

/** Shared state of one parallelFor batch. */
struct ForBatch
{
    const std::function<void(int64_t, int64_t)> *fn = nullptr;
    int64_t begin = 0;
    int64_t grain = 1;
    int64_t numChunks = 0;
    std::atomic<int64_t> nextChunk{0};
    std::atomic<int64_t> doneChunks{0};
    std::atomic<bool> abort{false};

    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error; ///< guarded by mutex

    int64_t end = 0;

    /** Claim and run chunks until none remain. */
    void
    drain()
    {
        for (;;) {
            const int64_t c =
                nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= numChunks)
                return;
            if (!abort.load(std::memory_order_relaxed)) {
                const int64_t lo = begin + c * grain;
                const int64_t hi = std::min(end, lo + grain);
                try {
                    (*fn)(lo, hi);
                } catch (...) {
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        if (!error)
                            error = std::current_exception();
                    }
                    abort.store(true, std::memory_order_relaxed);
                }
            }
            const int64_t done =
                doneChunks.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (done == numChunks) {
                std::lock_guard<std::mutex> lock(mutex);
                cv.notify_all();
            }
        }
    }
};

} // namespace

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (begin >= end)
        return;
    boreas_assert(grain >= 1, "parallelFor grain must be >= 1");
    obs::MetricsRegistry::global().add("parallel.for.calls");

    // Serial fast paths: one lane, a single chunk, or nested use from
    // inside a worker (which would otherwise deadlock-prone steal the
    // pool from the outer batch).
    if (numThreads_ <= 1 || end - begin <= grain || t_in_worker) {
        obs::MetricsRegistry::global().add("parallel.for.inline");
        for (int64_t lo = begin; lo < end; lo += grain)
            fn(lo, std::min(end, lo + grain));
        return;
    }

    auto batch = std::make_shared<ForBatch>();
    batch->fn = &fn;
    batch->begin = begin;
    batch->end = end;
    batch->grain = grain;
    batch->numChunks = (end - begin + grain - 1) / grain;
    {
        obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
        metrics.add("parallel.for.fanouts");
        metrics.add("parallel.for.chunks",
                    static_cast<uint64_t>(batch->numChunks));
    }

    // One helper per lane beyond the caller, capped by the chunk count
    // (a helper that finds no chunk exits immediately anyway).
    const int64_t helpers = std::min<int64_t>(numThreads_ - 1,
                                              batch->numChunks - 1);
    for (int64_t i = 0; i < helpers; ++i)
        submit([batch] { batch->drain(); });

    // The caller participates as a lane; while draining it counts as
    // pool work so parallelFor nested under its chunks degrades to
    // serial just like on the spawned workers.
    t_in_worker = true;
    batch->drain();
    t_in_worker = false;

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] {
        return batch->doneChunks.load(std::memory_order_acquire) ==
            batch->numChunks;
    });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

void
parallelForEach(int64_t begin, int64_t end, int64_t grain,
                const std::function<void(int64_t)> &fn)
{
    ThreadPool::global().parallelFor(
        begin, end, grain, [&fn](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                fn(i);
        });
}

struct TaskGroup::State
{
    std::atomic<int64_t> outstanding{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error; ///< guarded by mutex
};

TaskGroup::TaskGroup(ThreadPool &pool)
    : pool_(&pool), state_(std::make_shared<State>())
{
}

TaskGroup::~TaskGroup()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [this] {
        return state_->outstanding.load(std::memory_order_acquire) == 0;
    });
}

void
TaskGroup::run(std::function<void()> fn)
{
    // Inline when parallel execution cannot help (single lane) or when
    // the caller is itself pool work (nested groups stay serial).
    if (pool_->numThreads() <= 1 || ThreadPool::inWorker()) {
        try {
            fn();
        } catch (...) {
            std::lock_guard<std::mutex> lock(state_->mutex);
            if (!state_->error)
                state_->error = std::current_exception();
        }
        return;
    }

    auto state = state_;
    state->outstanding.fetch_add(1, std::memory_order_acq_rel);
    pool_->submit([state, fn = std::move(fn)] {
        try {
            fn();
        } catch (...) {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (!state->error)
                state->error = std::current_exception();
        }
        if (state->outstanding.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->cv.notify_all();
        }
    });
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [this] {
        return state_->outstanding.load(std::memory_order_acquire) == 0;
    });
    if (state_->error) {
        const std::exception_ptr err = state_->error;
        state_->error = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

} // namespace boreas
