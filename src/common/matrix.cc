#include "common/matrix.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace boreas
{

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    boreas_assert(cols_ == rhs.rows_, "shape mismatch %zux%zu * %zux%zu",
                  rows_, cols_, rhs.rows_, rhs.cols_);
    Matrix out(rows_, rhs.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            const double a = at(i, k);
            if (a == 0.0)
                continue;
            for (size_t j = 0; j < rhs.cols_; ++j)
                out.at(i, j) += a * rhs.at(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    boreas_assert(cols_ == v.size(), "shape mismatch %zux%zu * %zu",
                  rows_, cols_, v.size());
    std::vector<double> out(rows_, 0.0);
    for (size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < cols_; ++j)
            acc += at(i, j) * v[j];
        out[i] = acc;
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

std::vector<double>
Matrix::solve(Matrix a, std::vector<double> b)
{
    const size_t n = a.rows();
    boreas_assert(a.cols() == n && b.size() == n,
                  "solve needs square system");
    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col)))
                pivot = r;
        if (std::fabs(a.at(pivot, col)) < 1e-12)
            boreas_panic("singular system in Matrix::solve (col %zu)", col);
        if (pivot != col) {
            for (size_t j = 0; j < n; ++j)
                std::swap(a.at(pivot, j), a.at(col, j));
            std::swap(b[pivot], b[col]);
        }
        const double inv = 1.0 / a.at(col, col);
        for (size_t r = col + 1; r < n; ++r) {
            const double factor = a.at(r, col) * inv;
            if (factor == 0.0)
                continue;
            for (size_t j = col; j < n; ++j)
                a.at(r, j) -= factor * a.at(col, j);
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (size_t j = ri + 1; j < n; ++j)
            acc -= a.at(ri, j) * x[j];
        x[ri] = acc / a.at(ri, ri);
    }
    return x;
}

void
Matrix::symmetricEigen(std::vector<double> &eigenvalues,
                       Matrix &vectors) const
{
    const size_t n = rows_;
    boreas_assert(cols_ == n, "symmetricEigen needs a square matrix");
    Matrix a = *this;
    vectors = identity(n);

    constexpr int kMaxSweeps = 100;
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
        double off = 0.0;
        for (size_t i = 0; i < n; ++i)
            for (size_t j = i + 1; j < n; ++j)
                off += a.at(i, j) * a.at(i, j);
        if (off < 1e-20)
            break;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const double apq = a.at(p, q);
                if (std::fabs(apq) < 1e-15)
                    continue;
                const double app = a.at(p, p);
                const double aqq = a.at(q, q);
                const double theta = 0.5 * (aqq - app) / apq;
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (size_t k = 0; k < n; ++k) {
                    const double akp = a.at(k, p);
                    const double akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double apk = a.at(p, k);
                    const double aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double vkp = vectors.at(k, p);
                    const double vkq = vectors.at(k, q);
                    vectors.at(k, p) = c * vkp - s * vkq;
                    vectors.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    eigenvalues.resize(n);
    for (size_t i = 0; i < n; ++i)
        eigenvalues[i] = a.at(i, i);

    // Sort descending by eigenvalue, permuting eigenvector columns along.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return eigenvalues[x] > eigenvalues[y];
    });
    std::vector<double> sorted_vals(n);
    Matrix sorted_vecs(n, n);
    for (size_t k = 0; k < n; ++k) {
        sorted_vals[k] = eigenvalues[order[k]];
        for (size_t r = 0; r < n; ++r)
            sorted_vecs.at(r, k) = vectors.at(r, order[k]);
    }
    eigenvalues = std::move(sorted_vals);
    vectors = std::move(sorted_vecs);
}

} // namespace boreas
