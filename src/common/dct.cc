#include "common/dct.hh"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "common/logging.hh"

namespace boreas
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/**
 * Batch-chunk width for the level sweeps, in doubles. Sweeps never mix
 * batch columns, so each chunk can run the whole sweep sequence while
 * its working set stays cache-resident instead of streaming the full
 * field once per level.
 */
constexpr int kBatchChunk = 32;

/**
 * Extra doubles of row stride (one cache line) in the internal sweep
 * buffers. A power-of-two row stride (e.g. 64 doubles = 512 bytes)
 * maps every position row onto a handful of L1 sets and the sweeps
 * thrash; the padding spreads rows across all sets. Measured at
 * 64x64: ~1.7x on the whole transform.
 */
constexpr int kStridePad = 8;

bool
isPow2(int n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

/** dst[c*rows + r] = scale * src[r*cols + c]. */
void
transposeScaled(const double *__restrict src, int rows, int cols,
                double scale, double *__restrict dst)
{
    for (int r = 0; r < rows; ++r) {
        const double *row = src + static_cast<size_t>(r) * cols;
        for (int c = 0; c < cols; ++c)
            dst[static_cast<size_t>(c) * rows + r] = scale * row[c];
    }
}

int
log2Of(int n)
{
    int bits = 0;
    while ((1 << bits) < n)
        ++bits;
    return bits;
}

} // namespace

double
Dct2Plan::laplacianEigenvalue(int k, int n)
{
    return 2.0 - 2.0 * std::cos(kPi * k / n);
}

Dct2Plan::Axis
Dct2Plan::makeAxis(int n)
{
    Axis ax;
    ax.n = n;
    ax.pow2 = isPow2(n);
    if (ax.pow2) {
        // One secant table per recursion level: len = n, n/2, ..., 2.
        for (int len = n; len >= 2; len /= 2) {
            ax.levelOff.push_back(ax.halfSec.size());
            const int half = len / 2;
            for (int i = 0; i < half; ++i) {
                ax.halfSec.push_back(
                    0.5 / std::cos((i + 0.5) * kPi / len));
            }
        }
    } else {
        ax.fwdMat.resize(static_cast<size_t>(n) * n);
        ax.invMat.resize(static_cast<size_t>(n) * n);
        for (int k = 0; k < n; ++k) {
            for (int i = 0; i < n; ++i) {
                const double c = std::cos(kPi * k * (2 * i + 1) /
                                          (2.0 * n));
                ax.fwdMat[static_cast<size_t>(k) * n + i] = c;
                // inverse() halves the k = 0 coefficient separately
                // (shared with the Lee path), so plain cosine here.
                ax.invMat[static_cast<size_t>(i) * n + k] = c;
            }
        }
    }
    return ax;
}

Dct2Plan::Dct2Plan(int nx, int ny) : nx_(nx), ny_(ny)
{
    boreas_assert(nx >= 2 && ny >= 2, "DCT plan needs nx,ny >= 2, got "
                  "%dx%d", nx, ny);
    ax_ = makeAxis(nx);
    ay_ = makeAxis(ny);
    passScratch_.assign(static_cast<size_t>(nx) * ny, 0.0);
    fieldScratch_.assign(static_cast<size_t>(nx) * ny, 0.0);
    const size_t dim = static_cast<size_t>(std::max(nx, ny));
    pingPad_.assign(dim * (dim + kStridePad), 0.0);
    pongPad_.assign(dim * (dim + kStridePad), 0.0);
}

/**
 * Lee's split for the unnormalized DCT-II, flattened into iterative
 * level sweeps over a [n x batch] array:
 *
 *   - descending "split" sweeps (len = n, n/2, ..., 2) turn each block
 *     into its half-length sum sequence (even output coefficients)
 *     followed by the secant-weighted difference sequence (odd
 *     coefficients via the adjacent-sum recurrence);
 *   - ascending "recombine" sweeps (len = 4, ..., n) interleave the
 *     transformed halves back into natural coefficient order.
 *
 * This is the same arithmetic as the textbook recursion with the call
 * tree and per-row dispatch traded for streaming sweeps whose inner
 * loops run over the contiguous batch index. Sweeps ping-pong between
 * the two stride-padded internal buffers (the last one writes `dst`),
 * and the batch range is processed in cache-sized chunks so one
 * chunk's whole sweep sequence stays L1-resident.
 */
template <typename TDst>
void
Dct2Plan::batchedDct2(const Axis &ax, const double *src, TDst *dst,
                      int batch)
{
    const int n = ax.n;
    if (!ax.pow2) {
        // Dense fallback: one matrix sweep, batch innermost. The
        // accumulator stays double regardless of TDst; only the final
        // store narrows.
        double *__restrict acc = pingPad_.data();
        for (int k = 0; k < n; ++k) {
            const double *m =
                ax.fwdMat.data() + static_cast<size_t>(k) * n;
            for (int r = 0; r < batch; ++r)
                acc[r] = m[0] * src[r];
            for (int i = 1; i < n; ++i) {
                const double c = m[i];
                const double *__restrict in =
                    src + static_cast<size_t>(i) * batch;
                for (int r = 0; r < batch; ++r)
                    acc[r] += c * in[r];
            }
            TDst *__restrict out =
                dst + static_cast<size_t>(k) * batch;
            for (int r = 0; r < batch; ++r)
                out[r] = static_cast<TDst>(acc[r]);
        }
        return;
    }

    const int sweeps = 2 * log2Of(n) - 1;
    const size_t pstr = static_cast<size_t>(batch) + kStridePad;
    for (int rb = 0; rb < batch; rb += kBatchChunk) {
        const int bc = std::min(kBatchChunk, batch - rb);
        const double *cur = src + rb;
        size_t cstr = batch;
        int sweep = 0;
        bool wrote_dst = false;

        int level = 0;
        for (int len = n; len >= 2; len /= 2, ++level, ++sweep) {
            const double *sec = ax.halfSec.data() + ax.levelOff[level];
            const int half = len / 2;
            const auto body = [&](auto *out, size_t ostr) {
                using TO = std::remove_reference_t<decltype(out[0])>;
                for (int s0 = 0; s0 < n; s0 += len) {
                    const double *blk =
                        cur + static_cast<size_t>(s0) * cstr;
                    auto *o = out + static_cast<size_t>(s0) * ostr;
                    for (int i = 0; i < half; ++i) {
                        const double *__restrict xi =
                            blk + static_cast<size_t>(i) * cstr;
                        const double *__restrict yi =
                            blk + static_cast<size_t>(len - 1 - i) *
                                      cstr;
                        TO *__restrict sum =
                            o + static_cast<size_t>(i) * ostr;
                        TO *__restrict dif =
                            o + static_cast<size_t>(half + i) * ostr;
                        const double c = sec[i];
                        for (int r = 0; r < bc; ++r) {
                            const double x = xi[r];
                            const double y = yi[r];
                            sum[r] = static_cast<TO>(x + y);
                            dif[r] = static_cast<TO>((x - y) * c);
                        }
                    }
                }
            };
            if (sweep + 1 == sweeps) {
                // Only when n == 2 is a split sweep the last one.
                body(dst + rb, static_cast<size_t>(batch));
                wrote_dst = true;
            } else {
                double *out = (sweep % 2 == 0 ? pingPad_.data()
                                              : pongPad_.data()) + rb;
                body(out, pstr);
                cur = out;
                cstr = pstr;
            }
        }

        for (int len = 4; len <= n; len *= 2, ++sweep) {
            const int half = len / 2;
            const auto body = [&](auto *out, size_t ostr) {
                using TO = std::remove_reference_t<decltype(out[0])>;
                for (int s0 = 0; s0 < n; s0 += len) {
                    const double *blk =
                        cur + static_cast<size_t>(s0) * cstr;
                    const double *sums = blk;
                    const double *difs =
                        blk + static_cast<size_t>(half) * cstr;
                    auto *o = out + static_cast<size_t>(s0) * ostr;
                    for (int i = 0; i < half - 1; ++i) {
                        const double *__restrict ei =
                            sums + static_cast<size_t>(i) * cstr;
                        const double *__restrict oi =
                            difs + static_cast<size_t>(i) * cstr;
                        const double *__restrict oj =
                            difs + static_cast<size_t>(i + 1) * cstr;
                        TO *__restrict even =
                            o + static_cast<size_t>(2 * i) * ostr;
                        TO *__restrict odd =
                            o + static_cast<size_t>(2 * i + 1) * ostr;
                        for (int r = 0; r < bc; ++r) {
                            even[r] = static_cast<TO>(ei[r]);
                            odd[r] = static_cast<TO>(oi[r] + oj[r]);
                        }
                    }
                    const double *lastS =
                        sums + static_cast<size_t>(half - 1) * cstr;
                    const double *lastD =
                        difs + static_cast<size_t>(half - 1) * cstr;
                    TO *__restrict tailS =
                        o + static_cast<size_t>(len - 2) * ostr;
                    TO *__restrict tailD =
                        o + static_cast<size_t>(len - 1) * ostr;
                    for (int r = 0; r < bc; ++r) {
                        tailS[r] = static_cast<TO>(lastS[r]);
                        tailD[r] = static_cast<TO>(lastD[r]);
                    }
                }
            };
            if (sweep + 1 == sweeps) {
                body(dst + rb, static_cast<size_t>(batch));
                wrote_dst = true;
            } else {
                double *out = (sweep % 2 == 0 ? pingPad_.data()
                                              : pongPad_.data()) + rb;
                body(out, pstr);
                cur = out;
                cstr = pstr;
            }
        }
        boreas_assert(wrote_dst && sweep == sweeps,
                      "DCT-II sweep accounting broke (n=%d)", n);
    }
}

/**
 * Inverse (unnormalized DCT-III) counterpart: descending de-interleave
 * sweeps (len = n down to 4; len = 2 is the identity) followed by
 * ascending secant-weighted butterfly sweeps (len = 2 up to n), with
 * the same chunked buffer ping-pong as batchedDct2.
 */
template <typename TSrc>
void
Dct2Plan::batchedDct3(const Axis &ax, const TSrc *src, double *dst,
                      int batch, bool halve_first)
{
    const int n = ax.n;
    const double fs = halve_first ? 0.5 : 1.0;
    if (!ax.pow2) {
        for (int i = 0; i < n; ++i) {
            const double *m =
                ax.invMat.data() + static_cast<size_t>(i) * n;
            double *__restrict out =
                dst + static_cast<size_t>(i) * batch;
            const double c0 = m[0] * fs;
            for (int r = 0; r < batch; ++r)
                out[r] = c0 * src[r];
            for (int k = 1; k < n; ++k) {
                const double c = m[k];
                const TSrc *__restrict in =
                    src + static_cast<size_t>(k) * batch;
                for (int r = 0; r < batch; ++r)
                    out[r] += c * in[r];
            }
        }
        return;
    }

    const int sweeps = 2 * log2Of(n) - 1;
    const size_t pstr = static_cast<size_t>(batch) + kStridePad;
    for (int rb = 0; rb < batch; rb += kBatchChunk) {
        const int bc = std::min(kBatchChunk, batch - rb);
        // Only the sweep == 0 input is TSrc (possibly float); every
        // later sweep reads the double ping-pong buffers.
        const double *cur = nullptr;
        size_t cstr = batch;
        int sweep = 0;
        const auto nextOut = [&](double *&out, size_t &ostr) {
            if (sweep + 1 == sweeps) {
                out = dst + rb;
                ostr = batch;
            } else {
                out = (sweep % 2 == 0 ? pingPad_.data()
                                      : pongPad_.data()) + rb;
                ostr = pstr;
            }
        };

        for (int len = n; len >= 4; len /= 2, ++sweep) {
            const int half = len / 2;
            double *out;
            size_t ostr;
            nextOut(out, ostr);
            const auto body = [&](const auto *in, size_t icstr) {
                for (int s0 = 0; s0 < n; s0 += len) {
                    const auto *blk =
                        in + static_cast<size_t>(s0) * icstr;
                    double *o = out + static_cast<size_t>(s0) * ostr;
                    // De-interleave: evens to the front half; odd
                    // coefficients become adjacent sums in the back
                    // half.
                    const double c0 = sweep == 0 && s0 == 0 ? fs : 1.0;
                    const auto *__restrict v0 = blk;
                    const auto *__restrict v1 = blk + icstr;
                    double *__restrict t0 = o;
                    double *__restrict th =
                        o + static_cast<size_t>(half) * ostr;
                    for (int r = 0; r < bc; ++r) {
                        t0[r] = c0 * v0[r];
                        th[r] = v1[r];
                    }
                    for (int i = 1; i < half; ++i) {
                        const auto *__restrict ev =
                            blk + static_cast<size_t>(2 * i) * icstr;
                        const auto *__restrict om =
                            blk + static_cast<size_t>(2 * i - 1) *
                                      icstr;
                        const auto *__restrict op =
                            blk + static_cast<size_t>(2 * i + 1) *
                                      icstr;
                        double *__restrict ti =
                            o + static_cast<size_t>(i) * ostr;
                        double *__restrict thi =
                            o + static_cast<size_t>(half + i) * ostr;
                        for (int r = 0; r < bc; ++r) {
                            ti[r] = ev[r];
                            thi[r] =
                                static_cast<double>(om[r]) + op[r];
                        }
                    }
                }
            };
            if (sweep == 0)
                body(src + rb, static_cast<size_t>(batch));
            else
                body(cur, cstr);
            cur = out;
            cstr = ostr;
        }

        int level = 0;
        for (int len = n; len > 2; len /= 2)
            ++level; // level of the len = 2 secant table
        for (int len = 2; len <= n; len *= 2, --level, ++sweep) {
            const double *sec = ax.halfSec.data() + ax.levelOff[level];
            const int half = len / 2;
            double *out;
            size_t ostr;
            nextOut(out, ostr);
            const auto body = [&](const auto *in, size_t icstr) {
                for (int s0 = 0; s0 < n; s0 += len) {
                    const auto *blk =
                        in + static_cast<size_t>(s0) * icstr;
                    double *o = out + static_cast<size_t>(s0) * ostr;
                    for (int i = 0; i < half; ++i) {
                        // sweep == 0 only when n == 2 (no
                        // de-interleave sweep ran), where the halving
                        // lands here.
                        const double cx =
                            sweep == 0 && s0 == 0 && i == 0 ? fs : 1.0;
                        const auto *__restrict xi =
                            blk + static_cast<size_t>(i) * icstr;
                        const auto *__restrict yi =
                            blk + static_cast<size_t>(half + i) *
                                      icstr;
                        double *__restrict lo =
                            o + static_cast<size_t>(i) * ostr;
                        double *__restrict hi =
                            o + static_cast<size_t>(len - 1 - i) *
                                      ostr;
                        const double c = sec[i];
                        for (int r = 0; r < bc; ++r) {
                            const double x = cx * xi[r];
                            const double y = yi[r] * c;
                            lo[r] = x + y;
                            hi[r] = x - y;
                        }
                    }
                }
            };
            if (sweep == 0)
                body(src + rb, static_cast<size_t>(batch));
            else
                body(cur, cstr);
            cur = out;
            cstr = ostr;
        }
        boreas_assert(cur == dst + rb && sweep == sweeps,
                      "DCT-III sweep accounting broke (n=%d)", n);
    }
}

template <typename TDst>
void
Dct2Plan::forwardImpl(const double *field, TDst *modes)
{
    double *w = fieldScratch_.data();
    double *s = passScratch_.data();
    // Pass 1 transforms along y directly on the row-major field (y is
    // already the outer index, x the contiguous batch), so the only
    // transpose is the one between the passes.
    batchedDct2(ay_, field, w, nx_); // w[ky*nx + x]
    transposeScaled(w, ny_, nx_, 1.0, s); // s[x*ny + ky]
    batchedDct2(ax_, s, modes, ny_); // modes[kx*ny + ky]
}

template <typename TSrc>
void
Dct2Plan::inverseImpl(const TSrc *modes, double *field)
{
    double *w = fieldScratch_.data();
    double *s = passScratch_.data();
    // Mirror of forward(): undo the x pass (halving coefficient kx=0),
    // transpose back — folding in the 2/n-per-axis scale of the true
    // inverse and the ky=0 halving — then undo the y pass into field.
    batchedDct3(ax_, modes, w, ny_, true); // w[x*ny + ky]
    const double scale = 4.0 / (static_cast<double>(nx_) * ny_);
    transposeScaled(w, nx_, ny_, scale, s); // s[ky*nx + x]
    for (int x = 0; x < nx_; ++x)
        s[x] *= 0.5;
    batchedDct3(ay_, s, field, nx_, false); // field[y*nx + x]
}

void
Dct2Plan::forward(const double *field, double *modes)
{
    forwardImpl(field, modes);
}

void
Dct2Plan::forward(const double *field, float *modes)
{
    forwardImpl(field, modes);
}

void
Dct2Plan::inverse(const double *modes, double *field)
{
    inverseImpl(modes, field);
}

void
Dct2Plan::inverse(const float *modes, double *field)
{
    inverseImpl(modes, field);
}

} // namespace boreas
