/**
 * @file
 * Small statistics helpers shared by calibration, ML evaluation, and the
 * benchmark harnesses.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace boreas
{

/** Streaming mean/variance/min/max accumulator (Welford). */
class OnlineStats
{
  public:
    void add(double x);

    size_t count() const { return count_; }
    double mean() const { return mean_; }
    /** Population variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &v);

/** Linear-interpolated percentile, p in [0, 100]. */
double percentile(std::vector<double> v, double p);

/** Mean squared error between two equally-sized vectors. */
double meanSquaredError(const std::vector<double> &a,
                        const std::vector<double> &b);

} // namespace boreas
