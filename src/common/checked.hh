/**
 * @file
 * The checked invariant build (DESIGN.md §7).
 *
 * BOREAS_CHECKED builds (cmake --preset checked) turn on domain
 * invariant checks that are too expensive for every build: finite and
 * in-range temperatures after each thermal step, per-element matrix
 * index bounds, counter-range validation, monotone VF tables. Checks
 * are written as
 *
 *   if constexpr (kCheckedBuild)
 *       checkValuesInRange(...);
 *
 * or with the boreas_check() macro (common/logging.hh) so unchecked
 * builds type-check the condition but compile it away.
 */

#pragma once

#include <cstddef>

namespace boreas
{

#ifdef BOREAS_CHECKED
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/**
 * Panic unless v[0..n) are all finite and within [lo, hi]. The panic
 * message names the offending index and value.
 */
void checkValuesInRange(const double *v, size_t n, double lo, double hi,
                        const char *what);

/** Panic unless v[0..n) is monotone increasing (strictly, if asked). */
void checkMonotone(const double *v, size_t n, bool strict,
                   const char *what);

} // namespace boreas
