/**
 * @file
 * Stream-format RAII for serializers.
 *
 * Every model save() must emit doubles with max_digits10 significant
 * digits so a save→load→save round trip is byte-identical, but the
 * precision of the *caller's* stream is not ours to keep: leaving it
 * modified makes serialized output depend on what happened to run
 * earlier on the same stream (and perturbs whatever the caller prints
 * next). ScopedStreamPrecision pins the precision for the scope of one
 * save() and restores the previous setting on exit.
 */

#pragma once

#include <ios>
#include <limits>

namespace boreas
{

/** Pin a stream's floating-point precision; restore on destruction. */
class ScopedStreamPrecision
{
  public:
    explicit ScopedStreamPrecision(
        std::ios_base &stream,
        std::streamsize digits = std::numeric_limits<double>::max_digits10)
        : stream_(stream), saved_(stream.precision(digits))
    {
    }

    ~ScopedStreamPrecision() { stream_.precision(saved_); }

    ScopedStreamPrecision(const ScopedStreamPrecision &) = delete;
    ScopedStreamPrecision &operator=(const ScopedStreamPrecision &) =
        delete;

  private:
    std::ios_base &stream_;
    std::streamsize saved_;
};

} // namespace boreas
