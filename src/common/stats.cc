#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace boreas
{

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size()));
}

double
percentile(std::vector<double> v, double p)
{
    boreas_assert(!v.empty(), "percentile of empty vector");
    boreas_assert(p >= 0.0 && p <= 100.0, "percentile %f out of range", p);
    std::sort(v.begin(), v.end());
    const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double
meanSquaredError(const std::vector<double> &a, const std::vector<double> &b)
{
    boreas_assert(a.size() == b.size() && !a.empty(),
                  "MSE needs equal non-empty vectors");
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

} // namespace boreas
