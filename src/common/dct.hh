/**
 * @file
 * 2-D DCT-II plan for uniform Neumann grids (DESIGN.md §9).
 *
 * The spectral thermal solver diagonalizes the 5-point Laplacian with
 * half-sample reflective (Neumann) boundaries. The DCT-II basis
 *
 *   phi_k(i) = cos(pi k (2i + 1) / (2n))
 *
 * satisfies phi_k(-1) = phi_k(0) and phi_k(n) = phi_k(n-1), which is
 * exactly the "missing neighbor omitted" boundary rule of the explicit
 * stencil, so the transform converts the lateral coupling into a
 * per-mode multiply by -laplacianEigenvalue().
 *
 * Conventions (unnormalized DCT-II forward):
 *
 *   modes[kx*ny + ky] = sum_{x,y} field[y*nx + x]
 *                       * cos(pi kx (2x+1) / (2 nx))
 *                       * cos(pi ky (2y+1) / (2 ny))
 *
 * so mode (0,0) is the plain field sum — the quantity the lumped-sink
 * coupling needs. inverse() applies the matching scaled DCT-III so that
 * inverse(forward(f)) == f up to roundoff.
 *
 * Power-of-two axis lengths use Lee's O(n log n) split recursion,
 * flattened into iterative level sweeps that transform every row of
 * the field simultaneously (the batch dimension is contiguous, so the
 * inner loops vectorize and there is no per-row call overhead); other
 * lengths fall back to a dense cosine matrix multiply, likewise
 * batched. Instances carry scratch buffers and are NOT thread-safe;
 * give each thread (each ThermalGrid) its own plan.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace boreas
{

/** Reusable 2-D DCT-II / inverse plan for an nx x ny field. */
class Dct2Plan
{
  public:
    Dct2Plan(int nx, int ny);

    int nx() const { return nx_; }
    int ny() const { return ny_; }

    /**
     * Forward unnormalized 2-D DCT-II. `field` is row-major
     * [y*nx + x]; `modes` is written as [kx*ny + ky]. The two arrays
     * must not alias. The float overload rounds only the final store
     * (all internal arithmetic stays double) — it exists for callers
     * that keep bandwidth-bound mode-space state in single precision.
     */
    void forward(const double *field, double *modes);
    void forward(const double *field, float *modes);

    /**
     * Exact inverse of forward() (scaled DCT-III), modes -> field.
     * `modes` is left untouched; the arrays must not alias. The float
     * overload widens each coefficient on first read and computes in
     * double throughout.
     */
    void inverse(const double *modes, double *field);
    void inverse(const float *modes, double *field);

    /**
     * Eigenvalue lam(k) = 2 - 2 cos(pi k / n) of the *negated* 1-D
     * Neumann second difference: applying the stencil
     * sum_neighbors (f_j - f_i) to phi_k multiplies it by -lam(k).
     */
    static double laplacianEigenvalue(int k, int n);

  private:
    /** Per-axis transform data (Lee tables or dense fallback). */
    struct Axis
    {
        int n = 0;
        bool pow2 = false;
        /** 0.5 / cos((i+0.5) pi / len) per recursion level, flat. */
        std::vector<double> halfSec;
        /** Offset of each level's table in halfSec (len = n >> level). */
        std::vector<size_t> levelOff;
        /** Dense fallback, forward: [k*n + i] = cos(pi k (2i+1)/(2n)). */
        std::vector<double> fwdMat;
        /** Dense fallback, inverse: [i*n + k]; k = 0 column pre-halved. */
        std::vector<double> invMat;
    };

    static Axis makeAxis(int n);

    /**
     * Unnormalized DCT-II along the outer (position) index of `src`, a
     * [ax.n x batch] array with the batch index contiguous, written to
     * `dst` (must not alias `src`). Level sweeps ping-pong through the
     * padded internal buffers; the final sweep lands in `dst`,
     * narrowing only on that last store when TDst is float.
     */
    template <typename TDst>
    void batchedDct2(const Axis &ax, const double *src, TDst *dst,
                     int batch);
    /**
     * Batched DCT-III counterpart (inverse direction, unscaled). With
     * `halve_first` the position-0 input row is read pre-halved, which
     * is the coefficient-0 halving the true inverse needs per axis.
     * When TSrc is float each input is widened on its first read.
     */
    template <typename TSrc>
    void batchedDct3(const Axis &ax, const TSrc *src, double *dst,
                     int batch, bool halve_first);

    template <typename TDst>
    void forwardImpl(const double *field, TDst *modes);
    template <typename TSrc>
    void inverseImpl(const TSrc *modes, double *field);

    int nx_;
    int ny_;
    Axis ax_;
    Axis ay_;
    std::vector<double> passScratch_; ///< transpose staging buffer
    std::vector<double> fieldScratch_;///< first-pass result buffer
    std::vector<double> pingPad_;     ///< padded-stride sweep buffer A
    std::vector<double> pongPad_;     ///< padded-stride sweep buffer B
};

} // namespace boreas
