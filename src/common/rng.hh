/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the pipeline (workload phase noise, k-means
 * initialization, CV shuffling) draws from an explicitly-seeded Rng so that
 * all experiments are bit-reproducible. The generator is xoshiro256**
 * seeded via SplitMix64, which is fast and has no observable bias for the
 * statistical uses in this project.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace boreas
{

/**
 * Complete serialized state of an Rng: the xoshiro256** words plus the
 * Box-Muller spare. Capturing and restoring it reproduces the exact
 * draw stream from that point — the mechanism trace replay uses to
 * re-synchronize a noise stream without re-running the generator-side
 * draws that live runs interleave (workload/trace_io.hh).
 */
struct RngState
{
    uint64_t s[4] = {0, 0, 0, 0};
    double spare = 0.0;
    bool haveSpare = false;

    bool
    operator==(const RngState &o) const
    {
        return s[0] == o.s[0] && s[1] == o.s[1] && s[2] == o.s[2] &&
            s[3] == o.s[3] && spare == o.spare &&
            haveSpare == o.haveSpare;
    }
};

/** Deterministic xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal variate (Box-Muller, cached spare). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Derive an independent child generator. Used to give each
     * (workload, frequency, segment) tuple its own stream so runs do not
     * perturb each other.
     */
    Rng fork(uint64_t salt);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<int> &v);

    /** Snapshot the full generator state (bitwise). */
    RngState saveState() const;

    /** Restore a snapshot taken with saveState(). */
    void restoreState(const RngState &state);

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace boreas
