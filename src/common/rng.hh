/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the pipeline (workload phase noise, k-means
 * initialization, CV shuffling) draws from an explicitly-seeded Rng so that
 * all experiments are bit-reproducible. The generator is xoshiro256**
 * seeded via SplitMix64, which is fast and has no observable bias for the
 * statistical uses in this project.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace boreas
{

/** Deterministic xoshiro256** PRNG with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal variate (Box-Muller, cached spare). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Derive an independent child generator. Used to give each
     * (workload, frequency, segment) tuple its own stream so runs do not
     * perturb each other.
     */
    Rng fork(uint64_t salt);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<int> &v);

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace boreas
