#include "common/checked.hh"

#include <cmath>

#include "common/logging.hh"

namespace boreas
{

void
checkValuesInRange(const double *v, size_t n, double lo, double hi,
                   const char *what)
{
    for (size_t i = 0; i < n; ++i) {
        if (!std::isfinite(v[i]) || v[i] < lo || v[i] > hi) {
            boreas_panic("%s[%zu] = %g outside [%g, %g] "
                         "(checked-build invariant)", what, i, v[i],
                         lo, hi);
        }
    }
}

void
checkMonotone(const double *v, size_t n, bool strict, const char *what)
{
    for (size_t i = 0; i + 1 < n; ++i) {
        const bool ok = strict ? v[i] < v[i + 1] : v[i] <= v[i + 1];
        if (!ok) {
            boreas_panic("%s not monotone at [%zu]: %g then %g "
                         "(checked-build invariant)", what, i, v[i],
                         v[i + 1]);
        }
    }
}

} // namespace boreas
