#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace boreas
{

namespace
{

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    boreas_assert(lo <= hi, "bad range [%d, %d]", lo, hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

Rng
Rng::fork(uint64_t salt)
{
    // Mix the salt with fresh output so children with different salts are
    // decorrelated even when forked from the same parent state.
    uint64_t mix = next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0xda3e39cb94b95bdbULL);
    return Rng(mix);
}

void
Rng::shuffle(std::vector<int> &v)
{
    for (size_t i = v.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(
            uniformInt(0, static_cast<int>(i) - 1));
        std::swap(v[i - 1], v[j]);
    }
}

RngState
Rng::saveState() const
{
    RngState st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.spare = spare_;
    st.haveSpare = haveSpare_;
    return st;
}

void
Rng::restoreState(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = state.s[i];
    spare_ = state.spare;
    haveSpare_ = state.haveSpare;
}

} // namespace boreas
