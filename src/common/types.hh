/**
 * @file
 * Fundamental unit types and physical constants shared across Boreas.
 *
 * All quantities are carried in SI-ish engineering units chosen for the
 * thermal/DVFS domain: seconds, watts, degrees Celsius, GHz and volts.
 * Aliases are plain doubles (not strong types) to keep the numeric kernels
 * simple; names exist to make interfaces self-documenting.
 */

#pragma once

#include <cstdint>

namespace boreas
{

/** Time in seconds. */
using Seconds = double;
/** Temperature in degrees Celsius. */
using Celsius = double;
/** Power in watts. */
using Watts = double;
/** Energy in joules. */
using Joules = double;
/** Clock frequency in GHz. */
using GHz = double;
/** Supply voltage in volts. */
using Volts = double;
/** Length in meters. */
using Meters = double;

/** Telemetry/thermal simulation step used throughout the paper: 80 us. */
constexpr Seconds kTelemetryStep = 80e-6;

/** Controller decision period: 12 telemetry steps = 960 us (~1 ms). */
constexpr int kStepsPerDecision = 12;
constexpr Seconds kDecisionPeriod = kTelemetryStep * kStepsPerDecision;

/** Length of one full application trace: 150 steps = 12 ms (Fig. 8). */
constexpr int kTraceSteps = 150;

/** Ambient / reference temperature for the thermal stack. */
constexpr Celsius kAmbient = 45.0;

/** DVFS step granularity (Sec. III-A): 250 MHz. */
constexpr GHz kFrequencyStep = 0.25;
constexpr GHz kMinFrequency = 2.0;
constexpr GHz kMaxFrequency = 5.0;

/** Baseline globally-safe frequency (Sec. III-C / Fig. 7). */
constexpr GHz kBaselineFrequency = 3.75;

} // namespace boreas
