/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (a Boreas bug): it aborts.
 * fatal() is for user-caused conditions (bad configuration): it exits(1).
 * warn()/inform() print status without stopping the run.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace boreas
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace boreas

/** Abort on an internal invariant violation (simulator bug). */
#define boreas_panic(...) \
    ::boreas::panicImpl(__FILE__, __LINE__, ::boreas::strfmt(__VA_ARGS__))

/** Exit with an error on a user-caused condition (bad config/arguments). */
#define boreas_fatal(...) \
    ::boreas::fatalImpl(__FILE__, __LINE__, ::boreas::strfmt(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define boreas_warn(...) \
    ::boreas::warnImpl(::boreas::strfmt(__VA_ARGS__))

/** Informational status message to stdout. */
#define boreas_inform(...) \
    ::boreas::informImpl(::boreas::strfmt(__VA_ARGS__))

/** Cheap always-on invariant check that panics with context. */
#define boreas_assert(cond, ...) \
    do { \
        if (!(cond)) \
            boreas_panic("assertion failed: %s: %s", #cond, \
                         ::boreas::strfmt(__VA_ARGS__).c_str()); \
    } while (0)

/**
 * Domain invariant check active only in BOREAS_CHECKED builds
 * (DESIGN.md §7; see also common/checked.hh). Use for checks too hot
 * or too heavy for boreas_assert — per-element index bounds, full
 * state scans. The condition still type-checks (unevaluated) in
 * unchecked builds, so checked-only code cannot rot.
 */
#ifdef BOREAS_CHECKED
#define boreas_check(cond, ...) boreas_assert(cond, __VA_ARGS__)
#else
#define boreas_check(cond, ...) \
    do { \
        (void)sizeof((cond) ? 1 : 0); \
    } while (0)
#endif
