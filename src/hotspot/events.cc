#include "hotspot/events.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace boreas
{

HotspotDetector::HotspotDetector(double threshold, double arm_level)
    : threshold_(threshold), armLevel_(arm_level)
{
    boreas_assert(arm_level < threshold && arm_level > 0.0,
                  "arm level %.3f must lie below the threshold %.3f",
                  arm_level, threshold);
}

void
HotspotDetector::observe(const SeveritySnapshot &snap,
                         Seconds step_length)
{
    const Seconds now = step_ * step_length;
    const double sev = snap.maxSeverity;

    if (!inEvent_) {
        if (!armed_ && sev >= armLevel_) {
            armed_ = true;
            // The trace may begin already above the arm level; mark
            // that with a sentinel start time so onset reads negative.
            armTime_ = step_ == 0 ? -1.0 : now;
        } else if (armed_ && sev < armLevel_) {
            armed_ = false;
        }
        if (sev >= threshold_) {
            inEvent_ = true;
            current_ = HotspotEvent{};
            current_.startStep = step_;
            current_.onset = armed_ && armTime_ >= 0.0
                ? now - armTime_ : -1.0;
        }
    }

    if (inEvent_) {
        if (sev >= current_.peakSeverity) {
            current_.peakSeverity = sev;
            current_.peakCell = snap.argmaxCell;
            current_.peakTemp = snap.tempAtMax;
            current_.peakMltd = snap.mltdAtMax;
        }
        // Exit with hysteresis: the event ends when severity falls
        // back below the arm level.
        if (sev < armLevel_) {
            current_.endStep = step_;
            closeEvent();
        }
    }
    ++step_;
}

void
HotspotDetector::finish()
{
    if (inEvent_) {
        current_.endStep = step_;
        closeEvent();
    }
}

void
HotspotDetector::closeEvent()
{
    events_.push_back(current_);
    inEvent_ = false;
    armed_ = false;
}

int
HotspotDetector::totalEventSteps() const
{
    int total = 0;
    for (const auto &e : events_)
        total += e.durationSteps();
    return total;
}

Seconds
HotspotDetector::fastestOnset() const
{
    Seconds best = std::numeric_limits<Seconds>::infinity();
    for (const auto &e : events_)
        if (e.onset >= 0.0)
            best = std::min(best, e.onset);
    return best;
}

void
HotspotDetector::reset()
{
    step_ = 0;
    armed_ = false;
    armTime_ = 0.0;
    inEvent_ = false;
    events_.clear();
}

std::vector<HotspotEvent>
extractHotspotEvents(const std::vector<SeveritySnapshot> &steps,
                     double threshold, double arm_level,
                     Seconds step_length)
{
    HotspotDetector detector(threshold, arm_level);
    for (const auto &snap : steps)
        detector.observe(snap, step_length);
    detector.finish();
    return detector.events();
}

} // namespace boreas
