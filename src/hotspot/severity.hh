/**
 * @file
 * Hotspot metrics from HotGauge: MLTD and Hotspot-Severity.
 *
 * MLTD (Maximum Local Temperature Difference) at a location is the
 * largest temperature drop from that location to any point within a
 * fixed radius: hot logic next to cold logic stresses clock-timing
 * margins even when the absolute temperature is acceptable.
 *
 * Hotspot-Severity combines absolute temperature and MLTD into a single
 * value in [0, ~), where 1.0 means the chip is in immediate danger
 * (device damage or timing failure). Per Fig. 1 of the paper, severity
 * is exactly 1.0 at:
 *     (T = 115 C, MLTD =  0 C)   -- uniformly critical-hot chip
 *     (T =  95 C, MLTD = 20 C)   -- intermediate
 *     (T =  80 C, MLTD = 40 C)   -- advanced hotspot
 * We implement this as a piecewise-linear critical-temperature curve
 * T_crit(MLTD) through those anchors and define
 *     severity(T, M) = (T - T_ref) / (T_crit(M) - T_ref),  T_ref = 45 C.
 */

#pragma once

#include <vector>

#include "common/types.hh"

namespace boreas
{

/** Tunable anchors of the severity metric (defaults = paper Fig. 1). */
struct SeverityParams
{
    Celsius tRef = 45.0;          ///< reference (cool) temperature
    Celsius tCritUniform = 115.0; ///< T_crit at MLTD = 0
    Celsius tCritMid = 95.0;      ///< T_crit at MLTD = mltdMid
    Celsius tCritHigh = 80.0;     ///< T_crit at MLTD = mltdHigh
    Celsius mltdMid = 20.0;
    Celsius mltdHigh = 40.0;
    Celsius tCritFloor = 55.0;    ///< clamp for extreme MLTD
    Meters mltdRadius = 1.0e-3;   ///< neighborhood radius for MLTD
};

/** Peak-severity evaluation of one thermal snapshot. */
struct SeveritySnapshot
{
    double maxSeverity = 0.0;
    int argmaxCell = -1;       ///< flat cell index of the peak
    Celsius tempAtMax = 0.0;   ///< temperature at the peak cell
    Celsius mltdAtMax = 0.0;   ///< MLTD at the peak cell
    Celsius maxTemp = 0.0;     ///< chip-wide max temperature
    Celsius maxMltd = 0.0;     ///< chip-wide max MLTD
};

/** The Hotspot-Severity metric. */
class SeverityModel
{
  public:
    explicit SeverityModel(const SeverityParams &params = {});

    const SeverityParams &params() const { return params_; }

    /** Critical temperature as a function of MLTD (piecewise linear). */
    Celsius criticalTemp(Celsius mltd) const;

    /** Severity of a (temperature, MLTD) pair; >= 0, 1.0 = critical. */
    double severity(Celsius temp, Celsius mltd) const;

    /**
     * MLTD field of a temperature grid: per cell, the drop from the cell
     * to the coolest cell within the radius. Computed with a separable
     * sliding-window minimum (square window approximating the disk),
     * O(cells) regardless of radius.
     */
    std::vector<Celsius> mltdField(const std::vector<Celsius> &temps,
                                   int nx, int ny,
                                   Meters cell_size) const;

    /**
     * Evaluate the snapshot metrics of a temperature grid.
     *
     * @param per_cell optional out-param: per-cell severity field
     */
    SeveritySnapshot evaluate(const std::vector<Celsius> &temps,
                              int nx, int ny, Meters cell_size,
                              std::vector<double> *per_cell =
                                  nullptr) const;

  private:
    SeverityParams params_;
};

} // namespace boreas
