#include "hotspot/severity.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.hh"

namespace boreas
{

SeverityModel::SeverityModel(const SeverityParams &params)
    : params_(params)
{
    boreas_assert(params_.tCritUniform > params_.tCritMid &&
                  params_.tCritMid > params_.tCritHigh &&
                  params_.tCritHigh > params_.tCritFloor,
                  "severity anchors must be decreasing");
    boreas_assert(params_.mltdHigh > params_.mltdMid &&
                  params_.mltdMid > 0.0, "bad MLTD anchors");
    boreas_assert(params_.tRef < params_.tCritFloor,
                  "tRef must be below the critical floor");
}

Celsius
SeverityModel::criticalTemp(Celsius mltd) const
{
    const SeverityParams &p = params_;
    double t_crit;
    if (mltd <= 0.0) {
        t_crit = p.tCritUniform;
    } else if (mltd <= p.mltdMid) {
        const double slope = (p.tCritMid - p.tCritUniform) / p.mltdMid;
        t_crit = p.tCritUniform + slope * mltd;
    } else if (mltd <= p.mltdHigh) {
        const double slope = (p.tCritHigh - p.tCritMid) /
            (p.mltdHigh - p.mltdMid);
        t_crit = p.tCritMid + slope * (mltd - p.mltdMid);
    } else {
        // Extrapolate with the last segment's slope, clamped to the
        // physical floor.
        const double slope = (p.tCritHigh - p.tCritMid) /
            (p.mltdHigh - p.mltdMid);
        t_crit = p.tCritHigh + slope * (mltd - p.mltdHigh);
    }
    return std::max(t_crit, p.tCritFloor);
}

double
SeverityModel::severity(Celsius temp, Celsius mltd) const
{
    const double denom = criticalTemp(mltd) - params_.tRef;
    const double sev = (temp - params_.tRef) / denom;
    return std::max(0.0, sev);
}

namespace
{

/**
 * 1-D sliding-window minimum over each row of a grid (monotonic deque),
 * window of half-width w. src and dst must differ.
 */
void
slidingMinRows(const std::vector<double> &src, std::vector<double> &dst,
               int nx, int ny, int w)
{
    std::deque<int> dq;
    for (int y = 0; y < ny; ++y) {
        const int row = y * nx;
        dq.clear();
        // Prime the deque with the first window's head.
        for (int x = 0; x < std::min(w, nx - 1) + 1; ++x) {
            while (!dq.empty() && src[row + dq.back()] >= src[row + x])
                dq.pop_back();
            dq.push_back(x);
        }
        for (int x = 0; x < nx; ++x) {
            // Extend the window's right edge (x = 0 was primed above).
            const int incoming = x + w;
            if (x > 0 && incoming < nx) {
                while (!dq.empty() &&
                       src[row + dq.back()] >= src[row + incoming])
                    dq.pop_back();
                dq.push_back(incoming);
            }
            // Drop indices that left the window on the left.
            while (!dq.empty() && dq.front() < x - w)
                dq.pop_front();
            dst[row + x] = src[row + dq.front()];
        }
    }
}

/** Column-direction counterpart of slidingMinRows. */
void
slidingMinCols(const std::vector<double> &src, std::vector<double> &dst,
               int nx, int ny, int w)
{
    std::deque<int> dq;
    for (int x = 0; x < nx; ++x) {
        dq.clear();
        for (int y = 0; y < std::min(w, ny - 1) + 1; ++y) {
            while (!dq.empty() &&
                   src[dq.back() * nx + x] >= src[y * nx + x])
                dq.pop_back();
            dq.push_back(y);
        }
        for (int y = 0; y < ny; ++y) {
            const int incoming = y + w;
            if (y > 0 && incoming < ny) {
                while (!dq.empty() &&
                       src[dq.back() * nx + x] >= src[incoming * nx + x])
                    dq.pop_back();
                dq.push_back(incoming);
            }
            while (!dq.empty() && dq.front() < y - w)
                dq.pop_front();
            dst[y * nx + x] = src[dq.front() * nx + x];
        }
    }
}

} // namespace

std::vector<Celsius>
SeverityModel::mltdField(const std::vector<Celsius> &temps, int nx, int ny,
                         Meters cell_size) const
{
    boreas_assert(static_cast<int>(temps.size()) == nx * ny,
                  "temps size %zu != %dx%d", temps.size(), nx, ny);
    const int w = std::max(
        1, static_cast<int>(std::lround(params_.mltdRadius / cell_size)));

    std::vector<double> row_min(temps.size());
    std::vector<double> window_min(temps.size());
    slidingMinRows(temps, row_min, nx, ny, w);
    slidingMinCols(row_min, window_min, nx, ny, w);

    std::vector<Celsius> mltd(temps.size());
    for (size_t i = 0; i < temps.size(); ++i)
        mltd[i] = temps[i] - window_min[i];
    return mltd;
}

SeveritySnapshot
SeverityModel::evaluate(const std::vector<Celsius> &temps, int nx, int ny,
                        Meters cell_size,
                        std::vector<double> *per_cell) const
{
    const std::vector<Celsius> mltd = mltdField(temps, nx, ny, cell_size);

    SeveritySnapshot snap;
    if (per_cell)
        per_cell->resize(temps.size());
    for (size_t i = 0; i < temps.size(); ++i) {
        const double sev = severity(temps[i], mltd[i]);
        if (per_cell)
            (*per_cell)[i] = sev;
        if (sev > snap.maxSeverity || snap.argmaxCell < 0) {
            snap.maxSeverity = sev;
            snap.argmaxCell = static_cast<int>(i);
            snap.tempAtMax = temps[i];
            snap.mltdAtMax = mltd[i];
        }
        snap.maxTemp = std::max(snap.maxTemp, temps[i]);
        snap.maxMltd = std::max(snap.maxMltd, mltd[i]);
    }
    return snap;
}

} // namespace boreas
