/**
 * @file
 * Hotspot event extraction (the characterization role HotGauge plays in
 * Sec. II-B: "automatically classifying and detecting hotspots").
 *
 * A hotspot *event* is a contiguous interval during which the chip's
 * max Hotspot-Severity stays at or above a threshold (1.0 by default).
 * The detector also measures each event's *onset time* — how long the
 * severity took to climb from an arming level (0.8 by default) to the
 * threshold — which is the quantitative form of the paper's core
 * motivation: advanced hotspots form faster than sensor+DVFS loops can
 * react. Exit uses the arming level as hysteresis so severity jitter
 * around the threshold does not fragment one physical event into many.
 */

#pragma once

#include <vector>

#include "common/types.hh"
#include "hotspot/severity.hh"

namespace boreas
{

/** One detected hotspot event. */
struct HotspotEvent
{
    int startStep = 0;        ///< first step at/above the threshold
    int endStep = 0;          ///< first step back below the arm level
    double peakSeverity = 0.0;
    int peakCell = -1;        ///< cell index at the severity peak
    Celsius peakTemp = 0.0;   ///< temperature at the peak step
    Celsius peakMltd = 0.0;   ///< MLTD at the peak step
    /**
     * Seconds from arming (severity crossing the arm level) to the
     * threshold crossing; negative if the trace started already armed.
     */
    Seconds onset = 0.0;

    int durationSteps() const { return endStep - startStep; }
};

/** Streaming hotspot-event detector over per-step severity snapshots. */
class HotspotDetector
{
  public:
    /**
     * @param threshold severity level defining an event (paper: 1.0)
     * @param arm_level hysteresis/onset-reference level (< threshold)
     */
    explicit HotspotDetector(double threshold = 1.0,
                             double arm_level = 0.8);

    double threshold() const { return threshold_; }
    double armLevel() const { return armLevel_; }

    /** Feed one telemetry step's snapshot (call in step order). */
    void observe(const SeveritySnapshot &snap,
                 Seconds step_length = kTelemetryStep);

    /** Close any open event (call once after the last step). */
    void finish();

    /** Events detected so far (closed events only until finish()). */
    const std::vector<HotspotEvent> &events() const { return events_; }

    /** Total steps covered by detected events (onset tail included:
     *  an event ends when severity falls below the arm level, so this
     *  is >= the strict count of steps at/above the threshold). */
    int totalEventSteps() const;

    /** Fastest onset across events; +inf if no event had one. */
    Seconds fastestOnset() const;

    /** Reset to a fresh trace. */
    void reset();

  private:
    void closeEvent();

    double threshold_;
    double armLevel_;

    int step_ = 0;
    bool armed_ = false;
    Seconds armTime_ = 0.0;
    bool inEvent_ = false;
    HotspotEvent current_;
    std::vector<HotspotEvent> events_;
};

/** Convenience: extract events from a full run's snapshots. */
std::vector<HotspotEvent> extractHotspotEvents(
    const std::vector<SeveritySnapshot> &steps,
    double threshold = 1.0, double arm_level = 0.8,
    Seconds step_length = kTelemetryStep);

} // namespace boreas
