#include "thermal/thermal_grid.hh"

#include <algorithm>
#include <cmath>

#include "common/checked.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "thermal/spectral_solver.hh"
#include "thermal/surrogate.hh"

namespace
{

// Checked-build sanity range for any node temperature, generous
// enough for deliberately-unstable test configs yet tight enough to
// catch an exploding explicit integration or uninitialized state.
constexpr double kMinSaneTemp = -100.0;
constexpr double kMaxSaneTemp = 2000.0;

} // namespace

namespace boreas
{

namespace
{

/**
 * One interior stencil row (all four neighbors exist): branch-free,
 * restrict-qualified, and kept a free function so the compiler can
 * prove independence and vectorize it. The floating-point operation
 * order matches the reference branchy formulation term for term, so
 * the fast path changes speed only, never results.
 */
void
updateInteriorRow(const double *__restrict tsi_v,
                  const double *__restrict tsp_v,
                  double *__restrict nsi_v, double *__restrict nsp_v,
                  const double *__restrict pc_v, int row, int nx,
                  double g_si, double g_sp, double g_v, double g_sink,
                  double tsink, double inv_csi, double inv_csp)
{
    for (int i = row + 1; i < row + nx - 1; ++i) {
        const double tsi = tsi_v[i];
        const double tsp = tsp_v[i];

        double flux = pc_v[i] + g_v * (tsp - tsi);
        flux += g_si * (tsi_v[i - 1] - tsi);
        flux += g_si * (tsi_v[i + 1] - tsi);
        flux += g_si * (tsi_v[i - nx] - tsi);
        flux += g_si * (tsi_v[i + nx] - tsi);
        nsi_v[i] = tsi + inv_csi * flux;

        double fsp = g_v * (tsi - tsp) + g_sink * (tsink - tsp);
        fsp += g_sp * (tsp_v[i - 1] - tsp);
        fsp += g_sp * (tsp_v[i + 1] - tsp);
        fsp += g_sp * (tsp_v[i - nx] - tsp);
        fsp += g_sp * (tsp_v[i + nx] - tsp);
        nsp_v[i] = tsp + inv_csp * fsp;
    }
}

} // namespace

const char *
thermalSolverName(ThermalSolverKind kind)
{
    switch (kind) {
    case ThermalSolverKind::Spectral:
        return "spectral";
    case ThermalSolverKind::Surrogate:
        return "surrogate";
    case ThermalSolverKind::Explicit:
        break;
    }
    return "explicit";
}

ThermalSolverKind
parseThermalSolverName(const std::string &name)
{
    if (name == "explicit")
        return ThermalSolverKind::Explicit;
    if (name == "spectral")
        return ThermalSolverKind::Spectral;
    if (name == "surrogate")
        return ThermalSolverKind::Surrogate;
    boreas_fatal("unknown thermal solver '%s' "
                 "(want explicit|spectral|surrogate)", name.c_str());
}

ThermalGrid::ThermalGrid(const Floorplan &floorplan,
                         const ThermalParams &params)
    : floorplan_(&floorplan), params_(params)
{
    boreas_assert(params_.nx >= 4 && params_.ny >= 4,
                  "grid too small: %dx%d", params_.nx, params_.ny);
    unitMaps_ = floorplan_->rasterize(params_.nx, params_.ny);
    computeConstants();
    reset(params_.ambient);
    pCell_.assign(numCells(), 0.0);

    if (params_.solver == ThermalSolverKind::Spectral)
        spectral_ =
            std::make_unique<SpectralThermalSolver>(spectralNetwork());
}

SpectralNetwork
ThermalGrid::spectralNetwork() const
{
    SpectralNetwork net;
    net.nx = params_.nx;
    net.ny = params_.ny;
    net.gLatSi = gLatSi_;
    net.gLatSp = gLatSp_;
    net.gVert = gVert_;
    net.gSinkCell = gSinkCell_;
    net.cSi = cSi_;
    net.cSp = cSp_;
    net.sinkCapacitance = params_.sinkCapacitance;
    net.sinkAmbientResistance = params_.sinkAmbientResistance;
    net.ambient = params_.ambient;
    return net;
}

ThermalGrid::~ThermalGrid() = default;

const char *
ThermalGrid::solverTimerName() const
{
    switch (params_.solver) {
    case ThermalSolverKind::Spectral:
        return "stage.thermal.spectral";
    case ThermalSolverKind::Surrogate:
        return "stage.thermal.surrogate";
    case ThermalSolverKind::Explicit:
        break;
    }
    return "stage.thermal.explicit";
}

void
ThermalGrid::setSurrogate(ThermalSurrogate *surrogate)
{
    boreas_assert(params_.solver == ThermalSolverKind::Surrogate,
                  "setSurrogate() on a grid running the %s solver",
                  thermalSolverName(params_.solver));
    surrogate_ = surrogate;
}

void
ThermalGrid::computeConstants()
{
    const Meters cw = floorplan_->dieWidth() / params_.nx;
    const Meters ch = floorplan_->dieHeight() / params_.ny;
    boreas_assert(std::fabs(cw - ch) / cw < 0.05,
                  "thermal grid cells should be near-square");
    const double cell_area = cw * ch;

    // Lateral conductance between adjacent square cells of a sheet with
    // conductivity k and thickness t is G = k * t (the cell length and
    // width cancel).
    gLatSi_ = params_.siConductivity * params_.siThickness;
    gLatSp_ = params_.cuConductivity * params_.spreaderThickness;

    // Vertical: silicon half-thickness + TIM + spreader half-thickness
    // in series, per cell area.
    const double r_si = 0.5 * params_.siThickness /
        (params_.siConductivity * cell_area);
    const double r_tim = params_.timThickness /
        (params_.timConductivity * cell_area);
    const double r_sp = 0.5 * params_.spreaderThickness /
        (params_.cuConductivity * cell_area);
    gVert_ = 1.0 / (r_si + r_tim + r_sp);

    gSinkCell_ = 1.0 /
        (params_.sinkSpreadResistance * numCells());

    cSi_ = params_.siVolHeatCap * cell_area * params_.siThickness;
    cSp_ = params_.cuVolHeatCap * cell_area * params_.spreaderThickness;

    // Explicit-integration stability: dt < C / sum(G) per node; take the
    // tightest bound over node types and apply the safety factor.
    const double gsi = 4.0 * gLatSi_ + gVert_;
    const double gsp = 4.0 * gLatSp_ + gVert_ + gSinkCell_;
    const double dt_si = cSi_ / gsi;
    const double dt_sp = cSp_ / gsp;
    dtMax_ = params_.dtSafety * std::min(dt_si, dt_sp);
    boreas_assert(dtMax_ > 0.0, "bad stability bound");
}

void
ThermalGrid::reset(Celsius uniform)
{
    tSi_.assign(numCells(), uniform);
    tSp_.assign(numCells(), uniform);
    tSink_ = uniform;
    newSi_.assign(numCells(), 0.0);
    newSp_.assign(numCells(), 0.0);
    siValid_ = true;
    spValid_ = true;
    modesValid_ = false;
    stepped_ = false;
}

void
ThermalGrid::setUnitPower(const std::vector<Watts> &unit_power)
{
    boreas_assert(unit_power.size() == floorplan_->numUnits(),
                  "unit power size %zu != %zu units",
                  unit_power.size(), floorplan_->numUnits());
    if constexpr (kCheckedBuild) {
        // Negative or non-finite injected power silently corrupts the
        // whole downstream telemetry -> GBT -> DVFS chain.
        checkValuesInRange(unit_power.data(), unit_power.size(), 0.0,
                           1e6, "unit power");
    }
    // Controllers frequently hold power constant across intervals; an
    // input identical to the previous call would reproduce pCell_ (and
    // the spectral power transform) bit for bit, so skip the rescatter.
    if (!unitPowerCache_.empty() && unit_power == unitPowerCache_)
        return;
    unitPowerCache_ = unit_power;

    std::fill(pCell_.begin(), pCell_.end(), 0.0);
    for (size_t u = 0; u < unit_power.size(); ++u) {
        const UnitCellMap &map = unitMaps_[u];
        const Watts p = unit_power[u];
        for (size_t k = 0; k < map.cells.size(); ++k)
            pCell_[map.cells[k]] += p * map.fractions[k];
    }

    if (spectral_ != nullptr) {
        obs::ScopedTimer timer("stage.thermal.ingest");
        spectral_->setPower(pCell_);
    }
}

void
ThermalGrid::rebuildStepPlan(Seconds dt)
{
    plan_.dt = dt;
    plan_.substeps = std::max(
        1, static_cast<int>(std::ceil(dt / dtMax_)));
    plan_.h = dt / plan_.substeps;
    plan_.invCsi = plan_.h / cSi_;
    plan_.invCsp = plan_.h / cSp_;
    plan_.hOverCsink = plan_.h / params_.sinkCapacitance;
}

void
ThermalGrid::step(Seconds dt)
{
    boreas_assert(dt > 0.0, "bad dt");
    // The pipeline steps one fixed dt between resets — that is the
    // pattern the per-dt plan caches (explicit substep constants,
    // spectral exponential coefficients) assume. A mid-run change is
    // legal but suspicious; flag it where checks are on.
    boreas_check(!stepped_ || dt == plan_.dt,
                 "thermal dt changed mid-run: %g -> %g", plan_.dt, dt);
    if (dt != plan_.dt)
        rebuildStepPlan(dt);

    switch (params_.solver) {
    case ThermalSolverKind::Explicit:
        explicitAdvance(tSi_, tSp_, tSink_, dt);
        break;
    case ThermalSolverKind::Spectral:
        spectralStep(dt);
        break;
    case ThermalSolverKind::Surrogate:
        boreas_assert(surrogate_ != nullptr,
                      "surrogate solver selected but none attached");
        surrogate_->step(pCell_, dt, tSi_, tSp_, tSink_);
        break;
    }
    stepped_ = true;

    if constexpr (kCheckedBuild) {
        ensureSiliconCurrent();
        ensureSpreaderCurrent();
        checkValuesInRange(tSi_.data(), tSi_.size(), kMinSaneTemp,
                           kMaxSaneTemp, "silicon temperature");
        checkValuesInRange(tSp_.data(), tSp_.size(), kMinSaneTemp,
                           kMaxSaneTemp, "spreader temperature");
        checkValuesInRange(&tSink_, 1, kMinSaneTemp, kMaxSaneTemp,
                           "sink temperature");
    }
}

void
ThermalGrid::explicitAdvance(std::vector<double> &si,
                             std::vector<double> &sp, double &sink,
                             Seconds dt)
{
    boreas_assert(dt == plan_.dt, "step plan out of date");
    const int substeps = plan_.substeps;
    const double h = plan_.h;

    const int nx = params_.nx;
    const int ny = params_.ny;
    const int n = nx * ny;
    const double inv_csi = plan_.invCsi;
    const double inv_csp = plan_.invCsp;
    const double g_si = gLatSi_;
    const double g_sp = gLatSp_;
    const double g_v = gVert_;
    const double g_sink = gSinkCell_;
    (void)h;

    // The loops below preserve the exact per-node floating-point
    // operation order of the reference (branchy) formulation, so the
    // split changes speed only, never results.
    for (int s = 0; s < substeps; ++s) {
        const double *__restrict tsi_v = si.data();
        const double *__restrict tsp_v = sp.data();
        double *__restrict nsi_v = newSi_.data();
        double *__restrict nsp_v = newSp_.data();
        const double *__restrict pc_v = pCell_.data();
        const double tsink = sink;

        // Boundary cells keep the reference branch structure.
        auto edge_cell = [&](int x, int y, int i) {
            const double tsi = tsi_v[i];
            const double tsp = tsp_v[i];

            double flux = pc_v[i] + g_v * (tsp - tsi);
            if (x > 0)
                flux += g_si * (tsi_v[i - 1] - tsi);
            if (x < nx - 1)
                flux += g_si * (tsi_v[i + 1] - tsi);
            if (y > 0)
                flux += g_si * (tsi_v[i - nx] - tsi);
            if (y < ny - 1)
                flux += g_si * (tsi_v[i + nx] - tsi);
            nsi_v[i] = tsi + inv_csi * flux;

            double fsp = g_v * (tsi - tsp) + g_sink * (tsink - tsp);
            if (x > 0)
                fsp += g_sp * (tsp_v[i - 1] - tsp);
            if (x < nx - 1)
                fsp += g_sp * (tsp_v[i + 1] - tsp);
            if (y > 0)
                fsp += g_sp * (tsp_v[i - nx] - tsp);
            if (y < ny - 1)
                fsp += g_sp * (tsp_v[i + nx] - tsp);
            nsp_v[i] = tsp + inv_csp * fsp;
        };

        for (int x = 0; x < nx; ++x)
            edge_cell(x, 0, x);

        for (int y = 1; y < ny - 1; ++y) {
            const int row = y * nx;
            edge_cell(0, y, row);
            updateInteriorRow(tsi_v, tsp_v, nsi_v, nsp_v, pc_v, row,
                              nx, g_si, g_sp, g_v, g_sink, tsink,
                              inv_csi, inv_csp);
            edge_cell(nx - 1, y, row + nx - 1);
        }

        const int last_row = (ny - 1) * nx;
        for (int x = 0; x < nx; ++x)
            edge_cell(x, ny - 1, last_row + x);

        // Sink update: same row-major accumulation order as the
        // reference interleaved loop.
        double sink_flux = 0.0;
        for (int i = 0; i < n; ++i)
            sink_flux += g_sink * (tsp_v[i] - tsink);
        sink_flux += (params_.ambient - sink) /
            params_.sinkAmbientResistance;
        sink += plan_.hOverCsink * sink_flux;

        si.swap(newSi_);
        sp.swap(newSp_);
    }
}

void
ThermalGrid::spectralStep(Seconds dt)
{
    bool shadow = false;
    if constexpr (kCheckedBuild)
        shadow = params_.spectralShadowCheck;

    double shadow_sink = tSink_;
    if (shadow) {
        ensureSiliconCurrent();
        ensureSpreaderCurrent();
        shadowSi_ = tSi_;
        shadowSp_ = tSp_;
    }

    if (!modesValid_) {
        spectral_->loadState(tSi_, tSp_, tSink_);
        modesValid_ = true;
    }
    spectral_->step(dt);
    tSink_ = spectral_->sinkTemp();
    siValid_ = false;
    spValid_ = false;

    if (shadow) {
        explicitAdvance(shadowSi_, shadowSp_, shadow_sink, dt);
        ensureSiliconCurrent();
        ensureSpreaderCurrent();
        double err = std::fabs(tSink_ - shadow_sink);
        for (size_t i = 0; i < tSi_.size(); ++i) {
            err = std::max(err, std::fabs(tSi_[i] - shadowSi_[i]));
            err = std::max(err, std::fabs(tSp_[i] - shadowSp_[i]));
        }
        if (err > params_.spectralShadowTolerance) {
            if (!warnedShadowFallback_) {
                boreas_warn("spectral thermal step diverged from the "
                            "explicit reference by %.6f C (bound %.6f); "
                            "adopting the explicit result", err,
                            params_.spectralShadowTolerance);
                warnedShadowFallback_ = true;
            }
            obs::MetricsRegistry::global().add(
                "thermal.spectral.shadow_fallback");
            tSi_.swap(shadowSi_);
            tSp_.swap(shadowSp_);
            tSink_ = shadow_sink;
            siValid_ = true;
            spValid_ = true;
            modesValid_ = false;
        }
    }
}

void
ThermalGrid::ensureSiliconCurrent() const
{
    if (siValid_)
        return;
    obs::ScopedTimer timer("stage.thermal.publish");
    spectral_->realizeSilicon(tSi_);
    siValid_ = true;
}

void
ThermalGrid::ensureSpreaderCurrent() const
{
    if (spValid_)
        return;
    obs::ScopedTimer timer("stage.thermal.publish");
    spectral_->realizeSpreader(tSp_);
    spValid_ = true;
}

int
ThermalGrid::solveSteadyState(double tolerance, int max_sweeps)
{
    // SOR iterates on the real-space fields; materialize them first
    // and invalidate the spectral mode state afterwards.
    ensureSiliconCurrent();
    ensureSpreaderCurrent();
    modesValid_ = false;

    const int nx = params_.nx;
    const int ny = params_.ny;
    constexpr double omega = 1.85; // SOR over-relaxation

    int sweep = 0;
    for (; sweep < max_sweeps; ++sweep) {
        double max_delta = 0.0;

        for (int y = 0; y < ny; ++y) {
            const int row = y * nx;
            for (int x = 0; x < nx; ++x) {
                const int i = row + x;

                // Silicon.
                double num = pCell_[i] + gVert_ * tSp_[i];
                double den = gVert_;
                if (x > 0) { num += gLatSi_ * tSi_[i - 1]; den += gLatSi_; }
                if (x < nx - 1) {
                    num += gLatSi_ * tSi_[i + 1]; den += gLatSi_;
                }
                if (y > 0) { num += gLatSi_ * tSi_[i - nx]; den += gLatSi_; }
                if (y < ny - 1) {
                    num += gLatSi_ * tSi_[i + nx]; den += gLatSi_;
                }
                double t_new = num / den;
                t_new = tSi_[i] + omega * (t_new - tSi_[i]);
                max_delta = std::max(max_delta,
                                     std::fabs(t_new - tSi_[i]));
                tSi_[i] = t_new;

                // Spreader.
                num = gVert_ * tSi_[i] + gSinkCell_ * tSink_;
                den = gVert_ + gSinkCell_;
                if (x > 0) { num += gLatSp_ * tSp_[i - 1]; den += gLatSp_; }
                if (x < nx - 1) {
                    num += gLatSp_ * tSp_[i + 1]; den += gLatSp_;
                }
                if (y > 0) { num += gLatSp_ * tSp_[i - nx]; den += gLatSp_; }
                if (y < ny - 1) {
                    num += gLatSp_ * tSp_[i + nx]; den += gLatSp_;
                }
                t_new = num / den;
                t_new = tSp_[i] + omega * (t_new - tSp_[i]);
                max_delta = std::max(max_delta,
                                     std::fabs(t_new - tSp_[i]));
                tSp_[i] = t_new;
            }
        }

        // Sink node.
        double num = params_.ambient / params_.sinkAmbientResistance;
        double den = 1.0 / params_.sinkAmbientResistance;
        for (int i = 0; i < numCells(); ++i) {
            num += gSinkCell_ * tSp_[i];
            den += gSinkCell_;
        }
        const double t_new = num / den;
        max_delta = std::max(max_delta, std::fabs(t_new - tSink_));
        tSink_ = t_new;

        if (max_delta < tolerance)
            break;
    }

    if constexpr (kCheckedBuild) {
        checkValuesInRange(tSi_.data(), tSi_.size(), kMinSaneTemp,
                           kMaxSaneTemp, "steady-state silicon temp");
        checkValuesInRange(tSp_.data(), tSp_.size(), kMinSaneTemp,
                           kMaxSaneTemp, "steady-state spreader temp");
    }
    return sweep;
}

Celsius
ThermalGrid::maxSiliconTemp() const
{
    ensureSiliconCurrent();
    return *std::max_element(tSi_.begin(), tSi_.end());
}

int
ThermalGrid::cellAt(const Point &p) const
{
    const Meters cw = floorplan_->dieWidth() / params_.nx;
    const Meters ch = floorplan_->dieHeight() / params_.ny;
    int cx = static_cast<int>(p.x / cw);
    int cy = static_cast<int>(p.y / ch);
    cx = std::clamp(cx, 0, params_.nx - 1);
    cy = std::clamp(cy, 0, params_.ny - 1);
    return cy * params_.nx + cx;
}

Celsius
ThermalGrid::temperatureAt(const Point &p) const
{
    ensureSiliconCurrent();
    return tSi_[cellAt(p)];
}

Point
ThermalGrid::cellCenter(int cell) const
{
    const Meters cw = floorplan_->dieWidth() / params_.nx;
    const Meters ch = floorplan_->dieHeight() / params_.ny;
    const int cx = cell % params_.nx;
    const int cy = cell / params_.nx;
    return {(cx + 0.5) * cw, (cy + 0.5) * ch};
}

const std::vector<Celsius> &
ThermalGrid::unitTemps() const
{
    ensureSiliconCurrent();
    unitTempsScratch_.assign(floorplan_->numUnits(), params_.ambient);
    for (size_t u = 0; u < unitMaps_.size(); ++u) {
        const UnitCellMap &map = unitMaps_[u];
        double acc = 0.0;
        double wsum = 0.0;
        for (size_t k = 0; k < map.cells.size(); ++k) {
            acc += tSi_[map.cells[k]] * map.fractions[k];
            wsum += map.fractions[k];
        }
        if (wsum > 0.0)
            unitTempsScratch_[u] = acc / wsum;
    }
    return unitTempsScratch_;
}

Watts
ThermalGrid::totalPower() const
{
    Watts total = 0.0;
    for (Watts p : pCell_)
        total += p;
    return total;
}

} // namespace boreas
