/**
 * @file
 * Spectral exponential integrator for the RC thermal stack
 * (DESIGN.md §9).
 *
 * The lateral Laplacian of each layer is diagonalized by a 2-D DCT-II
 * (common/dct.hh), which matches the explicit stencil's Neumann
 * boundaries exactly. In mode space the semi-discrete network
 * decouples:
 *
 *   - every mode (kx, ky) != (0, 0) is a 2-state linear ODE over the
 *     silicon and spreader coefficients, driven by the power mode;
 *   - mode (0, 0) — the field sums — additionally couples to the
 *     lumped heatsink node and its ambient leak, a 3-state ODE.
 *
 * Each small system is advanced EXACTLY over any dt with its matrix
 * exponential:  z(t+dt) = E z(t) + F b,  E = exp(A dt),
 * F = A^-1 (E - I); the coefficients are precomputed per dt and reused
 * while dt stays constant (the only pattern the pipeline produces).
 * One step is therefore a cheap per-mode SoA sweep with no stability
 * limit — the substep count of the explicit path is gone.
 *
 * State residency: the solver keeps its state in mode space. Callers
 * load real-space state with loadState(), push power maps through
 * setPower() (forward DCT), step() as often as they like, and pay the
 * inverse DCT only when a real-space field is actually read
 * (realizeSilicon / realizeSpreader). ThermalGrid tracks the validity
 * flags.
 *
 * Instances are single-threaded (they own DCT scratch); one per grid.
 */

#pragma once

#include <vector>

#include "common/dct.hh"
#include "common/types.hh"

namespace boreas
{

/** The lumped network constants of one ThermalGrid, per cell. */
struct SpectralNetwork
{
    int nx = 0;
    int ny = 0;
    double gLatSi = 0.0;    ///< silicon lateral conductance, W/K
    double gLatSp = 0.0;    ///< spreader lateral conductance
    double gVert = 0.0;     ///< silicon->spreader (TIM) per cell
    double gSinkCell = 0.0; ///< spreader cell -> sink
    double cSi = 0.0;       ///< silicon cell capacitance, J/K
    double cSp = 0.0;       ///< spreader cell capacitance
    double sinkCapacitance = 0.0;
    double sinkAmbientResistance = 0.0;
    Celsius ambient = 0.0;
};

/** Mode-space exact integrator (see file comment). */
class SpectralThermalSolver
{
  public:
    explicit SpectralThermalSolver(const SpectralNetwork &net);

    /** Forward-DCT a real-space state into the mode-space state. */
    void loadState(const std::vector<Celsius> &si,
                   const std::vector<Celsius> &sp, Celsius sink);

    /** Forward-DCT the per-cell power map driving subsequent steps. */
    void setPower(const std::vector<Watts> &cell_power);

    /** Advance the mode-space state exactly by dt. */
    void step(Seconds dt);

    /** Inverse-DCT the silicon modes into `si` (row-major). */
    void realizeSilicon(std::vector<Celsius> &si);

    /** Inverse-DCT the spreader modes into `sp` (row-major). */
    void realizeSpreader(std::vector<Celsius> &sp);

    /** Heatsink node temperature (always current; no DCT involved). */
    Celsius sinkTemp() const { return tSink_; }

    /** The dt the cached exponential plan was built for (0 = none). */
    Seconds planDt() const { return planDt_; }

  private:
    void buildPlan(Seconds dt);
    void refreshForcing();

    SpectralNetwork net_;
    int n_ = 0;          ///< nx * ny modes
    double sqrtN_ = 0.0; ///< balance factor for the sink variable
    Dct2Plan dct_;

    /** Per-axis Laplacian eigenvalues; lam(kx,ky) = lamX_ + lamY_. */
    std::vector<double> lamX_;
    std::vector<double> lamY_;

    // Mode-space state and drive. The per-mode state is held in
    // single precision (the step sweep and the realize DCTs are
    // bandwidth-bound on it; all update arithmetic stays double).
    // Mode 0 is the exception: it is the field mean coupled to the
    // sink, whose contraction per telemetry step is ~1e-5 — slow
    // enough that repeated float rounding could accumulate — so its
    // master copy lives in the double scalars z0Si_/z0Sp_ and the
    // array slots only mirror it for the realize transforms.
    std::vector<float> zSi_;
    std::vector<float> zSp_;
    double z0Si_ = 0.0;
    double z0Sp_ = 0.0;
    std::vector<double> phat_;
    Celsius tSink_ = 0.0;

    // Cached per-dt exponential coefficients, SoA over modes != 0:
    // (zsi', zsp') = E * (zsi, zsp) + phat * (G1, G2). The step sweep
    // is bandwidth-bound on these arrays, so the plan is kept lean:
    //
    //   - E is reconstructed per mode from two streamed arrays plus
    //     cheap L1-resident data: E11 = ch + sh * dd,
    //     E22 = ch - sh * dd, E12 = sh * a12, E21 = sh * a21, where
    //     a12/a21 are mode-independent and dd = ddBase_ + ddLam_ * lam
    //     is affine in the eigenvalue (rebuilt from lamX_/lamY_);
    //   - the forcing product phat * G is folded into gp1_/gp2_
    //     whenever the power or the plan changes;
    //   - the streamed arrays are stored in single precision (the
    //     state and all arithmetic stay double; the ~6e-8 coefficient
    //     quantization amplifies to at most ~1e-3 C on the slowest
    //     modes — see DESIGN.md §9.5, and the per-step exactness gate
    //     in bench/thermal_solver.cc bounds it empirically).
    Seconds planDt_ = 0.0;
    double offDiag12_ = 0.0; ///< a12 = gVert / cSi
    double offDiag21_ = 0.0; ///< a21 = gVert / cSp
    double ddBase_ = 0.0;    ///< dd at lam = 0
    double ddLam_ = 0.0;     ///< d(dd)/d(lam)
    std::vector<float> ch_, sh_;
    std::vector<double> g1_, g2_;
    std::vector<float> gp1_, gp2_;
    // Mode 0 (sums + balanced sink w = sqrt(n) * tSink):
    // z0' = E0 z0 + phat0 * c0 + d0.
    double e0_[9] = {};
    double c0_[3] = {};
    double d0_[3] = {};
};

} // namespace boreas
