/**
 * @file
 * Compact transient thermal model of the die stack.
 *
 * Same modelling class as HotSpot / 3D-ICE (and thus HotGauge): the die is
 * discretized into an nx x ny grid with an RC network per cell. The stack
 * has three levels:
 *
 *   silicon grid  --(TIM)-->  copper-spreader grid  -->  lumped heatsink
 *                                                        --> ambient
 *
 * Each silicon cell has lateral conductances to its 4 neighbors and a
 * vertical conductance through the TIM; spreader cells conduct laterally
 * (copper, fast spreading) and into the sink; the sink is one
 * high-capacitance node with a convection resistance to ambient.
 *
 * A thinned 7 nm-class die (default 100 um silicon) gives cell time
 * constants of ~50 us, which is what makes *advanced* hotspots: local
 * heating on the microsecond scale, far faster than sensor+DVFS loops.
 *
 * Transient integration is explicit with substeps bounded by the network
 * stability limit; a steady-state SOR solve provides warm-start initial
 * conditions.
 */

#pragma once

#include <vector>

#include "common/types.hh"
#include "floorplan/floorplan.hh"

namespace boreas
{

/** Material and geometry parameters of the thermal stack. */
struct ThermalParams
{
    int nx = 64;                    ///< grid cells in x
    int ny = 64;                    ///< grid cells in y

    Meters siThickness = 150e-6;    ///< thinned die
    double siConductivity = 110.0;  ///< W/(m K)
    double siVolHeatCap = 1.636e6;  ///< J/(m^3 K)

    Meters timThickness = 25e-6;
    double timConductivity = 4.0;   ///< W/(m K)

    Meters spreaderThickness = 1.0e-3;
    double cuConductivity = 400.0;
    double cuVolHeatCap = 3.45e6;

    /** Spreader-to-sink spreading resistance (whole chip), K/W. */
    double sinkSpreadResistance = 0.22;
    /** Sink-to-ambient convection resistance, K/W. */
    double sinkAmbientResistance = 0.20;
    /** Lumped heatsink capacitance, J/K. */
    double sinkCapacitance = 150.0;

    Celsius ambient = kAmbient;

    /** Safety factor on the explicit-integration stability bound. */
    double dtSafety = 0.4;
};

/** The thermal solver. */
class ThermalGrid
{
  public:
    ThermalGrid(const Floorplan &floorplan,
                const ThermalParams &params = {});

    const ThermalParams &params() const { return params_; }
    int nx() const { return params_.nx; }
    int ny() const { return params_.ny; }
    int numCells() const { return params_.nx * params_.ny; }

    /** Largest stable explicit substep (with the safety factor). */
    Seconds maxStableDt() const { return dtMax_; }

    /**
     * Set the power map for the next integration interval from per-unit
     * powers (indexed like Floorplan::units()); distributed over cells
     * by area overlap.
     */
    void setUnitPower(const std::vector<Watts> &unit_power);

    /** Advance the transient by dt (internally substepped). */
    void step(Seconds dt);

    /**
     * Solve the steady state for the current power map (SOR iteration)
     * and load it as the present thermal state. Used for warm-start
     * initial conditions.
     *
     * @return number of sweeps used
     */
    int solveSteadyState(double tolerance = 1e-7, int max_sweeps = 50000);

    /** Reset all nodes to a uniform temperature. */
    void reset(Celsius uniform);

    /** Silicon-layer temperatures, row-major (y * nx + x). */
    const std::vector<Celsius> &siliconTemps() const { return tSi_; }

    Celsius maxSiliconTemp() const;

    /** Temperature of the silicon cell containing the point. */
    Celsius temperatureAt(const Point &p) const;

    /**
     * Area-weighted mean silicon temperature of each functional unit.
     * The returned reference aliases an internal scratch buffer that is
     * overwritten by the next unitTemps() call (hot-path allocation
     * avoidance); copy it if you need it past that.
     */
    const std::vector<Celsius> &unitTemps() const;

    /** Heatsink node temperature. */
    Celsius sinkTemp() const { return tSink_; }

    /** Total power currently injected, watts (diagnostics). */
    Watts totalPower() const;

    /** Cell center coordinates (for sensors / k-means placement). */
    Point cellCenter(int cell) const;

    /** Flat index of the cell containing the point. */
    int cellAt(const Point &p) const;

  private:
    void computeConstants();

    const Floorplan *floorplan_;
    ThermalParams params_;

    std::vector<UnitCellMap> unitMaps_;

    // State.
    std::vector<Celsius> tSi_;
    std::vector<Celsius> tSp_;
    Celsius tSink_;

    // Power injected per silicon cell, watts.
    std::vector<Watts> pCell_;

    // Precomputed network constants.
    double gLatSi_ = 0.0;   ///< silicon lateral conductance, W/K
    double gVert_ = 0.0;    ///< silicon->spreader (TIM) per cell
    double gLatSp_ = 0.0;   ///< spreader lateral conductance
    double gSinkCell_ = 0.0;///< spreader cell -> sink
    double cSi_ = 0.0;      ///< silicon cell capacitance, J/K
    double cSp_ = 0.0;      ///< spreader cell capacitance
    Seconds dtMax_ = 0.0;

    // Scratch buffers for integration.
    std::vector<double> newSi_;
    std::vector<double> newSp_;

    // Reused by unitTemps() so the per-telemetry-step pipeline loop
    // does not allocate.
    mutable std::vector<Celsius> unitTempsScratch_;
};

} // namespace boreas
