/**
 * @file
 * Compact transient thermal model of the die stack.
 *
 * Same modelling class as HotSpot / 3D-ICE (and thus HotGauge): the die is
 * discretized into an nx x ny grid with an RC network per cell. The stack
 * has three levels:
 *
 *   silicon grid  --(TIM)-->  copper-spreader grid  -->  lumped heatsink
 *                                                        --> ambient
 *
 * Each silicon cell has lateral conductances to its 4 neighbors and a
 * vertical conductance through the TIM; spreader cells conduct laterally
 * (copper, fast spreading) and into the sink; the sink is one
 * high-capacitance node with a convection resistance to ambient.
 *
 * A thinned 7 nm-class die (default 100 um silicon) gives cell time
 * constants of ~50 us, which is what makes *advanced* hotspots: local
 * heating on the microsecond scale, far faster than sensor+DVFS loops.
 *
 * Three interchangeable transient integrators (ThermalParams::solver):
 *
 *   Explicit  — the reference: forward Euler with substeps bounded by
 *               the network stability limit. Bit-exact across releases
 *               (the determinism audit pins its runHash).
 *   Spectral  — exact full-interval stepping: a 2-D DCT-II
 *               diagonalizes the lateral coupling and each mode is
 *               advanced with a closed-form matrix exponential
 *               (thermal/spectral_solver.hh, DESIGN.md §9). In checked
 *               builds every step is shadow-verified against the
 *               explicit reference within spectralShadowTolerance.
 *   Surrogate — a seam for a learned one-step model
 *               (thermal/surrogate.hh); attach with setSurrogate().
 *
 * A steady-state SOR solve provides warm-start initial conditions for
 * any solver.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "floorplan/floorplan.hh"

namespace boreas
{

class SpectralThermalSolver;
struct SpectralNetwork;
class ThermalSurrogate;

/** Which transient integrator a ThermalGrid runs (see file comment). */
enum class ThermalSolverKind
{
    Explicit,
    Spectral,
    Surrogate,
};

/** Lower-case name of a solver kind ("explicit" / "spectral" / ...). */
const char *thermalSolverName(ThermalSolverKind kind);

/** Parse a solver name; boreas_fatal on anything unknown. */
ThermalSolverKind parseThermalSolverName(const std::string &name);

/** Material and geometry parameters of the thermal stack. */
struct ThermalParams
{
    int nx = 64;                    ///< grid cells in x
    int ny = 64;                    ///< grid cells in y

    Meters siThickness = 150e-6;    ///< thinned die
    double siConductivity = 110.0;  ///< W/(m K)
    double siVolHeatCap = 1.636e6;  ///< J/(m^3 K)

    Meters timThickness = 25e-6;
    double timConductivity = 4.0;   ///< W/(m K)

    Meters spreaderThickness = 1.0e-3;
    double cuConductivity = 400.0;
    double cuVolHeatCap = 3.45e6;

    /** Spreader-to-sink spreading resistance (whole chip), K/W. */
    double sinkSpreadResistance = 0.22;
    /** Sink-to-ambient convection resistance, K/W. */
    double sinkAmbientResistance = 0.20;
    /** Lumped heatsink capacitance, J/K. */
    double sinkCapacitance = 150.0;

    Celsius ambient = kAmbient;

    /** Safety factor on the explicit-integration stability bound. */
    double dtSafety = 0.4;

    /** Transient integrator selection. */
    ThermalSolverKind solver = ThermalSolverKind::Explicit;

    /**
     * Checked builds only: shadow-run the explicit reference alongside
     * every spectral step and fall back to its result if the solutions
     * diverge by more than spectralShadowTolerance anywhere. Disable
     * for deliberately-coarse test configs (e.g. second-scale steps,
     * where the *explicit* truncation error exceeds the bound).
     */
    bool spectralShadowCheck = true;
    /**
     * Max abs per-step spectral-vs-explicit divergence, Celsius. The
     * default is dominated by the *explicit* reference's own O(h)
     * truncation on the fast post-power-step transient (measured
     * ~0.19 C at dtSafety 0.4 on fig7-class runs, decaying ~linearly
     * with the substep; the spectral step itself is within ~0.011 C of
     * a 16x-refined reference — DESIGN.md §9.5).
     */
    double spectralShadowTolerance = 0.25;
};

/** The thermal solver. */
class ThermalGrid
{
  public:
    ThermalGrid(const Floorplan &floorplan,
                const ThermalParams &params = {});
    ~ThermalGrid();

    ThermalGrid(const ThermalGrid &) = delete;
    ThermalGrid &operator=(const ThermalGrid &) = delete;

    const ThermalParams &params() const { return params_; }
    int nx() const { return params_.nx; }
    int ny() const { return params_.ny; }
    int numCells() const { return params_.nx * params_.ny; }

    ThermalSolverKind solverKind() const { return params_.solver; }

    /** Stage-timer name of the active solver (a string literal). */
    const char *solverTimerName() const;

    /**
     * Attach the learned backend for ThermalSolverKind::Surrogate
     * (non-owning; must outlive the grid). Stepping a surrogate grid
     * without one attached panics.
     */
    void setSurrogate(ThermalSurrogate *surrogate);

    /** Largest stable explicit substep (with the safety factor). */
    Seconds maxStableDt() const { return dtMax_; }

    /**
     * The grid's lumped network constants, for benches and tests that
     * drive a raw SpectralThermalSolver side by side with this grid
     * (callers include thermal/spectral_solver.hh for the definition).
     */
    SpectralNetwork spectralNetwork() const;

    /**
     * Set the power map for the next integration interval from per-unit
     * powers (indexed like Floorplan::units()); distributed over cells
     * by area overlap. A vector identical to the previous call's is
     * detected and skipped (controllers frequently hold power constant
     * across intervals).
     */
    void setUnitPower(const std::vector<Watts> &unit_power);

    /**
     * Advance the transient by dt. The explicit path substeps
     * internally; the spectral path takes one exact step. Per-dt
     * constants are cached across calls — the pipeline's
     * fixed-stepLength pattern pays the setup once; checked builds
     * flag a dt change mid-run (between resets).
     */
    void step(Seconds dt);

    /**
     * Solve the steady state for the current power map (SOR iteration)
     * and load it as the present thermal state. Used for warm-start
     * initial conditions.
     *
     * @return number of sweeps used
     */
    int solveSteadyState(double tolerance = 1e-7, int max_sweeps = 50000);

    /** Reset all nodes to a uniform temperature. */
    void reset(Celsius uniform);

    /** Silicon-layer temperatures, row-major (y * nx + x). */
    const std::vector<Celsius> &siliconTemps() const
    {
        ensureSiliconCurrent();
        return tSi_;
    }

    /** Spreader-layer temperatures, row-major (y * nx + x). */
    const std::vector<Celsius> &spreaderTemps() const
    {
        ensureSpreaderCurrent();
        return tSp_;
    }

    Celsius maxSiliconTemp() const;

    /** Temperature of the silicon cell containing the point. */
    Celsius temperatureAt(const Point &p) const;

    /**
     * Area-weighted mean silicon temperature of each functional unit.
     * The returned reference aliases an internal scratch buffer that is
     * overwritten by the next unitTemps() call (hot-path allocation
     * avoidance); copy it if you need it past that.
     */
    const std::vector<Celsius> &unitTemps() const;

    /** Heatsink node temperature. */
    Celsius sinkTemp() const { return tSink_; }

    /** Total power currently injected, watts (diagnostics). */
    Watts totalPower() const;

    /** Cell center coordinates (for sensors / k-means placement). */
    Point cellCenter(int cell) const;

    /** Flat index of the cell containing the point. */
    int cellAt(const Point &p) const;

  private:
    void computeConstants();

    /** Cached per-dt explicit-integration constants (hot-path hoist). */
    struct StepPlan
    {
        Seconds dt = 0.0;
        int substeps = 0;
        double h = 0.0;
        double invCsi = 0.0;
        double invCsp = 0.0;
        double hOverCsink = 0.0;
    };

    void rebuildStepPlan(Seconds dt);

    /**
     * The reference explicit integration, advancing the given buffers
     * (normally the live state; the checked-build shadow run passes
     * copies). Bit-identical to the historical ThermalGrid::step body.
     */
    void explicitAdvance(std::vector<double> &si, std::vector<double> &sp,
                         double &sink, Seconds dt);

    void spectralStep(Seconds dt);

    /** Inverse-DCT the spectral state on demand (lazy publication). */
    void ensureSiliconCurrent() const;
    void ensureSpreaderCurrent() const;

    const Floorplan *floorplan_;
    ThermalParams params_;

    std::vector<UnitCellMap> unitMaps_;

    // State. The temperature fields are mutable because the spectral
    // solver keeps its state in mode space and materializes these
    // buffers lazily inside const accessors.
    mutable std::vector<Celsius> tSi_;
    mutable std::vector<Celsius> tSp_;
    Celsius tSink_;

    // Power injected per silicon cell, watts.
    std::vector<Watts> pCell_;

    // Precomputed network constants.
    double gLatSi_ = 0.0;   ///< silicon lateral conductance, W/K
    double gVert_ = 0.0;    ///< silicon->spreader (TIM) per cell
    double gLatSp_ = 0.0;   ///< spreader lateral conductance
    double gSinkCell_ = 0.0;///< spreader cell -> sink
    double cSi_ = 0.0;      ///< silicon cell capacitance, J/K
    double cSp_ = 0.0;      ///< spreader cell capacitance
    Seconds dtMax_ = 0.0;

    StepPlan plan_;
    bool stepped_ = false;  ///< any step() since the last reset()?

    // Solver dispatch.
    std::unique_ptr<SpectralThermalSolver> spectral_;
    ThermalSurrogate *surrogate_ = nullptr;
    bool modesValid_ = false;       ///< spectral mode state current?
    mutable bool siValid_ = true;   ///< tSi_ current?
    mutable bool spValid_ = true;   ///< tSp_ current?
    bool warnedShadowFallback_ = false;

    // Last accepted unit-power vector (identical-input skip).
    std::vector<Watts> unitPowerCache_;

    // Scratch buffers for integration.
    std::vector<double> newSi_;
    std::vector<double> newSp_;

    // Checked-build shadow-run scratch.
    std::vector<double> shadowSi_;
    std::vector<double> shadowSp_;

    // Reused by unitTemps() so the per-telemetry-step pipeline loop
    // does not allocate.
    mutable std::vector<Celsius> unitTempsScratch_;
};

} // namespace boreas
