/**
 * @file
 * The learned-surrogate seam of the thermal stage (DESIGN.md §9).
 *
 * ThermalGrid dispatches on ThermalSolverKind; the third backend,
 * Surrogate, forwards each full control-interval step to this
 * interface. The intended occupant is a trained model in the spirit of
 * the HBM thermal surrogate (arXiv:2503.04049) / SimNet
 * (arXiv:2105.05821): given the per-cell power map and the current
 * state, predict the state one interval later. Until such a model is
 * trained, tests exercise the seam with mock implementations.
 *
 * Contract:
 *   - step() advances the full stack state in place by exactly dt.
 *     `si` and `sp` are row-major [y*nx + x] silicon / spreader
 *     temperature fields; `sink` is the lumped heatsink node.
 *   - Implementations must be deterministic (bit-identical outputs for
 *     bit-identical inputs) — the pipeline's runHash audit makes no
 *     exception for learned backends.
 *   - The surrogate is non-owning from ThermalGrid's point of view and
 *     must outlive any grid it is attached to via setSurrogate().
 *   - Checked builds do NOT shadow-verify surrogate steps (the bound
 *     only makes sense for the exact-operator spectral path); accuracy
 *     of a learned backend is a training-time concern.
 */

#pragma once

#include <vector>

#include "common/types.hh"

namespace boreas
{

/** One-full-step thermal state predictor (see file comment). */
class ThermalSurrogate
{
  public:
    virtual ~ThermalSurrogate() = default;

    /**
     * Advance the stack state in place by dt given the per-cell power
     * map held over the interval.
     */
    virtual void step(const std::vector<Watts> &cell_power, Seconds dt,
                      std::vector<Celsius> &si, std::vector<Celsius> &sp,
                      Celsius &sink) = 0;
};

} // namespace boreas
