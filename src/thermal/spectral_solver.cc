#include "thermal/spectral_solver.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace boreas
{

namespace
{

/** c = a * b for row-major 3x3 matrices. */
void
mul3(const double *a, const double *b, double *c)
{
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            c[i * 3 + j] = a[i * 3 + 0] * b[0 * 3 + j] +
                           a[i * 3 + 1] * b[1 * 3 + j] +
                           a[i * 3 + 2] * b[2 * 3 + j];
        }
    }
}

/**
 * E = exp(M) for a 3x3 matrix by scaling-and-squaring with a Taylor
 * series. M is a stable RC system matrix times dt, so exp(M) and all
 * its squarings stay bounded; the scaling keeps the series argument
 * small enough that plain Taylor converges fast.
 */
void
expm3(const double *m, double *e)
{
    double norm = 0.0;
    for (int i = 0; i < 3; ++i) {
        const double row = std::fabs(m[i * 3]) +
                           std::fabs(m[i * 3 + 1]) +
                           std::fabs(m[i * 3 + 2]);
        norm = std::max(norm, row);
    }
    int s = 0;
    while (norm > 0.25 && s < 64) {
        norm *= 0.5;
        ++s;
    }
    const double scale = std::ldexp(1.0, -s);

    double a[9];
    for (int i = 0; i < 9; ++i)
        a[i] = m[i] * scale;

    // Taylor: E = I + A + A^2/2! + ...
    double term[9];
    for (int i = 0; i < 9; ++i) {
        term[i] = a[i];
        e[i] = a[i];
    }
    e[0] += 1.0;
    e[4] += 1.0;
    e[8] += 1.0;
    for (int k = 2; k <= 24; ++k) {
        double next[9];
        mul3(term, a, next);
        const double inv_k = 1.0 / k;
        double tnorm = 0.0;
        for (int i = 0; i < 9; ++i) {
            term[i] = next[i] * inv_k;
            e[i] += term[i];
            tnorm += std::fabs(term[i]);
        }
        if (tnorm < 1e-18)
            break;
    }

    for (int i = 0; i < s; ++i) {
        double sq[9];
        mul3(e, e, sq);
        for (int j = 0; j < 9; ++j)
            e[j] = sq[j];
    }
}

/**
 * Solve A X = B for 3x3 matrices (X, B row-major) by Gaussian
 * elimination with partial pivoting. A must be nonsingular — for the
 * mode-0 system the ambient leak guarantees it.
 */
void
solve3(const double *a_in, const double *b_in, double *x)
{
    double a[9];
    double b[9];
    for (int i = 0; i < 9; ++i) {
        a[i] = a_in[i];
        b[i] = b_in[i];
    }
    int perm[3] = {0, 1, 2};
    for (int col = 0; col < 3; ++col) {
        int piv = col;
        for (int r = col + 1; r < 3; ++r) {
            if (std::fabs(a[perm[r] * 3 + col]) >
                std::fabs(a[perm[piv] * 3 + col]))
                piv = r;
        }
        std::swap(perm[col], perm[piv]);
        const int pr = perm[col];
        boreas_assert(a[pr * 3 + col] != 0.0,
                      "singular mode-0 thermal system");
        for (int r = col + 1; r < 3; ++r) {
            const int rr = perm[r];
            const double f = a[rr * 3 + col] / a[pr * 3 + col];
            for (int c = col; c < 3; ++c)
                a[rr * 3 + c] -= f * a[pr * 3 + c];
            for (int c = 0; c < 3; ++c)
                b[rr * 3 + c] -= f * b[pr * 3 + c];
        }
    }
    for (int col = 0; col < 3; ++col) {
        for (int row = 2; row >= 0; --row) {
            const int rr = perm[row];
            double acc = b[rr * 3 + col];
            for (int c = row + 1; c < 3; ++c)
                acc -= a[rr * 3 + c] * x[c * 3 + col];
            x[row * 3 + col] = acc / a[rr * 3 + row];
        }
    }
}

/**
 * Dispatch the mode sweep through GCC's function multi-versioning on
 * x86-64: the resolver picks an AVX2+FMA clone at load time when the
 * host supports it (the narrow->wide converts on the float streams
 * are what the 128-bit baseline bottlenecks on), with the portable
 * clone as fallback. The explicit stencil deliberately gets no such
 * treatment — its results are required to stay bit-identical across
 * hosts, and FMA contraction would break that; the spectral path's
 * accuracy contract is the error bound, not bitwise equality.
 *
 * Disabled under ThreadSanitizer: the ifunc resolver multi-versioning
 * emits runs before the TSan runtime initializes and segfaults every
 * binary at load (sweep numerics are identical either way).
 */
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define BOREAS_SWEEP_CLONES \
    __attribute__((target_clones("avx2,fma", "default")))
#else
#define BOREAS_SWEEP_CLONES
#endif

BOREAS_SWEEP_CLONES void
sweepModes(int nx, int ny, const double *__restrict lamX,
           const double *__restrict ly, double dd_base, double ddl,
           double a12, double a21, const float *__restrict ch,
           const float *__restrict sh, const float *__restrict gp1,
           const float *__restrict gp2, float *__restrict zsi,
           float *__restrict zsp)
{
    for (int kx = 0; kx < nx; ++kx) {
        // dd(lam) is affine, so fold the kx part into the base once.
        const double ddx = dd_base + ddl * lamX[kx];
        const int row = kx * ny;
        for (int ky = 0; ky < ny; ++ky) {
            const int m = row + ky;
            const double dd = ddx + ddl * ly[ky];
            const double si = zsi[m];
            const double sp = zsp[m];
            const double c = ch[m];
            const double s = sh[m];
            const double sdd = s * dd;
            zsi[m] = static_cast<float>(
                (c + sdd) * si + (s * a12) * sp + gp1[m]);
            zsp[m] = static_cast<float>(
                (s * a21) * si + (c - sdd) * sp + gp2[m]);
        }
    }
}

} // namespace

SpectralThermalSolver::SpectralThermalSolver(const SpectralNetwork &net)
    : net_(net), n_(net.nx * net.ny),
      sqrtN_(std::sqrt(static_cast<double>(net.nx * net.ny))),
      dct_(net.nx, net.ny)
{
    boreas_assert(net_.cSi > 0.0 && net_.cSp > 0.0 &&
                  net_.sinkCapacitance > 0.0 &&
                  net_.sinkAmbientResistance > 0.0,
                  "bad spectral network constants");
    lamX_.resize(net_.nx);
    lamY_.resize(net_.ny);
    for (int kx = 0; kx < net_.nx; ++kx)
        lamX_[kx] = Dct2Plan::laplacianEigenvalue(kx, net_.nx);
    for (int ky = 0; ky < net_.ny; ++ky)
        lamY_[ky] = Dct2Plan::laplacianEigenvalue(ky, net_.ny);
    zSi_.assign(n_, 0.0f);
    zSp_.assign(n_, 0.0f);
    phat_.assign(n_, 0.0);
    gp1_.assign(n_, 0.0f);
    gp2_.assign(n_, 0.0f);
    tSink_ = net_.ambient;
}

void
SpectralThermalSolver::loadState(const std::vector<Celsius> &si,
                                 const std::vector<Celsius> &sp,
                                 Celsius sink)
{
    boreas_assert(si.size() == static_cast<size_t>(n_) &&
                  sp.size() == static_cast<size_t>(n_),
                  "state size mismatch");
    dct_.forward(si.data(), zSi_.data());
    dct_.forward(sp.data(), zSp_.data());
    z0Si_ = zSi_[0];
    z0Sp_ = zSp_[0];
    tSink_ = sink;
}

void
SpectralThermalSolver::setPower(const std::vector<Watts> &cell_power)
{
    boreas_assert(cell_power.size() == static_cast<size_t>(n_),
                  "power size mismatch");
    dct_.forward(cell_power.data(), phat_.data());
    if (planDt_ > 0.0)
        refreshForcing();
}

/** Refold phat * (G1, G2) into the per-mode forcing arrays. */
void
SpectralThermalSolver::refreshForcing()
{
    const double *__restrict g1 = g1_.data();
    const double *__restrict g2 = g2_.data();
    const double *__restrict ph = phat_.data();
    float *__restrict gp1 = gp1_.data();
    float *__restrict gp2 = gp2_.data();
    for (int m = 0; m < n_; ++m) {
        gp1[m] = static_cast<float>(g1[m] * ph[m]);
        gp2[m] = static_cast<float>(g2[m] * ph[m]);
    }
}

void
SpectralThermalSolver::realizeSilicon(std::vector<Celsius> &si)
{
    si.resize(n_);
    dct_.inverse(zSi_.data(), si.data());
}

void
SpectralThermalSolver::realizeSpreader(std::vector<Celsius> &sp)
{
    sp.resize(n_);
    dct_.inverse(zSp_.data(), sp.data());
}

/**
 * Precompute the exact update coefficients for one dt.
 *
 * Mode m != 0 system matrix (states z = (zsi, zsp), drive b =
 * (phat/cSi, 0)):
 *
 *   A = [ -(gLatSi lam + gVert) / cSi            gVert / cSi        ]
 *       [  gVert / cSp   -(gLatSp lam + gVert + gSinkCell) / cSp    ]
 *
 * Both eigenvalues are real and negative (a12 a21 > 0 and the network
 * is dissipative), so exp(A dt) is evaluated overflow-safely from
 * ep = e^{(mu+q)dt}, en = e^{(mu-q)dt} with mu the mean of the
 * diagonal and q the eigenvalue half-spread. The affine part uses
 * F = A^-1 (E - I), of which only the first column is needed.
 *
 * Mode 0 couples the field sums to the sink. With the balanced sink
 * variable w = sqrt(n) tSink the 3x3 system is
 *
 *   d/dt [z0si]   [ -gv/cSi        gv/cSi                0          ]
 *        [z0sp] = [  gv/cSp  -(gv+gs)/cSp          gs sqrt(n)/cSp  ]
 *        [ w  ]   [  0       gs sqrt(n)/Csink  -(gs n + 1/Ra)/Csink]
 *
 * plus the drive (phat0/cSi, 0, sqrt(n) Ta / (Ra Csink)).
 */
void
SpectralThermalSolver::buildPlan(Seconds dt)
{
    const double gv = net_.gVert;
    const double gs = net_.gSinkCell;
    const double csi = net_.cSi;
    const double csp = net_.cSp;

    ch_.assign(n_, 1.0f);
    sh_.assign(n_, 0.0f);
    g1_.assign(n_, 0.0);
    g2_.assign(n_, 0.0);
    offDiag12_ = gv / csi;
    offDiag21_ = gv / csp;
    ddBase_ = 0.5 * (-gv / csi + (gv + gs) / csp);
    ddLam_ = 0.5 * (-net_.gLatSi / csi + net_.gLatSp / csp);

    for (int m = 1; m < n_; ++m) {
        const double lam = lamX_[m / net_.ny] + lamY_[m % net_.ny];
        const double a11 = -(net_.gLatSi * lam + gv) / csi;
        const double a12 = gv / csi;
        const double a21 = gv / csp;
        const double a22 = -(net_.gLatSp * lam + gv + gs) / csp;

        const double mu = 0.5 * (a11 + a22);
        const double dd = 0.5 * (a11 - a22);
        const double q = std::sqrt(dd * dd + a12 * a21);

        const double ep = std::exp((mu + q) * dt);
        const double en = std::exp((mu - q) * dt);
        const double ch = 0.5 * (ep + en);
        // sinh(q dt)/q, guarded against q dt -> 0 cancellation.
        const double sh = q * dt < 1e-8
            ? dt * std::exp(mu * dt) * (1.0 + q * q * dt * dt / 6.0)
            : (ep - en) / (2.0 * q);

        const double E11 = ch + sh * dd;
        const double E21 = sh * a21;

        // First column of F = A^-1 (E - I); det > 0 for every m != 0.
        const double det = a11 * a22 - a12 * a21;
        const double m11 = E11 - 1.0;
        const double m21 = E21;
        const double f11 = (a22 * m11 - a12 * m21) / det;
        const double f21 = (a11 * m21 - a21 * m11) / det;

        ch_[m] = static_cast<float>(ch);
        sh_[m] = static_cast<float>(sh);
        g1_[m] = f11 / csi;
        g2_[m] = f21 / csi;
    }

    // Mode 0.
    const double csink = net_.sinkCapacitance;
    const double ra = net_.sinkAmbientResistance;
    const double a0[9] = {
        -gv / csi, gv / csi, 0.0,
        gv / csp, -(gv + gs) / csp, gs * sqrtN_ / csp,
        0.0, gs * sqrtN_ / csink,
        -(gs * n_ + 1.0 / ra) / csink,
    };
    double a0dt[9];
    for (int i = 0; i < 9; ++i)
        a0dt[i] = a0[i] * dt;
    expm3(a0dt, e0_);

    double e0mi[9];
    for (int i = 0; i < 9; ++i)
        e0mi[i] = e0_[i];
    e0mi[0] -= 1.0;
    e0mi[4] -= 1.0;
    e0mi[8] -= 1.0;
    double f0[9];
    solve3(a0, e0mi, f0);
    c0_[0] = f0[0] / csi;
    c0_[1] = f0[3] / csi;
    c0_[2] = f0[6] / csi;
    const double amb = sqrtN_ * net_.ambient / (ra * csink);
    d0_[0] = f0[2] * amb;
    d0_[1] = f0[5] * amb;
    d0_[2] = f0[8] * amb;

    planDt_ = dt;
    refreshForcing();
}

void
SpectralThermalSolver::step(Seconds dt)
{
    boreas_assert(dt > 0.0, "bad dt");
    if (dt != planDt_)
        buildPlan(dt);

    // Mode 0 rides through the sweep unchanged (ch = 1, sh = 0,
    // gp = 0); the 3x3 sink update below advances its double master
    // copy and refreshes the float mirror.
    sweepModes(net_.nx, net_.ny, lamX_.data(), lamY_.data(), ddBase_,
               ddLam_, offDiag12_, offDiag21_, ch_.data(), sh_.data(),
               gp1_.data(), gp2_.data(), zSi_.data(), zSp_.data());

    const double z0 = z0Si_;
    const double z1 = z0Sp_;
    const double z2 = sqrtN_ * tSink_;
    const double p0 = phat_[0];
    z0Si_ = e0_[0] * z0 + e0_[1] * z1 + e0_[2] * z2 + c0_[0] * p0 +
            d0_[0];
    z0Sp_ = e0_[3] * z0 + e0_[4] * z1 + e0_[5] * z2 + c0_[1] * p0 +
            d0_[1];
    tSink_ = (e0_[6] * z0 + e0_[7] * z1 + e0_[8] * z2 + c0_[2] * p0 +
              d0_[2]) / sqrtN_;
    zSi_[0] = static_cast<float>(z0Si_);
    zSp_[0] = static_cast<float>(z0Sp_);
}

} // namespace boreas
