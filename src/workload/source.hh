/**
 * @file
 * The pluggable workload-source interface (DESIGN.md §10).
 *
 * A WorkloadSource is a deterministic stimulus generator for the die:
 * per telemetry step it exposes, for every core it drives, the
 * PhaseParams the interval core model should simulate plus a private
 * noise stream. The phase-program suite (synthetic:spec2006), the
 * CPA-calibrated NAS family (synthetic:nas), co-scheduled mixes
 * (mix:), adversarial scenarios (adversarial:) and recorded traces
 * (trace:) all implement this one API — the codes-workload pattern of
 * many generator methods behind a single load/next-step interface.
 *
 * Contract:
 *   - reset(seed) must make the source's whole future stream a pure
 *     function of (source description, seed);
 *   - stimulus()/noiseRng() describe the *current* step and must not
 *     advance state; advance(dt) moves workload time forward;
 *   - clone() returns an unreset copy, safe to reset and run on
 *     another thread (sources are cloned per parallel job).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/core_model.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace boreas
{

/** What one core is asked to execute during the current step. */
struct CoreStimulus
{
    PhaseParams phase;
    /** False = the core idles this step (gated; only leakage and
     *  residual clocking dissipate). */
    bool active = true;
};

/** Abstract deterministic multi-core workload generator. */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource();

    /** Registry-style source name (e.g. "synthetic:spec2006/astar"). */
    virtual const std::string &name() const = 0;

    /** Number of die cores this source drives (1..numCores of die). */
    virtual int numCores() const = 0;

    /**
     * Stable identity used as the dataset group id so
     * application-exclusive CV splits keep working. Equals the
     * WorkloadSpec seedSalt for synthetic sources.
     */
    virtual uint64_t groupId() const = 0;

    /** (Re)start the stimulus stream for the given seed. */
    virtual void reset(uint64_t seed) = 0;

    /** Stimulus of `core` for the current step (no state change). */
    virtual CoreStimulus stimulus(int core) const = 0;

    /** Per-core noise stream consumed by the pipeline's draws. */
    virtual Rng &noiseRng(int core) = 0;

    /** Advance workload time by dt (switch phases, move programs). */
    virtual void advance(Seconds dt) = 0;

    /** Unreset deep copy (for parallel jobs and warm-start probes). */
    virtual std::unique_ptr<WorkloadSource> clone() const = 0;

    /**
     * Unreset copy with all per-core dynamic-energy scales multiplied
     * by `intensity_mult` — the dataset builder's augmentation hook
     * (DatasetConfig::intensityAugments).
     */
    virtual std::unique_ptr<WorkloadSource>
    cloneScaled(double intensity_mult) const = 0;

    /**
     * Warm-start unit-power vector recorded with the source, or
     * nullptr when the pipeline should probe the generator itself.
     * Trace replay returns the vector captured at record time: the
     * live probe draws from a generative model a recording cannot
     * re-derive, so the recorded vector is what keeps replays
     * bit-identical.
     */
    virtual const std::vector<Watts> *
    recordedWarmPower() const
    {
        return nullptr;
    }
};

} // namespace boreas
