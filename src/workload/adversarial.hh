/**
 * @file
 * Adversarial stimulus sources (adversarial:) — scenarios designed to
 * stress the controller rather than model a real application:
 *
 *   powervirus   all cores execute synchronized maximum-activity
 *                bursts (di/dt + thermal worst case);
 *   corehop      a power-virus hotspot migrates core to core every
 *                few milliseconds, defeating per-site sensor history;
 *   ambientramp  a die-wide uniform soak whose intensity ramps up
 *                monotonically over the trace;
 *   ambientsweep the same soak swept sinusoidally.
 *
 * The ambient scenarios model ambient/cooling drift through the
 * workload interface as a uniform soak-power modulation: the thermal
 * solvers treat ambient as a constant baked into their precomputed
 * plans (thermal/spectral_solver.cc), so a quasi-static power ramp is
 * the equivalent stimulus the pipeline can express without touching
 * the verified integrators (see DESIGN.md §10).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/source.hh"

namespace boreas
{

/** Build one of the adversarial sources by scenario name
 *  ("powervirus", "corehop", "ambientramp", "ambientsweep");
 *  panics on an unknown scenario. */
std::unique_ptr<WorkloadSource>
makeAdversarialSource(const std::string &scenario);

/** The registered adversarial scenario names. */
const std::vector<std::string> &adversarialScenarios();

} // namespace boreas
