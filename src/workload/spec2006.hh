/**
 * @file
 * The SPEC CPU2006 workload suite modeled in the paper (27 workloads,
 * Table III train/test split).
 *
 * Each workload is a synthetic phase program whose parameters encode the
 * published qualitative behaviour of the benchmark (FP vs integer mix,
 * memory-boundedness, branchiness, burstiness) plus a calibrated thermal
 * scale that positions its peak-severity-vs-frequency curve (Fig. 2).
 */

#pragma once

#include <vector>

#include "workload/workload.hh"

namespace boreas
{

/** All 27 workloads, in the paper's Fig. 2 naming. */
const std::vector<WorkloadSpec> &spec2006Suite();

/** The 20 training workloads of Table III. */
std::vector<const WorkloadSpec *> trainWorkloads();

/** The 7 held-out test workloads of Table III. */
std::vector<const WorkloadSpec *> testWorkloads();

/** Lookup by name; panics if the workload does not exist. */
const WorkloadSpec &findWorkload(const std::string &name);

/**
 * The frequency (GHz) each workload was *designed* to be oracle-safe at,
 * i.e. the highest frequency where its peak Hotspot-Severity stays below
 * 1.0. This is calibration metadata standing in for the real SPEC
 * binaries' thermal behaviour: the suite's thermalScale values are tuned
 * so the simulated Fig. 2 lands here. No controller or model reads it.
 */
GHz designOracleFrequency(const std::string &name);

} // namespace boreas
