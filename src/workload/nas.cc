#include "workload/nas.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace boreas
{

namespace
{

/**
 * Instructions executed in a 60-second run, from the CPA framework's
 * instr_60s_500ms.mako measurement table (one class per benchmark,
 * chosen so every kernel has a measurement: class B where available,
 * else C/D).
 */
const std::map<std::string, double> kNasInstr60s = {
    {"bt.B", 325241149428.0}, {"cg.B", 133950661685.0},
    {"dc.B", 159942264744.0}, {"ep.B", 143215037623.0},
    {"ft.B", 348601899662.0}, {"is.D", 78180855123.0},
    {"lu.B", 253106666325.0}, {"mg.C", 342277037597.0},
    {"sp.B", 274977528222.0}, {"ua.B", 293266380006.0},
};

/**
 * Dynamic-energy scales, hand-assigned by compute-boundness within the
 * range the calibrated SPEC suite spans (gromacs 0.45 ... libquantum
 * 4.0): pure-compute kernels run hot, bandwidth-bound ones cool.
 */
const std::map<std::string, double> kNasThermalScale = {
    {"bt.B", 1.00}, {"cg.B", 0.70}, {"dc.B", 0.80}, {"ep.B", 1.25},
    {"ft.B", 1.05}, {"is.D", 0.60}, {"lu.B", 1.15}, {"mg.C", 0.95},
    {"sp.B", 1.00}, {"ua.B", 0.90},
};

/** seedSalt offset keeping NAS groups disjoint from SPEC's 1..27. */
constexpr uint64_t kNasSeedSaltBase = 100;

/**
 * Author a phase at a *relative* CPI weight and solve its baseCpi so
 * the phase's effective CPI at the calibration clock equals
 * weight * target_cpi. effectiveCpi is baseCpi plus miss-event
 * penalties, so the solve is exact unless the floor clamps.
 */
WorkloadPhase
cal(PhaseParams p, double cpi_weight, double target_cpi, Seconds dwell,
    double jitter = 0.3)
{
    static const IntervalCore core{CoreParams{}};
    PhaseParams probe = p;
    probe.baseCpi = 0.0;
    const double penalty =
        core.effectiveCpi(probe, kNasReferenceFrequency);
    p.baseCpi = std::max(0.15, cpi_weight * target_cpi - penalty);
    return {p, dwell, jitter};
}

std::vector<WorkloadSpec>
buildNasSuite()
{
    std::vector<WorkloadSpec> suite;
    auto add = [&](std::string name, std::vector<WorkloadPhase> phases,
                   PhasePattern pattern = PhasePattern::Cyclic) {
        WorkloadSpec spec;
        spec.name = std::move(name);
        spec.phases = std::move(phases);
        spec.pattern = pattern;
        spec.thermalScale = kNasThermalScale.at(spec.name);
        spec.testSet = false;
        spec.seedSalt = kNasSeedSaltBase + suite.size() + 1;
        suite.push_back(std::move(spec));
    };
    auto target = [](const char *name) {
        const double ips = kNasInstr60s.at(name) / 60.0;
        return kNasReferenceFrequency * 1e9 / ips;
    };

    // bt: block-tridiagonal CFD; regular FP with solver sweeps.
    {
        const double t = target("bt.B");
        add("bt.B", {
            cal({.fpFraction = 0.42, .loadFraction = 0.32,
                 .storeFraction = 0.13, .branchFraction = 0.04,
                 .branchMpki = 0.8, .l1dMpki = 9, .l2Mpki = 3,
                 .l3Mpki = 0.9, .mlp = 2.8, .intensity = 1.0},
                1.10, t, 2.5e-3),
            cal({.fpFraction = 0.46, .loadFraction = 0.28,
                 .storeFraction = 0.11, .branchFraction = 0.04,
                 .branchMpki = 0.6, .l1dMpki = 5, .l2Mpki = 1.2,
                 .l3Mpki = 0.3, .mlp = 2.5, .intensity = 1.1},
                0.85, t, 1.67e-3),
        });
    }

    // cg: conjugate gradient; sparse gather, irregular memory.
    {
        const double t = target("cg.B");
        add("cg.B", {
            cal({.fpFraction = 0.30, .loadFraction = 0.35,
                 .storeFraction = 0.08, .branchFraction = 0.08,
                 .branchMpki = 4.0, .l1dMpki = 25, .l2Mpki = 10,
                 .l3Mpki = 3.8, .dtlbMpki = 4.0, .mlp = 1.8,
                 .intensity = 0.9}, 1.10, t, 2.0e-3),
            cal({.fpFraction = 0.34, .loadFraction = 0.30,
                 .storeFraction = 0.08, .branchFraction = 0.07,
                 .branchMpki = 3.0, .l1dMpki = 14, .l2Mpki = 5,
                 .l3Mpki = 1.8, .dtlbMpki = 2.5, .mlp = 2.0,
                 .intensity = 0.95}, 0.80, t, 1.0e-3),
        }, PhasePattern::Random);
    }

    // dc: data cube; integer aggregation over large tables, branchy.
    {
        const double t = target("dc.B");
        add("dc.B", {
            cal({.fpFraction = 0.02, .loadFraction = 0.33,
                 .storeFraction = 0.13, .branchFraction = 0.17,
                 .branchMpki = 7.0, .l1dMpki = 18, .l2Mpki = 7,
                 .l3Mpki = 2.5, .dtlbMpki = 4.0, .mlp = 1.6,
                 .intensity = 0.85}, 1.12, t, 1.8e-3),
            cal({.fpFraction = 0.02, .loadFraction = 0.30,
                 .storeFraction = 0.14, .branchFraction = 0.18,
                 .branchMpki = 5.0, .l1dMpki = 10, .l2Mpki = 3,
                 .l3Mpki = 1.0, .dtlbMpki = 2.0, .intensity = 0.95},
                0.82, t, 1.2e-3),
        }, PhasePattern::Random);
    }

    // ep: embarrassingly parallel; pure FP random-number compute,
    // tiny working set — the suite's hottest kernel.
    {
        const double t = target("ep.B");
        add("ep.B", {
            cal({.fpFraction = 0.48, .mulFraction = 0.05,
                 .loadFraction = 0.22, .storeFraction = 0.07,
                 .branchFraction = 0.07, .branchMpki = 1.0,
                 .l1dMpki = 1.5, .l2Mpki = 0.2, .l3Mpki = 0.05,
                 .activityNoise = 0.015, .intensity = 1.2},
                1.0, t, 6.0e-3, 0.1),
        });
    }

    // ft: 3-D FFT; compute bursts alternating with strided
    // all-to-all transposes.
    {
        const double t = target("ft.B");
        add("ft.B", {
            cal({.fpFraction = 0.44, .mulFraction = 0.04,
                 .loadFraction = 0.28, .storeFraction = 0.11,
                 .branchFraction = 0.05, .branchMpki = 0.8,
                 .l1dMpki = 5, .l2Mpki = 1.5, .l3Mpki = 0.4,
                 .intensity = 1.15}, 0.80, t, 1.6e-3),
            cal({.fpFraction = 0.30, .loadFraction = 0.34,
                 .storeFraction = 0.15, .branchFraction = 0.04,
                 .branchMpki = 0.6, .l1dMpki = 20, .l2Mpki = 9,
                 .l3Mpki = 3.0, .dtlbMpki = 3.0, .mlp = 3.2,
                 .intensity = 0.85}, 1.25, t, 1.28e-3),
        });
    }

    // is: integer bucket sort; pure streaming permutation, lowest
    // instruction rate of the deck.
    {
        const double t = target("is.D");
        add("is.D", {
            cal({.fpFraction = 0.01, .loadFraction = 0.36,
                 .storeFraction = 0.18, .branchFraction = 0.10,
                 .branchMpki = 6.0, .l1dMpki = 35, .l2Mpki = 14,
                 .l3Mpki = 5.5, .dtlbMpki = 6.0, .mlp = 1.6,
                 .activityNoise = 0.015, .intensity = 0.8},
                1.0, t, 7.0e-3, 0.1),
        });
    }

    // lu: LU solver (SSOR); regular FP, compute-leaning sweeps.
    {
        const double t = target("lu.B");
        add("lu.B", {
            cal({.fpFraction = 0.44, .loadFraction = 0.29,
                 .storeFraction = 0.11, .branchFraction = 0.05,
                 .branchMpki = 1.2, .l1dMpki = 6, .l2Mpki = 1.8,
                 .l3Mpki = 0.5, .intensity = 1.1}, 0.90, t, 2.4e-3),
            cal({.fpFraction = 0.38, .loadFraction = 0.32,
                 .storeFraction = 0.13, .branchFraction = 0.05,
                 .branchMpki = 1.5, .l1dMpki = 11, .l2Mpki = 4,
                 .l3Mpki = 1.4, .mlp = 2.6, .intensity = 0.95},
                1.15, t, 1.6e-3),
        });
    }

    // mg: multigrid; stresses every level of the memory hierarchy
    // as the V-cycle walks grid resolutions.
    {
        const double t = target("mg.C");
        add("mg.C", {
            cal({.fpFraction = 0.40, .loadFraction = 0.33,
                 .storeFraction = 0.13, .branchFraction = 0.03,
                 .branchMpki = 0.5, .l1dMpki = 16, .l2Mpki = 7,
                 .l3Mpki = 2.6, .mlp = 3.4, .intensity = 0.95},
                1.15, t, 2.0e-3),
            cal({.fpFraction = 0.43, .loadFraction = 0.29,
                 .storeFraction = 0.11, .branchFraction = 0.04,
                 .branchMpki = 0.7, .l1dMpki = 6, .l2Mpki = 1.5,
                 .l3Mpki = 0.4, .intensity = 1.1}, 0.70, t, 1.0e-3),
        });
    }

    // sp: scalar pentadiagonal CFD; bt-like but more bandwidth-bound.
    {
        const double t = target("sp.B");
        add("sp.B", {
            cal({.fpFraction = 0.41, .loadFraction = 0.33,
                 .storeFraction = 0.13, .branchFraction = 0.04,
                 .branchMpki = 0.7, .l1dMpki = 12, .l2Mpki = 5,
                 .l3Mpki = 1.6, .mlp = 3.0, .intensity = 0.95},
                1.12, t, 2.2e-3),
            cal({.fpFraction = 0.45, .loadFraction = 0.29,
                 .storeFraction = 0.11, .branchFraction = 0.04,
                 .branchMpki = 0.5, .l1dMpki = 6, .l2Mpki = 2,
                 .l3Mpki = 0.6, .intensity = 1.05}, 0.80, t, 1.32e-3),
        });
    }

    // ua: unstructured adaptive mesh; FP with pointer-driven
    // irregular access.
    {
        const double t = target("ua.B");
        add("ua.B", {
            cal({.fpFraction = 0.36, .loadFraction = 0.33,
                 .storeFraction = 0.11, .branchFraction = 0.09,
                 .branchMpki = 3.5, .l1dMpki = 13, .l2Mpki = 5,
                 .l3Mpki = 1.6, .dtlbMpki = 3.0, .mlp = 2.0,
                 .intensity = 0.95}, 1.10, t, 1.8e-3),
            cal({.fpFraction = 0.40, .loadFraction = 0.29,
                 .storeFraction = 0.10, .branchFraction = 0.07,
                 .branchMpki = 2.0, .l1dMpki = 7, .l2Mpki = 2,
                 .l3Mpki = 0.6, .intensity = 1.05}, 0.85, t, 1.2e-3),
        }, PhasePattern::Random);
    }

    boreas_assert(suite.size() == kNasInstr60s.size(),
                  "expected %zu NAS workloads, got %zu",
                  kNasInstr60s.size(), suite.size());
    return suite;
}

} // namespace

const std::vector<WorkloadSpec> &
nasSuite()
{
    static const std::vector<WorkloadSpec> suite = buildNasSuite();
    return suite;
}

const WorkloadSpec &
findNasWorkload(const std::string &name)
{
    for (const auto &w : nasSuite())
        if (w.name == name)
            return w;
    boreas_fatal("unknown NAS workload '%s'", name.c_str());
}

double
nasTargetInstructionRate(const std::string &name)
{
    auto it = kNasInstr60s.find(name);
    boreas_assert(it != kNasInstr60s.end(), "no NAS measurement for '%s'",
                  name.c_str());
    return it->second / 60.0;
}

} // namespace boreas
